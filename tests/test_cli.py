"""End-to-end tests of the command-line interface."""

import pytest

from repro.cli import main

COPIER = """
copier = input?x:NAT -> wire!x -> copier;
recopier = wire?y:NAT -> output!y -> recopier;
network = chan wire; (copier || recopier)
"""

PROTOCOL = """
sender = input?y:M -> q[y];
q[x:M] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x]);
receiver = wire?z:M -> (wire!ACK -> output!z -> receiver | wire!NACK -> receiver);
protocol = chan wire; (sender || receiver)
"""

DEADLOCKER = """
p = w!1 -> out!1 -> STOP;
q = w?x:{2..3} -> STOP;
net = p || q
"""


@pytest.fixture
def copier_file(tmp_path):
    path = tmp_path / "copier.csp"
    path.write_text(COPIER)
    return str(path)


@pytest.fixture
def protocol_file(tmp_path):
    path = tmp_path / "protocol.csp"
    path.write_text(PROTOCOL)
    return str(path)


@pytest.fixture
def deadlock_file(tmp_path):
    path = tmp_path / "net.csp"
    path.write_text(DEADLOCKER)
    return str(path)


class TestParse:
    def test_pretty_prints(self, copier_file, capsys):
        assert main(["parse", copier_file]) == 0
        out = capsys.readouterr().out
        assert "copier = input?x:NAT -> wire!x -> copier" in out

    def test_missing_file(self, capsys):
        assert main(["parse", "/nonexistent.csp"]) == 2

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.csp"
        path.write_text("p = wire!")
        assert main(["parse", str(path)]) == 2
        assert "error" in capsys.readouterr().err


class TestTraces:
    def test_lists_traces(self, copier_file, capsys):
        assert main(["traces", copier_file, "--process", "copier", "--depth", "2"]) == 0
        out = capsys.readouterr().out
        assert "input.0" in out and "wire.0" in out

    def test_default_process_is_last_equation(self, copier_file, capsys):
        assert main(["traces", copier_file, "--depth", "2"]) == 0
        out = capsys.readouterr().out
        assert "input" in out

    def test_unknown_process(self, copier_file):
        with pytest.raises(SystemExit):
            main(["traces", copier_file, "--process", "ghost"])

    def test_operational_engine(self, copier_file, capsys):
        assert (
            main(
                [
                    "traces",
                    copier_file,
                    "--depth",
                    "2",
                    "--engine",
                    "operational",
                ]
            )
            == 0
        )


class TestCheck:
    def test_holds(self, copier_file, capsys):
        code = main(
            ["check", copier_file, "--process", "copier", "--spec", "wire <= input"]
        )
        assert code == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_violated_with_counterexample(self, copier_file, capsys):
        code = main(
            ["check", copier_file, "--process", "copier", "--spec", "input <= wire"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "VIOLATED" in out and "violated" in out

    def test_named_set_binding(self, protocol_file, capsys):
        code = main(
            [
                "check",
                protocol_file,
                "--process",
                "protocol",
                "--spec",
                "output <= input",
                "--set",
                "M=0,1",
                "--with-cancel",
                "f",
                "--depth",
                "4",
                "--sample",
                "3",
            ]
        )
        assert code == 0

    def test_bad_set_syntax(self, protocol_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "check",
                    protocol_file,
                    "--spec",
                    "output <= input",
                    "--set",
                    "M",
                ]
            )


class TestProve:
    def test_proves_network(self, copier_file, capsys):
        code = main(
            [
                "prove",
                copier_file,
                "--goal",
                "network",
                "--invariant",
                "copier=wire <= input",
                "--invariant",
                "recopier=output <= wire",
                "--invariant",
                "network=output <= input",
            ]
        )
        assert code == 0
        assert "checked" in capsys.readouterr().out

    def test_show_proof(self, copier_file, capsys):
        code = main(
            [
                "prove",
                copier_file,
                "--goal",
                "copier",
                "--invariant",
                "copier=wire <= input",
                "--show-proof",
            ]
        )
        assert code == 0
        assert "[recursion]" in capsys.readouterr().out

    def test_false_invariant_fails(self, copier_file, capsys):
        code = main(
            [
                "prove",
                copier_file,
                "--goal",
                "copier",
                "--invariant",
                "copier=input <= wire",
            ]
        )
        assert code == 1
        assert "PROOF FAILED" in capsys.readouterr().out

    def test_array_invariant_uses_definition_parameter(self, protocol_file, capsys):
        code = main(
            [
                "prove",
                protocol_file,
                "--goal",
                "sender",
                "--set",
                "M=0,1",
                "--with-cancel",
                "f",
                "--invariant",
                "sender=f(wire) <= input",
                "--invariant",
                "q=f(wire) <= x ^ input",
            ]
        )
        assert code == 0
        assert "sender sat" in capsys.readouterr().out


class TestSimulateAndDeadlocks:
    def test_simulate_runs(self, copier_file, capsys):
        code = main(
            ["simulate", copier_file, "--process", "copier", "--steps", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "input" in out

    def test_simulate_reports_deadlock(self, deadlock_file, capsys):
        code = main(["simulate", deadlock_file, "--process", "net", "--steps", "5"])
        assert code == 1
        assert "DEADLOCK" in capsys.readouterr().out

    def test_deadlocks_found(self, deadlock_file, capsys):
        code = main(["deadlocks", deadlock_file, "--process", "net", "--depth", "2"])
        assert code == 1
        assert "deadlocking" in capsys.readouterr().out

    def test_no_deadlocks(self, copier_file, capsys):
        code = main(["deadlocks", copier_file, "--process", "copier", "--depth", "3"])
        assert code == 0
        assert "no deadlock" in capsys.readouterr().out


class TestBudgetsAndExitCodes:
    """The robustness contract: budget flags, partial results, exit taxonomy."""

    @pytest.fixture(autouse=True)
    def cold_kernel(self):
        # --max-nodes counts fresh interner misses; the interner is
        # process-global, so start these tests from a cold kernel.
        from repro.traces.trie import clear_interner

        clear_interner()

    def test_check_max_nodes_partial(self, copier_file, capsys):
        code = main(
            [
                "check",
                copier_file,
                "--process",
                "copier",
                "--spec",
                "wire <= input",
                "--depth",
                "8",
                "--max-nodes",
                "15",
            ]
        )
        assert code == 4
        captured = capsys.readouterr()
        assert "PARTIAL" in captured.out
        assert "verified to depth" in captured.err

    def test_check_deadline_zero_is_budget_exit(self, copier_file, capsys):
        code = main(
            [
                "check",
                copier_file,
                "--process",
                "copier",
                "--spec",
                "wire <= input",
                "--deadline",
                "0",
            ]
        )
        assert code == 4
        assert "budget exhausted" in capsys.readouterr().err

    def test_check_with_ample_budget_still_holds(self, copier_file, capsys):
        code = main(
            [
                "check",
                copier_file,
                "--process",
                "copier",
                "--spec",
                "wire <= input",
                "--max-nodes",
                "1000000",
            ]
        )
        assert code == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_traces_partial_lists_verified_prefix(self, copier_file, capsys):
        code = main(
            [
                "traces",
                copier_file,
                "--process",
                "copier",
                "--depth",
                "8",
                "--max-nodes",
                "15",
            ]
        )
        assert code == 4
        captured = capsys.readouterr()
        assert "PARTIAL" in captured.out
        assert "input.0" in captured.out  # the sound prefix is still printed

    def test_deadlocks_budget_partial(self, copier_file, capsys):
        # the copier network keeps running, so a one-state budget trips
        code = main(
            [
                "deadlocks",
                copier_file,
                "--process",
                "network",
                "--depth",
                "4",
                "--max-states",
                "1",
            ]
        )
        assert code == 4
        captured = capsys.readouterr()
        assert "PARTIAL" in captured.out
        assert "budget exhausted" in captured.err

    def test_deadlocks_reports_states_touched(self, deadlock_file, capsys):
        code = main(["deadlocks", deadlock_file, "--process", "net", "--depth", "2"])
        assert code == 1
        assert "states touched" in capsys.readouterr().out

    def test_stats_appends_governor_counters(self, copier_file, capsys):
        code = main(
            [
                "stats",
                copier_file,
                "--process",
                "copier",
                "--depth",
                "3",
                "--max-nodes",
                "1000000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resource governor" in out
        assert "max-nodes=1000000" in out

    def test_semantics_error_exit_code(self, protocol_file, capsys):
        # protocol needs --set M=…; without it the semantics layer fails
        code = main(
            ["check", protocol_file, "--process", "protocol", "--spec", "output <= input"]
        )
        assert code == 3
        assert "error" in capsys.readouterr().err

    def test_parse_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.csp"
        bad.write_text("p = wire!")
        assert main(["check", str(bad), "--spec", "wire <= input"]) == 2

    def test_debug_reraises(self, copier_file):
        with pytest.raises(Exception):
            main(["check", "/nonexistent.csp", "--spec", "x <= y", "--debug"])

    def test_reproduce_deadline_zero_skips_everything(self, capsys):
        code = main(["reproduce", "--quick", "--deadline", "0"])
        assert code == 4
        out = capsys.readouterr().out
        assert "SKIPPED (budget exhausted)" in out
        assert "partial under the active budget" in out


class TestEngineFlags:
    """--jobs / --cache-dir / --no-cache / --explain-plan plumbing."""

    def test_jobs_two_traces_identical(self, copier_file, capsys):
        assert (
            main(
                ["traces", copier_file, "--process", "copier", "--depth", "3",
                 "--no-cache"]
            )
            == 0
        )
        sequential = capsys.readouterr().out
        assert (
            main(
                ["traces", copier_file, "--process", "copier", "--depth", "3",
                 "--jobs", "2", "--no-cache"]
            )
            == 0
        )
        assert capsys.readouterr().out == sequential

    def test_check_warm_cache_second_run(self, copier_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = [
            "check", copier_file, "--process", "copier",
            "--spec", "wire <= input", "--cache-dir", cache_dir,
        ]
        assert main(argv) == 0
        assert "HOLDS" in capsys.readouterr().out
        snapshots = list((tmp_path / "cache").glob("snapshot-*.json"))
        assert len(snapshots) == 1
        assert main(argv) == 0  # warm start, same verdict
        assert "HOLDS" in capsys.readouterr().out

    def test_no_cache_writes_nothing(self, copier_file, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = [
            "check", copier_file, "--process", "copier",
            "--spec", "wire <= input", "--cache-dir", str(cache_dir),
            "--no-cache",
        ]
        assert main(argv) == 0
        assert not cache_dir.exists()

    def test_budgeted_run_writes_only_checkpoint_slots(
        self, copier_file, tmp_path, capsys
    ):
        import json
        import re

        cache_dir = tmp_path / "cache"
        argv = [
            "traces", copier_file, "--process", "copier", "--depth", "3",
            "--cache-dir", str(cache_dir), "--deadline", "30",
        ]
        assert main(argv) == 0
        # Governed runs persist per-completed-depth checkpoint slots —
        # and nothing from the general (ungoverned) slot vocabulary.
        snapshots = list(cache_dir.glob("snapshot-*.json"))
        assert len(snapshots) == 1
        roots = json.loads(snapshots[0].read_text())["roots"]
        assert roots
        assert all(re.fullmatch(r"fix:.+@level\d+", slot) for slot in roots)
        first = capsys.readouterr().out
        # A rerun resumes from the checkpoint slots and prints the same
        # traces (invocation-determinism).
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_explain_plan_cold_then_warm(self, copier_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = [
            "stats", copier_file, "--explain-plan", "--depth", "3",
            "--cache-dir", cache_dir,
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "engine plan:" in cold
        assert "rank 0" in cold
        assert "definition-levels denoted" in cold
        assert "delta frontiers:" in cold
        assert "snapshot cache:" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "cache hit" in warm

    def test_explain_plan_jobs_two(self, copier_file, capsys):
        assert (
            main(
                ["stats", copier_file, "--explain-plan", "--depth", "3",
                 "--jobs", "2", "--no-cache"]
            )
            == 0
        )
        assert "jobs=2" in capsys.readouterr().out

    def test_traces_budget_trip_under_jobs(self, copier_file, capsys):
        code = main(
            ["traces", copier_file, "--process", "copier", "--depth", "6",
             "--jobs", "2", "--deadline", "0"]
        )
        assert code == 4

    def test_worker_error_exit_code_without_debug(self, tmp_path, capsys):
        # two independent recursive definitions over an unbound set: both
        # SCCs fail during denotation (on worker threads with --jobs 2),
        # and the CLI must still map the error to the semantics exit code
        path = tmp_path / "unbound.csp"
        path.write_text("p = a?x:S -> p; q = b?y:S -> q")
        code = main(
            ["traces", str(path), "--process", "p", "--jobs", "2",
             "--no-cache"]
        )
        assert code == 3
        assert "unbound" in capsys.readouterr().err

    def test_worker_error_debug_reraises_original_class(self, tmp_path):
        from repro.errors import UnboundVariableError

        path = tmp_path / "unbound.csp"
        path.write_text("p = a?x:S -> p; q = b?y:S -> q")
        with pytest.raises(UnboundVariableError):
            main(
                ["traces", str(path), "--process", "p", "--jobs", "2",
                 "--no-cache", "--debug"]
            )


class TestServeParser:
    """The serve/--server surface (daemon behavior itself is covered by
    tests/server/)."""

    def _parse(self, argv):
        from repro.cli import build_parser

        return build_parser().parse_args(argv)

    def test_serve_requires_socket(self):
        with pytest.raises(SystemExit):
            self._parse(["serve"])

    def test_serve_defaults(self):
        args = self._parse(["serve", "--socket", "/tmp/repro.sock"])
        assert args.jobs == 2
        assert args.queue_limit == 16
        assert args.request_timeout == 300.0
        assert args.grace == 2.0
        assert args.max_attempts == 3
        assert args.max_requests is None
        assert args.inject is None

    def test_check_accepts_server_flag(self):
        args = self._parse(
            ["check", "file.csp", "--spec", "a <= b",
             "--server", "/tmp/repro.sock"]
        )
        assert args.server == "/tmp/repro.sock"

    def test_server_refused_maps_to_exit_9(self, copier_file, capsys):
        # no daemon behind the socket: the client exhausts its retries
        # and the CLI maps the failure to the server exit code
        code = main(
            ["check", copier_file, "--spec", "wire <= input",
             "--server", "/nonexistent/repro.sock"]
        )
        assert code == 9
        assert "error" in capsys.readouterr().err


class TestStats:
    def test_stats_reports_kernel_counters(self, copier_file, capsys):
        code = main(["stats", copier_file, "--process", "network", "--depth", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "trie nodes" in out
        assert "interner" in out
        assert "memo tables" in out

    def test_stats_with_spec_checks_and_reports(self, copier_file, capsys):
        code = main(
            [
                "stats",
                copier_file,
                "--process",
                "network",
                "--depth",
                "4",
                "--spec",
                "output <= input",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HOLDS" in out
        assert "interner" in out

"""Unit tests for channels, events, and trace helpers (paper §0, §3.1)."""

from repro.traces.events import (
    EMPTY_TRACE,
    Channel,
    channel,
    event,
    is_prefix,
    prefixes,
    project,
    restrict,
    trace,
    trace_channels,
)


class TestChannel:
    def test_equality_by_name(self):
        assert Channel("wire") == Channel("wire")
        assert Channel("wire") != Channel("input")

    def test_subscripted_channels_distinct_per_index(self):
        # §1.1 item 11: col[e] denotes a distinct channel per value of e
        assert Channel("col", 0) != Channel("col", 1)
        assert Channel("col", 0) == Channel("col", 0)

    def test_subscripted_differs_from_plain(self):
        assert Channel("col", 0) != Channel("col")

    def test_hashable(self):
        assert len({Channel("a"), Channel("a"), Channel("b")}) == 2

    def test_ordering_is_stable(self):
        chans = [Channel("col", 2), Channel("col", 0), Channel("a")]
        assert sorted(chans) == [Channel("a"), Channel("col", 0), Channel("col", 2)]

    def test_repr(self):
        assert repr(Channel("wire")) == "wire"
        assert repr(Channel("col", 3)) == "col[3]"


class TestEvent:
    def test_equality(self):
        assert event("wire", 3) == event("wire", 3)
        assert event("wire", 3) != event("wire", 4)
        assert event("wire", 3) != event("input", 3)

    def test_repr_matches_paper_notation(self):
        assert repr(event("output", 3)) == "output.3"

    def test_event_accepts_channel_object(self):
        assert event(Channel("col", 1), 5).channel == Channel("col", 1)

    def test_hashable(self):
        assert len({event("a", 1), event("a", 1)}) == 1


class TestTraceHelpers:
    def test_trace_builder(self):
        s = trace(("input", 3), ("wire", 3))
        assert s == (event("input", 3), event("wire", 3))

    def test_trace_builder_accepts_events(self):
        s = trace(event("a", 1), ("b", 2))
        assert len(s) == 2

    def test_empty_trace(self):
        assert EMPTY_TRACE == ()
        assert trace() == EMPTY_TRACE

    def test_trace_channels(self):
        s = trace(("input", 3), ("wire", 3), ("input", 0))
        assert trace_channels(s) == {channel("input"), channel("wire")}

    def test_restrict_removes_hidden_channels(self):
        # s \ C from §3.1
        s = trace(("input", 1), ("wire", 1), ("output", 1))
        assert restrict(s, [channel("wire")]) == trace(("input", 1), ("output", 1))

    def test_restrict_empty_channel_set_is_identity(self):
        s = trace(("a", 1))
        assert restrict(s, []) == s

    def test_project_keeps_only_given_channels(self):
        s = trace(("input", 1), ("wire", 1), ("output", 1))
        assert project(s, [channel("wire")]) == trace(("wire", 1))

    def test_project_restrict_partition(self):
        s = trace(("a", 1), ("b", 2), ("a", 3))
        c = [channel("a")]
        assert len(project(s, c)) + len(restrict(s, c)) == len(s)


class TestPrefixOrder:
    def test_empty_is_prefix_of_everything(self):
        assert is_prefix(EMPTY_TRACE, trace(("a", 1)))

    def test_prefix_examples(self):
        s = trace(("a", 1), ("b", 2))
        assert is_prefix(trace(("a", 1)), s)
        assert is_prefix(s, s)
        assert not is_prefix(trace(("b", 2)), s)
        assert not is_prefix(trace(("a", 1), ("b", 2), ("c", 3)), s)

    def test_prefixes_enumeration(self):
        s = trace(("a", 1), ("b", 2))
        assert list(prefixes(s)) == [EMPTY_TRACE, trace(("a", 1)), s]

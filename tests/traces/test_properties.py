"""Property-based tests re-verifying the §3.1 theorems with hypothesis.

The paper proves: prefix, hiding, padding, and parallel composition map
prefix closures to prefix closures, and distribute through arbitrary
unions.  These properties are checked here on randomly generated finite
closures.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.events import channel, event, restrict, trace_channels
from repro.traces.operations import after_event, hide, pad, parallel, prefix
from repro.traces.prefix_closure import FiniteClosure

CHANNELS = [channel("a"), channel("b"), channel("wire")]


def events_strategy():
    return st.builds(
        event,
        st.sampled_from(CHANNELS),
        st.integers(min_value=0, max_value=2),
    )


def traces_strategy(max_size=4):
    return st.lists(events_strategy(), max_size=max_size).map(tuple)


def closures_strategy():
    return st.lists(traces_strategy(), max_size=6).map(FiniteClosure.from_traces)


@given(closures_strategy(), events_strategy())
def test_prefix_yields_prefix_closure(p, a):
    assert prefix(a, p).is_prefix_closed()


@given(closures_strategy(), events_strategy())
def test_after_prefix_roundtrip(p, a):
    assert after_event(prefix(a, p), a) == p


@given(closures_strategy())
def test_hide_yields_prefix_closure(p):
    assert hide(p, [channel("wire")]).is_prefix_closed()


@given(closures_strategy(), closures_strategy())
def test_union_and_intersection_are_closures(p, q):
    assert p.union(q).is_prefix_closed()
    assert p.intersection(q).is_prefix_closed()


@given(closures_strategy(), closures_strategy(), events_strategy())
def test_prefix_distributes_through_union(p, q, a):
    # (a → P ∪ Q) = (a → P) ∪ (a → Q), §3.1 distributivity theorem
    assert prefix(a, p.union(q)) == prefix(a, p).union(prefix(a, q))


@given(closures_strategy(), closures_strategy())
def test_hide_distributes_through_union(p, q):
    c = [channel("wire")]
    assert hide(p.union(q), c) == hide(p, c).union(hide(q, c))


@settings(max_examples=30, deadline=None)
@given(closures_strategy())
def test_pad_yields_prefix_closure(p):
    padded = pad(p, [channel("z")], [event("z", 0)], depth=p.depth() + 1)
    assert padded.is_prefix_closed()


@settings(max_examples=30, deadline=None)
@given(closures_strategy(), closures_strategy())
def test_parallel_yields_prefix_closure(p, q):
    x = trace_channels_of(p) | {channel("a"), channel("wire")}
    y = trace_channels_of(q) | {channel("b"), channel("wire")}
    net = parallel(p, x, q, y, depth=4)
    assert net.is_prefix_closed()


@settings(max_examples=30, deadline=None)
@given(closures_strategy(), closures_strategy())
def test_parallel_projections_lie_in_components(p, q):
    x = trace_channels_of(p) | {channel("a"), channel("wire")}
    y = trace_channels_of(q) | {channel("b"), channel("wire")}
    net = parallel(p, x, q, y, depth=4)
    for s in net.traces:
        assert restrict(s, y - x) in p
        assert restrict(s, x - y) in q


def trace_channels_of(p):
    chans = set()
    for s in p.traces:
        chans |= trace_channels(s)
    return chans


@given(closures_strategy())
def test_truncate_monotone(p):
    for d in range(p.depth() + 1):
        assert p.truncate(d).issubset(p.truncate(d + 1))

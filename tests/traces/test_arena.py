"""Unit tests for the struct-of-arrays arena kernel.

Three contracts the arena adds on top of the object kernel's semantics:

* **per-id view identity** — ``arena.view(i)`` is one object forever, so
  pointer identity of views coincides with id equality;
* **state-locality** — a node id names a row of *one* arena; a view
  carried across kernel states (out of ``private_state()``, or across
  ``clear_interner()``) stays readable but raises
  :class:`~repro.errors.KernelStateError` the moment an operator would
  build with it;
* **full reset** — ``clear_interner()`` drops the node segments *and*
  the event/channel id tables, not just the interner dict.
"""

import pytest

from repro.errors import KernelStateError
from repro.traces.events import channel, event
from repro.traces.trie import (
    EMPTY_NODE,
    arena_info,
    clear_interner,
    current_state,
    interner_size,
    iter_trace_set,
    make_node,
    node_from_traces,
    node_id,
    private_state,
    reintern,
    truncate_node,
    union_nodes,
)

A = channel("a")
B = channel("b")
A0 = event(A, 0)
A1 = event(A, 1)
B0 = event(B, 0)


def _abc_node():
    return node_from_traces([(A0, B0), (A1,)])


class TestViewIdentity:
    def test_view_is_canonical_per_id(self):
        node = _abc_node()
        arena = node.arena
        assert arena.view(node.id) is node

    def test_same_structure_same_view(self):
        assert _abc_node() is _abc_node()

    def test_children_are_canonical_views(self):
        node = _abc_node()
        child = node.children[A0]
        assert node.arena.view(child.id) is child
        # reaching the same subtree via a different construction lands on
        # the same view object
        again = node_from_traces([(A0, B0)]).children[A0]
        assert again is child

    def test_empty_node_is_arena_agnostic(self):
        assert make_node({}) is EMPTY_NODE
        with private_state():
            assert make_node({}) is EMPTY_NODE
            assert node_from_traces([]) is EMPTY_NODE

    def test_items_sorted_by_event_sort_key(self):
        node = node_from_traces([(B0,), (A1,), (A0,)])
        assert [e for e, _ in node.items] == sorted(
            [A0, A1, B0], key=lambda e: e.sort_key()
        )


class TestStateLocality:
    def test_leaked_private_view_raises_in_ambient_ops(self):
        with private_state():
            leaked = _abc_node()
        with pytest.raises(KernelStateError):
            union_nodes(leaked, _abc_node())
        with pytest.raises(KernelStateError):
            make_node({A0: leaked})

    def test_ambient_view_raises_inside_private_state(self):
        ambient = _abc_node()
        with private_state():
            with pytest.raises(KernelStateError):
                truncate_node(ambient, 1)

    def test_node_id_rejects_foreign_view(self):
        with private_state():
            foreign = _abc_node()
        with pytest.raises(KernelStateError):
            node_id(foreign, current_state().arena)

    def test_empty_node_crosses_states_freely(self):
        with private_state():
            assert node_id(EMPTY_NODE, current_state().arena) == 0
            assert union_nodes(EMPTY_NODE, _abc_node()) is not None

    def test_leaked_view_stays_readable(self):
        with private_state():
            leaked = _abc_node()
        # traversal reads the view's own arena — no new state involved
        assert iter_trace_set(leaked) == {(), (A0,), (A0, B0), (A1,)}
        assert leaked.count == 4
        assert leaked.height == 2

    def test_reintern_is_the_sanctioned_crossing(self):
        ambient = _abc_node()
        with private_state():
            private = _abc_node()
        carried = reintern(private)
        assert carried is ambient


class TestClearInterner:
    def test_resets_nodes_and_id_tables(self):
        _abc_node()
        info = arena_info()
        assert info["nodes"] > 1 and info["events"] >= 3
        clear_interner()
        info = arena_info()
        assert interner_size() == 1  # just the seeded leaf
        assert info["nodes"] == 1
        assert info["edges"] == 0
        assert info["events"] == 0
        assert info["channels"] == 0

    def test_stale_view_readable_but_not_combinable(self):
        stale = _abc_node()
        clear_interner()
        assert iter_trace_set(stale) == {(), (A0,), (A0, B0), (A1,)}
        with pytest.raises(KernelStateError):
            union_nodes(stale, node_from_traces([(A0,)]))

    def test_stale_view_reinterns_into_new_generation(self):
        stale = _abc_node()
        clear_interner()
        fresh = reintern(stale)
        assert fresh is _abc_node()
        assert iter_trace_set(fresh) == iter_trace_set(stale)

    def test_rebuild_after_clear_is_deterministic(self):
        first = _abc_node()
        first_ids = (first.id, first.children[A0].id)
        clear_interner()
        second = _abc_node()
        # same construction order ⇒ same id assignment in the new arena
        assert (second.id, second.children[A0].id) == first_ids


class TestArenaInfo:
    def test_accounts_nodes_edges_and_tables(self):
        clear_interner()
        node = _abc_node()
        info = arena_info()
        assert info["nodes"] == interner_size()
        # edges: a->b0 tree has root(2 edges) + a0-child(1 edge)
        assert info["edges"] == 3
        assert info["events"] == 3
        assert info["channels"] == 2
        assert info["segment_bytes"] > 0
        assert info["views"] >= 1
        assert node.arena.segment_bytes() == info["segment_bytes"]

    def test_packed_key_hits_counted(self):
        from repro.traces.stats import KERNEL_STATS

        _abc_node()
        before = KERNEL_STATS.interner_hits
        _abc_node()  # every node is a packed-key hit the second time
        assert KERNEL_STATS.interner_hits > before

"""Unit tests for per-thread kernel state and node re-interning.

``private_state`` gives a worker its own interner+memo universe so
parallel SCC solves never contend; ``reintern`` carries a structure
built in one universe back into the ambient one, landing on exactly the
nodes the ambient interner would have built itself.
"""

import threading

from repro.process.ast import Name
from repro.process.parser import parse_definitions
from repro.semantics.config import SemanticsConfig
from repro.semantics.denotation import denote
from repro.traces.trie import (
    EMPTY_NODE,
    interner_size,
    make_node,
    private_state,
    reintern,
)

CFG = SemanticsConfig(depth=3, sample=2)


def _denote_p():
    return denote(Name("p"), parse_definitions("p = a!0 -> b!1 -> p"), config=CFG)


class TestPrivateState:
    def test_isolated_interner(self):
        baseline = interner_size()
        with private_state():
            assert interner_size() == 1  # just the seeded empty node
            _denote_p()
            assert interner_size() > 1
        assert interner_size() == baseline  # ambient state untouched

    def test_empty_node_reseeded_inside(self):
        with private_state():
            assert make_node({}) is not None
            # the empty node is canonical inside the private universe too
            assert make_node({}) is make_node({})

    def test_nesting_restores_previous_state(self):
        with private_state():
            _denote_p()
            inner_size = interner_size()
            with private_state():
                assert interner_size() == 1
            assert interner_size() == inner_size

    def test_threads_get_independent_states(self):
        sizes = {}

        def worker(tag):
            with private_state():
                _denote_p()
                sizes[tag] = interner_size()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sizes[0] == sizes[1] > 1


class TestReintern:
    def test_ambient_node_is_fixed_point(self):
        closure = _denote_p()
        assert reintern(closure.root) is closure.root

    def test_private_node_lands_on_ambient_canonical(self):
        ambient = _denote_p()
        with private_state():
            private = _denote_p()
            assert private.root is not ambient.root
        # merge back in the ambient state, the way the engine does
        assert reintern(private.root) is ambient.root

    def test_empty_node_reinterns_to_empty(self):
        with private_state():
            private_empty = make_node({})
            merged = reintern(private_empty)
        assert merged is EMPTY_NODE

    def test_idempotent(self):
        with private_state():
            node = _denote_p().root
        once = reintern(node)
        assert reintern(once) is once

"""Unit tests for the hash-consed trace-trie kernel."""

import pytest

from repro.errors import SemanticsError
from repro.traces.events import EMPTY_TRACE, channel, event, trace
from repro.traces.operations import pad, parallel
from repro.traces.prefix_closure import STOP_CLOSURE, FiniteClosure
from repro.traces.stats import KERNEL_STATS, reset_stats, snapshot
from repro.traces.trie import (
    EMPTY_NODE,
    descend,
    distinct_nodes,
    interner_size,
    iter_traces,
    node_from_traces,
    subset_nodes,
    union_nodes,
)

AB = trace(("a", 1), ("b", 2))


class TestInterning:
    def test_structurally_equal_nodes_are_the_same_object(self):
        n1 = node_from_traces([AB])
        n2 = node_from_traces([AB])
        assert n1 is n2

    def test_empty_node_is_canonical(self):
        assert node_from_traces([]) is EMPTY_NODE
        assert node_from_traces([EMPTY_TRACE]) is EMPTY_NODE

    def test_shared_subtrees_are_shared_objects(self):
        # Two distinct first events leading to the same continuation must
        # share the continuation subtree.
        t1 = trace(("a", 1), ("wire", 9))
        t2 = trace(("b", 2), ("wire", 9))
        root = node_from_traces([t1, t2])
        children = list(root.children.values())
        assert children[0] is children[1]
        assert root.count == 5  # ⟨⟩, a, b, a-wire, b-wire
        assert distinct_nodes(root) == 3  # root, mid (shared), leaf

    def test_interner_grows_monotonically(self):
        before = interner_size()
        node_from_traces([trace(("a", 1), ("a", 2), ("a", 3))])
        assert interner_size() >= before

    def test_closure_equality_is_pointer_equality(self):
        p = FiniteClosure.from_traces([AB])
        q = FiniteClosure.from_traces([AB])
        assert p == q and p.root is q.root


class TestNodeQueries:
    def test_count_and_height(self):
        root = node_from_traces([AB])
        assert root.count == 3
        assert root.height == 2

    def test_descend(self):
        root = node_from_traces([AB])
        assert descend(root, AB) is EMPTY_NODE
        assert descend(root, trace(("z", 0))) is None

    def test_iter_traces_shortest_first(self):
        root = node_from_traces([AB, trace(("z", 0))])
        listed = list(iter_traces(root))
        assert listed[0] == EMPTY_TRACE
        assert [len(s) for s in listed] == sorted(len(s) for s in listed)

    def test_subset_nodes(self):
        small = node_from_traces([trace(("a", 1))])
        big = node_from_traces([AB])
        assert subset_nodes(small, big)
        assert not subset_nodes(big, small)

    def test_union_nodes_shares_on_pointer_equality(self):
        n = node_from_traces([AB])
        assert union_nodes(n, n) is n
        assert union_nodes(n, EMPTY_NODE) is n


class TestClosureView:
    def test_node_count_reports_sharing(self):
        p = FiniteClosure.from_traces(
            [trace(("a", 1), ("wire", 9)), trace(("b", 2), ("wire", 9))]
        )
        assert len(p) == 5
        assert p.node_count() == 3

    def test_after_returns_subtree(self):
        p = FiniteClosure.from_traces([AB])
        node = p.after(trace(("a", 1)))
        assert node is not None and node.count == 2

    def test_from_node_round_trip(self):
        p = FiniteClosure.from_traces([AB])
        assert FiniteClosure.from_node(p.root) == p

    def test_stop_closure_is_empty_node(self):
        assert STOP_CLOSURE.root is EMPTY_NODE
        assert FiniteClosure.from_node(EMPTY_NODE) is STOP_CLOSURE


class TestGuards:
    def test_pad_rejects_negative_depth(self):
        with pytest.raises(ValueError, match="non-negative"):
            pad(STOP_CLOSURE, [channel("a")], [event("a", 0)], depth=-1)

    def test_parallel_small_disjoint_instances_still_interleave(self):
        p = FiniteClosure.from_traces([trace(("a", 1))])
        q = FiniteClosure.from_traces([trace(("b", 2))])
        net = parallel(p, [channel("a")], q, [channel("b")])
        assert trace(("a", 1), ("b", 2)) in net
        assert trace(("b", 2), ("a", 1)) in net

    def test_parallel_disjoint_explosion_raises(self):
        import repro.traces.operations as ops

        p = FiniteClosure.from_traces([trace(("a", 1))])
        q = FiniteClosure.from_traces([trace(("b", 1))])
        old = ops.MAX_DISJOINT_PRODUCT
        ops.MAX_DISJOINT_PRODUCT = 1
        try:
            with pytest.raises(SemanticsError, match="disjoint alphabets"):
                ops.parallel(p, [channel("a")], q, [channel("b")])
        finally:
            ops.MAX_DISJOINT_PRODUCT = old


class TestStats:
    def test_counters_accumulate_and_reset(self):
        reset_stats()
        p = FiniteClosure.from_traces([AB])
        q = FiniteClosure.from_traces([trace(("b", 2))])
        p.union(q)
        p.union(q)  # second call must hit the memo
        snap = snapshot()
        assert snap["memos"]["union"]["hits"] >= 1
        assert snap["interner"]["size"] > 0
        reset_stats()
        assert snapshot()["memos"] == {}

    def test_format_stats_mentions_interner(self):
        from repro.traces.stats import format_stats

        KERNEL_STATS.memo("union")
        assert "interner" in format_stats()

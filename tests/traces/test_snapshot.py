"""Unit tests for persisted closure snapshots.

The cache's core safety property: a snapshot is *never trusted*.  Every
decoded node goes back through the arena interner (so it is canonical by
construction), and any structural defect — corrupt JSON, unaligned or
undecodable packed segments, dangling indices, wrong format version,
wrong content key — silently discards the file and rebuilds from
scratch.  Format-1 (pre-arena) payloads under the same content key must
keep loading through the legacy codec.
"""

import json

import pytest

from repro.process.ast import Name
from repro.process.parser import parse_definitions
from repro.semantics.config import SemanticsConfig
from repro.semantics.denotation import denote
from repro.serialize import pack_ints, pack_ints64, unpack_ints, unpack_ints64
from repro.traces.snapshot import (
    FORMAT_VERSION,
    SnapshotCache,
    SnapshotError,
    cache_key,
    decode_roots,
    encode_roots,
    encode_roots_legacy,
)
from repro.traces.trie import private_state

CFG = SemanticsConfig(depth=3, sample=2)
DEFS = parse_definitions("copier = input?x:NAT -> wire!x -> copier")


def _closure():
    defs = parse_definitions("p = a!0 -> b!1 -> p")
    return denote(Name("p"), defs, config=CFG)


class TestRoundTrip:
    def test_same_interner_identity(self):
        closure = _closure()
        decoded = decode_roots(encode_roots({"p": closure.root}))
        assert decoded["p"] is closure.root

    def test_cold_interner_decodes_to_canonical_nodes(self):
        closure = _closure()
        payload = json.loads(json.dumps(encode_roots({"p": closure.root})))
        with private_state():
            decoded = decode_roots(payload)
            rebuilt = denote(
                Name("p"), parse_definitions("p = a!0 -> b!1 -> p"), config=CFG
            )
            # decoding re-interns: the snapshot node IS the node a fresh
            # denotation builds, pointer-identically
            assert decoded["p"] is rebuilt.root

    def test_shared_subtrees_written_once(self):
        closure = _closure()
        data = encode_roots({"p": closure.root, "q": closure.root})
        assert data["roots"]["p"] == data["roots"]["q"]


class TestDecodeRejectsDefects:
    def test_dangling_child_index(self):
        data = encode_roots({"p": _closure().root})
        children = unpack_ints(data["edge_children"])
        children[-1] = 10_000
        data["edge_children"] = pack_ints(children)
        with pytest.raises(SnapshotError, match="post-order"):
            decode_roots(data)

    def test_bad_event_index(self):
        data = encode_roots({"p": _closure().root})
        events = unpack_ints(data["edge_events"])
        events[0] = 10_000
        data["edge_events"] = pack_ints(events)
        with pytest.raises(SnapshotError, match="bad event index"):
            decode_roots(data)

    def test_arity_segment_mismatch(self):
        data = encode_roots({"p": _closure().root})
        arity = unpack_ints(data["arity"])
        arity[-1] += 1
        data["arity"] = pack_ints(arity)
        with pytest.raises(SnapshotError, match="arity"):
            decode_roots(data)

    def test_edge_segments_disagree(self):
        data = encode_roots({"p": _closure().root})
        children = unpack_ints(data["edge_children"])
        data["edge_children"] = pack_ints(children[:-1])
        with pytest.raises(SnapshotError, match="disagree"):
            decode_roots(data)

    def test_unaligned_buffer_bytes(self):
        data = encode_roots({"p": _closure().root})
        # valid base64, but not a whole number of 32-bit items
        data["edge_children"] = "AAAA" + data["edge_children"]
        with pytest.raises(SnapshotError):
            decode_roots(data)

    def test_non_base64_buffer(self):
        data = encode_roots({"p": _closure().root})
        data["arity"] = "!!! not base64 !!!"
        with pytest.raises(SnapshotError):
            decode_roots(data)

    def test_corrupt_counts_rejected_cold(self):
        data = encode_roots({"p": _closure().root})
        counts = unpack_ints64(data["counts"])
        counts[-1] += 5
        data["counts"] = pack_ints64(counts)
        with private_state():  # bulk path: one-sweep consistency check
            with pytest.raises(SnapshotError, match="counts"):
                decode_roots(data)

    def test_corrupt_counts_rejected_warm(self):
        data = encode_roots({"p": _closure().root})
        counts = unpack_ints64(data["counts"])
        counts[-1] += 5
        data["counts"] = pack_ints64(counts)
        # nodes already interned: the sequential path cross-checks the
        # stored metadata against the interner's own derived values
        with pytest.raises(SnapshotError, match="counts"):
            decode_roots(data)

    def test_corrupt_heights_rejected(self):
        data = encode_roots({"p": _closure().root})
        heights = unpack_ints(data["heights"])
        heights[-1] += 1
        data["heights"] = pack_ints(heights)
        with private_state():
            with pytest.raises(SnapshotError, match="heights"):
                decode_roots(data)
        with pytest.raises(SnapshotError, match="heights"):
            decode_roots(data)

    def test_counts_segment_length_mismatch(self):
        data = encode_roots({"p": _closure().root})
        counts = unpack_ints64(data["counts"])
        data["counts"] = pack_ints64(counts[:-1])
        with pytest.raises(SnapshotError, match="counts"):
            decode_roots(data)

    def test_bad_root_index(self):
        data = encode_roots({"p": _closure().root})
        data["roots"]["p"] = 10_000
        with pytest.raises(SnapshotError, match="bad root entry"):
            decode_roots(data)

    def test_non_event_in_event_table(self):
        data = encode_roots({"p": _closure().root})
        data["events"] = [{"__kind__": "Channel", "name": "a", "index": None}]
        with pytest.raises(SnapshotError):
            decode_roots(data)

    def test_garbage_payload(self):
        with pytest.raises(SnapshotError):
            decode_roots({"events": "nope", "arity": 3, "roots": []})


class TestLegacyFormat:
    """Format-1 files (pre-arena object-walk layout) share the content
    key with format-2 files, so they must keep loading — through the
    legacy codec, re-interned into the current arena."""

    def _write_legacy(self, tmp_path, key, roots):
        data = encode_roots_legacy(roots)
        data["format"] = 1
        data["key"] = key
        path = tmp_path / f"snapshot-{key}.json"
        path.write_text(json.dumps(data), encoding="utf-8")
        return path

    def test_legacy_snapshot_loads(self, tmp_path):
        key = cache_key(DEFS, CFG)
        closure = _closure()
        self._write_legacy(tmp_path, key, {"fix:p": closure.root})
        cache = SnapshotCache(tmp_path, key)
        assert cache.loaded and not cache.rebuilt
        # legacy decode re-interns onto the canonical arena node
        assert cache.get("fix:p") is closure.root

    def test_legacy_rewritten_flat_on_save(self, tmp_path):
        key = cache_key(DEFS, CFG)
        closure = _closure()
        self._write_legacy(tmp_path, key, {"fix:p": closure.root})
        cache = SnapshotCache(tmp_path, key)
        cache.put("fix:q", closure.root)
        cache.save()
        data = json.loads(cache.path.read_text(encoding="utf-8"))
        assert data["format"] == FORMAT_VERSION
        assert "arity" in data and "nodes" not in data
        warm = SnapshotCache(tmp_path, key)
        assert warm.loaded
        assert warm.get("fix:p") is closure.root

    def test_corrupt_legacy_rebuilt(self, tmp_path):
        key = cache_key(DEFS, CFG)
        path = self._write_legacy(tmp_path, key, {"fix:p": _closure().root})
        data = json.loads(path.read_text(encoding="utf-8"))
        data["nodes"] = data["nodes"][:1]
        path.write_text(json.dumps(data), encoding="utf-8")
        cache = SnapshotCache(tmp_path, key)
        assert cache.rebuilt and not cache.loaded
        assert cache.get("fix:p") is None


class TestCacheKey:
    def test_sensitive_to_definitions(self):
        other = parse_definitions("copier = input?x:NAT -> out!x -> copier")
        assert cache_key(DEFS, CFG) != cache_key(other, CFG)

    def test_sensitive_to_config(self):
        assert cache_key(DEFS, CFG) != cache_key(
            DEFS, SemanticsConfig(depth=4, sample=2)
        )

    def test_sensitive_to_extra(self):
        assert cache_key(DEFS, CFG, extra={"sets": ["M={0,1}"]}) != cache_key(
            DEFS, CFG, extra=None
        )

    def test_deterministic(self):
        assert cache_key(DEFS, CFG) == cache_key(
            parse_definitions("copier = input?x:NAT -> wire!x -> copier"), CFG
        )


class TestSnapshotCache:
    def test_save_and_reload(self, tmp_path):
        key = cache_key(DEFS, CFG)
        cache = SnapshotCache(tmp_path, key)
        closure = _closure()
        cache.put("fix:p", closure.root)
        cache.save()
        warm = SnapshotCache(tmp_path, key)
        assert warm.loaded and not warm.rebuilt
        assert warm.get("fix:p") is closure.root
        assert warm.hits == 1

    def test_miss_counts(self, tmp_path):
        cache = SnapshotCache(tmp_path, "k" * 32)
        assert cache.get("fix:ghost") is None
        assert cache.misses == 1

    def test_corrupted_file_rebuilt_never_trusted(self, tmp_path):
        key = cache_key(DEFS, CFG)
        cache = SnapshotCache(tmp_path, key)
        cache.put("fix:p", _closure().root)
        cache.save()
        cache.path.write_text("{not json", encoding="utf-8")
        reopened = SnapshotCache(tmp_path, key)
        assert reopened.rebuilt and not reopened.loaded
        assert reopened.get("fix:p") is None  # nothing salvaged

    def test_truncated_payload_rebuilt(self, tmp_path):
        key = cache_key(DEFS, CFG)
        cache = SnapshotCache(tmp_path, key)
        cache.put("fix:p", _closure().root)
        cache.save()
        data = json.loads(cache.path.read_text(encoding="utf-8"))
        arity = unpack_ints(data["arity"])
        data["arity"] = pack_ints(arity[:1])
        cache.path.write_text(json.dumps(data), encoding="utf-8")
        reopened = SnapshotCache(tmp_path, key)
        assert reopened.rebuilt
        assert reopened.get("fix:p") is None

    def test_stale_format_version_rebuilt(self, tmp_path):
        key = cache_key(DEFS, CFG)
        cache = SnapshotCache(tmp_path, key)
        cache.put("fix:p", _closure().root)
        cache.save()
        data = json.loads(cache.path.read_text(encoding="utf-8"))
        data["format"] = FORMAT_VERSION + 1
        cache.path.write_text(json.dumps(data), encoding="utf-8")
        reopened = SnapshotCache(tmp_path, key)
        assert reopened.rebuilt
        assert reopened.get("fix:p") is None

    def test_foreign_key_rebuilt(self, tmp_path):
        key = cache_key(DEFS, CFG)
        cache = SnapshotCache(tmp_path, key)
        cache.put("fix:p", _closure().root)
        cache.save()
        # same file served for a different key: contents must be ignored
        other = "f" * 32
        cache.path.rename(tmp_path / f"snapshot-{other}.json")
        reopened = SnapshotCache(tmp_path, other)
        assert reopened.rebuilt
        assert reopened.get("fix:p") is None

    def test_unwritable_directory_degrades_silently(self, tmp_path):
        target = tmp_path / "file-not-dir"
        target.write_text("occupied", encoding="utf-8")
        cache = SnapshotCache(target / "sub", "k" * 32)
        cache.put("fix:p", _closure().root)
        cache.save()  # must not raise

    def test_clean_cache_not_rewritten(self, tmp_path):
        key = cache_key(DEFS, CFG)
        cache = SnapshotCache(tmp_path, key)
        cache.put("fix:p", _closure().root)
        cache.save()
        stamp = cache.path.stat().st_mtime_ns
        warm = SnapshotCache(tmp_path, key)
        warm.save()  # nothing dirty: no write
        assert cache.path.stat().st_mtime_ns == stamp


class TestSelfHealing:
    """PR 7 robustness: corrupt files are quarantined (kept for autopsy,
    never trusted, never fatal), writes are atomic + durable, and
    concurrent writers merge instead of clobbering."""

    def _saved_cache(self, tmp_path):
        key = cache_key(DEFS, CFG)
        cache = SnapshotCache(tmp_path, key)
        cache.put("fix:p", _closure().root)
        cache.save()
        return key, cache

    def test_corrupt_file_quarantined_not_deleted(self, tmp_path):
        key, cache = self._saved_cache(tmp_path)
        cache.path.write_text("{not json", encoding="utf-8")
        reopened = SnapshotCache(tmp_path, key)
        assert reopened.rebuilt and reopened.quarantined
        assert not cache.path.exists()  # out of the trust path…
        moved = tmp_path / "quarantine" / cache.path.name
        assert moved.exists()  # …but kept for post-mortem
        assert moved.read_text(encoding="utf-8") == "{not json"

    def test_stale_format_quarantined(self, tmp_path):
        key, cache = self._saved_cache(tmp_path)
        data = json.loads(cache.path.read_text(encoding="utf-8"))
        data["format"] = FORMAT_VERSION + 1
        cache.path.write_text(json.dumps(data), encoding="utf-8")
        reopened = SnapshotCache(tmp_path, key)
        assert reopened.quarantined
        assert (tmp_path / "quarantine" / cache.path.name).exists()

    def test_quarantined_cache_heals_on_next_save(self, tmp_path):
        key, cache = self._saved_cache(tmp_path)
        cache.path.write_text("garbage", encoding="utf-8")
        reopened = SnapshotCache(tmp_path, key)
        reopened.put("fix:p", _closure().root)
        reopened.save()
        healed = SnapshotCache(tmp_path, key)
        assert healed.loaded and not healed.rebuilt
        assert healed.get("fix:p") is _closure().root

    def test_clean_load_is_not_quarantined(self, tmp_path):
        key, _ = self._saved_cache(tmp_path)
        assert not SnapshotCache(tmp_path, key).quarantined

    def test_write_fault_before_tempfile_leaves_old_file(self, tmp_path):
        from repro.runtime import faults

        key, cache = self._saved_cache(tmp_path)
        before = cache.path.read_text(encoding="utf-8")
        cache.put("fix:q", _closure().root)
        with pytest.raises(faults.FaultInjected):
            with faults.inject(faults.FaultPlan("snapshot.write", after=1)):
                cache.save()
        assert cache.path.read_text(encoding="utf-8") == before
        assert not list(tmp_path.glob("*.tmp"))  # no litter

    def test_write_fault_between_write_and_rename_is_atomic(self, tmp_path):
        from repro.runtime import faults

        key, cache = self._saved_cache(tmp_path)
        before = cache.path.read_text(encoding="utf-8")
        cache.put("fix:q", _closure().root)
        with pytest.raises(faults.FaultInjected):
            with faults.inject(faults.FaultPlan("snapshot.write", after=2)):
                cache.save()
        # the temp file was fully written, but never renamed into place:
        # readers still see the old complete snapshot, and the temp file
        # was unlinked on the way out
        assert cache.path.read_text(encoding="utf-8") == before
        assert not list(tmp_path.glob("*.tmp"))
        assert SnapshotCache(tmp_path, key).loaded

    def test_aborted_save_stays_dirty_and_retries(self, tmp_path):
        from repro.runtime import faults

        key, cache = self._saved_cache(tmp_path)
        cache.put("fix:q", _closure().root)
        with pytest.raises(faults.FaultInjected):
            with faults.inject(faults.FaultPlan("snapshot.write", after=1)):
                cache.save()
        cache.save()  # clean retry persists everything
        warm = SnapshotCache(tmp_path, key)
        assert warm.get("fix:p") is _closure().root
        assert warm.get("fix:q") is _closure().root

    def test_concurrent_writers_merge_instead_of_clobber(self, tmp_path):
        key = cache_key(DEFS, CFG)
        first = SnapshotCache(tmp_path, key)
        second = SnapshotCache(tmp_path, key)  # opened before first saves
        first.put("fix:a", _closure().root)
        second.put("fix:b", _closure().root)
        first.save()
        second.save()  # naive write-back would drop fix:a here
        merged = SnapshotCache(tmp_path, key)
        assert merged.get("fix:a") is _closure().root
        assert merged.get("fix:b") is _closure().root

    def test_merge_skips_defective_disk_state(self, tmp_path):
        key = cache_key(DEFS, CFG)
        cache = SnapshotCache(tmp_path, key)
        cache.put("fix:p", _closure().root)
        cache.path.parent.mkdir(parents=True, exist_ok=True)
        cache.path.write_text("scribbled mid-merge", encoding="utf-8")
        cache.save()  # defective disk state contributes nothing
        warm = SnapshotCache(tmp_path, key)
        assert warm.loaded
        assert warm.get("fix:p") is _closure().root


class TestConcurrentGovernedWriters:
    """Satellite: two governed CLI invocations race on the *same*
    snapshot file (same definitions, config, bindings — different
    processes, hence disjoint ``fix:{name}@level{k}`` slots).  The
    flock + merge-on-save discipline must keep the union: a lost update
    would silently discard one client's checkpoints."""

    def test_no_lost_update_between_concurrent_clients(self, tmp_path):
        import os
        import subprocess
        import sys

        source = tmp_path / "copier.csp"
        source.write_text(
            "copier = input?x:NAT -> wire!x -> copier;\n"
            "recopier = wire?y:NAT -> output!y -> recopier;\n"
            "network = chan wire; (copier || recopier)\n"
        )
        cache_dir = tmp_path / "cache"
        env = dict(os.environ)
        import repro

        env["PYTHONPATH"] = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        procs = [
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "traces", str(source),
                    "--process", name, "--depth", "3",
                    "--deadline", "60",  # governed → checkpoint-only slots
                    "--cache-dir", str(cache_dir),
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            for name in ("copier", "recopier")
        ]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        snapshots = list(cache_dir.glob("snapshot-*.json"))
        assert len(snapshots) == 1  # same key: both raced on this file
        roots = json.loads(snapshots[0].read_text(encoding="utf-8"))["roots"]
        slots = set(roots)
        assert any(
            slot.startswith("fix:denotational:copier@") for slot in slots
        )
        assert any(
            slot.startswith("fix:denotational:recopier@") for slot in slots
        )

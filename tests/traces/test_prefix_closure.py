"""Unit tests for finite prefix closures (paper §3.1)."""

import pytest

from repro.traces.events import EMPTY_TRACE, channel, event, trace
from repro.traces.prefix_closure import (
    STOP_CLOSURE,
    FiniteClosure,
    closure_union,
)

AB = trace(("a", 1), ("b", 2))
ABC = trace(("a", 1), ("b", 2), ("c", 3))


class TestConstruction:
    def test_from_traces_closes_under_prefix(self):
        p = FiniteClosure.from_traces([ABC])
        assert EMPTY_TRACE in p
        assert trace(("a", 1)) in p
        assert AB in p
        assert ABC in p
        assert len(p) == 4

    def test_constructor_verifies_empty_trace(self):
        with pytest.raises(ValueError, match="empty trace"):
            FiniteClosure([AB])

    def test_constructor_verifies_closure(self):
        with pytest.raises(ValueError, match="prefix-closed"):
            FiniteClosure([EMPTY_TRACE, AB])

    def test_constructor_accepts_valid_closure(self):
        p = FiniteClosure([EMPTY_TRACE, trace(("a", 1)), AB])
        assert len(p) == 3

    def test_stop_is_singleton_empty(self):
        assert STOP_CLOSURE.traces == {EMPTY_TRACE}
        assert FiniteClosure.stop() is STOP_CLOSURE


class TestQueries:
    def test_depth(self):
        assert STOP_CLOSURE.depth() == 0
        assert FiniteClosure.from_traces([ABC]).depth() == 3

    def test_channels(self):
        p = FiniteClosure.from_traces([AB])
        assert p.channels() == {channel("a"), channel("b")}

    def test_iteration_is_deterministic_shortest_first(self):
        p = FiniteClosure.from_traces([AB, trace(("z", 0))])
        listed = list(p)
        assert listed[0] == EMPTY_TRACE
        assert listed == list(p)
        assert [len(s) for s in listed] == sorted(len(s) for s in listed)

    def test_maximal_traces(self):
        p = FiniteClosure.from_traces([AB, trace(("a", 1), ("c", 3))])
        assert p.maximal_traces() == {AB, trace(("a", 1), ("c", 3))}


class TestTrieView:
    def test_initials(self):
        p = FiniteClosure.from_traces([AB, trace(("z", 0))])
        assert p.initials() == {event("a", 1), event("z", 0)}

    def test_initials_after(self):
        p = FiniteClosure.from_traces([ABC])
        assert p.initials_after(AB) == {event("c", 3)}
        assert p.initials_after(ABC) == frozenset()

    def test_initials_after_absent_trace_is_empty(self):
        p = FiniteClosure.from_traces([AB])
        assert p.initials_after(trace(("q", 9))) == frozenset()


class TestLattice:
    def test_union(self):
        p = FiniteClosure.from_traces([trace(("a", 1))])
        q = FiniteClosure.from_traces([trace(("b", 2))])
        u = p.union(q)
        assert trace(("a", 1)) in u and trace(("b", 2)) in u
        assert u.is_prefix_closed()

    def test_intersection(self):
        p = FiniteClosure.from_traces([AB])
        q = FiniteClosure.from_traces([trace(("a", 1), ("z", 9))])
        i = p.intersection(q)
        assert i.traces == {EMPTY_TRACE, trace(("a", 1))}
        assert i.is_prefix_closed()

    def test_stop_is_bottom(self):
        # §3.1: {⟨⟩} ⊆ P ⊆ A* for every prefix closure P
        p = FiniteClosure.from_traces([ABC])
        assert STOP_CLOSURE.issubset(p)
        assert not p.issubset(STOP_CLOSURE)

    def test_truncate(self):
        p = FiniteClosure.from_traces([ABC])
        t = p.truncate(2)
        assert t.depth() == 2
        assert AB in t and ABC not in t
        assert t.is_prefix_closed()

    def test_closure_union_many(self):
        parts = [FiniteClosure.from_traces([trace(("a", i))]) for i in range(5)]
        u = closure_union(parts)
        assert len(u) == 6  # empty + five singletons
        assert u.is_prefix_closed()

    def test_closure_union_empty_is_stop(self):
        assert closure_union([]) == STOP_CLOSURE


class TestValueSemantics:
    def test_equality_and_hash(self):
        p = FiniteClosure.from_traces([AB])
        q = FiniteClosure.from_traces([AB])
        assert p == q and hash(p) == hash(q)

    def test_repr_small_lists_traces(self):
        assert "a.1" in repr(FiniteClosure.from_traces([trace(("a", 1))]))

    def test_repr_large_summarises(self):
        p = FiniteClosure.from_traces(
            [trace(*((("c", i), ("d", i)))) for i in range(10)]
        )
        assert "traces" in repr(p)

"""Unit tests for the sub-level delta primitives of the trie kernel.

``delta_depth`` is the engine's horizon oracle: the shallowest depth at
which one chain level grew over its predecessor.  ``delta_nodes`` is the
frontier enumeration behind the ``repro stats --explain-plan`` counters.
Both exploit hash-consing — pointer-identical subtrees are pruned
without descent — so the tests below exercise sharing explicitly.
"""

from repro.traces.events import trace
from repro.traces.operations import delta_depth as closure_delta_depth
from repro.traces.operations import delta_frontier
from repro.traces.prefix_closure import FiniteClosure
from repro.traces.stats import KERNEL_STATS, reset_stats
from repro.traces.trie import (
    delta_depth,
    delta_nodes,
    node_from_traces,
    truncate_node,
)

A = trace(("a", 1))
AB = trace(("a", 1), ("b", 2))
ABC = trace(("a", 1), ("b", 2), ("c", 3))
XY = trace(("x", 1), ("y", 2))


class TestDeltaDepth:
    def test_identical_roots_yield_none(self):
        root = node_from_traces([AB])
        assert delta_depth(root, root) is None

    def test_subset_only_growth_is_none(self):
        # new ⊆ old adds nothing; in monotone chains this means
        # stabilisation even when the roots differ as objects.
        old = node_from_traces([AB, XY])
        new = node_from_traces([AB])
        assert delta_depth(old, new) is None

    def test_depth_of_an_extended_trace(self):
        old = node_from_traces([AB])
        new = node_from_traces([ABC])
        assert delta_depth(old, new) == 3

    def test_depth_of_a_new_branch_at_the_root(self):
        old = node_from_traces([AB])
        new = node_from_traces([AB, XY])
        assert delta_depth(old, new) == 1

    def test_truncation_identity_below_the_delta_depth(self):
        # The soundness bar for horizon skips: every truncation strictly
        # below delta_depth is pointer-identical between old and new.
        old = node_from_traces([AB])
        new = node_from_traces([ABC])
        d = delta_depth(old, new)
        for k in range(d):
            assert truncate_node(new, k) is truncate_node(old, k)
        assert truncate_node(new, d) is not truncate_node(old, d)

    def test_cap_returns_conservative_zero(self):
        old = node_from_traces([AB])
        new = node_from_traces([ABC, XY])
        assert delta_depth(old, new, cap=0) == 0

    def test_capped_result_is_not_memoised(self):
        # A capped walk reflects the call's budget, not the pair; a later
        # generous query must still get the precise answer.
        old = node_from_traces([trace(("p", 1), ("q", 2))])
        new = node_from_traces(
            [trace(("p", 1), ("q", 2), ("r", 3)), trace(("s", 4))]
        )
        assert delta_depth(old, new, cap=0) == 0
        assert delta_depth(old, new) == 1

    def test_repeat_queries_hit_the_memo(self):
        old = node_from_traces([trace(("m", 1))])
        new = node_from_traces([trace(("m", 1), ("m", 2))])
        reset_stats()
        first = delta_depth(old, new)
        walks_after_first = KERNEL_STATS.delta_queries
        second = delta_depth(old, new)
        assert first == second == 2
        # The memo absorbs the second call entirely: no new walk.
        assert KERNEL_STATS.delta_queries == walks_after_first
        assert KERNEL_STATS.memo("delta-depth").hits >= 1


class TestDeltaNodes:
    def test_identical_roots_yield_empty_frontier(self):
        root = node_from_traces([AB])
        assert delta_nodes(root, root) == ()

    def test_fresh_subtrees_are_enumerated(self):
        old = node_from_traces([AB])
        new = node_from_traces([AB, XY])
        fresh = delta_nodes(old, new)
        assert fresh is not None
        ids = {id(n) for n in fresh}
        # The new root and the x/y spine are fresh; the shared a-b
        # subtree is pruned at the pointer-identity boundary.
        assert id(new) in ids
        assert id(new.children[AB[0]]) not in ids

    def test_cap_returns_none(self):
        old = node_from_traces([AB])
        new = node_from_traces([ABC])
        assert delta_nodes(old, new, cap=0) is None

    def test_frontier_counter_accumulates(self):
        old = node_from_traces([trace(("u", 1))])
        new = node_from_traces([trace(("u", 1), ("v", 2))])
        reset_stats()
        fresh = delta_nodes(old, new)
        assert KERNEL_STATS.frontier_nodes == len(fresh) > 0


class TestClosureWrappers:
    def test_closure_delta_depth_matches_node_level(self):
        old = FiniteClosure.from_traces([AB])
        new = FiniteClosure.from_traces([ABC])
        assert closure_delta_depth(old, new) == delta_depth(old.root, new.root)

    def test_closure_frontier_matches_node_level(self):
        old = FiniteClosure.from_traces([AB])
        new = FiniteClosure.from_traces([AB, XY])
        assert delta_frontier(old, new) == delta_nodes(old.root, new.root)

    def test_stats_snapshot_exposes_delta_section(self):
        reset_stats()
        old = FiniteClosure.from_traces([A])
        new = FiniteClosure.from_traces([AB])
        closure_delta_depth(old, new)
        snap = KERNEL_STATS.snapshot()
        assert snap["delta"]["queries"] >= 1

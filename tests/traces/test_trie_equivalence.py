"""Property tests: trie operators ≡ flat-set reference operators.

The hash-consed kernel (:mod:`repro.traces.operations`) and the
pre-kernel flat-set implementations (:mod:`repro.traces._reference`)
must compute the same trace sets on arbitrary closures — the same
cross-check discipline E1/E7 apply between the denotational and
operational engines, applied one layer down.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces import _reference as ref
from repro.traces import operations as ops
from repro.traces.events import Channel, channel, event
from repro.traces.prefix_closure import FiniteClosure

CHANNELS = ("a", "b", "wire")
VALUES = (0, 1)

events = st.builds(
    event, st.sampled_from(CHANNELS), st.sampled_from(VALUES)
)
traces = st.lists(events, max_size=5).map(tuple)
closures = st.lists(traces, max_size=8).map(FiniteClosure.from_traces)
channels = st.lists(
    st.sampled_from([channel(c) for c in CHANNELS]), max_size=3
).map(frozenset)


def same(p: FiniteClosure, q: FiniteClosure) -> bool:
    """Equality both ways: pointer equality of roots AND flat-set
    equality, so a kernel bug cannot hide behind a broken interner."""
    return p == q and p.traces == q.traces


@given(events, closures)
def test_prefix_agrees(a, p):
    assert same(ops.prefix(a, p), ref.prefix(a, p))


@given(closures, events)
def test_after_event_agrees(p, a):
    assert same(ops.after_event(p, a), ref.after_event(p, a))


@given(closures, closures)
def test_union_agrees(p, q):
    assert same(ops.union(p, q), ref.union(p, q))


@given(closures, closures)
def test_intersection_agrees(p, q):
    assert same(ops.intersection(p, q), ref.intersection(p, q))


@given(closures, st.integers(min_value=0, max_value=6))
def test_truncate_agrees(p, depth):
    assert same(ops.truncate(p, depth), ref.truncate(p, depth))


@given(closures, channels)
def test_hide_agrees(p, hidden):
    assert same(ops.hide(p, hidden), ref.hide(p, hidden))


@settings(max_examples=50, deadline=None)
@given(closures, st.sampled_from(CHANNELS), st.integers(min_value=0, max_value=4))
def test_pad_agrees(p, pad_chan, depth):
    # Pad on a channel outside the closure's alphabet (the paper's use)
    # *and* potentially inside it (both code paths merge states).
    pad_events = [event(pad_chan, v) for v in VALUES]
    got = ops.pad(p, [channel(pad_chan)], pad_events, depth)
    want = ref.pad(p, [channel(pad_chan)], pad_events, depth)
    assert same(got, want)


@settings(max_examples=50, deadline=None)
@given(closures, closures, st.integers(min_value=1, max_value=6))
def test_parallel_agrees(p, q, depth):
    x = sorted(p.channels() | {Channel("a"), Channel("wire")})
    y = sorted(q.channels() | {Channel("b"), Channel("wire")})
    got = ops.parallel(p, x, q, y, depth=depth)
    want = ref.parallel(p, x, q, y, depth=depth)
    assert same(got, want)


@given(st.lists(closures, max_size=5))
def test_union_all_agrees(parts):
    assert same(ops.union_all(parts), ref.union_all(parts))


@given(closures)
def test_operator_results_are_prefix_closed(p):
    assert ops.hide(p, [channel("wire")]).is_prefix_closed()
    assert ops.truncate(p, 2).is_prefix_closed()


@given(closures, closures)
def test_pointer_equality_is_semantic_equality(p, q):
    # Hash-consing: two closures are == iff their roots are the same
    # object iff their flat trace sets coincide.
    assert (p == q) == (p.traces == q.traces)
    assert (p.root is q.root) == (p.traces == q.traces)


# -- arena-specific properties ----------------------------------------------
#
# The struct-of-arrays kernel must preserve the object-API contracts the
# layers above rely on: views are canonical per id (pointer identity IS
# id equality), and an operator result reached twice — or rebuilt from
# its flat trace set — is one view object.


@given(closures, closures)
def test_per_id_view_identity(p, q):
    u = ops.union(p, q)
    arena = u.root.arena
    if arena is not None:
        assert arena.view(u.root.id) is u.root
    assert ops.union(p, q).root is u.root
    # a structurally equal closure built from scratch lands on the same view
    assert FiniteClosure.from_traces(u.traces).root is u.root


@given(closures, channels)
def test_hide_lands_on_canonical_view(p, hidden):
    h = ops.hide(p, hidden)
    rebuilt = FiniteClosure.from_traces(ref.hide(p, hidden).traces)
    assert rebuilt.root is h.root


@given(closures, st.integers(min_value=0, max_value=6))
def test_view_attributes_match_reference(p, depth):
    t = ops.truncate(p, depth)
    assert t.root.count == len(t.traces)
    assert t.root.height == max((len(s) for s in t.traces), default=0)
    assert t.root.is_leaf == (t.traces == {()})

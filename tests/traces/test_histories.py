"""Unit tests for the channel-history map ch(s) (paper §3.3)."""

from repro.traces.events import channel, trace
from repro.traces.histories import ChannelHistory, ch

INPUT = channel("input")
WIRE = channel("wire")
OUTPUT = channel("output")


class TestPaperExample:
    """The worked example of §3.3."""

    S = trace(("input", 27), ("wire", 27), ("input", 0), ("wire", 0), ("input", 3))

    def test_input_history(self):
        assert ch(self.S)(INPUT) == (27, 0, 3)

    def test_wire_history(self):
        assert ch(self.S)(WIRE) == (27, 0)

    def test_other_channels_empty(self):
        assert ch(self.S)(OUTPUT) == ()
        assert ch(self.S)(channel("anything")) == ()


class TestChLaws:
    def test_ch_of_empty_trace(self):
        # ch(⟨⟩) = λc.⟨⟩
        h = ch(())
        assert h(INPUT) == ()
        assert h.channels() == frozenset()

    def test_ch_recursion_law(self):
        # ch(c.m ⌢ s) = ch(s) with m prefixed on channel c
        s = trace(("wire", 1), ("input", 2))
        full = trace(("input", 9), ("wire", 1), ("input", 2))
        assert ch(full) == ch(s).with_prefixed(INPUT, 9)

    def test_ch_respects_subscripted_channels(self):
        s = trace((channel("col", 0), 5), (channel("col", 1), 6))
        h = ch(s)
        assert h(channel("col", 0)) == (5,)
        assert h(channel("col", 1)) == (6,)

    def test_ch_restrict_commutes(self):
        # ch(s)(c) = ch(s \ C)(c) whenever c ∉ C (lemma (d) of §3.4)
        from repro.traces.events import restrict

        s = trace(("input", 1), ("wire", 1), ("input", 2))
        assert ch(restrict(s, [WIRE]))(INPUT) == ch(s)(INPUT)

    def test_total_length(self):
        s = trace(("a", 1), ("b", 2), ("a", 3))
        assert ch(s).total_length() == 3


class TestChannelHistory:
    def test_empty_sequences_are_normalised_away(self):
        h = ChannelHistory({INPUT: (), WIRE: (1,)})
        assert h.channels() == {WIRE}
        assert h(INPUT) == ()

    def test_equality_ignores_empty_entries(self):
        assert ChannelHistory({INPUT: ()}) == ChannelHistory()

    def test_hashable(self):
        assert hash(ChannelHistory({WIRE: (1,)})) == hash(ChannelHistory({WIRE: (1,)}))

    def test_with_prefixed(self):
        h = ChannelHistory({WIRE: (2,)}).with_prefixed(WIRE, 1)
        assert h(WIRE) == (1, 2)

    def test_with_prefixed_new_channel(self):
        h = ChannelHistory().with_prefixed(INPUT, 5)
        assert h(INPUT) == (5,)

    def test_restrict_away(self):
        h = ChannelHistory({WIRE: (1,), INPUT: (2,)})
        r = h.restrict_away(frozenset({WIRE}))
        assert r(WIRE) == ()
        assert r(INPUT) == (2,)

    def test_items_sorted(self):
        h = ChannelHistory({WIRE: (1,), INPUT: (2,)})
        names = [chan.name for chan, _ in h.items()]
        assert names == sorted(names)

    def test_lists_coerced_to_tuples(self):
        h = ChannelHistory({WIRE: [1, 2]})
        assert h(WIRE) == (1, 2)

    def test_repr(self):
        assert "wire" in repr(ChannelHistory({WIRE: (1,)}))

"""Unit tests for the §3.1 operators on prefix closures."""

import pytest

from repro.traces.events import EMPTY_TRACE, channel, event, trace
from repro.traces.operations import (
    after_event,
    hide,
    interleavings,
    pad,
    parallel,
    prefix,
    union_all,
)
from repro.traces.prefix_closure import STOP_CLOSURE, FiniteClosure

A = channel("a")
B = channel("b")
C = channel("c")
WIRE = channel("wire")
INPUT = channel("input")
OUTPUT = channel("output")


class TestPrefix:
    def test_prefix_of_stop(self):
        # (a → STOP) = {⟨⟩, ⟨a⟩}
        p = prefix(event("a", 1), STOP_CLOSURE)
        assert p.traces == {EMPTY_TRACE, trace(("a", 1))}

    def test_prefix_preserves_closure(self):
        p = FiniteClosure.from_traces([trace(("b", 2), ("c", 3))])
        q = prefix(event("a", 1), p)
        assert q.is_prefix_closed()
        assert trace(("a", 1), ("b", 2), ("c", 3)) in q

    def test_prefix_always_contains_empty(self):
        # §3.1 definition: (a → P) = {⟨⟩} ∪ {a⌢s | s ∈ P}
        assert EMPTY_TRACE in prefix(event("a", 1), STOP_CLOSURE)

    def test_prefix_distributes_through_union(self):
        # §3.1 theorem: (a → ∪ P_x) = ∪ (a → P_x)
        p = FiniteClosure.from_traces([trace(("b", 1))])
        q = FiniteClosure.from_traces([trace(("c", 2))])
        a = event("a", 0)
        assert prefix(a, p.union(q)) == prefix(a, p).union(prefix(a, q))


class TestAfterEvent:
    def test_after_undoes_prefix(self):
        p = FiniteClosure.from_traces([trace(("b", 2))])
        assert after_event(prefix(event("a", 1), p), event("a", 1)) == p

    def test_after_impossible_event_is_stop(self):
        p = FiniteClosure.from_traces([trace(("b", 2))])
        assert after_event(p, event("z", 0)) == STOP_CLOSURE


class TestHide:
    def test_hide_removes_channel_events(self):
        p = FiniteClosure.from_traces([trace(("input", 1), ("wire", 1), ("output", 1))])
        h = hide(p, [WIRE])
        assert trace(("input", 1), ("output", 1)) in h
        assert all(e.channel != WIRE for s in h.traces for e in s)

    def test_hide_preserves_closure(self):
        p = FiniteClosure.from_traces(
            [trace(("wire", 1), ("a", 1)), trace(("a", 2), ("wire", 2))]
        )
        assert hide(p, [WIRE]).is_prefix_closed()

    def test_hide_everything_gives_stop(self):
        p = FiniteClosure.from_traces([trace(("a", 1), ("a", 2))])
        assert hide(p, [A]) == STOP_CLOSURE

    def test_hide_nothing_is_identity(self):
        p = FiniteClosure.from_traces([trace(("a", 1))])
        assert hide(p, []) == p

    def test_hide_distributes_through_union(self):
        p = FiniteClosure.from_traces([trace(("a", 1), ("w", 1))])
        q = FiniteClosure.from_traces([trace(("w", 2), ("b", 2))])
        w = [channel("w")]
        assert hide(p.union(q), w) == hide(p, w).union(hide(q, w))


class TestPad:
    def test_pad_interleaves_arbitrary_events(self):
        p = FiniteClosure.from_traces([trace(("a", 1))])
        w = event("w", 0)
        padded = pad(p, [channel("w")], [w], depth=2)
        assert trace(("a", 1)) in padded
        assert trace(("w", 0), ("a", 1)) in padded
        assert trace(("a", 1), ("w", 0)) in padded
        assert trace(("w", 0), ("w", 0)) in padded

    def test_pad_respects_depth(self):
        padded = pad(STOP_CLOSURE, [A], [event("a", 0)], depth=3)
        assert padded.depth() == 3

    def test_pad_rejects_event_off_padding_channels(self):
        with pytest.raises(ValueError):
            pad(STOP_CLOSURE, [A], [event("b", 0)], depth=1)

    def test_pad_preserves_closure(self):
        p = FiniteClosure.from_traces([trace(("a", 1), ("a", 2))])
        assert pad(p, [B], [event("b", 0)], depth=4).is_prefix_closed()

    def test_pad_no_channels_truncates_only(self):
        p = FiniteClosure.from_traces([trace(("a", 1), ("a", 2))])
        assert pad(p, [], [], depth=5) == p


class TestParallel:
    def test_paper_copier_recopier_network(self):
        # input → copier → wire → recopier → output (§1.2 example)
        copier = FiniteClosure.from_traces([trace(("input", 1), ("wire", 1))])
        recopier = FiniteClosure.from_traces([trace(("wire", 1), ("output", 1))])
        net = parallel(copier, [INPUT, WIRE], recopier, [WIRE, OUTPUT])
        assert trace(("input", 1), ("wire", 1), ("output", 1)) in net

    def test_shared_channel_requires_both(self):
        p = FiniteClosure.from_traces([trace(("wire", 1))])
        q = FiniteClosure.from_traces([trace(("wire", 2))])  # disagrees on value
        net = parallel(p, [WIRE], q, [WIRE])
        assert net == STOP_CLOSURE

    def test_shared_channel_synchronises_on_agreement(self):
        p = FiniteClosure.from_traces([trace(("wire", 1)), trace(("wire", 2))])
        q = FiniteClosure.from_traces([trace(("wire", 2))])
        net = parallel(p, [WIRE], q, [WIRE])
        assert net.traces == {EMPTY_TRACE, trace(("wire", 2))}

    def test_private_channels_interleave(self):
        p = FiniteClosure.from_traces([trace(("a", 1))])
        q = FiniteClosure.from_traces([trace(("b", 2))])
        net = parallel(p, [A], q, [B])
        assert trace(("a", 1), ("b", 2)) in net
        assert trace(("b", 2), ("a", 1)) in net

    def test_projections_of_product_lie_in_components(self):
        p = FiniteClosure.from_traces([trace(("a", 1), ("wire", 5))])
        q = FiniteClosure.from_traces([trace(("wire", 5), ("b", 2))])
        net = parallel(p, [A, WIRE], q, [WIRE, B])
        from repro.traces.events import restrict

        for s in net.traces:
            assert restrict(s, [B]) in p  # s \ (Y−X) ∈ P
            assert restrict(s, [A]) in q  # s \ (X−Y) ∈ Q

    def test_rejects_uncovered_channels(self):
        p = FiniteClosure.from_traces([trace(("a", 1))])
        with pytest.raises(ValueError, match="outside X"):
            parallel(p, [B], STOP_CLOSURE, [B])
        with pytest.raises(ValueError, match="outside Y"):
            parallel(STOP_CLOSURE, [B], p, [B])

    def test_stop_blocks_partner_on_shared_channels(self):
        p = FiniteClosure.from_traces([trace(("wire", 1))])
        net = parallel(p, [WIRE], STOP_CLOSURE, [WIRE])
        assert net == STOP_CLOSURE

    def test_stop_with_disjoint_alphabet_is_identity(self):
        p = FiniteClosure.from_traces([trace(("a", 1))])
        net = parallel(p, [A], STOP_CLOSURE, [B])
        assert net == p

    def test_depth_bound(self):
        p = FiniteClosure.from_traces([trace(("a", 1), ("a", 2), ("a", 3))])
        net = parallel(p, [A], STOP_CLOSURE, [B], depth=2)
        assert net.depth() == 2

    def test_parallel_equals_padded_intersection_on_small_instance(self):
        # The definitional form: P ‖ Q = (P ⇑ (Y−X)) ∩ (Q ⇑ (X−Y))
        p = FiniteClosure.from_traces([trace(("a", 1), ("wire", 7))])
        q = FiniteClosure.from_traces([trace(("wire", 7), ("b", 2))])
        x, y = [A, WIRE], [WIRE, B]
        depth = 4
        merged = parallel(p, x, q, y, depth=depth)
        padded_p = pad(p, [B], [event("b", 2)], depth=depth)
        padded_q = pad(q, [A], [event("a", 1)], depth=depth)
        assert merged == padded_p.intersection(padded_q)

    def test_parallel_is_commutative_up_to_trace_set(self):
        p = FiniteClosure.from_traces([trace(("a", 1), ("wire", 7))])
        q = FiniteClosure.from_traces([trace(("wire", 7), ("b", 2))])
        assert parallel(p, [A, WIRE], q, [WIRE, B], depth=4) == parallel(
            q, [WIRE, B], p, [A, WIRE], depth=4
        )


class TestInterleavings:
    def test_counts_binomial(self):
        s = trace(("a", 1), ("a", 2))
        t = trace(("b", 1), ("b", 2))
        assert len(set(interleavings(s, t))) == 6  # C(4,2)

    def test_empty_cases(self):
        s = trace(("a", 1))
        assert list(interleavings(s, EMPTY_TRACE)) == [s]
        assert list(interleavings(EMPTY_TRACE, s)) == [s]

    def test_preserves_relative_order(self):
        s = trace(("a", 1), ("a", 2))
        t = trace(("b", 9))
        for merged in interleavings(s, t):
            filtered = tuple(e for e in merged if e.channel == A)
            assert filtered == s


class TestUnionAll:
    def test_union_all(self):
        parts = [FiniteClosure.from_traces([trace(("a", i))]) for i in range(3)]
        u = union_all(parts)
        assert len(u) == 4

    def test_union_all_empty_is_stop(self):
        assert union_all([]) == STOP_CLOSURE

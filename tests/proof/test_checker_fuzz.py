"""Adversarial tests: the checker rejects every tampered proof.

A proof checker earns its keep by what it *rejects*.  Starting from the
valid Table 1 proof, we mutate single nodes — conclusions, rule names,
premise order, quantifier domains, instantiation terms — and assert the
checker raises on every mutant.  (A mutant that still checks would be a
soundness hole.)
"""

import pytest

from repro.assertions.parser import parse_assertion
from repro.errors import ProofError
from repro.proof.checker import ProofChecker
from repro.proof.judgments import ForAllSat, Pure, Sat
from repro.proof.proof import ProofNode
from repro.systems import protocol

CHANS = {"input", "wire", "output"}


def checker():
    return ProofChecker(protocol.definitions(), protocol.oracle())


def valid_proof():
    return protocol.table1_proof()


def rebuild(node: ProofNode, path, replace):
    """Return a copy of the tree with the node at ``path`` replaced by
    ``replace(old_node)``."""
    if not path:
        return replace(node)
    index = path[0]
    premises = list(node.premises)
    premises[index] = rebuild(premises[index], path[1:], replace)
    return ProofNode(node.rule, node.conclusion, tuple(premises), node.params)


def all_paths(node: ProofNode, prefix=()):
    yield prefix
    for i, premise in enumerate(node.premises):
        yield from all_paths(premise, prefix + (i,))


class TestTamperedConclusions:
    def test_every_sat_conclusion_is_load_bearing(self):
        """Flipping any Sat conclusion's formula must break the proof."""
        wrong = parse_assertion("output <= wire", CHANS)
        proof = valid_proof()
        rejected = 0
        for path in list(all_paths(proof)):
            target = proof
            for index in path:
                target = target.premises[index]
            if not isinstance(target.conclusion, Sat):
                continue

            def tamper(old):
                return ProofNode(
                    old.rule,
                    Sat(old.conclusion.process, wrong),
                    old.premises,
                    old.params,
                )

            mutant = rebuild(proof, path, tamper)
            with pytest.raises(ProofError):
                checker().check(mutant)
            rejected += 1
        assert rejected >= 5  # the proof has many sat nodes, all protected

    def test_root_conclusion_cannot_be_strengthened(self):
        proof = valid_proof()
        stronger = parse_assertion("f(wire) <= input & output <= input", CHANS)

        def tamper(old):
            from repro.process.ast import Name

            return ProofNode(old.rule, Sat(Name("sender"), stronger), old.premises, old.params)

        with pytest.raises(ProofError):
            checker().check(rebuild(proof, (), tamper))


class TestTamperedStructure:
    def test_rule_rename_rejected(self):
        proof = valid_proof()

        def tamper(old):
            return ProofNode("conjunction", old.conclusion, old.premises, old.params)

        with pytest.raises(ProofError):
            checker().check(rebuild(proof, (), tamper))

    def test_dropping_a_premise_rejected(self):
        proof = valid_proof()

        def tamper(old):
            return ProofNode(old.rule, old.conclusion, old.premises[:-1], old.params)

        with pytest.raises(ProofError):
            checker().check(rebuild(proof, (), tamper))

    def test_swapping_recursion_premises_rejected(self):
        proof = valid_proof()
        reordered = tuple(reversed(proof.premises))
        mutant = ProofNode(proof.rule, proof.conclusion, reordered, proof.params)
        with pytest.raises(ProofError):
            checker().check(mutant)

    def test_unlicensed_assumption_rejected(self):
        # replace an oracle leaf with a bald assumption of the same fact
        proof = valid_proof()
        found = []

        for path in all_paths(proof):
            target = proof
            for index in path:
                target = target.premises[index]
            if target.rule == "oracle":
                found.append(path)
        assert found

        def tamper(old):
            return ProofNode("assumption", old.conclusion)

        mutant = rebuild(proof, found[0], tamper)
        with pytest.raises(ProofError):
            checker().check(mutant)

    def test_smuggled_oracle_fact_rejected(self):
        # an oracle leaf claiming something false
        proof = valid_proof()
        lie = Pure(parse_assertion("input <= wire", CHANS))

        for path in all_paths(proof):
            target = proof
            for index in path:
                target = target.premises[index]
            if target.rule == "oracle":
                def tamper(old):
                    return ProofNode("oracle", lie)

                mutant = rebuild(proof, path, tamper)
                with pytest.raises(ProofError):
                    checker().check(mutant)
                break


class TestTamperedQuantifiers:
    def test_widened_eigenvariable_domain_rejected(self):
        # generalize over NAT instead of {ACK}: the oracle must refute the
        # consequence step for non-ACK values
        from repro.values.expressions import NatSet

        proof = valid_proof()
        mutated = []

        def widen(node: ProofNode) -> ProofNode:
            premises = tuple(widen(p) for p in node.premises)
            if (
                node.rule == "generalize"
                and isinstance(node.conclusion, ForAllSat)
                and repr(node.conclusion.domain) == "{'ACK'}"
            ):
                mutated.append(True)
                inner = node.premises[0]
                widened_premises = tuple(widen(p) for p in node.premises)
                return ProofNode(
                    "generalize",
                    ForAllSat(node.conclusion.variable, NatSet(), node.conclusion.inner),
                    widened_premises,
                    node.params,
                )
            return ProofNode(node.rule, node.conclusion, premises, node.params)

        mutant = widen(proof)
        assert mutated
        with pytest.raises(ProofError):
            checker().check(mutant)

    def test_elim_outside_domain_rejected(self):
        from repro.assertions.builders import const_
        from repro.proof.rules import assume, forall_sat_elim, recursion_goal_with_defs

        defs = protocol.definitions()
        hyp = recursion_goal_with_defs(
            "q", ("x", protocol.specifications()["q"]), defs
        )
        node = forall_sat_elim(assume(hyp), const_("NACK"))  # NACK ∉ M
        with pytest.raises(ProofError):
            checker().check(node, assumptions=(hyp,))

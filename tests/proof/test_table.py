"""Tests for the Table-1-style proof renderer."""

from repro.proof.table import proof_table, render_table
from repro.systems import protocol


class TestProofTable:
    def test_premises_precede_conclusions(self):
        lines = proof_table(protocol.table1_proof())
        by_number = {line.number: line for line in lines}
        for line in lines:
            for token in line.justification.split():
                if token.startswith("(") and token.rstrip(",").endswith(")"):
                    ref = int(token.strip("(),"))
                    assert ref < line.number

    def test_last_line_is_the_theorem(self):
        lines = proof_table(protocol.table1_proof())
        assert repr(lines[-1].judgment) == "sender sat f(wire) <= input"
        assert lines[-1].justification.startswith("recursion")

    def test_numbering_is_dense_from_one(self):
        lines = proof_table(protocol.table1_proof())
        assert [line.number for line in lines] == list(range(1, len(lines) + 1))

    def test_repeated_assumptions_collapse(self):
        # Table 1 cites assumption (2) three times; one line, three refs.
        lines = proof_table(protocol.table1_proof())
        assumption_lines = [
            line for line in lines if line.justification == "assumption"
        ]
        judgments = [repr(line.judgment) for line in assumption_lines]
        assert len(judgments) == len(set(judgments))

    def test_render_is_aligned_and_complete(self):
        text = render_table(protocol.table1_proof())
        rows = text.splitlines()
        assert rows[0].startswith("(1)")
        assert all("(" in row for row in rows)
        assert "sender sat f(wire) <= input" in rows[-1]

    def test_matches_paper_line_count_scale(self):
        # Table 1 has 21 numbered lines; our table (with the recursion
        # wrapper and explicit ∀-intro/empty lines) lands in the same
        # range — the same proof at the same granularity.
        lines = proof_table(protocol.table1_proof())
        assert 18 <= len(lines) <= 26

"""Unit tests for proof search (and the paper's proofs end to end)."""

import pytest

from repro.assertions.parser import parse_assertion
from repro.assertions.sequences import cancel_protocol
from repro.process.ast import Name
from repro.process.parser import parse_definitions, parse_process
from repro.proof.checker import ProofChecker
from repro.proof.judgments import ForAllSat, Sat
from repro.proof.oracle import Oracle, OracleConfig
from repro.proof.tactics import SatProver, TacticError
from repro.values.domains import FiniteDomain
from repro.values.environment import Environment

PROTOCOL_DEFS = parse_definitions(
    "sender = input?y:M -> q[y];"
    "q[x:M] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x]);"
    "receiver = wire?z:M -> (wire!ACK -> output!z -> receiver"
    "                        | wire!NACK -> receiver);"
    "protocol = chan wire; (sender || receiver)"
)
PROTOCOL_ENV = Environment().bind("M", FiniteDomain({0, 1})).bind("f", cancel_protocol)
CHANS = {"input", "wire", "output"}


def protocol_prover():
    oracle = Oracle(PROTOCOL_ENV, OracleConfig())
    invariants = {
        "sender": parse_assertion("f(wire) <= input", CHANS),
        "q": ("x", parse_assertion("f(wire) <= x ^ input", CHANS)),
        "receiver": parse_assertion("output <= f(wire)", CHANS),
        "protocol": parse_assertion("output <= input", CHANS),
    }
    return SatProver(PROTOCOL_DEFS, oracle, invariants)


COPIER_DEFS = parse_definitions(
    "copier = input?x:NAT -> wire!x -> copier;"
    "recopier = wire?y:NAT -> output!y -> recopier;"
    "network = chan wire; (copier || recopier)"
)


def copier_prover():
    invariants = {
        "copier": parse_assertion("wire <= input", CHANS),
        "recopier": parse_assertion("output <= wire", CHANS),
        "network": parse_assertion("output <= input", CHANS),
    }
    return SatProver(COPIER_DEFS, Oracle(Environment()), invariants)


class TestCopierProofs:
    """The running example of §2: copier sat wire ≤ input and friends."""

    def test_copier_invariant(self):
        prover = copier_prover()
        proof = prover.prove_name("copier")
        report = ProofChecker(COPIER_DEFS, prover.oracle).check(proof)
        assert report.conclusion == Sat(
            Name("copier"), parse_assertion("wire <= input", CHANS)
        )

    def test_network_end_to_end(self):
        # the §2.1 rule-8/9 worked example: output ≤ input for the hidden net
        prover = copier_prover()
        proof = prover.prove_name("network")
        report = ProofChecker(COPIER_DEFS, prover.oracle).check(proof)
        assert "chan" in report.rules_used
        assert "parallelism" in report.rules_used
        assert "consequence" in report.rules_used

    def test_structural_goal_without_name(self):
        prover = copier_prover()
        process = parse_process("wire!3 -> STOP")
        formula = parse_assertion("wire <= <3>", CHANS)
        proof, report = prover.prove_checked(process, formula)
        assert report.conclusion == Sat(process, formula)


class TestTable1:
    """Experiment E3: the sender lemma of Table 1, machine-checked."""

    def test_sender_lemma(self):
        prover = protocol_prover()
        proof = prover.prove_name("sender")
        report = ProofChecker(PROTOCOL_DEFS, prover.oracle).check(proof)
        assert report.conclusion == Sat(
            Name("sender"), parse_assertion("f(wire) <= input", CHANS)
        )
        # The proof uses exactly the rule repertoire of Table 1.
        used = set(report.rules_used)
        assert {"recursion", "input", "output", "alternative", "consequence"} <= used

    def test_q_lemma_is_proved_inside_the_same_recursion(self):
        prover = protocol_prover()
        proof = prover.prove_name("q")
        assert isinstance(proof.conclusion, ForAllSat)
        ProofChecker(PROTOCOL_DEFS, prover.oracle).check(proof)

    def test_receiver_exercise(self):
        # §2.2(2), "left as an exercise" — experiment E4
        prover = protocol_prover()
        proof = prover.prove_name("receiver")
        report = ProofChecker(PROTOCOL_DEFS, prover.oracle).check(proof)
        assert report.conclusion == Sat(
            Name("receiver"), parse_assertion("output <= f(wire)", CHANS)
        )

    def test_protocol_theorem(self):
        # §2.2(3): protocol sat output ≤ input — experiment E5
        prover = protocol_prover()
        proof = prover.prove_name("protocol")
        report = ProofChecker(PROTOCOL_DEFS, prover.oracle).check(proof)
        assert report.conclusion == Sat(
            Name("protocol"), parse_assertion("output <= input", CHANS)
        )
        used = set(report.rules_used)
        assert {"chan", "parallelism", "consequence", "recursion"} <= used


class TestFailures:
    def test_unannotated_name_fails(self):
        prover = SatProver(COPIER_DEFS, Oracle(Environment()), {})
        with pytest.raises(TacticError, match="no invariant"):
            prover.prove(Name("copier"), parse_assertion("wire <= input", CHANS))

    def test_false_invariant_refuted_during_search(self):
        prover = SatProver(
            COPIER_DEFS,
            Oracle(Environment()),
            {"copier": parse_assertion("input <= wire", CHANS)},
        )
        with pytest.raises(TacticError, match="refuted"):
            prover.prove_name("copier")

    def test_parallel_without_annotations_fails_helpfully(self):
        prover = SatProver(COPIER_DEFS, Oracle(Environment()), {})
        process = parse_process("copier || recopier")
        with pytest.raises(TacticError):
            prover.prove(process, parse_assertion("output <= input", CHANS))

    def test_prove_name_requires_annotation(self):
        prover = SatProver(COPIER_DEFS, Oracle(Environment()), {})
        with pytest.raises(TacticError):
            prover.prove_name("copier")


class TestProofObjects:
    def test_proof_statistics(self):
        prover = copier_prover()
        proof = prover.prove_name("copier")
        assert proof.size() > 5
        assert proof.depth() > 2
        assert sum(proof.rules_used().values()) == proof.size()
        assert all(n.rule == "oracle" for n in proof.oracle_obligations())

    def test_pretty_rendering(self):
        prover = copier_prover()
        proof = prover.prove_name("copier")
        text = proof.pretty()
        assert "[recursion]" in text
        assert "copier" in text

    def test_report_summary(self):
        prover = copier_prover()
        _, report = prover.prove_checked(
            parse_process("STOP"), parse_assertion("<> <= <>", set())
        )
        assert "checked" in report.summary()

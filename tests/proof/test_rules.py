"""Unit tests for the §2.1 inference rules: each rule accepts its intended
instances and rejects malformed ones."""

import pytest

from repro.assertions.builders import and_, var_
from repro.assertions.parser import parse_assertion
from repro.errors import ProofError, RuleApplicationError, SideConditionError
from repro.process.ast import STOP, Choice, Name
from repro.process.parser import parse_definitions, parse_process
from repro.proof.checker import ProofChecker
from repro.proof.judgments import ForAllSat, Pure, Sat
from repro.proof.oracle import Oracle
from repro.proof.proof import ProofNode
from repro.proof.rules import (
    alternative,
    assume,
    chan_rule,
    conjunction,
    consequence,
    emptiness,
    forall_sat_elim,
    generalize,
    input_rule,
    oracle_leaf,
    output_rule,
    parallelism,
    triviality,
)
from repro.values.environment import Environment
from repro.values.expressions import NatSet, SetLiteral, const

CHANS = {"a", "b", "wire", "input", "output"}
DEFS = parse_definitions(
    "copier = input?x:NAT -> wire!x -> copier;"
    "recopier = wire?y:NAT -> output!y -> recopier"
)


def checker():
    return ProofChecker(DEFS, Oracle(Environment()))


def check(node, assumptions=()):
    return checker().check(node, assumptions)


def R(text, chans=CHANS):
    return parse_assertion(text, chans)


class TestLeaves:
    def test_assumption_licensed(self):
        j = Sat(STOP, R("wire <= input"))
        check(assume(j), assumptions=(j,))

    def test_assumption_unlicensed_rejected(self):
        j = Sat(STOP, R("wire <= input"))
        with pytest.raises(RuleApplicationError, match="not in the context"):
            check(assume(j))

    def test_oracle_leaf_valid(self):
        report = check(oracle_leaf(R("wire <= wire")))
        assert len(report.discharges) == 1

    def test_oracle_leaf_refuted(self):
        with pytest.raises(ProofError):
            check(oracle_leaf(R("input <= wire")))


class TestTriviality:
    def test_valid(self):
        node = triviality(Name("copier"), oracle_leaf(R("wire <= wire")))
        check(node)

    def test_assumed_pure_with_channels_rejected(self):
        pure = Pure(R("wire <= wire"))
        node = triviality(Name("copier"), assume(pure))
        with pytest.raises(SideConditionError, match="channel"):
            check(node, assumptions=(pure,))

    def test_assumed_pure_without_channels_ok(self):
        pure = Pure(R("x <= y", set()))
        node = triviality(Name("copier"), assume(pure))
        check(node, assumptions=(pure,))


class TestConsequence:
    def test_paper_example(self):
        # copier sat wire ≤ input, (wire ≤ input ⇒ x⌢wire ≤ x⌢input)
        # ⊢ copier sat x⌢wire ≤ x⌢input
        premise = Sat(Name("copier"), R("wire <= input"))
        node = consequence(
            assume(premise),
            oracle_leaf(R("wire <= input => x ^ wire <= x ^ input")),
        )
        assert node.conclusion == Sat(Name("copier"), R("x ^ wire <= x ^ input"))
        check(node, assumptions=(premise,))

    def test_non_implication_rejected(self):
        premise = Sat(Name("copier"), R("wire <= input"))
        with pytest.raises(RuleApplicationError, match="implication"):
            consequence(assume(premise), oracle_leaf(R("wire <= wire")))

    def test_antecedent_mismatch_rejected(self):
        premise = Sat(Name("copier"), R("wire <= input"))
        bad = consequence(
            assume(premise), oracle_leaf(R("output <= input => wire <= wire"))
        )
        # builder can't see it (it checks shape only at build time for the
        # implication); the checker must reject
        with pytest.raises(RuleApplicationError, match="antecedent"):
            check(bad, assumptions=(premise,))


class TestConjunctionAlternative:
    def test_conjunction(self):
        a = Sat(Name("copier"), R("wire <= input"))
        b = Sat(Name("copier"), R("#wire <= #input"))
        node = conjunction(assume(a), assume(b))
        assert node.conclusion.formula == and_(a.formula, b.formula)
        check(node, assumptions=(a, b))

    def test_conjunction_different_processes_rejected(self):
        a = Sat(Name("copier"), R("wire <= input"))
        b = Sat(Name("recopier"), R("output <= wire"))
        with pytest.raises(RuleApplicationError, match="different"):
            check(conjunction(assume(a), assume(b)), assumptions=(a, b))

    def test_alternative(self):
        p = parse_process("a!0 -> STOP")
        q = parse_process("b!1 -> STOP")
        formula = R("<> <= a")
        a = Sat(p, formula)
        b = Sat(q, formula)
        node = alternative(assume(a), assume(b))
        assert node.conclusion == Sat(Choice(p, q), formula)
        check(node, assumptions=(a, b))

    def test_alternative_formula_mismatch_rejected(self):
        a = Sat(STOP, R("wire <= input"))
        b = Sat(STOP, R("output <= wire"))
        with pytest.raises(RuleApplicationError):
            check(alternative(assume(a), assume(b)), assumptions=(a, b))


class TestEmptiness:
    def test_paper_example(self):
        # ⊢ STOP sat wire ≤ input, because ⟨⟩ ≤ ⟨⟩
        node = emptiness(R("wire <= input"), oracle_leaf(R("<> <= <>")))
        check(node)

    def test_wrong_blanking_rejected(self):
        node = emptiness(R("wire <= input"), oracle_leaf(R("wire <= wire")))
        with pytest.raises(RuleApplicationError, match="R_<>"):
            check(node)

    def test_non_stop_rejected(self):
        node = ProofNode(
            "emptiness",
            Sat(Name("copier"), R("wire <= input")),
            (oracle_leaf(R("<> <= <>")),),
        )
        with pytest.raises(RuleApplicationError, match="STOP"):
            check(node)


class TestOutputRule:
    def test_valid(self):
        # (wire!3 → STOP) sat wire ≤ ⟨3⟩
        process = parse_process("wire!3 -> STOP")
        formula = R("wire <= <3>")
        body_goal = R("3 ^ wire <= <3>")
        body = emptiness(body_goal, oracle_leaf(R("3 ^ <> <= <3>")))
        node = output_rule(process, formula, oracle_leaf(R("<> <= <3>")), body)
        check(node)

    def test_body_formula_mismatch_rejected(self):
        process = parse_process("wire!3 -> STOP")
        formula = R("wire <= <3>")
        wrong_body = emptiness(formula, oracle_leaf(R("<> <= <3>")))
        node = output_rule(process, formula, oracle_leaf(R("<> <= <3>")), wrong_body)
        with pytest.raises(RuleApplicationError, match="R\\^c"):
            check(node)


class TestInputRule:
    def test_valid(self):
        # (input?x:{0} → STOP) sat input ≤ ⟨0⟩
        process = parse_process("input?x:{0} -> STOP")
        formula = R("input <= <0>")
        inner_goal = R("v ^ input <= <0>")
        inner = emptiness(inner_goal, oracle_leaf(R("v ^ <> <= <0>")))
        forall = generalize("v", SetLiteral((const(0),)), inner)
        node = input_rule(process, formula, oracle_leaf(R("<> <= <0>")), forall)
        check(node)

    def test_non_fresh_variable_rejected(self):
        # use the formula's own variable as the eigenvariable
        process = parse_process("input?x:{0} -> STOP")
        formula = R("input <= v ^ <>")
        inner = emptiness(
            R("v ^ input <= v ^ <>"), oracle_leaf(R("v ^ <> <= v ^ <>"))
        )
        forall = generalize("v", SetLiteral((const(0),)), inner)
        node = input_rule(process, formula, oracle_leaf(R("<> <= v ^ <>")), forall)
        with pytest.raises(SideConditionError, match="free in R"):
            check(node)

    def test_wrong_domain_rejected(self):
        process = parse_process("input?x:{0} -> STOP")
        formula = R("input <= <0>")
        inner = emptiness(R("v ^ input <= <0>"), oracle_leaf(R("v ^ <> <= <0>")))
        forall = generalize("v", NatSet(), inner)
        node = input_rule(process, formula, oracle_leaf(R("<> <= <0>")), forall)
        with pytest.raises(RuleApplicationError, match="domain"):
            check(node)


class TestParallelism:
    def test_paper_example(self):
        # copier sat wire ≤ input, recopier sat output ≤ wire
        # ⊢ copier ‖ recopier sat (wire ≤ input & output ≤ wire)
        a = Sat(Name("copier"), R("wire <= input"))
        b = Sat(Name("recopier"), R("output <= wire"))
        node = parallelism(assume(a), assume(b))
        check(node, assumptions=(a, b))

    def test_side_condition_violation(self):
        # R mentions 'output', which only the right component uses
        a = Sat(Name("copier"), R("output <= input"))
        b = Sat(Name("recopier"), R("output <= wire"))
        node = parallelism(assume(a), assume(b))
        with pytest.raises(SideConditionError, match="right component"):
            check(node, assumptions=(a, b))

    def test_symmetric_side_condition(self):
        a = Sat(Name("copier"), R("wire <= input"))
        b = Sat(Name("recopier"), R("input <= wire"))
        node = parallelism(assume(a), assume(b))
        with pytest.raises(SideConditionError, match="left component"):
            check(node, assumptions=(a, b))


class TestChanRule:
    def test_paper_example(self):
        # (copier ‖ recopier) sat output ≤ input
        # ⊢ (chan wire; copier ‖ recopier) sat output ≤ input
        inner = Sat(parse_process("copier || recopier"), R("output <= input"))
        process = parse_process("chan wire; (copier || recopier)")
        node = chan_rule(assume(inner), process)
        check(node, assumptions=(inner,))

    def test_concealed_channel_in_assertion_rejected(self):
        inner = Sat(parse_process("copier || recopier"), R("wire <= input"))
        process = parse_process("chan wire; (copier || recopier)")
        node = chan_rule(assume(inner), process)
        with pytest.raises(SideConditionError, match="concealed"):
            check(node, assumptions=(inner,))


class TestGeneralizeAndElim:
    def test_generalize_eigenvariable_condition(self):
        # v free in an assumption: must be rejected
        hyp = Sat(STOP, R("wire <= v ^ <>"))
        inner = assume(hyp)
        node = generalize("v", NatSet(), inner)
        with pytest.raises(SideConditionError, match="eigenvariable"):
            check(node, assumptions=(hyp,))

    def test_elim_with_constant_in_domain(self):
        from repro.assertions.builders import const_

        hyp = ForAllSat(
            "x", SetLiteral((const(0), const(1))), Sat(STOP, R("wire <= x ^ <>"))
        )
        node = forall_sat_elim(assume(hyp), const_(1))
        assert node.conclusion == Sat(STOP, R("wire <= 1 ^ <>"))
        check(node, assumptions=(hyp,))

    def test_elim_with_constant_outside_domain_rejected(self):
        from repro.assertions.builders import const_

        hyp = ForAllSat(
            "x", SetLiteral((const(0),)), Sat(STOP, R("wire <= x ^ <>"))
        )
        node = forall_sat_elim(assume(hyp), const_(9))
        with pytest.raises(SideConditionError, match="not in"):
            check(node, assumptions=(hyp,))

    def test_elim_with_unconstrained_variable_rejected(self):
        hyp = ForAllSat("x", NatSet(), Sat(STOP, R("wire <= x ^ <>")))
        node = forall_sat_elim(assume(hyp), var_("k"))
        with pytest.raises(SideConditionError, match="eigenvariable"):
            check(node, assumptions=(hyp,))

    def test_unknown_rule_rejected(self):
        node = ProofNode("teleport", Sat(STOP, R("<> <= <>")))
        with pytest.raises(RuleApplicationError, match="unknown rule"):
            check(node)

"""Unit tests for the semantic discharge oracle."""

import pytest

from repro.assertions.parser import parse_assertion
from repro.assertions.sequences import cancel_protocol
from repro.errors import DischargeError
from repro.proof.oracle import Oracle, OracleConfig
from repro.values.domains import FiniteDomain
from repro.values.environment import Environment

CHANS = {"input", "wire", "output"}
ENV = Environment().bind("f", cancel_protocol).bind("M", FiniteDomain({0, 1}))


def oracle(**kwargs):
    return Oracle(ENV, OracleConfig(**kwargs))


class TestValidFacts:
    """Facts the paper cites as justifications."""

    def test_prefix_reflexive(self):
        # "⊢ wire ≤ wire" (triviality example)
        assert oracle().holds(parse_assertion("wire <= wire", CHANS)).ok

    def test_empty_prefix(self):
        # "⟨⟩ ≤ ⟨⟩" (emptiness example)
        assert oracle().holds(parse_assertion("<> <= <>", CHANS)).ok

    def test_cons_monotone(self):
        # wire ≤ input ⇒ x⌢wire ≤ x⌢input (consequence example)
        f = parse_assertion("wire <= input => x ^ wire <= x ^ input", CHANS)
        assert oracle().holds(f).ok

    def test_transitivity_of_prefix(self):
        # output ≤ f(wire) & f(wire) ≤ input ⇒ output ≤ input ("trans ≤")
        f = parse_assertion(
            "output <= f(wire) & f(wire) <= input => output <= input", CHANS
        )
        assert oracle().holds(f).ok

    def test_def_f_ack_law(self):
        # step (8)-(9) of Table 1: f(wire) ≤ input ⇒ f(x⌢ACK⌢wire) ≤ x⌢input,
        # valid for x ∈ M (messages) — not for x = ACK, so the eigenvariable
        # domain matters.
        f = parse_assertion(
            "f(wire) <= input => f(x ^ ACK ^ wire) <= x ^ input", CHANS
        )
        assert oracle().holds(f, {"x": FiniteDomain({0, 1})}).ok
        assert not oracle().holds(f).ok  # x = ACK refutes it

    def test_def_f_nack_law(self):
        f = parse_assertion(
            "f(wire) <= x ^ input => f(x ^ NACK ^ wire) <= x ^ input", CHANS
        )
        assert oracle().holds(f).ok


class TestRefutations:
    def test_false_prefix_claim_refuted(self):
        verdict = oracle().holds(parse_assertion("input <= wire", CHANS))
        assert not verdict.ok
        assert verdict.counterexample is not None

    def test_false_implication_refuted(self):
        f = parse_assertion("wire <= input => input <= wire", CHANS)
        assert not oracle().holds(f).ok

    def test_require_raises(self):
        with pytest.raises(DischargeError, match="refuted"):
            oracle().require(parse_assertion("input <= wire", CHANS))


class TestEigenvariables:
    def test_domain_constrains_variable(self):
        # f(x⌢v⌢wire) ≤ x⌢input given f(wire) ≤ x⌢input: true only if v
        # is known to be NACK.
        f = parse_assertion(
            "f(wire) <= x ^ input => f(x ^ v ^ wire) <= x ^ input", CHANS
        )
        assert oracle().holds(f, {"v": FiniteDomain({"NACK"})}).ok
        assert not oracle().holds(f).ok  # unconstrained v ranges over the pool

    def test_variable_domains_from_setexpr(self):
        from repro.values.expressions import NamedSet

        f = parse_assertion("x <= 1", set())
        assert oracle().holds(f, {"x": NamedSet("M")}).ok


class TestDependentDomains:
    """Eigenvariable domains may mention earlier eigenvariables (the
    dining philosophers' fork binds k ∈ {j})."""

    def test_dependent_domain_enumerated_under_partial_assignment(self):
        from repro.values.expressions import SetLiteral, Var

        # ∀j∈{0,1}, ∀k∈{j}: k = j — true precisely because k's domain
        # depends on j.
        f = parse_assertion("k = j", set())
        domains = {
            "j": FiniteDomain({0, 1}),
            "k": SetLiteral((Var("j"),)),
        }
        assert oracle().holds(f, domains).ok

    def test_dependent_domain_ordering_is_found(self):
        from repro.values.expressions import SetLiteral, Var

        f = parse_assertion("k <= j", set())
        # declare in the "wrong" order: the oracle must topologically sort
        domains = {
            "k": SetLiteral((Var("j"),)),
            "j": FiniteDomain({0, 1}),
        }
        assert oracle().holds(f, domains).ok

    def test_cyclic_domains_rejected(self):
        from repro.errors import DischargeError
        from repro.values.expressions import SetLiteral, Var

        f = parse_assertion("k = j", set())
        domains = {
            "k": SetLiteral((Var("j"),)),
            "j": SetLiteral((Var("k"),)),
        }
        with pytest.raises(DischargeError, match="cyclic"):
            oracle().holds(f, domains)

    def test_independent_domains_unaffected(self):
        f = parse_assertion("x <= 1 & y <= 1", set())
        domains = {"x": FiniteDomain({0, 1}), "y": FiniteDomain({0, 1})}
        assert oracle().holds(f, domains).ok


class TestMethodsAndBounds:
    def test_exhaustive_method_reported(self):
        # not syntactically foldable: goes through enumeration
        verdict = oracle().holds(parse_assertion("#wire <= #wire + 1", CHANS))
        assert verdict.method == "exhaustive-bounded"
        assert verdict.instances >= 1

    def test_syntactic_fast_path_reported(self):
        verdict = oracle().holds(parse_assertion("0 <= 1", set()))
        assert verdict.ok and verdict.method == "syntactic"

    def test_randomized_fallback_over_limit(self):
        small = oracle(exhaustive_limit=10, random_trials=50)
        verdict = small.holds(parse_assertion("wire <= wire ++ input", CHANS))
        assert verdict.method == "randomized"
        assert verdict.ok

    def test_randomized_still_refutes(self):
        small = oracle(exhaustive_limit=10, random_trials=500)
        verdict = small.holds(parse_assertion("wire <= input", CHANS))
        assert not verdict.ok

    def test_all_instances_erroring_raises(self):
        # comparing a number with a sequence errors on every instance
        f = parse_assertion("#wire <= wire", CHANS)
        with pytest.raises(DischargeError, match="could not evaluate"):
            oracle().holds(f)

    def test_env_bound_names_not_enumerated(self):
        # 'f' is bound in the environment, not treated as a free variable
        f = parse_assertion("#f(wire) <= #wire", CHANS)
        assert oracle().holds(f).ok

"""The §3.4 lemmas (a)–(d), property-tested end to end.

These are the facts the validity proofs lean on; each is re-verified on
random assertions, traces, and substitution instances.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assertions.builders import const_
from repro.assertions.eval import evaluate_formula
from repro.assertions.substitution import (
    blank_channels,
    channels_mentioned,
    prefix_channel,
    substitute_variable,
)
from repro.errors import EvaluationError
from repro.process.channels import ChannelExpr
from repro.soundness.generators import AssertionGenerator
from repro.traces.events import Event, channel, restrict
from repro.traces.histories import ch
from repro.values.environment import Environment

ENV = Environment()

_events = st.builds(
    Event,
    st.sampled_from([channel("a"), channel("b"), channel("wire")]),
    st.integers(0, 2),
)
_traces = st.lists(_events, max_size=5).map(tuple)
_formulas = st.integers(0, 10_000).map(lambda seed: AssertionGenerator(seed=seed).formula())


def _both(f, g):
    """Evaluate two formulas; returns None if either raises (partiality is
    preserved by the substitutions, so a raise on one side is a raise on
    the other — but we only assert agreement of defined values here)."""
    try:
        return f(), g()
    except EvaluationError:
        return None


@settings(max_examples=150, deadline=None)
@given(_formulas, _traces, st.integers(0, 2))
def test_lemma_a_variable_substitution(formula, trace, value):
    # (ρ+ch(s))⟦R^x_e⟧ = (ρ[ρ⟦e⟧/x] + ch(s))⟦R⟧
    # Generated formulas have no variables, so inject one: substitute a
    # constant for itself through a variable detour.
    substituted = substitute_variable(formula, "x", const_(value))
    outcome = _both(
        lambda: evaluate_formula(substituted, ENV, ch(trace)),
        lambda: evaluate_formula(formula, ENV.bind("x", value), ch(trace)),
    )
    if outcome is not None:
        assert outcome[0] == outcome[1]


@settings(max_examples=150, deadline=None)
@given(_formulas)
def test_lemma_b_blanking(formula):
    # (ρ + ch(⟨⟩))⟦R⟧ = ρ⟦R_<>⟧
    outcome = _both(
        lambda: evaluate_formula(formula, ENV, ch(())),
        lambda: evaluate_formula(blank_channels(formula), ENV, ch(())),
    )
    if outcome is not None:
        assert outcome[0] == outcome[1]


@settings(max_examples=150, deadline=None)
@given(_formulas, _traces, st.integers(0, 2))
def test_lemma_c_channel_prefixing(formula, trace, message):
    # (ρ+ch(s))⟦R^c_(e⌢c)⟧ = (ρ+ch(c.e ⌢ s))⟦R⟧
    wire = ChannelExpr("wire")
    substituted = prefix_channel(formula, wire, const_(message))
    extended = (Event(channel("wire"), message),) + trace
    outcome = _both(
        lambda: evaluate_formula(substituted, ENV, ch(trace)),
        lambda: evaluate_formula(formula, ENV, ch(extended)),
    )
    if outcome is not None:
        assert outcome[0] == outcome[1]


@settings(max_examples=150, deadline=None)
@given(
    st.integers(0, 10_000).map(
        lambda seed: AssertionGenerator(seed=seed, channels=("a", "b")).formula()
    ),
    _traces,
)
def test_lemma_d_hiding(formula, trace):
    # (ρ+ch(s))⟦R⟧ = (ρ+ch(s\C))⟦R⟧ when R mentions no channel of C
    assert all(c.name in ("a", "b") for c in channels_mentioned(formula))
    hidden = restrict(trace, [channel("wire")])
    outcome = _both(
        lambda: evaluate_formula(formula, ENV, ch(trace)),
        lambda: evaluate_formula(formula, ENV, ch(hidden)),
    )
    if outcome is not None:
        assert outcome[0] == outcome[1]

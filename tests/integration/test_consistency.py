"""Cross-semantics consistency — the paper's own headline goal
("gives both a denotational and an axiomatic definition … and proves
that the definitions are consistent"), plus an operational reading.

Three engines must agree wherever they overlap:

1. the bounded denotational semantics (⟦·⟧, §3.2);
2. the explicit §3.3 fixpoint chain;
3. the operational explorer (τ-closure over the transition system).

And whatever the *proof system* establishes must hold in the *model*
(soundness, §3.4), observed on the paper's systems.
"""

import pytest

from repro.operational.explorer import explore_traces
from repro.operational.step import OperationalSemantics
from repro.process.ast import Name
from repro.sat.checker import SatChecker
from repro.semantics.config import SemanticsConfig
from repro.semantics.denotation import denote
from repro.semantics.fixpoint import fixpoint_denotation
from repro.systems import copier, protocol
from repro.values.environment import Environment

CFG = SemanticsConfig(depth=4, sample=2)


SYSTEMS = [
    ("copier", copier.definitions(), copier.environment(), "copier"),
    ("recopier", copier.definitions(), copier.environment(), "recopier"),
    ("copier-net", copier.definitions(), copier.environment(), "network"),
    ("sender", protocol.definitions(), protocol.environment(), "sender"),
    ("receiver", protocol.definitions(), protocol.environment(), "receiver"),
    ("protocol", protocol.definitions(), protocol.environment(), "protocol"),
]


class TestDenotationalVsOperational:
    @pytest.mark.parametrize("label,defs,env,name", SYSTEMS)
    def test_trace_sets_agree(self, label, defs, env, name):
        denotational = denote(Name(name), defs, env=env, config=CFG)
        semantics = OperationalSemantics(defs, env, sample=CFG.sample)
        operational = explore_traces(Name(name), semantics, CFG.depth)
        assert denotational == operational, label

    @pytest.mark.parametrize(
        "label,defs,env,name",
        [s for s in SYSTEMS if s[0] in ("copier", "recopier", "sender", "receiver")],
    )
    def test_fixpoint_chain_agrees(self, label, defs, env, name):
        chain_result = fixpoint_denotation(defs, name, env=env, config=CFG)
        unfolded = denote(Name(name), defs, env=env, config=CFG)
        assert chain_result == unfolded, label


class TestProofImpliesModel:
    """Everything proved is model-checked true — soundness in action."""

    def test_copier_claims(self):
        proved = copier.prove_all()
        checked = copier.check_all(depth=5, sample=2)
        assert set(proved) == set(checked)
        for label in proved:
            assert checked[label].holds, label

    def test_protocol_claims(self):
        proved = protocol.prove_all()
        checked = protocol.check_all(depth=5, sample=2)
        for label in proved:
            assert checked[label].holds, label


class TestSatEnginesAgree:
    def test_both_engines_same_verdicts(self):
        defs = copier.definitions()
        specs = [
            "wire <= input",
            "input <= wire",  # false
            "#input <= #wire + 1",
            "#wire <= #input",
        ]
        for spec in specs:
            verdicts = []
            for engine in ("denotational", "operational"):
                checker = SatChecker(defs, Environment(), CFG, engine=engine)
                verdicts.append(checker.check(Name("copier"), spec).holds)
            assert verdicts[0] == verdicts[1], spec

"""The paper's §4 self-reported limitations, demonstrated (experiment E9).

1. *Partial correctness only*: ``STOP`` satisfies every satisfiable
   invariant, so the proof system cannot express deadlock-freedom — but
   the operational explorer can observe deadlocks directly.
2. *Naive non-determinism*: in the prefix-closure model
   ``STOP | P = P`` — the possibility of deciding to deadlock is
   invisible, even after some communications.
"""

from repro.operational.explorer import Explorer
from repro.operational.step import OperationalSemantics
from repro.process.ast import Name, STOP, Choice
from repro.process.parser import parse_definitions, parse_process
from repro.sat.checker import check_sat
from repro.semantics.config import SemanticsConfig
from repro.semantics.equivalence import trace_equivalent
from repro.traces.events import EMPTY_TRACE

CFG = SemanticsConfig(depth=4, sample=2)


class TestStopSatisfiesEverything:
    def test_stop_satisfies_copier_spec(self):
        from repro.assertions.builders import chan_, le_

        assert check_sat(STOP, le_(chan_("wire"), chan_("input")))

    def test_stop_provably_satisfies_copier_spec(self):
        # Not just model-checked: the emptiness rule proves it (§4's point
        # that a deadlocked process passes every partial-correctness proof).
        from repro.assertions.builders import chan_, le_
        from repro.proof import Oracle, SatProver

        prover = SatProver(oracle=Oracle())
        proof, report = prover.prove_checked(STOP, le_(chan_("wire"), chan_("input")))
        assert report.rules_used.get("emptiness") == 1

    def test_but_stop_deadlocks_operationally(self):
        semantics = OperationalSemantics(parse_definitions("p = STOP"))
        deadlocks = Explorer(semantics).find_deadlocks(Name("p"), depth=1)
        assert EMPTY_TRACE in deadlocks


class TestStopChoiceIdentity:
    """§4: Q = STOP | P is identically equal to P in this model."""

    def test_identity_simple(self):
        p = parse_process("a!0 -> b!1 -> STOP")
        assert trace_equivalent(Choice(STOP, p), p, config=CFG)

    def test_identity_after_communications(self):
        # "the same identity holds if the deadlock could happen after a
        # certain number of communications"
        p = parse_process("a!0 -> (STOP | b!1 -> STOP)")
        q = parse_process("a!0 -> b!1 -> STOP")
        assert trace_equivalent(p, q, config=CFG)

    def test_identity_with_recursion(self):
        defs = parse_definitions("loop = a!0 -> loop; hedged = STOP | a!0 -> loop")
        assert trace_equivalent(
            Name("hedged"), Name("loop"), definitions=defs, config=CFG
        )

    def test_yet_the_two_differ_operationally_in_deadlock(self):
        # The trace model cannot see it, but the transition system can:
        # (STOP | P) still has no deadlock *state* in our semantics because
        # choice is resolved at the first event — exactly the paper's
        # observation that this model forces that implementation.
        defs = parse_definitions("loop = a!0 -> loop")
        semantics = OperationalSemantics(defs)
        hedged = Choice(STOP, Name("loop"))
        deadlocks = Explorer(semantics).find_deadlocks(hedged, depth=3)
        assert deadlocks == []  # the STOP branch is unreachable: no event starts it


class TestDeadlockDetectionBeyondThePaper:
    """What the paper says cannot be proved in its system, we detect
    operationally — the extension promised for 'total correctness'."""

    def test_protocol_is_deadlock_free_to_depth(self):
        from repro.systems import protocol

        semantics = OperationalSemantics(
            protocol.definitions(), protocol.environment(), sample=2
        )
        deadlocks = Explorer(semantics).find_deadlocks(Name("protocol"), depth=3)
        assert deadlocks == []

    def test_mismatched_network_deadlocks_but_passes_sat(self):
        defs = parse_definitions(
            "p = w!1 -> out!1 -> STOP; q = w?x:{2..3} -> q2; q2 = STOP;"
            "net = p || q"
        )
        # sat cannot rule the deadlock out: the invariant holds vacuously
        assert check_sat(Name("net"), "out <= <1>", defs, config=CFG)
        semantics = OperationalSemantics(defs)
        deadlocks = Explorer(semantics).find_deadlocks(Name("net"), depth=2)
        assert EMPTY_TRACE in deadlocks

"""The reproduction battery itself, as a test."""

from repro.report import reproduction_report, run_experiments


class TestBattery:
    def test_quick_battery_reproduces_everything(self):
        outcomes = run_experiments(quick=True)
        assert len(outcomes) == 9
        failures = [o for o in outcomes if not o.ok]
        assert not failures, failures

    def test_report_rendering(self):
        report = reproduction_report(quick=True)
        assert "9/9 experiments reproduce" in report
        assert "FAILED" not in report
        assert "| E3 |" in report

    def test_cli_command(self, capsys):
        from repro.cli import main

        assert main(["reproduce", "--quick"]) == 0
        assert "reproduce" in capsys.readouterr().out

"""Unit tests for the bounded sat checker (the §2 example claims)."""

import pytest

from repro.process.ast import ArrayRef, Name
from repro.process.parser import parse_definitions, parse_process
from repro.sat.checker import SatChecker, check_sat
from repro.semantics.config import SemanticsConfig
from repro.values.domains import FiniteDomain
from repro.values.environment import Environment
from repro.values.expressions import const

CFG = SemanticsConfig(depth=5, sample=2)

COPIER_DEFS = parse_definitions(
    "copier = input?x:NAT -> wire!x -> copier;"
    "recopier = wire?y:NAT -> output!y -> recopier;"
    "protocolnet = chan wire; (copier || recopier)"
)


class TestPaperClaims:
    """The example claims stated in §2."""

    def test_copier_sat_wire_le_input(self):
        assert check_sat(Name("copier"), "wire <= input", COPIER_DEFS, config=CFG)

    def test_recopier_sat_output_le_wire(self):
        assert check_sat(Name("recopier"), "output <= wire", COPIER_DEFS, config=CFG)

    def test_network_sat_output_le_input(self):
        assert check_sat(Name("protocolnet"), "output <= input", COPIER_DEFS, config=CFG)

    def test_copier_sat_length_bound(self):
        # copier sat #input ≤ #wire + 1 (§2 item 2)
        assert check_sat(
            Name("copier"), "#input <= #wire + 1", COPIER_DEFS, config=CFG
        )

    def test_stop_sats_everything_satisfiable(self):
        # §4: STOP satisfies any satisfiable invariant.  (STOP mentions no
        # channels, so the assertion is built explicitly rather than parsed
        # with inferred channel names.)
        from repro.assertions.builders import chan_, le_

        assert check_sat(parse_process("STOP"), le_(chan_("wire"), chan_("input")))


class TestViolations:
    def test_false_claim_yields_counterexample(self):
        result = check_sat(Name("copier"), "input <= wire", COPIER_DEFS, config=CFG)
        assert not result.holds
        assert result.counterexample is not None
        # shortest violation: a single input
        assert len(result.counterexample.trace) == 1

    def test_counterexample_describes_histories(self):
        result = check_sat(Name("copier"), "input <= wire", COPIER_DEFS, config=CFG)
        text = str(result.counterexample)
        assert "input" in text and "violated" in text

    def test_evaluation_error_counts_as_violation(self):
        # input_1 is undefined on the empty trace: not invariantly true
        result = check_sat(Name("copier"), "input@1 = 0", COPIER_DEFS, config=CFG)
        assert not result.holds
        assert result.counterexample.error is not None

    def test_traces_checked_counted(self):
        result = check_sat(Name("copier"), "wire <= input", COPIER_DEFS, config=CFG)
        assert result.traces_checked == len(
            SatChecker(COPIER_DEFS, config=CFG).traces_of(Name("copier"))
        )


class TestBindingsAndForall:
    ENV = Environment().bind("M", FiniteDomain({0, 1}))
    DEFS = parse_definitions(
        "sender = input?y:M -> q[y];"
        "q[x:M] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])"
    )

    def _checker(self):
        from repro.assertions.sequences import cancel_protocol

        env = self.ENV.bind("f", cancel_protocol)
        return SatChecker(self.DEFS, env, SemanticsConfig(depth=5, sample=3))

    def test_table1_invariant_for_fixed_x(self):
        checker = self._checker()
        result = checker.check(
            ArrayRef("q", const(1)), "f(wire) <= x ^ input", bindings={"x": 1}
        )
        assert result.holds

    def test_table1_invariant_forall_x(self):
        checker = self._checker()
        result = checker.check_forall(
            "x",
            FiniteDomain({0, 1}),
            lambda v: ArrayRef("q", const(v)),
            "f(wire) <= x ^ input",
        )
        assert result.holds

    def test_sender_invariant(self):
        checker = self._checker()
        assert checker.check(Name("sender"), "f(wire) <= input").holds

    def test_forall_reports_failing_instance(self):
        checker = self._checker()
        result = checker.check_forall(
            "x",
            FiniteDomain({0, 1}),
            lambda v: ArrayRef("q", const(v)),
            "f(wire) <= <>",  # wrong for every x once the wire fires
        )
        assert not result.holds
        assert result.counterexample.bindings["x"] in (0, 1)


class TestEngines:
    def test_operational_engine_agrees(self):
        for engine in ("denotational", "operational"):
            assert check_sat(
                Name("protocolnet"),
                "output <= input",
                COPIER_DEFS,
                config=SemanticsConfig(depth=4, sample=2),
                engine=engine,
            ).holds

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            SatChecker(COPIER_DEFS, engine="symbolic")

    def test_multiplier_invariant_operationally(self):
        defs = parse_definitions(
            "mult[i:{1..3}] = row[i]?x:NAT -> col[i-1]?y:NAT ->"
            " col[i]!(v[i]*x + y) -> mult[i];"
            "zeroes = col[0]!0 -> zeroes;"
            "last = col[3]?y:NAT -> output!y -> last;"
            "network = zeroes || mult[1] || mult[2] || mult[3] || last;"
            "multiplier = chan col[0..3]; network"
        )
        v = [0, 2, 3, 5]
        env = Environment().bind("v", lambda i: v[i])
        checker = SatChecker(
            defs, env, SemanticsConfig(depth=4, sample=2), engine="operational"
        )
        # the paper's §2 multiplier invariant
        spec = (
            "forall i : NAT . 1 <= i & i <= #output =>"
            " output@i = (sum j : 1..3 . v(j) * row[j]@i)"
        )
        assert checker.check(Name("multiplier"), spec).holds


class TestTrieWalk:
    """The trie-walking mode must agree with the flat per-trace loop —
    same verdict, same counterexample, same traces_checked count."""

    def test_holding_spec_agrees(self):
        trie = SatChecker(COPIER_DEFS, config=CFG, trie_walk=True)
        flat = SatChecker(COPIER_DEFS, config=CFG, trie_walk=False)
        a = trie.check(Name("protocolnet"), "output <= input")
        b = flat.check(Name("protocolnet"), "output <= input")
        assert a.holds and b.holds
        assert a.traces_checked == b.traces_checked

    def test_violated_spec_same_counterexample(self):
        trie = SatChecker(COPIER_DEFS, config=CFG, trie_walk=True)
        flat = SatChecker(COPIER_DEFS, config=CFG, trie_walk=False)
        a = trie.check(Name("copier"), "input <= wire")
        b = flat.check(Name("copier"), "input <= wire")
        assert not a.holds and not b.holds
        assert a.counterexample.trace == b.counterexample.trace
        assert a.traces_checked == b.traces_checked

    def test_evaluation_error_same_counterexample(self):
        trie = SatChecker(COPIER_DEFS, config=CFG, trie_walk=True)
        flat = SatChecker(COPIER_DEFS, config=CFG, trie_walk=False)
        a = trie.check(Name("copier"), "input@3 = 0")
        b = flat.check(Name("copier"), "input@3 = 0")
        assert not a.holds and not b.holds
        assert a.counterexample.trace == b.counterexample.trace


class TestEngineEligibility:
    """Arrays and chan targets are served from engine bindings, exactly."""

    def _pure_unfold(self, defs, env, cfg, process, depth):
        from repro.semantics.denotation import Denoter

        return Denoter(defs, env if env is not None else Environment(), cfg).denote(
            process, depth
        )

    def test_array_out_of_sample_falls_back_to_unfold(self):
        # The system solves fine at sample 2, but the target consults
        # arr[7]: the binding covers only sampled subscripts, so the
        # Denoter unfolds arr[7] on demand — and the blend must be
        # pointer-identical to pure unfold-on-demand.
        cfg = SemanticsConfig(depth=5, sample=2)
        defs = parse_definitions("arr[i:{0..9}] = tick[i]!0 -> arr[i]")
        target = parse_process("go!0 -> arr[7]")
        checker = SatChecker(defs, config=cfg)
        got = checker.traces_of(target)
        want = self._pure_unfold(defs, None, cfg, target, cfg.depth)
        assert got.root is want.root
        # The engine supply was actually used (not marked ineligible).
        from repro.sat.checker import _INELIGIBLE

        assert checker._engine_supply[cfg.depth] is not _INELIGIBLE

    def test_unsolvable_system_degrades_to_pure_unfold(self):
        # philosophers at sample 2 references phil[2]/fork[2] *inside the
        # fixpoint itself*: solving fails, the checker marks the system
        # ineligible, and answers still match pure unfolding.
        from repro.systems import philosophers

        cfg = SemanticsConfig(depth=4, sample=2)
        defs, env = philosophers.definitions(), philosophers.environment()
        checker = SatChecker(defs, env=env, config=cfg)
        got = checker.traces_of(Name("table"))
        want = self._pure_unfold(defs, env, cfg, Name("table"), cfg.depth)
        assert got.root is want.root
        from repro.sat.checker import _INELIGIBLE

        assert checker._engine_supply[cfg.depth] is _INELIGIBLE

    def test_in_sample_array_system_served_from_engine(self):
        from repro.systems import philosophers

        cfg = SemanticsConfig(depth=4, sample=3)
        defs, env = philosophers.definitions(), philosophers.environment()
        checker = SatChecker(defs, env=env, config=cfg)
        got = checker.traces_of(Name("table"))
        want = self._pure_unfold(defs, env, cfg, Name("table"), cfg.depth)
        assert got.root is want.root
        from repro.sat.checker import _INELIGIBLE

        assert checker._engine_supply[cfg.depth] is not _INELIGIBLE

    def test_chan_target_solved_at_hide_depth(self):
        # protocolnet hides wire: the system is solved once at hide_depth
        # and the request-depth answer is exact (chan's inner depth
        # saturates at hide_depth).
        cfg = SemanticsConfig(depth=5, sample=2)
        checker = SatChecker(COPIER_DEFS, config=cfg)
        got = checker.traces_of(Name("protocolnet"))
        want = self._pure_unfold(
            COPIER_DEFS, None, cfg, Name("protocolnet"), cfg.depth
        )
        assert got.root is want.root
        assert cfg.hide_depth in checker._engine_supply

    def test_chan_eligibility_respects_shallow_hide_depth(self):
        # An explicit hide_depth below the request depth makes truncation
        # inexact for chan bodies: the checker must refuse the bindings.
        cfg = SemanticsConfig(depth=5, sample=2, hide_depth=3)
        checker = SatChecker(COPIER_DEFS, config=cfg)
        got = checker.traces_of(Name("protocolnet"))
        want = self._pure_unfold(
            COPIER_DEFS, None, cfg, Name("protocolnet"), cfg.depth
        )
        assert got.root is want.root
        assert checker._engine_supply == {}


class TestGovernedCheckpointResume:
    """Budget trips persist ``fix:{name}@level{k}`` slots; the next
    invocation resumes from them and reaches the ungoverned verdict."""

    # Unique channel names keep the interner cold for this system, so the
    # node budget below trips at the same depth regardless of test order.
    RELAY = (
        "relay = feedq?x:NAT -> passq!x -> relay;"
        "drain = passq?y:NAT -> sink!y -> drain"
    )

    def _setup(self, tmp_path):
        from repro.traces.snapshot import SnapshotCache, cache_key

        cfg = SemanticsConfig(depth=5, sample=2)
        defs = parse_definitions(self.RELAY)
        key = cache_key(defs, cfg)
        cache = SnapshotCache(tmp_path, key, checkpoint_only=True)
        return cfg, defs, SatChecker(defs, config=cfg, cache=cache)

    def test_trip_persists_slots_and_resume_reaches_same_verdict(self, tmp_path):
        from repro.errors import BudgetExceeded
        from repro.runtime.governor import Budget, activate
        from repro.traces.snapshot import is_checkpoint_slot

        cfg, defs, checker = self._setup(tmp_path)
        with pytest.raises(BudgetExceeded) as exc_info:
            with activate(Budget(max_nodes=5).start()):
                checker.check(Name("relay"), "passq <= feedq")
        checkpoint = exc_info.value.checkpoint
        slots = checkpoint.resume_slots()
        assert slots and all(is_checkpoint_slot(s) for s in slots)
        assert checkpoint.completed_depth is not None
        checker.cache.save()
        assert checker.cache.path.exists()

        # Second invocation, same key: resumes from the persisted slots.
        cfg2, defs2, resumed = self._setup(tmp_path)
        assert resumed.cache.loaded
        with activate(Budget(max_nodes=10_000).start()):
            governed = resumed.check(Name("relay"), "passq <= feedq")
        assert resumed.cache.hits > 0

        ungoverned = SatChecker(defs2, config=cfg2).check(
            Name("relay"), "passq <= feedq"
        )
        assert governed.holds == ungoverned.holds is True
        # Deepening reached the full configured depth despite resuming.
        assert governed.verified_depth == cfg2.depth

"""Unit tests for the bounded sat checker (the §2 example claims)."""

import pytest

from repro.process.ast import ArrayRef, Name
from repro.process.parser import parse_definitions, parse_process
from repro.sat.checker import SatChecker, check_sat
from repro.semantics.config import SemanticsConfig
from repro.values.domains import FiniteDomain
from repro.values.environment import Environment
from repro.values.expressions import const

CFG = SemanticsConfig(depth=5, sample=2)

COPIER_DEFS = parse_definitions(
    "copier = input?x:NAT -> wire!x -> copier;"
    "recopier = wire?y:NAT -> output!y -> recopier;"
    "protocolnet = chan wire; (copier || recopier)"
)


class TestPaperClaims:
    """The example claims stated in §2."""

    def test_copier_sat_wire_le_input(self):
        assert check_sat(Name("copier"), "wire <= input", COPIER_DEFS, config=CFG)

    def test_recopier_sat_output_le_wire(self):
        assert check_sat(Name("recopier"), "output <= wire", COPIER_DEFS, config=CFG)

    def test_network_sat_output_le_input(self):
        assert check_sat(Name("protocolnet"), "output <= input", COPIER_DEFS, config=CFG)

    def test_copier_sat_length_bound(self):
        # copier sat #input ≤ #wire + 1 (§2 item 2)
        assert check_sat(
            Name("copier"), "#input <= #wire + 1", COPIER_DEFS, config=CFG
        )

    def test_stop_sats_everything_satisfiable(self):
        # §4: STOP satisfies any satisfiable invariant.  (STOP mentions no
        # channels, so the assertion is built explicitly rather than parsed
        # with inferred channel names.)
        from repro.assertions.builders import chan_, le_

        assert check_sat(parse_process("STOP"), le_(chan_("wire"), chan_("input")))


class TestViolations:
    def test_false_claim_yields_counterexample(self):
        result = check_sat(Name("copier"), "input <= wire", COPIER_DEFS, config=CFG)
        assert not result.holds
        assert result.counterexample is not None
        # shortest violation: a single input
        assert len(result.counterexample.trace) == 1

    def test_counterexample_describes_histories(self):
        result = check_sat(Name("copier"), "input <= wire", COPIER_DEFS, config=CFG)
        text = str(result.counterexample)
        assert "input" in text and "violated" in text

    def test_evaluation_error_counts_as_violation(self):
        # input_1 is undefined on the empty trace: not invariantly true
        result = check_sat(Name("copier"), "input@1 = 0", COPIER_DEFS, config=CFG)
        assert not result.holds
        assert result.counterexample.error is not None

    def test_traces_checked_counted(self):
        result = check_sat(Name("copier"), "wire <= input", COPIER_DEFS, config=CFG)
        assert result.traces_checked == len(
            SatChecker(COPIER_DEFS, config=CFG).traces_of(Name("copier"))
        )


class TestBindingsAndForall:
    ENV = Environment().bind("M", FiniteDomain({0, 1}))
    DEFS = parse_definitions(
        "sender = input?y:M -> q[y];"
        "q[x:M] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])"
    )

    def _checker(self):
        from repro.assertions.sequences import cancel_protocol

        env = self.ENV.bind("f", cancel_protocol)
        return SatChecker(self.DEFS, env, SemanticsConfig(depth=5, sample=3))

    def test_table1_invariant_for_fixed_x(self):
        checker = self._checker()
        result = checker.check(
            ArrayRef("q", const(1)), "f(wire) <= x ^ input", bindings={"x": 1}
        )
        assert result.holds

    def test_table1_invariant_forall_x(self):
        checker = self._checker()
        result = checker.check_forall(
            "x",
            FiniteDomain({0, 1}),
            lambda v: ArrayRef("q", const(v)),
            "f(wire) <= x ^ input",
        )
        assert result.holds

    def test_sender_invariant(self):
        checker = self._checker()
        assert checker.check(Name("sender"), "f(wire) <= input").holds

    def test_forall_reports_failing_instance(self):
        checker = self._checker()
        result = checker.check_forall(
            "x",
            FiniteDomain({0, 1}),
            lambda v: ArrayRef("q", const(v)),
            "f(wire) <= <>",  # wrong for every x once the wire fires
        )
        assert not result.holds
        assert result.counterexample.bindings["x"] in (0, 1)


class TestEngines:
    def test_operational_engine_agrees(self):
        for engine in ("denotational", "operational"):
            assert check_sat(
                Name("protocolnet"),
                "output <= input",
                COPIER_DEFS,
                config=SemanticsConfig(depth=4, sample=2),
                engine=engine,
            ).holds

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            SatChecker(COPIER_DEFS, engine="symbolic")

    def test_multiplier_invariant_operationally(self):
        defs = parse_definitions(
            "mult[i:{1..3}] = row[i]?x:NAT -> col[i-1]?y:NAT ->"
            " col[i]!(v[i]*x + y) -> mult[i];"
            "zeroes = col[0]!0 -> zeroes;"
            "last = col[3]?y:NAT -> output!y -> last;"
            "network = zeroes || mult[1] || mult[2] || mult[3] || last;"
            "multiplier = chan col[0..3]; network"
        )
        v = [0, 2, 3, 5]
        env = Environment().bind("v", lambda i: v[i])
        checker = SatChecker(
            defs, env, SemanticsConfig(depth=4, sample=2), engine="operational"
        )
        # the paper's §2 multiplier invariant
        spec = (
            "forall i : NAT . 1 <= i & i <= #output =>"
            " output@i = (sum j : 1..3 . v(j) * row[j]@i)"
        )
        assert checker.check(Name("multiplier"), spec).holds


class TestTrieWalk:
    """The trie-walking mode must agree with the flat per-trace loop —
    same verdict, same counterexample, same traces_checked count."""

    def test_holding_spec_agrees(self):
        trie = SatChecker(COPIER_DEFS, config=CFG, trie_walk=True)
        flat = SatChecker(COPIER_DEFS, config=CFG, trie_walk=False)
        a = trie.check(Name("protocolnet"), "output <= input")
        b = flat.check(Name("protocolnet"), "output <= input")
        assert a.holds and b.holds
        assert a.traces_checked == b.traces_checked

    def test_violated_spec_same_counterexample(self):
        trie = SatChecker(COPIER_DEFS, config=CFG, trie_walk=True)
        flat = SatChecker(COPIER_DEFS, config=CFG, trie_walk=False)
        a = trie.check(Name("copier"), "input <= wire")
        b = flat.check(Name("copier"), "input <= wire")
        assert not a.holds and not b.holds
        assert a.counterexample.trace == b.counterexample.trace
        assert a.traces_checked == b.traces_checked

    def test_evaluation_error_same_counterexample(self):
        trie = SatChecker(COPIER_DEFS, config=CFG, trie_walk=True)
        flat = SatChecker(COPIER_DEFS, config=CFG, trie_walk=False)
        a = trie.check(Name("copier"), "input@3 = 0")
        b = flat.check(Name("copier"), "input@3 = 0")
        assert not a.holds and not b.holds
        assert a.counterexample.trace == b.counterexample.trace

"""Operational warm restarts: stale-frontier invalidation, frontier
blob validation, and resumable ``check_forall``.

The persisted-frontier slots are *verified, never trusted*: a frontier
keyed by an edited system must never be silently reused, a blob whose
content fails semantic validation quarantines the whole snapshot file,
and ``forall:{name}@instance{i}`` receipts resume a governed universal
check without changing a single verdict byte.
"""

import shutil

import pytest

from repro.errors import EXIT_BUDGET, BudgetExceeded, exit_code_for
from repro.operational.explorer import FrontierStore
from repro.process.ast import Name
from repro.process.parser import parse_definitions
from repro.runtime.governor import Budget, activate
from repro.sat.checker import SatChecker
from repro.semantics.config import SemanticsConfig
from repro.systems import copier
from repro.traces.snapshot import (
    SnapshotCache,
    cache_key,
    forall_slot,
    frontier_slot,
)
from repro.traces.stats import KERNEL_STATS
from repro.values.domains import FiniteDomain
from repro.values.environment import Environment

CFG = SemanticsConfig(depth=4, sample=2)

SOURCE = (
    "copier = input?x:NAT -> wire!x -> copier;"
    "recopier = wire?y:NAT -> output!y -> recopier;"
    "network = chan wire; (copier || recopier)"
)

EDITED = SOURCE.replace("output!y", "output!y -> output!y")


def _run(source, directory, checkpoint_only=False):
    defs = parse_definitions(source)
    cache = SnapshotCache(
        directory, cache_key(defs, CFG), checkpoint_only=checkpoint_only
    )
    checker = SatChecker(
        defs, Environment(), CFG, engine="operational", cache=cache
    )
    return checker, cache


class TestStaleFrontierInvalidation:
    def test_edited_source_never_reuses_old_frontiers(self, tmp_path):
        # First run on the original system persists its frontiers.
        source_file = tmp_path / "network.csp"
        source_file.write_text(SOURCE)
        checker, cache = _run(source_file.read_text(), tmp_path)
        assert checker.check(Name("network"), "output <= input").holds
        cache.save()
        old_path = cache.path
        assert old_path.exists()

        # Editing the .csp changes the cache key: the old file is
        # orphaned, the new run starts cold — zero frontier reuse.
        source_file.write_text(EDITED)
        reused_before = KERNEL_STATS.frontier_reused
        edited_checker, edited_cache = _run(source_file.read_text(), tmp_path)
        assert edited_cache.path != old_path
        assert old_path.exists()  # orphaned, not clobbered
        result = edited_checker.check(Name("network"), "output <= input")
        assert KERNEL_STATS.frontier_reused == reused_before
        # The verdict is the edited system's own (here a refutation —
        # doubled output breaks the prefix property), identical to a
        # cold cacheless run; a stale frontier would have kept it green.
        cold = SatChecker(
            parse_definitions(EDITED), Environment(), CFG, engine="operational"
        ).check(Name("network"), "output <= input")
        assert result.holds == cold.holds is False
        assert result.counterexample.trace == cold.counterexample.trace

    def test_key_mismatched_file_is_quarantined_not_reused(self, tmp_path):
        # A stale snapshot copied over the new key's filename (wrong
        # key *inside* the payload) must be quarantined, never decoded
        # into frontiers.
        checker, cache = _run(SOURCE, tmp_path)
        checker.traces_of(Name("network"))
        cache.save()
        edited_key = cache_key(parse_definitions(EDITED), CFG)
        shutil.copy(cache.path, tmp_path / f"snapshot-{edited_key}.json")

        reused_before = KERNEL_STATS.frontier_reused
        edited_checker, edited_cache = _run(EDITED, tmp_path)
        assert edited_cache.rebuilt
        assert edited_cache.quarantined
        assert (tmp_path / "quarantine").exists()
        result = edited_checker.check(Name("network"), "output <= input")
        assert KERNEL_STATS.frontier_reused == reused_before
        cold = SatChecker(
            parse_definitions(EDITED), Environment(), CFG, engine="operational"
        ).check(Name("network"), "output <= input")
        assert result.holds == cold.holds
        assert result.traces_checked == cold.traces_checked


class TestFrontierBlobValidation:
    """Structurally plausible but semantically corrupt blobs are
    rejected wholesale: load returns None and the file is quarantined."""

    @pytest.mark.parametrize(
        "tamper",
        [
            lambda b: {**b, "level": 99},
            lambda b: {**b, "complete": "yes"},
            lambda b: {**b, "events": []},
            lambda b: {**b, "states": []},
            lambda b: {**b, "frontier": []},
            lambda b: {**b, "frontier": [[[0], [-1]]]},
            lambda b: {**b, "frontier": [[[999], [0]]]},
            lambda b: {**b, "events": ["garbage"]},
        ],
    )
    def test_corrupt_blob_quarantines(self, tmp_path, tamper):
        checker, cache = _run(SOURCE, tmp_path)
        checker.traces_of(Name("network"))
        cache.save()

        key = cache_key(parse_definitions(SOURCE), CFG)
        victim = SnapshotCache(tmp_path, key)
        slot = frontier_slot("operational:network", CFG.depth)
        blob = victim.get_blob(slot)
        assert blob is not None
        victim.put_blob(slot, tamper(blob))
        victim.save()

        reused_before = KERNEL_STATS.frontier_reused
        probe = SnapshotCache(tmp_path, key)
        store = FrontierStore(probe, "operational:network")
        loaded = store.load(CFG.depth)
        # Either the deepest slot was the tampered one (rejected →
        # quarantined) or validation never saw it; reuse of corrupt
        # content is impossible either way.
        if loaded is None:
            assert probe.quarantined
            assert KERNEL_STATS.frontier_reused == reused_before
        else:
            _, closure, level, _ = loaded
            assert level < CFG.depth or closure == checker.traces_of(
                Name("network")
            )

    def test_rejected_cache_serves_nothing_afterwards(self, tmp_path):
        checker, cache = _run(SOURCE, tmp_path)
        checker.traces_of(Name("network"))
        cache.save()
        key = cache_key(parse_definitions(SOURCE), CFG)
        probe = SnapshotCache(tmp_path, key)
        slot = frontier_slot("operational:network", 1)
        assert probe.get(slot) is not None
        probe.reject()
        assert probe.quarantined and probe.rebuilt
        assert probe.get(slot) is None
        assert probe.get_blob(slot) is None


class TestForallResume:
    DOMAIN = (0, 1)

    def _checker(self, directory=None, checkpoint_only=False):
        defs = copier.definitions()
        cache = None
        if directory is not None:
            cache = SnapshotCache(
                directory, cache_key(defs, CFG), checkpoint_only=checkpoint_only
            )
        return SatChecker(
            defs, copier.environment(), CFG, engine="operational", cache=cache
        )

    def _forall(self, checker, name=None):
        return checker.check_forall(
            "v",
            FiniteDomain(self.DOMAIN),
            lambda v: Name("copier"),
            "wire <= input",
            sample=len(self.DOMAIN),
            name=name,
        )

    def test_receipts_skip_verified_instances_verdict_identical(self, tmp_path):
        reference = self._forall(self._checker())

        first = self._checker(tmp_path)
        assert self._forall(first, name="claim") == reference
        first.cache.save()
        for index in range(len(self.DOMAIN)):
            slot = forall_slot("operational:claim:v", index)
            assert first.cache.get_blob(slot) is not None
            assert slot in first._checkpoint_slots

        resumed_before = KERNEL_STATS.forall_resumed
        second = self._checker(tmp_path)
        assert self._forall(second, name="claim") == reference
        assert (
            KERNEL_STATS.forall_resumed - resumed_before == len(self.DOMAIN)
        )

    # Two per-instance processes with *different* state spaces (3 vs 5
    # distinct configurations), so a max_states budget can trip inside
    # instance 1 after instance 0's receipt was already written.
    STAGGERED = (
        "copA = input?x:NAT -> wire!x -> copA;"
        "copB = input?x:NAT -> wire!x -> wire!x -> copB"
    )

    def _staggered_forall(self, checker, name=None):
        return checker.check_forall(
            "v",
            FiniteDomain(self.DOMAIN),
            lambda v: Name("copA" if v == 0 else "copB"),
            "#wire <= #input + 1",
            sample=len(self.DOMAIN),
            name=name,
        )

    def test_budget_trip_then_resume_matches_ungoverned(self, tmp_path):
        defs = parse_definitions(self.STAGGERED)
        reference = self._staggered_forall(
            SatChecker(defs, Environment(), CFG, engine="operational")
        )

        # Scan budget sizes until one trips mid-check; whatever receipts
        # were persisted, the resumed run must reproduce the ungoverned
        # verdict exactly — and the trip itself keeps exit code 4.
        tripped_with_receipt = False
        for max_states in (4, 6, 10, 30):
            directory = tmp_path / f"budget-{max_states}"
            directory.mkdir()
            cache = SnapshotCache(
                directory, cache_key(defs, CFG), checkpoint_only=True
            )
            governed = SatChecker(
                defs, Environment(), CFG, engine="operational", cache=cache
            )
            try:
                with activate(Budget(max_states=max_states).start()):
                    self._staggered_forall(governed, name="claim")
            except BudgetExceeded as exc:
                assert exit_code_for(exc) == EXIT_BUDGET
                if exc.checkpoint is not None and any(
                    slot.startswith("forall:")
                    for slot in exc.checkpoint.resume_slots()
                ):
                    tripped_with_receipt = True
            cache.save()

            resumed_before = KERNEL_STATS.forall_resumed
            warm_cache = SnapshotCache(
                directory, cache_key(defs, CFG), checkpoint_only=True
            )
            warm = SatChecker(
                defs, Environment(), CFG, engine="operational", cache=warm_cache
            )
            with activate(Budget(max_states=10_000_000).start()):
                result = self._staggered_forall(warm, name="claim")
            assert result.holds == reference.holds
            assert result.traces_checked == reference.traces_checked
            persisted = sum(
                warm_cache.get_blob(forall_slot("operational:claim:v", i))
                is not None
                for i in range(len(self.DOMAIN))
            )
            # Every receipt the trip persisted was skipped on resume.
            assert KERNEL_STATS.forall_resumed - resumed_before >= min(
                persisted, 1
            )
        # At least one budget interrupted the check *between* instances,
        # leaving instance 0's receipt behind for the resume to skip.
        assert tripped_with_receipt

    def test_garbage_receipt_quarantines_and_recomputes(self, tmp_path):
        defs = copier.definitions()
        cache = SnapshotCache(tmp_path, cache_key(defs, CFG))
        cache.put_blob(
            forall_slot("operational:claim:v", 0),
            {"holds": True, "traces_checked": "lots", "verified_depth": 4},
        )
        cache.save()
        checker = SatChecker(
            defs, copier.environment(), CFG, engine="operational", cache=cache
        )
        reference = self._forall(self._checker())
        resumed_before = KERNEL_STATS.forall_resumed
        assert self._forall(checker, name="claim") == reference
        assert KERNEL_STATS.forall_resumed == resumed_before
        assert cache.quarantined

"""Cross-semantics differential harness for warm-restarted exploration.

The tentpole claim of the persisted-frontier work is an *equivalence*:
an exploration warm-restarted from ``frontier:{name}@level{k}`` slots is
state-set- and verdict-identical to a cold run, which is in turn
identical to the denotational engine — on the paper's systems suite, on
randomly generated networks, and under fault injection at both frontier
persistence sites.  Closure equality below is pointer equality of
interned trie roots, so "identical" means byte-identical snapshots too.
"""

import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operational.explorer import Explorer, FrontierStore
from repro.operational.step import OperationalSemantics
from repro.process.ast import Name
from repro.process.definitions import DefinitionList, ProcessDef
from repro.runtime import faults
from repro.runtime.faults import FaultInjected, FaultPlan
from repro.sat.checker import SatChecker
from repro.semantics.config import SemanticsConfig
from repro.semantics.denotation import denote
from repro.soundness.generators import AssertionGenerator, ProcessGenerator
from repro.systems import copier, protocol
from repro.traces.snapshot import SnapshotCache, cache_key
from repro.traces.stats import KERNEL_STATS
from repro.values.environment import Environment

pytestmark = pytest.mark.differential

CFG = SemanticsConfig(depth=4, sample=2)

SYSTEMS = [
    ("copier", copier.definitions(), copier.environment(), "copier"),
    ("recopier", copier.definitions(), copier.environment(), "recopier"),
    ("copier-net", copier.definitions(), copier.environment(), "network"),
    ("sender", protocol.definitions(), protocol.environment(), "sender"),
    ("receiver", protocol.definitions(), protocol.environment(), "receiver"),
    ("protocol", protocol.definitions(), protocol.environment(), "protocol"),
]


def _checker(defs, env, directory=None, engine="operational"):
    cache = None
    if directory is not None:
        cache = SnapshotCache(Path(directory), cache_key(defs, CFG))
    return SatChecker(defs, env, CFG, engine=engine, cache=cache)


class TestWarmEqualsColdAcrossSystems:
    @pytest.mark.parametrize("label,defs,env,name", SYSTEMS)
    def test_state_sets_and_verdicts_agree(self, label, defs, env, name, tmp_path):
        cold = _checker(defs, env).traces_of(Name(name))

        first = _checker(defs, env, tmp_path)
        assert first.traces_of(Name(name)) == cold, label
        first.cache.save()

        reused_before = KERNEL_STATS.frontier_reused
        second = _checker(defs, env, tmp_path)
        warm = second.traces_of(Name(name))
        assert warm == cold, label  # pointer equality of interned roots
        assert warm.traces == cold.traces, label
        assert KERNEL_STATS.frontier_reused > reused_before, label

        denotational = denote(Name(name), defs, env=env, config=CFG)
        assert warm == denotational, label

    @pytest.mark.parametrize("label,defs,env,name", SYSTEMS)
    def test_shallower_warm_request_truncates(self, label, defs, env, name, tmp_path):
        # A warm run at a *shallower* depth must serve the truncation of
        # the persisted frontier, not whatever level happens to be there.
        deep = _checker(defs, env, tmp_path)
        full = deep.traces_of(Name(name))
        deep.cache.save()
        warm = _checker(defs, env, tmp_path)
        shallow = warm.traces_of(Name(name), depth=2)
        assert shallow == full.truncate(2), label


class TestVerdictsByteIdentical:
    SPECS = [
        "wire <= input",
        "input <= wire",  # false: the counterexample path must agree too
        "#wire <= #input",
    ]

    @pytest.mark.parametrize("spec", SPECS)
    def test_cold_warm_denotational_verdicts(self, spec, tmp_path):
        defs, env = copier.definitions(), copier.environment()
        cold = _checker(defs, env).check(Name("copier"), spec)

        first = _checker(defs, env, tmp_path)
        first.check(Name("copier"), spec)
        first.cache.save()
        warm = _checker(defs, env, tmp_path).check(Name("copier"), spec)

        deno = _checker(defs, env, engine="denotational").check(
            Name("copier"), spec
        )
        for other in (warm, deno):
            assert other.holds == cold.holds, spec
            assert other.traces_checked == cold.traces_checked, spec
            if cold.counterexample is not None:
                assert other.counterexample.trace == cold.counterexample.trace


@pytest.mark.slow
class TestGeneratedNetworks:
    """Random binary networks (synchronisation + hiding — where the two
    semantics could genuinely diverge), checked cold vs warm vs
    denotational with a generated assertion per system."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_differential_on_random_network(self, seed):
        term = ProcessGenerator(seed=seed, max_depth=3).network()
        defs = DefinitionList([ProcessDef("sys", term)])
        spec = AssertionGenerator(seed=seed).formula()

        cold = _checker(defs, Environment()).traces_of(Name("sys"))
        denotational = denote(Name("sys"), defs, config=CFG)
        assert cold == denotational
        assert cold.traces == denotational.traces

        directory = Path(tempfile.mkdtemp(prefix="repro-diff-"))
        try:
            first = _checker(defs, Environment(), directory)
            cold_verdict = first.check(Name("sys"), spec)
            first.cache.save()
            warm_checker = _checker(defs, Environment(), directory)
            assert warm_checker.traces_of(Name("sys")) == cold
            warm_verdict = warm_checker.check(Name("sys"), spec)
            assert warm_verdict.holds == cold_verdict.holds
            assert warm_verdict.traces_checked == cold_verdict.traces_checked
        finally:
            shutil.rmtree(directory, ignore_errors=True)


@pytest.mark.slow
class TestFrontierFaultInjection:
    """Abort safety at the two frontier persistence sites: an
    interrupted save leaves only completed levels on disk (each a sound
    truncation of the full answer), and a crash while warming degrades
    to a cold, correct run."""

    DEFS = copier.definitions()

    def _cold(self):
        semantics = OperationalSemantics(
            self.DEFS, copier.environment(), sample=CFG.sample
        )
        return Explorer(semantics).visible_traces(Name("network"), CFG.depth)

    def _explore_with_store(self, directory):
        cache = SnapshotCache(Path(directory), cache_key(self.DEFS, CFG))
        semantics = OperationalSemantics(
            self.DEFS, copier.environment(), sample=CFG.sample
        )
        explorer = Explorer(semantics)
        store = FrontierStore(cache, "operational:network")
        return explorer.visible_traces(
            Name("network"), CFG.depth, store=store
        ), cache

    @settings(max_examples=12, deadline=None)
    @given(
        st.sampled_from(("explorer.frontier_save", "explorer.frontier_load")),
        st.integers(min_value=1, max_value=6),
    )
    def test_abort_then_rerun_matches_cold(self, site, after):
        cold = self._cold()
        directory = Path(tempfile.mkdtemp(prefix="repro-frontfault-"))
        try:
            crashed_cache = None
            try:
                with faults.inject(FaultPlan(site=site, after=after)):
                    _, crashed_cache = self._explore_with_store(directory)
            except FaultInjected:
                pass
            if crashed_cache is not None:
                # The CLI's finally-block saves whatever completed; the
                # fault must have kept partial levels out of the cache.
                crashed_cache.save()

            # Whatever survived on disk is a *completed* level: loading
            # it yields a sound truncation of the full answer.
            probe = SnapshotCache(directory, cache_key(self.DEFS, CFG))
            semantics = OperationalSemantics(
                self.DEFS, copier.environment(), sample=CFG.sample
            )
            persisted = FrontierStore(probe, "operational:network").load(
                CFG.depth
            )
            if persisted is not None:
                _, closure, level, _ = persisted
                assert closure == cold.truncate(level)
                assert not probe.quarantined

            # A clean warm re-run computes exactly the cold answer.
            warm, cache = self._explore_with_store(directory)
            assert warm == cold
            assert warm.traces == cold.traces
            cache.save()
            rewarm, _ = self._explore_with_store(directory)
            assert rewarm == cold
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    def test_save_abort_never_records_the_aborting_level(self, tmp_path):
        # frontier_save fires before anything is recorded, so the level
        # being saved at the abort is absent — only prior levels persist.
        cache = SnapshotCache(tmp_path, cache_key(self.DEFS, CFG))
        semantics = OperationalSemantics(
            self.DEFS, copier.environment(), sample=CFG.sample
        )
        store = FrontierStore(cache, "operational:network")
        with faults.inject(FaultPlan(site="explorer.frontier_save", after=3)):
            with pytest.raises(FaultInjected):
                Explorer(semantics).visible_traces(
                    Name("network"), CFG.depth, store=store
                )
        assert len(store.written) == 2  # levels 0 and 1 completed
        cold = self._cold()
        for slot in store.written:
            level = int(slot.rsplit("@level", 1)[1])
            from repro.traces.prefix_closure import FiniteClosure

            assert FiniteClosure.from_node(cache.get(slot)) == cold.truncate(
                level
            )

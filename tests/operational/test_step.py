"""Unit tests for the operational transition relation."""

import pytest

from repro.errors import OperationalError
from repro.operational.step import Comm, Offer, OperationalSemantics, Tau
from repro.process.ast import Name
from repro.process.parser import parse_definitions, parse_process
from repro.traces.events import Channel, Event, channel, event
from repro.values.domains import IntersectionDomain
from repro.values.environment import Environment


def sem(defs="", env=None, sample=3):
    definitions = parse_definitions(defs) if defs else parse_definitions("x0 = STOP")
    return OperationalSemantics(definitions, env, sample=sample)


class TestSequentialTransitions:
    def test_stop_has_no_transitions(self):
        s = sem()
        assert s.transitions(s.initial_state(parse_process("STOP"))) == []

    def test_output_is_single_comm(self):
        s = sem()
        (t,) = s.transitions(s.initial_state(parse_process("wire!3 -> STOP")))
        assert isinstance(t, Comm)
        assert t.event == event("wire", 3)

    def test_output_evaluates_expression(self):
        s = OperationalSemantics(
            parse_definitions("x0 = STOP"), Environment().bind("k", 4)
        )
        (t,) = s.transitions(s.initial_state(parse_process("c!(2*k) -> STOP")))
        assert t.event == event("c", 8)

    def test_input_is_symbolic_offer(self):
        s = sem()
        (t,) = s.transitions(s.initial_state(parse_process("c?x:NAT -> d!x -> STOP")))
        assert isinstance(t, Offer)
        assert t.channel == channel("c")
        assert 12345 in t.domain  # receptive: any natural, not just the sample

    def test_offer_resume_substitutes_value(self):
        s = sem()
        (t,) = s.transitions(s.initial_state(parse_process("c?x:NAT -> d!x -> STOP")))
        successor = t.resume(7)
        (t2,) = s.transitions(successor)
        assert t2.event == event("d", 7)

    def test_choice_combines_branches(self):
        s = sem()
        ts = s.transitions(s.initial_state(parse_process("a!0 -> STOP | b!1 -> STOP")))
        assert {t.event for t in ts if isinstance(t, Comm)} == {
            event("a", 0),
            event("b", 1),
        }

    def test_name_unfolds(self):
        s = sem("p = a!0 -> p")
        (t,) = s.transitions(s.initial_state(Name("p")))
        assert t.event == event("a", 0)

    def test_array_subscript_checked(self):
        s = sem("q[x:{0..1}] = a!x -> STOP")
        with pytest.raises(OperationalError, match="outside its domain"):
            s.transitions(s.initial_state(parse_process("q[5]")))


class TestSynchronisation:
    def test_output_meets_offer(self):
        s = sem("p = wire!7 -> STOP; q = wire?x:NAT -> out!x -> STOP; net = p || q")
        state = s.initial_state(Name("net"))
        (t,) = s.transitions(state)
        assert isinstance(t, Comm) and t.event == event("wire", 7)
        # and the received value flows on
        (t2,) = s.transitions(t.state)
        assert t2.event == event("out", 7)

    def test_receptive_sync_beyond_sample(self):
        # the whole point of symbolic offers: 1000 is far outside sample=2
        s = sem(
            "p = wire!1000 -> STOP; q = wire?x:NAT -> STOP; net = p || q",
            sample=2,
        )
        (t,) = s.transitions(s.initial_state(Name("net")))
        assert t.event == event("wire", 1000)

    def test_sync_blocked_by_domain(self):
        s = sem("p = wire!7 -> STOP; q = wire?x:{0..3} -> STOP; net = p || q")
        assert s.transitions(s.initial_state(Name("net"))) == []

    def test_output_output_sync_requires_equality(self):
        agree = sem("p = w!1 -> STOP; q = w!1 -> STOP; net = p || q")
        (t,) = agree.transitions(agree.initial_state(Name("net")))
        assert t.event == event("w", 1)
        disagree = sem("p = w!1 -> STOP; q = w!2 -> STOP; net = p || q")
        assert disagree.transitions(disagree.initial_state(Name("net"))) == []

    def test_input_input_sync_intersects_domains(self):
        s = sem("p = w?x:{0..5} -> STOP; q = w?y:{3..9} -> STOP; net = p || q")
        (t,) = s.transitions(s.initial_state(Name("net")))
        assert isinstance(t, Offer)
        assert isinstance(t.domain, IntersectionDomain)
        assert 4 in t.domain and 1 not in t.domain and 8 not in t.domain

    def test_private_channels_interleave(self):
        s = sem("p = a!0 -> STOP; q = b!0 -> STOP; net = p || q")
        ts = s.transitions(s.initial_state(Name("net")))
        assert {t.event for t in ts} == {event("a", 0), event("b", 0)}

    def test_shared_channel_cannot_fire_alone(self):
        s = sem("p = w!0 -> STOP; q = w?x:NAT -> w!0 -> STOP; net = p || q")
        state = s.initial_state(Name("net"))
        (t,) = s.transitions(state)  # only the synchronised w.0
        assert t.event == event("w", 0)


class TestHiding:
    def test_hidden_comm_becomes_tau(self):
        s = sem(
            "p = w!0 -> done!1 -> STOP; q = w?x:NAT -> STOP;"
            "net = chan w; (p || q)"
        )
        (t,) = s.transitions(s.initial_state(Name("net")))
        assert isinstance(t, Tau)

    def test_visible_events_pass_through(self):
        s = sem(
            "p = w!0 -> done!1 -> STOP; q = w?x:NAT -> STOP;"
            "net = chan w; (p || q)"
        )
        state = s.initial_state(Name("net"))
        (tau,) = s.transitions(state)
        ts = s.transitions(tau.state)
        assert any(isinstance(t, Comm) and t.event == event("done", 1) for t in ts)

    def test_lone_hidden_offer_fires_silently(self):
        # §1.2 item 8 / §3.1: ⟦chan C; P⟧ = ⟦P⟧\C — a concealed input
        # happens with a non-determinate (sampled) value.
        s = sem("p = w?x:NAT -> d!x -> STOP; net = chan w; p", sample=2)
        ts = s.transitions(s.initial_state(Name("net")))
        assert all(isinstance(t, Tau) for t in ts)
        assert len(ts) == 2  # one τ per sampled value
        followups = {t2.event for t in ts for t2 in s.transitions(t.state)}
        assert followups == {event("d", 0), event("d", 1)}

    def test_each_hidden_offer_resumes_its_own_branch(self):
        # regression: late-binding bug once made all offers share one resume
        s = sem(
            "m1 = a?x:NAT -> done[1]!x -> STOP;"
            "m2 = b?x:NAT -> done[2]!x -> STOP;"
            "net = m1 || m2"
        )
        state = s.initial_state(Name("net"))
        offers = {t.channel.name: t for t in s.transitions(state)}
        after_a = offers["a"].resume(5)
        events = {
            t.event for t in s.transitions(after_a) if isinstance(t, Comm)
        }
        assert Event(Channel("done", 1), 5) in events


class TestSteps:
    def test_steps_expand_offers_with_sample(self):
        s = sem(sample=2)
        steps = s.steps(s.initial_state(parse_process("c?x:NAT -> STOP")))
        assert {st.event for st in steps} == {event("c", 0), event("c", 1)}

    def test_steps_are_sorted_and_deterministic(self):
        s = sem()
        state = s.initial_state(parse_process("b!1 -> STOP | a!0 -> STOP"))
        steps = s.steps(state)
        assert steps == s.steps(state)
        events = [repr(st.event) for st in steps]
        assert events == sorted(events)

    def test_internal_steps_first_have_none_event(self):
        s = sem("p = w!0 -> STOP; q = w?x:NAT -> STOP; net = chan w; (p || q)")
        (step,) = s.steps(s.initial_state(Name("net")))
        assert step.is_internal

"""Unit tests for single-run simulation."""

from repro.operational.scheduler import (
    DeterministicScheduler,
    RandomScheduler,
    SimulationRun,
    simulate,
)
from repro.operational.step import OperationalSemantics
from repro.process.ast import Name
from repro.process.parser import parse_definitions
from repro.traces.events import event


def sem(defs, sample=2):
    return OperationalSemantics(parse_definitions(defs), sample=sample)


class TestSimulate:
    def test_deterministic_copier_run(self):
        s = sem("copier = input?x:NAT -> wire!x -> copier")
        run = simulate(Name("copier"), s, max_steps=6, scheduler=DeterministicScheduler())
        assert run.trace == (
            event("input", 0),
            event("wire", 0),
        ) * 3
        assert not run.deadlocked

    def test_deadlock_detected(self):
        s = sem("p = a!0 -> STOP")
        run = simulate(Name("p"), s, max_steps=10)
        assert run.deadlocked
        assert run.trace == (event("a", 0),)

    def test_internal_steps_counted_not_traced(self):
        s = sem(
            "p = w!0 -> done!1 -> STOP; q = w?x:NAT -> STOP;"
            "net = chan w; (p || q)"
        )
        run = simulate(Name("net"), s, max_steps=10)
        assert run.internal_steps == 1
        assert run.trace == (event("done", 1),)
        assert run.full_history[0] is None

    def test_random_scheduler_reproducible_by_seed(self):
        s = sem("p = a!0 -> p | b!1 -> p")
        first = simulate(Name("p"), s, max_steps=20, scheduler=RandomScheduler(seed=42))
        second = simulate(Name("p"), s, max_steps=20, scheduler=RandomScheduler(seed=42))
        assert first.trace == second.trace

    def test_random_scheduler_explores_both_branches(self):
        s = sem("p = a!0 -> p | b!1 -> p")
        run = simulate(Name("p"), s, max_steps=50, scheduler=RandomScheduler(seed=1))
        channels = {e.channel.name for e in run.trace}
        assert channels == {"a", "b"}

    def test_max_steps_bounds_run_length(self):
        s = sem("p = a!0 -> p")
        run = simulate(Name("p"), s, max_steps=7)
        assert len(run.full_history) == 7

    def test_default_scheduler_is_seeded_random(self):
        s = sem("p = a!0 -> p | b!1 -> p")
        assert simulate(Name("p"), s, max_steps=9).trace == simulate(
            Name("p"), s, max_steps=9
        ).trace

    def test_run_is_named_tuple_with_final_state(self):
        s = sem("p = a!0 -> STOP")
        run = simulate(Name("p"), s, max_steps=5)
        assert isinstance(run, SimulationRun)
        assert not s.steps(run.final_state)

"""Unit tests for operational configurations."""


from repro.operational.state import ChanState, LeafState, ParallelState, lift
from repro.process.ast import Name
from repro.process.definitions import DefinitionList
from repro.process.parser import parse_definitions, parse_process
from repro.traces.events import Channel
from repro.values.environment import Environment

ENV = Environment()


class TestLift:
    def test_sequential_term_is_leaf(self):
        term = parse_process("a!0 -> STOP")
        state = lift(term, DefinitionList(), ENV)
        assert state == LeafState(term)

    def test_parallel_root_becomes_structural(self):
        defs = parse_definitions(
            "p = a!0 -> p; q = a?x:NAT -> q; net = p || q"
        )
        state = lift(parse_process("p || q"), defs, ENV)
        assert isinstance(state, ParallelState)
        assert state.x == {Channel("a")}
        assert state.shared == {Channel("a")}

    def test_chan_root(self):
        defs = parse_definitions("p = w!0 -> p")
        state = lift(parse_process("chan w; p"), defs, ENV)
        assert isinstance(state, ChanState)
        assert state.hidden == {Channel("w")}

    def test_name_whose_body_is_network_unfolds(self):
        defs = parse_definitions(
            "p = a!0 -> p; q = b!0 -> q; net = p || q"
        )
        state = lift(Name("net"), defs, ENV)
        assert isinstance(state, ParallelState)

    def test_name_with_sequential_body_stays_leaf(self):
        defs = parse_definitions("p = a!0 -> p")
        state = lift(Name("p"), defs, ENV)
        assert state == LeafState(Name("p"))

    def test_explicit_alphabets_respected(self):
        from repro.process.ast import Parallel
        from repro.process.channels import ChannelExpr, ChannelList

        term = Parallel(
            parse_process("a!0 -> STOP"),
            parse_process("b!0 -> STOP"),
            ChannelList([ChannelExpr("a"), ChannelExpr("shared")]),
            ChannelList([ChannelExpr("b"), ChannelExpr("shared")]),
        )
        state = lift(term, DefinitionList(), ENV)
        assert state.shared == {Channel("shared")}

    def test_alias_cycle_budget(self):
        defs = parse_definitions(
            "p = q; q = a!0 -> p", strict=True
        )
        # p aliases q whose body is sequential: fine.
        state = lift(Name("p"), defs, ENV)
        assert isinstance(state, LeafState)

    def test_states_are_hashable_and_equal_structurally(self):
        term = parse_process("a!0 -> STOP")
        assert hash(LeafState(term)) == hash(LeafState(term))
        p = ParallelState(LeafState(term), LeafState(term), frozenset(), frozenset())
        assert p == ParallelState(LeafState(term), LeafState(term), frozenset(), frozenset())

"""Unit tests for the exhaustive state-space explorer."""

import pytest

from repro.errors import BudgetExceeded
from repro.operational.explorer import Explorer, explore_traces
from repro.operational.step import OperationalSemantics
from repro.process.ast import Name
from repro.process.parser import parse_definitions
from repro.traces.events import EMPTY_TRACE, trace


def sem(defs, sample=2):
    return OperationalSemantics(parse_definitions(defs), sample=sample)


class TestVisibleTraces:
    def test_stop(self):
        s = sem("p = STOP")
        assert explore_traces(Name("p"), s, depth=3).traces == {EMPTY_TRACE}

    def test_prefix_chain(self):
        s = sem("p = a!0 -> b!1 -> STOP")
        t = explore_traces(Name("p"), s, depth=5)
        assert t.traces == {
            EMPTY_TRACE,
            trace(("a", 0)),
            trace(("a", 0), ("b", 1)),
        }

    def test_depth_bound_respected(self):
        s = sem("p = a!0 -> p")
        t = explore_traces(Name("p"), s, depth=3)
        assert t.depth() == 3

    def test_tau_cycle_terminates(self):
        # sender/receiver NACK loop: infinitely many τ-paths, finitely many
        # configurations.
        s = OperationalSemantics(
            parse_definitions(
                "p = w!0 -> p2; p2 = w?y:{NACK} -> p;"
                "r = w?x:{0} -> w!NACK -> r;"
                "net = chan w; (p || r)"
            ),
            sample=2,
        )
        t = explore_traces(Name("net"), s, depth=3)
        assert t.traces == {EMPTY_TRACE}  # pure internal chatter, no visible events

    def test_result_is_prefix_closed(self):
        s = sem("p = a!0 -> p | b!1 -> STOP")
        assert explore_traces(Name("p"), s, depth=4).is_prefix_closed()

    def test_state_budget_enforced(self):
        # a counter emitting ever-larger values is infinite-state
        s = sem("count[n:NAT] = c!n -> count[n+1]")
        from repro.process.ast import ArrayRef
        from repro.values.expressions import const

        with pytest.raises(BudgetExceeded, match="budget") as info:
            Explorer(s, max_states=50).visible_traces(ArrayRef("count", const(0)), 60)
        # the trip carries the sound partial result
        checkpoint = info.value.checkpoint
        assert checkpoint is not None
        assert checkpoint.phase == "explore"
        assert checkpoint.states_explored > 50

    def test_matches_denotational_semantics_on_network(self):
        from repro.semantics import SemanticsConfig, denote

        defs = parse_definitions(
            "copier = input?x:NAT -> wire!x -> copier;"
            "recopier = wire?y:NAT -> output!y -> recopier;"
            "net = chan wire; (copier || recopier)"
        )
        s = OperationalSemantics(defs, sample=2)
        operational = explore_traces(Name("net"), s, depth=4)
        denotational = denote(Name("net"), defs, config=SemanticsConfig(depth=4, sample=2))
        assert operational == denotational


class TestDeadlocks:
    def test_stop_deadlocks_immediately(self):
        s = sem("p = STOP")
        assert Explorer(s).find_deadlocks(Name("p"), depth=2) == [EMPTY_TRACE]

    def test_deadlock_after_trace(self):
        s = sem("p = a!0 -> STOP")
        deadlocks = Explorer(s).find_deadlocks(Name("p"), depth=2)
        assert trace(("a", 0)) in deadlocks

    def test_live_process_has_no_deadlock(self):
        s = sem("p = a!0 -> p")
        assert Explorer(s).find_deadlocks(Name("p"), depth=3) == []

    def test_mismatched_sync_deadlocks(self):
        # §4's motivating worry: a network that can do nothing at all
        s = sem("p = w!1 -> STOP; q = w?x:{2..3} -> STOP; net = p || q")
        assert Explorer(s).find_deadlocks(Name("net"), depth=2) == [EMPTY_TRACE]

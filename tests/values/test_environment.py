"""Unit tests for immutable environments (paper §3.2)."""

import pytest

from repro.errors import UnboundVariableError
from repro.values.environment import EMPTY, Environment


class TestBindLookup:
    def test_empty_lookup_raises(self):
        with pytest.raises(UnboundVariableError):
            Environment().lookup("x")

    def test_bind_then_lookup(self):
        env = Environment().bind("x", 3)
        assert env.lookup("x") == 3

    def test_bind_returns_new_environment(self):
        base = Environment().bind("x", 1)
        extended = base.bind("y", 2)
        assert "y" not in base
        assert extended.lookup("x") == 1
        assert extended.lookup("y") == 2

    def test_shadowing_is_innermost_wins(self):
        env = Environment().bind("x", 1).bind("x", 2)
        assert env.lookup("x") == 2

    def test_shadowing_does_not_mutate_outer(self):
        outer = Environment().bind("x", 1)
        inner = outer.bind("x", 2)
        assert outer.lookup("x") == 1
        assert inner.lookup("x") == 2

    def test_bind_all(self):
        env = Environment().bind_all({"x": 1, "y": 2})
        assert env.lookup("x") == 1
        assert env.lookup("y") == 2

    def test_bind_all_empty_returns_self(self):
        env = Environment().bind("x", 1)
        assert env.bind_all({}) is env

    def test_error_kind_in_message(self):
        with pytest.raises(UnboundVariableError, match="process name"):
            Environment().lookup("p", kind="process name")


class TestQueries:
    def test_contains(self):
        env = Environment().bind("x", 1)
        assert "x" in env
        assert "y" not in env
        assert 42 not in env  # non-string never contained

    def test_get_default(self):
        env = Environment().bind("x", 1)
        assert env.get("x") == 1
        assert env.get("y") is None
        assert env.get("y", "fallback") == "fallback"

    def test_names_sorted_and_deduplicated(self):
        env = Environment().bind("b", 1).bind("a", 2).bind("b", 3)
        assert env.names() == ("a", "b")

    def test_flatten_reflects_shadowing(self):
        env = Environment().bind("x", 1).bind("x", 9).bind("y", 2)
        assert env.flatten() == {"x": 9, "y": 2}

    def test_iter_yields_names(self):
        env = Environment().bind("x", 1).bind("y", 2)
        assert list(env) == ["x", "y"]

    def test_none_value_is_a_real_binding(self):
        env = Environment().bind("x", None)
        assert "x" in env
        assert env.lookup("x") is None

    def test_shared_empty_instance(self):
        assert EMPTY.names() == ()

    def test_repr_mentions_bindings(self):
        assert "x=1" in repr(Environment().bind("x", 1))

    def test_deep_chain_lookup(self):
        env = Environment()
        for i in range(200):
            env = env.bind(f"v{i}", i)
        assert env.lookup("v0") == 0
        assert env.lookup("v199") == 199

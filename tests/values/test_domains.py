"""Unit tests for value domains (paper §1.1 item 4)."""

import pytest

from repro.errors import DomainError
from repro.values.domains import (
    INT,
    NAT,
    FiniteDomain,
    IntegersDomain,
    NaturalsDomain,
    UnionDomain,
)


class TestFiniteDomain:
    def test_membership(self):
        d = FiniteDomain({"ACK", "NACK"})
        assert "ACK" in d
        assert "NACK" in d
        assert "SYN" not in d

    def test_enumeration_is_sorted_and_deterministic(self):
        d = FiniteDomain({3, 1, 2})
        assert d.sample(10) == (1, 2, 3)
        assert d.sample(10) == d.sample(10)

    def test_enumeration_respects_limit(self):
        d = FiniteDomain(range(100))
        assert d.sample(5) == (0, 1, 2, 3, 4)

    def test_mixed_value_enumeration_is_total_order(self):
        d = FiniteDomain({1, "a", (2, 3)})
        assert len(d.sample(10)) == 3

    def test_len_and_equality(self):
        assert len(FiniteDomain({1, 2})) == 2
        assert FiniteDomain({1, 2}) == FiniteDomain([2, 1])
        assert hash(FiniteDomain({1, 2})) == hash(FiniteDomain({2, 1}))

    def test_require_finite(self):
        assert FiniteDomain({1, 2}).require_finite() == frozenset({1, 2})

    def test_is_finite_flag(self):
        assert FiniteDomain({1}).is_finite

    def test_empty_finite_domain(self):
        d = FiniteDomain(())
        assert 0 not in d
        assert d.sample(5) == ()


class TestNaturalsDomain:
    def test_membership(self):
        assert 0 in NAT
        assert 17 in NAT
        assert -1 not in NAT
        assert "x" not in NAT
        assert True not in NAT  # bools are not naturals

    def test_enumeration(self):
        assert NAT.sample(4) == (0, 1, 2, 3)

    def test_not_finite(self):
        assert not NAT.is_finite
        with pytest.raises(DomainError):
            NAT.require_finite()

    def test_singleton_equality(self):
        assert NAT == NaturalsDomain()
        assert hash(NAT) == hash(NaturalsDomain())

    def test_repr(self):
        assert repr(NAT) == "NAT"


class TestIntegersDomain:
    def test_membership(self):
        assert -5 in INT
        assert 0 in INT
        assert "x" not in INT

    def test_zigzag_enumeration(self):
        assert INT.sample(5) == (0, -1, 1, -2, 2)

    def test_zero_limit(self):
        assert INT.sample(0) == ()

    def test_equality(self):
        assert INT == IntegersDomain()


class TestUnionDomain:
    def test_membership_across_parts(self):
        d = UnionDomain([FiniteDomain({"ACK"}), NAT])
        assert "ACK" in d
        assert 7 in d
        assert "NACK" not in d

    def test_enumeration_round_robin_no_starvation(self):
        d = UnionDomain([NAT, FiniteDomain({"ACK", "NACK"})])
        sample = d.sample(6)
        assert "ACK" in sample and "NACK" in sample

    def test_enumeration_deduplicates(self):
        d = UnionDomain([FiniteDomain({1, 2}), FiniteDomain({2, 3})])
        assert sorted(d.sample(10)) == [1, 2, 3]

    def test_finite_iff_all_parts_finite(self):
        assert UnionDomain([FiniteDomain({1}), FiniteDomain({2})]).is_finite
        assert not UnionDomain([FiniteDomain({1}), NAT]).is_finite

    def test_nested_unions_flatten(self):
        inner = UnionDomain([FiniteDomain({1}), FiniteDomain({2})])
        outer = UnionDomain([inner, FiniteDomain({3})])
        assert len(outer.parts) == 3

    def test_empty_union_rejected(self):
        with pytest.raises(DomainError):
            UnionDomain([])

    def test_union_method(self):
        d = FiniteDomain({1}).union(FiniteDomain({2}))
        assert 1 in d and 2 in d

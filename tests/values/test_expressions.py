"""Unit tests for the expression language (paper §1.1)."""

import pytest

from repro.errors import DomainError, EvaluationError, UnboundVariableError
from repro.values.domains import NAT, FiniteDomain
from repro.values.environment import Environment
from repro.values.expressions import (
    BinOp,
    Const,
    FuncCall,
    NamedSet,
    NatSet,
    RangeSet,
    SetLiteral,
    SetUnion,
    UnaryOp,
    Var,
    as_expr,
    const,
    var,
)

ENV = Environment().bind("x", 4).bind("y", 10).bind("i", 2)


class TestValueExpressions:
    def test_const_evaluates_to_itself(self):
        assert Const(3).evaluate(ENV) == 3
        assert Const("ACK").evaluate(ENV) == "ACK"

    def test_var_lookup(self):
        assert Var("x").evaluate(ENV) == 4

    def test_unbound_var_raises(self):
        with pytest.raises(UnboundVariableError):
            Var("z").evaluate(ENV)

    def test_paper_expression_3x_plus_y(self):
        # (3×x + y) from §1.1 item 3
        e = BinOp("+", BinOp("*", const(3), var("x")), var("y"))
        assert e.evaluate(ENV) == 22

    @pytest.mark.parametrize(
        "op,left,right,expected",
        [("+", 7, 3, 10), ("-", 7, 3, 4), ("*", 7, 3, 21), ("div", 7, 3, 2), ("mod", 7, 3, 1)],
    )
    def test_all_binary_operators(self, op, left, right, expected):
        assert BinOp(op, const(left), const(right)).evaluate(ENV) == expected

    def test_unknown_operator_rejected_at_construction(self):
        with pytest.raises(EvaluationError):
            BinOp("**", const(2), const(3))

    def test_division_by_zero_is_evaluation_error(self):
        with pytest.raises(EvaluationError):
            BinOp("div", const(1), const(0)).evaluate(ENV)

    def test_type_mismatch_is_evaluation_error(self):
        with pytest.raises(EvaluationError):
            BinOp("-", const("ACK"), const(1)).evaluate(ENV)

    def test_unary_negation(self):
        assert UnaryOp("-", var("x")).evaluate(ENV) == -4

    def test_func_call_evaluates_host_function(self):
        env = ENV.bind("v", lambda i: [0, 10, 20, 30][i])
        assert FuncCall("v", (var("i"),)).evaluate(env) == 20

    def test_func_call_non_callable_rejected(self):
        env = ENV.bind("v", 42)
        with pytest.raises(EvaluationError):
            FuncCall("v", (const(0),)).evaluate(env)

    def test_func_call_host_exception_wrapped(self):
        env = ENV.bind("v", lambda i: [0][i])
        with pytest.raises(EvaluationError):
            FuncCall("v", (const(5),)).evaluate(env)


class TestFreeVariablesAndSubstitution:
    def test_free_variables(self):
        e = BinOp("+", BinOp("*", const(3), var("x")), var("y"))
        assert e.free_variables() == {"x", "y"}

    def test_const_has_no_free_variables(self):
        assert Const(3).free_variables() == frozenset()

    def test_substitute_replaces_only_target(self):
        e = BinOp("+", var("x"), var("y"))
        e2 = e.substitute("x", const(1))
        assert e2.evaluate(Environment().bind("y", 2)) == 3

    def test_substitute_is_nonmutating(self):
        e = var("x")
        e.substitute("x", const(1))
        assert e == var("x")

    def test_substitute_in_func_call_args(self):
        e = FuncCall("v", (var("i"),)).substitute("i", const(0))
        assert e == FuncCall("v", (const(0),))

    def test_structural_equality_and_hash(self):
        a = BinOp("+", var("x"), const(1))
        b = BinOp("+", var("x"), const(1))
        assert a == b and hash(a) == hash(b)
        assert a != BinOp("+", var("x"), const(2))
        assert a != BinOp("-", var("x"), const(1))


class TestSetExpressions:
    def test_nat_set(self):
        assert NatSet().evaluate(ENV) is NAT

    def test_set_literal_evaluates_elements(self):
        m = SetLiteral((const("ACK"), const("NACK")))
        assert m.evaluate(ENV) == FiniteDomain({"ACK", "NACK"})

    def test_set_literal_with_variables(self):
        m = SetLiteral((var("x"), BinOp("+", var("x"), const(1))))
        assert m.evaluate(ENV) == FiniteDomain({4, 5})

    def test_range_set(self):
        assert RangeSet(const(0), const(3)).evaluate(ENV) == FiniteDomain({0, 1, 2, 3})

    def test_range_set_with_variable_bounds(self):
        assert RangeSet(const(0), var("i")).evaluate(ENV) == FiniteDomain({0, 1, 2})

    def test_empty_range(self):
        assert RangeSet(const(3), const(2)).evaluate(ENV) == FiniteDomain(())

    def test_range_non_integer_bounds_rejected(self):
        with pytest.raises(DomainError):
            RangeSet(const("a"), const("z")).evaluate(ENV)

    def test_named_set_resolved_from_environment(self):
        env = ENV.bind("M", FiniteDomain({1, 2}))
        assert NamedSet("M").evaluate(env) == FiniteDomain({1, 2})

    def test_named_set_wrong_binding_rejected(self):
        env = ENV.bind("M", 42)
        with pytest.raises(DomainError):
            NamedSet("M").evaluate(env)

    def test_set_union(self):
        env = ENV.bind("M", FiniteDomain({1}))
        u = SetUnion((NamedSet("M"), SetLiteral((const("ACK"),))))
        d = u.evaluate(env)
        assert 1 in d and "ACK" in d

    def test_set_union_single_part_unwraps(self):
        u = SetUnion((SetLiteral((const(1),)),))
        assert u.evaluate(ENV) == FiniteDomain({1})

    def test_set_free_variables(self):
        m = SetLiteral((var("x"),))
        assert m.free_variables() == {"x"}
        assert RangeSet(var("a"), var("b")).free_variables() == {"a", "b"}
        assert NamedSet("M").free_variables() == frozenset()

    def test_set_substitution(self):
        m = SetLiteral((var("x"),)).substitute("x", const(9))
        assert m.evaluate(ENV) == FiniteDomain({9})


class TestCoercion:
    def test_int_to_const(self):
        assert as_expr(3) == Const(3)

    def test_lowercase_identifier_to_var(self):
        assert as_expr("x") == Var("x")

    def test_uppercase_string_to_const(self):
        assert as_expr("ACK") == Const("ACK")

    def test_expr_passthrough(self):
        e = var("x")
        assert as_expr(e) is e

    def test_tuple_to_const(self):
        assert as_expr((1, 2)) == Const((1, 2))

    def test_unsupported_type_rejected(self):
        with pytest.raises(EvaluationError):
            as_expr(3.5j)

"""Request batching and cross-worker solved-system sharing.

Two serve-layer behaviours added with the process-parallel arena work:

* a ``check`` request whose ``spec`` is a *list* runs every assertion
  against one warm solved system in a single dispatch, returning a
  per-assertion ``verdicts`` array beside the same concatenated
  rendering the local CLI prints for a repeated ``--spec``;
* a worker that solves a system exports its roots as flat format-2
  segments, the supervisor keeps them in a bounded LRU, and ships them
  to other pool members ahead of matching requests — so a system is
  solved once per daemon, not once per worker.
"""

import threading

import pytest

from repro.cli import main
from repro.process.parser import parse_definitions
from repro.server.client import ServerClient
from repro.server.supervisor import Supervisor

COPIER = """
copier = input?x:NAT -> wire!x -> copier;
recopier = wire?y:NAT -> output!y -> recopier;
network = chan wire; (copier || recopier)
"""

SPECS = ["output <= input", "input <= output"]


@pytest.fixture
def copier_defs():
    return parse_definitions(COPIER)


@pytest.fixture
def daemon(tmp_path):
    supervisor = Supervisor(str(tmp_path / "repro.sock"), jobs=1)
    supervisor.start()
    yield supervisor
    supervisor.stop()


@pytest.fixture
def pool(tmp_path):
    """A two-worker daemon, for the sharing tests."""
    supervisor = Supervisor(str(tmp_path / "pool.sock"), jobs=2)
    supervisor.start()
    yield supervisor
    supervisor.stop()


def _client(supervisor, **kwargs):
    return ServerClient(supervisor.socket_path, **kwargs)


class TestBatching:
    def test_batch_matches_local_repeated_spec(
        self, daemon, copier_defs, tmp_path, capsys
    ):
        path = tmp_path / "copier.csp"
        path.write_text(COPIER)
        code = main(
            ["check", str(path), "--process", "network", "--depth", "4",
             "--spec", SPECS[0], "--spec", SPECS[1], "--no-cache"]
        )
        captured = capsys.readouterr()
        with _client(daemon) as client:
            response = client.check(
                copier_defs, SPECS, process="network", depth=4, no_cache=True
            )
        assert response["status"] == "OK"
        assert response["exit_code"] == code == 1
        assert response["stdout"] + "\n" == captured.out
        assert response["stderr"] == captured.err.rstrip("\n")

    def test_verdicts_arrive_in_request_order(self, daemon, copier_defs):
        with _client(daemon) as client:
            response = client.check(
                copier_defs, SPECS, process="network", depth=4, no_cache=True
            )
        verdicts = response["verdicts"]
        assert [v["spec"] for v in verdicts] == SPECS
        assert verdicts[0]["exit_code"] == 0
        assert verdicts[1]["exit_code"] == 1
        assert verdicts[0]["stdout"].startswith("HOLDS")
        assert verdicts[1]["stdout"].startswith("VIOLATED")

    def test_single_spec_still_renders_identically(self, daemon, copier_defs):
        with _client(daemon) as client:
            single = client.check(
                copier_defs, SPECS[0], process="network", depth=4,
                no_cache=True,
            )
            batched = client.check(
                copier_defs, [SPECS[0]], process="network", depth=4,
                no_cache=True,
            )
        assert single["stdout"] == batched["stdout"]
        assert single["exit_code"] == batched["exit_code"] == 0
        assert batched["verdicts"][0]["stdout"] == batched["stdout"]

    def test_non_string_spec_in_batch_is_rejected(self, daemon, copier_defs):
        with _client(daemon) as client:
            response = client.check(
                copier_defs, [SPECS[0], 7], process="network", no_cache=True
            )
        assert response["status"] == "ERROR"
        assert response["exit_code"] == 9


class TestWarmSharing:
    def _checks(self, supervisor, defs, n, spec="output <= input"):
        responses = []
        with _client(supervisor) as client:
            for _ in range(n):
                responses.append(
                    client.check(
                        defs, spec, process="network", depth=4, no_cache=True
                    )
                )
            stats = client.stats()
        return responses, stats

    def test_solved_payload_never_reaches_clients(self, daemon, copier_defs):
        responses, _ = self._checks(daemon, copier_defs, 2)
        for response in responses:
            assert "solved" not in response

    def test_roots_are_shipped_across_the_pool(self, pool, copier_defs):
        responses, stats = self._checks(pool, copier_defs, 6)
        assert stats["shared_systems"] >= 1
        assert stats["ships"] >= 1
        # verdicts stay byte-identical no matter which worker answered
        assert len({r["stdout"] for r in responses}) == 1
        assert {r["exit_code"] for r in responses} == {0}

    def test_concurrent_clients_agree(self, pool, copier_defs):
        """Both workers busy at once: whichever solves first seeds the
        shared store, and every verdict is still byte-identical."""
        results = []
        lock = threading.Lock()

        def one_client():
            with _client(pool) as client:
                response = client.check(
                    copier_defs, SPECS, process="network", depth=4,
                    no_cache=True,
                )
            with lock:
                results.append(response)

        threads = [threading.Thread(target=one_client) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({r["stdout"] for r in results}) == 1
        assert {r["exit_code"] for r in results} == {1}

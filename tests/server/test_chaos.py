"""Chaos tests: workers crash (injected fault, real ``kill -9``) and the
daemon must heal — respawn, re-dispatch, and answer byte-identically to
an undisturbed run."""

import os
import signal
import threading
import time

import pytest

from repro.process.parser import parse_definitions
from repro.runtime import faults as _faults
from repro.server.client import ServerClient
from repro.server.supervisor import Supervisor

COPIER = """
copier = input?x:NAT -> wire!x -> copier;
recopier = wire?y:NAT -> output!y -> recopier;
network = chan wire; (copier || recopier)
"""

PROTOCOL = """
sender = input?y:M -> q[y];
q[x:M] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x]);
receiver = wire?z:M -> (wire!ACK -> output!z -> receiver | wire!NACK -> receiver);
protocol = chan wire; (sender || receiver)
"""


@pytest.fixture
def copier_defs():
    return parse_definitions(COPIER)


def _reference(defs, spec, process, **kwargs):
    """The undisturbed verdict, computed in-process the same way a
    worker computes it (shared renderers), as (stdout, stderr, code)."""
    from repro.server import worker
    from repro.server.protocol import query

    request = query("check", defs, process=process, spec=spec, **kwargs)
    request["id"] = "reference"
    response = worker.run_query(request)
    return response["stdout"], response["stderr"], response["exit_code"]


class TestInjectedCrash:
    def test_worker_exit_mid_request_heals(self, tmp_path, copier_defs):
        # Every first-generation worker is armed to die (os._exit, no
        # response, no cleanup) on its first request; respawned workers
        # are clean.  The client must still get the right verdict.
        supervisor = Supervisor(
            str(tmp_path / "c.sock"), jobs=1, inject="serve.worker_exit:1"
        )
        supervisor.start()
        try:
            with ServerClient(supervisor.socket_path) as client:
                response = client.check(
                    copier_defs, "wire <= input", process="copier",
                    no_cache=True,
                )
            expected = _reference(
                copier_defs, "wire <= input", "copier", no_cache=True
            )
            assert response["status"] == "OK"
            assert (
                response["stdout"],
                response["stderr"],
                response["exit_code"],
            ) == expected
            assert response["attempts"] == 2  # crash, respawn, retry
            assert supervisor.crashes == 1
            assert supervisor.respawns == 1
        finally:
            supervisor.stop()

    def test_bad_inject_spec_fails_at_startup(self, tmp_path):
        with pytest.raises(ValueError, match="unknown fault site"):
            Supervisor(str(tmp_path / "x.sock"), inject="no.such.site")

    def test_crashes_beyond_max_attempts_surface(self, tmp_path, copier_defs):
        # dispatch fault fires on every attempt: after max_attempts the
        # client gets a structured server error, not a hang.
        supervisor = Supervisor(
            str(tmp_path / "m.sock"), jobs=1, max_attempts=2
        )
        supervisor.start()
        try:
            with _faults.inject(
                _AlwaysPlan("serve.dispatch")
            ), ServerClient(supervisor.socket_path) as client:
                response = client.check(
                    copier_defs, "wire <= input", process="copier",
                    no_cache=True,
                )
            assert response["status"] == "ERROR"
            assert response["exit_code"] == 9
            assert "2 dispatch attempt" in response["stderr"]
        finally:
            supervisor.stop()


class _AlwaysPlan(_faults.FaultPlan):
    """A plan that fires on *every* visit of its site (the stock plan
    fires once) — models a fault that does not go away with retries."""

    def visit(self, site: str) -> None:
        self.total += 1
        self.counts[site] = self.counts.get(site, 0) + 1
        if site == self.site:
            raise _faults.FaultInjected(site, self.counts[site])


class TestDispatchFaults:
    @pytest.mark.parametrize("after", [1, 2])
    def test_nth_dispatch_fault_is_transparent(
        self, tmp_path, copier_defs, after
    ):
        # The dispatch fault fires once, on the Nth dispatch attempt
        # overall; whichever request it lands on is transparently
        # retried on a fresh worker and the client never notices.
        supervisor = Supervisor(str(tmp_path / "d.sock"), jobs=1)
        supervisor.start()
        expected = _reference(
            copier_defs, "wire <= input", "copier", no_cache=True
        )
        try:
            with _faults.inject(
                _faults.FaultPlan(site="serve.dispatch", after=after)
            ), ServerClient(supervisor.socket_path) as client:
                for _ in range(3):
                    response = client.check(
                        copier_defs, "wire <= input", process="copier",
                        no_cache=True,
                    )
                    assert response["status"] == "OK"
                    assert (
                        response["stdout"],
                        response["stderr"],
                        response["exit_code"],
                    ) == expected
            assert supervisor.retries == 1
        finally:
            supervisor.stop()


class TestRealKill:
    @pytest.mark.slow
    def test_sigkill_mid_request_heals(self, tmp_path):
        # The genuine article: SIGKILL the only worker while it is deep
        # in a multi-second query.  The supervisor must notice the dead
        # connection, respawn, re-dispatch, and the answer must equal
        # the undisturbed run's.
        defs = parse_definitions(PROTOCOL)
        supervisor = Supervisor(str(tmp_path / "k.sock"), jobs=1)
        supervisor.start()
        result = {}

        def ask():
            with ServerClient(
                supervisor.socket_path, timeout=120.0
            ) as client:
                result["response"] = client.check(
                    defs, "output <= input", process="protocol",
                    sets=["M=0,1"], depth=17, no_cache=True,
                )

        thread = threading.Thread(target=ask, daemon=True)
        try:
            with ServerClient(supervisor.socket_path) as control:
                victim = control.stats()["workers"][0]["pid"]
                thread.start()
                # wait until the query is actually in flight
                for _ in range(200):
                    if supervisor._idle.qsize() == 0:
                        break
                    time.sleep(0.01)
                time.sleep(0.3)  # let it get deep into the computation
                os.kill(victim, signal.SIGKILL)
                thread.join(timeout=120)
                assert not thread.is_alive()
                response = result["response"]
                stats = control.stats()
            expected = _reference(
                defs, "output <= input", "protocol",
                sets=["M=0,1"], depth=17, no_cache=True,
            )
            assert response["status"] == "OK"
            assert (
                response["stdout"],
                response["stderr"],
                response["exit_code"],
            ) == expected
            assert response["pid"] != victim  # answered by the respawn
            assert stats["crashes"] >= 1
        finally:
            supervisor.stop()

    def test_worker_killed_while_idle_is_replaced_on_demand(
        self, tmp_path, copier_defs
    ):
        supervisor = Supervisor(str(tmp_path / "i.sock"), jobs=1)
        supervisor.start()
        try:
            with ServerClient(supervisor.socket_path) as client:
                victim = client.stats()["workers"][0]["pid"]
                os.kill(victim, signal.SIGKILL)
                # no health-sweep wait needed: _acquire notices the
                # corpse and respawns before dispatching
                response = client.check(
                    copier_defs, "wire <= input", process="copier",
                    no_cache=True,
                )
            assert response["status"] == "OK"
            assert response["exit_code"] == 0
            assert response["pid"] != victim
        finally:
            supervisor.stop()

"""Unit tests of the daemon wire protocol (framing + payloads)."""

import io
import json

import pytest

from repro.errors import ServerError
from repro.process.parser import parse_definitions
from repro.runtime.governor import Budget
from repro.server import protocol

COPIER = """
copier = input?x:NAT -> wire!x -> copier;
recopier = wire?y:NAT -> output!y -> recopier;
network = chan wire; (copier || recopier)
"""


class _Stream(io.BytesIO):
    def flush(self):  # BytesIO.flush is a no-op already; keep explicit
        pass


def _round_trip(payload):
    stream = _Stream()
    protocol.send_frame(stream, payload)
    stream.seek(0)
    return protocol.recv_frame(stream)


class TestFraming:
    def test_round_trip(self):
        payload = {"op": "ping", "id": "abc", "nested": {"depth": 5}}
        assert _round_trip(payload) == payload

    def test_unicode_survives(self):
        payload = {"stdout": "169 traces (depth ≤ 6):\n  ⟨input.0⟩"}
        assert _round_trip(payload) == payload

    def test_eof_returns_none(self):
        assert protocol.recv_frame(_Stream()) is None

    def test_torn_frame_returns_none(self):
        # A peer that died mid-write leaves bytes without the newline:
        # that is a lost connection (retryable), not a short message.
        stream = _Stream(b'{"op": "ping"')
        assert protocol.recv_frame(stream) is None

    def test_garbage_raises(self):
        stream = _Stream(b"not json at all\n")
        with pytest.raises(ServerError, match="malformed"):
            protocol.recv_frame(stream)

    def test_non_object_raises(self):
        stream = _Stream(b"[1,2,3]\n")
        with pytest.raises(ServerError, match="not an object"):
            protocol.recv_frame(stream)

    @pytest.mark.slow
    def test_oversized_send_raises(self):
        huge = {"blob": "x" * (protocol.MAX_FRAME + 1)}
        with pytest.raises(ServerError, match="exceeds"):
            protocol.send_frame(_Stream(), huge)

    def test_multiple_frames_in_sequence(self):
        stream = _Stream()
        protocol.send_frame(stream, {"n": 1})
        protocol.send_frame(stream, {"n": 2})
        stream.seek(0)
        assert protocol.recv_frame(stream) == {"n": 1}
        assert protocol.recv_frame(stream) == {"n": 2}
        assert protocol.recv_frame(stream) is None


class TestQueryPayload:
    def test_definitions_travel_decodably(self):
        from repro import serialize
        from repro.process.definitions import DefinitionList

        defs = parse_definitions(COPIER)
        payload = _round_trip(
            protocol.query("check", defs, spec="wire <= input")
        )
        decoded = serialize.decode(payload["definitions"])
        assert isinstance(decoded, DefinitionList)
        assert sorted(decoded.names()) == sorted(defs.names())

    def test_sets_are_sorted_like_the_cli(self):
        defs = parse_definitions(COPIER)
        payload = protocol.query(
            "check", defs, spec="x <= y", sets=["Z=1", "A=0"]
        )
        assert payload["sets"] == ["A=0", "Z=1"]

    def test_budget_travels_as_spec(self):
        defs = parse_definitions(COPIER)
        payload = protocol.query(
            "traces", defs, budget=Budget(deadline=3.5, max_nodes=100)
        )
        budget = Budget.from_spec(payload["budget"])
        assert budget.deadline == 3.5
        assert budget.max_nodes == 100
        assert budget.max_states is None

    def test_no_budget_means_no_key(self):
        defs = parse_definitions(COPIER)
        assert "budget" not in protocol.query("traces", defs)

    def test_payload_is_json_clean(self):
        defs = parse_definitions(COPIER)
        payload = protocol.query("check", defs, spec="wire <= input")
        assert json.loads(json.dumps(payload)) == payload


class TestErrorResponse:
    def test_shape_matches_cli_stderr(self):
        response = protocol.error_response("rid", 3, "unbound set name: 'M'")
        assert response["status"] == "ERROR"
        assert response["exit_code"] == 3
        assert response["stderr"] == "error: unbound set name: 'M'"
        assert response["stdout"] == ""

    def test_extra_fields_pass_through(self):
        response = protocol.error_response(None, 9, "boom", attempts=3)
        assert response["attempts"] == 3

"""End-to-end tests of the serve daemon: an in-process supervisor with
real worker subprocesses, driven through the real client."""

import os
import threading
import time

import pytest

from repro.cli import main
from repro.errors import Overloaded
from repro.process.parser import parse_definitions
from repro.runtime.governor import Budget
from repro.server.client import ServerClient
from repro.server.supervisor import Supervisor

COPIER = """
copier = input?x:NAT -> wire!x -> copier;
recopier = wire?y:NAT -> output!y -> recopier;
network = chan wire; (copier || recopier)
"""

PROTOCOL = """
sender = input?y:M -> q[y];
q[x:M] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x]);
receiver = wire?z:M -> (wire!ACK -> output!z -> receiver | wire!NACK -> receiver);
protocol = chan wire; (sender || receiver)
"""


@pytest.fixture
def copier_defs():
    return parse_definitions(COPIER)


@pytest.fixture
def daemon(tmp_path):
    """One supervisor on a tmp socket; stopped (and its workers reaped)
    even when the test body fails."""
    supervisor = Supervisor(str(tmp_path / "repro.sock"), jobs=1)
    supervisor.start()
    yield supervisor
    supervisor.stop()


def _client(supervisor, **kwargs):
    return ServerClient(supervisor.socket_path, **kwargs)


class TestBasics:
    def test_ping(self, daemon):
        with _client(daemon) as client:
            response = client.ping()
        assert response["status"] == "OK"
        assert response["pid"] == os.getpid()  # supervisor answers pings

    def test_stats_reports_pool(self, daemon):
        with _client(daemon) as client:
            stats = client.stats()
        assert len(stats["workers"]) == 1
        assert stats["workers"][0]["alive"]
        assert stats["queue_limit"] == 16

    def test_unknown_op_is_server_error(self, daemon):
        with _client(daemon) as client:
            response = client.call({"op": "frobnicate"})
        assert response["status"] == "ERROR"
        assert response["exit_code"] == 9

    def test_stale_socket_is_replaced(self, tmp_path):
        path = tmp_path / "stale.sock"
        path.write_text("")  # a dead daemon's leftover
        supervisor = Supervisor(str(path), jobs=1)
        try:
            supervisor.start()
            with ServerClient(str(path)) as client:
                assert client.ping()["status"] == "OK"
        finally:
            supervisor.stop()


class TestVerdictParity:
    """The byte-identity contract: a remote query prints exactly what
    the local CLI would have."""

    def _local(self, capsys, argv):
        code = main(argv)
        captured = capsys.readouterr()
        return captured.out, captured.err, code

    def test_check_holds(self, daemon, copier_defs, tmp_path, capsys):
        path = tmp_path / "copier.csp"
        path.write_text(COPIER)
        out, err, code = self._local(
            capsys,
            ["check", str(path), "--process", "copier",
             "--spec", "wire <= input", "--no-cache"],
        )
        with _client(daemon) as client:
            response = client.check(
                copier_defs, "wire <= input", process="copier", no_cache=True
            )
        assert response["status"] == "OK"
        assert response["exit_code"] == code == 0
        assert response["stdout"] + "\n" == out
        assert response["stderr"] == err == ""

    def test_check_violated(self, daemon, copier_defs, tmp_path, capsys):
        path = tmp_path / "copier.csp"
        path.write_text(COPIER)
        out, err, code = self._local(
            capsys,
            ["check", str(path), "--process", "copier",
             "--spec", "input <= wire", "--no-cache"],
        )
        with _client(daemon) as client:
            response = client.check(
                copier_defs, "input <= wire", process="copier", no_cache=True
            )
        assert response["exit_code"] == code == 1
        assert response["stdout"] + "\n" == out

    def test_traces_listing(self, daemon, copier_defs, tmp_path, capsys):
        path = tmp_path / "copier.csp"
        path.write_text(COPIER)
        out, err, code = self._local(
            capsys,
            ["traces", str(path), "--process", "copier", "--depth", "3",
             "--no-cache"],
        )
        with _client(daemon) as client:
            response = client.traces(
                copier_defs, process="copier", depth=3, no_cache=True
            )
        assert response["exit_code"] == code == 0
        assert response["stdout"] + "\n" == out

    def test_cli_server_flag_routes(self, daemon, tmp_path, capsys):
        path = tmp_path / "copier.csp"
        path.write_text(COPIER)
        local_out, _, _ = self._local(
            capsys,
            ["check", str(path), "--process", "copier",
             "--spec", "wire <= input", "--no-cache"],
        )
        code = main(
            ["check", str(path), "--process", "copier",
             "--spec", "wire <= input", "--no-cache",
             "--server", daemon.socket_path]
        )
        assert code == 0
        assert capsys.readouterr().out == local_out

    def test_semantic_error_maps_like_local(self, daemon, tmp_path, capsys):
        # protocol without --set M=… fails in the semantics layer: the
        # daemon must return the same exit code and error line, and the
        # worker must survive to serve the next query.
        defs = parse_definitions(PROTOCOL)
        path = tmp_path / "protocol.csp"
        path.write_text(PROTOCOL)
        _, err, code = self._local(
            capsys,
            ["check", str(path), "--process", "protocol",
             "--spec", "output <= input", "--no-cache"],
        )
        with _client(daemon) as client:
            response = client.check(
                defs, "output <= input", process="protocol", no_cache=True
            )
            assert response["status"] == "ERROR"
            assert response["exit_code"] == code == 3
            assert response["stderr"] + "\n" == err
            # the bad query did not poison the worker
            good = client.check(
                defs, "output <= input", process="protocol",
                sets=["M=0,1"], no_cache=True,
            )
        assert good["exit_code"] == 0
        assert good["stdout"].startswith("HOLDS")

    def test_unknown_process_is_parse_exit(self, daemon, copier_defs):
        with _client(daemon) as client:
            response = client.check(
                copier_defs, "wire <= input", process="ghost", no_cache=True
            )
        assert response["exit_code"] == 2
        assert "no process named 'ghost'" in response["stderr"]

    def test_budget_trip_is_partial(self, daemon, copier_defs):
        with _client(daemon) as client:
            response = client.check(
                copier_defs,
                "wire <= input",
                process="copier",
                depth=8,
                budget=Budget(deadline=0.0),
                no_cache=True,
            )
        assert response["status"] == "OK"
        assert response["exit_code"] == 4
        assert response["stdout"].startswith("PARTIAL")
        assert "budget exhausted" in response["stderr"]


class TestWarmth:
    def test_repeated_queries_reuse_worker(self, daemon, copier_defs):
        with _client(daemon) as client:
            first = client.check(
                copier_defs, "wire <= input", process="copier", no_cache=True
            )
            second = client.check(
                copier_defs, "wire <= input", process="copier", no_cache=True
            )
            stats = client.stats()
        assert first["stdout"] == second["stdout"]
        assert first["pid"] == second["pid"]  # same warm worker
        assert stats["respawns"] == 0

    def test_max_requests_recycles_worker(self, tmp_path, copier_defs):
        supervisor = Supervisor(
            str(tmp_path / "r.sock"), jobs=1, max_requests=1
        )
        supervisor.start()
        try:
            with _client(supervisor) as client:
                first = client.check(
                    copier_defs, "wire <= input", process="copier",
                    no_cache=True,
                )
                second = client.check(
                    copier_defs, "wire <= input", process="copier",
                    no_cache=True,
                )
        finally:
            supervisor.stop()
        assert first["stdout"] == second["stdout"]
        assert first["pid"] != second["pid"]  # retired after one request


class TestIdempotency:
    def test_duplicate_id_replays_cached_response(self, daemon, copier_defs):
        from repro.server import protocol as proto

        request = proto.query(
            "check", copier_defs, process="copier", spec="wire <= input",
            no_cache=True,
        )
        request["id"] = "fixed-request-id"
        with _client(daemon) as client:
            first = client.call(dict(request))
            second = client.call(dict(request))
            stats = client.stats()
        assert first == second  # replayed verbatim, not recomputed
        assert stats["deduped"] == 1
        # only one query actually reached a worker
        assert sum(w["served"] for w in stats["workers"]) == 1

    def test_distinct_ids_recompute(self, daemon, copier_defs):
        with _client(daemon) as client:
            client.check(
                copier_defs, "wire <= input", process="copier", no_cache=True
            )
            client.check(
                copier_defs, "wire <= input", process="copier", no_cache=True
            )
            stats = client.stats()
        assert stats["deduped"] == 0
        assert sum(w["served"] for w in stats["workers"]) == 2


class TestLoadShedding:
    @pytest.mark.slow
    def test_overloaded_when_queue_full(self, tmp_path, copier_defs):
        # One worker, zero queue slots: while the worker chews on a
        # governed slow query, the next request must be shed explicitly.
        supervisor = Supervisor(str(tmp_path / "o.sock"), jobs=1, queue_limit=0)
        supervisor.start()
        slow_done = threading.Event()

        def slow():
            try:
                with _client(supervisor) as client:
                    # deadline-governed: occupies the worker ~1.5 s, then
                    # returns a sound PARTIAL (so the test stays green).
                    client.check(
                        copier_defs, "wire <= input", process="copier",
                        depth=40, budget=Budget(deadline=1.5), no_cache=True,
                    )
            finally:
                slow_done.set()

        thread = threading.Thread(target=slow, daemon=True)
        try:
            thread.start()
            # wait until the slow query actually occupies the worker
            with _client(supervisor) as client:
                for _ in range(100):
                    if supervisor._idle.qsize() == 0:
                        break
                    time.sleep(0.02)
                with pytest.raises(Overloaded, match="overloaded"):
                    client.check(
                        copier_defs, "wire <= input", process="copier",
                        no_cache=True,
                    )
            slow_done.wait(timeout=30)
            assert supervisor.shed >= 1
        finally:
            thread.join(timeout=30)
            supervisor.stop()

    @pytest.mark.slow
    def test_overloaded_maps_to_exit_8_via_cli(self, tmp_path, copier_defs, capsys):
        supervisor = Supervisor(str(tmp_path / "o.sock"), jobs=1, queue_limit=0)
        supervisor.start()
        path = tmp_path / "copier.csp"
        path.write_text(COPIER)
        slow_done = threading.Event()

        def slow():
            try:
                with _client(supervisor) as client:
                    client.check(
                        copier_defs, "wire <= input", process="copier",
                        depth=40, budget=Budget(deadline=1.5), no_cache=True,
                    )
            finally:
                slow_done.set()

        thread = threading.Thread(target=slow, daemon=True)
        try:
            thread.start()
            for _ in range(100):
                if supervisor._idle.qsize() == 0:
                    break
                time.sleep(0.02)
            code = main(
                ["check", str(path), "--process", "copier",
                 "--spec", "wire <= input", "--no-cache",
                 "--server", supervisor.socket_path]
            )
            assert code == 8
            assert "overloaded" in capsys.readouterr().err
            slow_done.wait(timeout=30)
        finally:
            thread.join(timeout=30)
            supervisor.stop()

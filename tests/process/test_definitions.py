"""Unit tests for process equations and definition lists (§1.1 items 7–9)."""

import pytest

from repro.errors import DefinitionError
from repro.process.ast import STOP, ArrayRef, Choice, Name, input_, output
from repro.process.definitions import ArrayDef, DefinitionList, ProcessDef
from repro.values.expressions import NamedSet, NatSet, const, var


def copier_def():
    return ProcessDef(
        "copier", input_("input", "x", NatSet(), output("wire", var("x"), Name("copier")))
    )


class TestProcessDef:
    def test_fields(self):
        d = copier_def()
        assert d.name == "copier"
        assert not d.is_array

    def test_equality(self):
        assert copier_def() == copier_def()


class TestArrayDef:
    def test_instantiate_substitutes_parameter(self):
        # q[x:M] = wire!x -> q[x];   q[3] = wire!3 -> q[3]
        d = ArrayDef(
            "q", "x", NamedSet("M"), output("wire", var("x"), ArrayRef("q", var("x")))
        )
        inst = d.instantiate(const(3))
        assert inst == output("wire", const(3), ArrayRef("q", const(3)))

    def test_is_array(self):
        d = ArrayDef("q", "x", NamedSet("M"), STOP)
        assert d.is_array


class TestDefinitionList:
    def test_lookup(self):
        defs = DefinitionList([copier_def()])
        assert defs.lookup("copier") == copier_def()
        assert "copier" in defs
        assert len(defs) == 1

    def test_lookup_undefined_raises(self):
        with pytest.raises(DefinitionError, match="undefined"):
            DefinitionList().lookup("ghost")

    def test_lookup_kind_mismatch(self):
        defs = DefinitionList(
            [copier_def(), ArrayDef("q", "x", NamedSet("M"), output("w", var("x"), STOP))]
        )
        with pytest.raises(DefinitionError, match="process array"):
            defs.lookup_process("q")
        with pytest.raises(DefinitionError, match="not a process array"):
            defs.lookup_array("copier")

    def test_duplicate_names_rejected(self):
        with pytest.raises(DefinitionError, match="duplicate"):
            DefinitionList([copier_def(), ProcessDef("copier", STOP)])

    def test_dangling_reference_rejected(self):
        with pytest.raises(DefinitionError, match="undefined process"):
            DefinitionList([ProcessDef("p", output("c", 0, Name("ghost")))])

    def test_dangling_reference_allowed_when_not_strict(self):
        defs = DefinitionList(
            [ProcessDef("p", output("c", 0, Name("ghost")))], strict=False
        )
        assert "p" in defs

    def test_unguarded_self_recursion_rejected(self):
        # p = p | a!0 -> STOP reaches itself without communicating
        with pytest.raises(DefinitionError, match="unguarded"):
            DefinitionList([ProcessDef("p", Choice(Name("p"), output("a", 0, STOP)))])

    def test_unguarded_mutual_cycle_rejected(self):
        with pytest.raises(DefinitionError, match="unguarded"):
            DefinitionList([ProcessDef("p", Name("q")), ProcessDef("q", Name("p"))])

    def test_unguarded_alias_without_cycle_accepted(self):
        # p = q is fine when q itself is guarded
        defs = DefinitionList(
            [ProcessDef("p", Name("q")), ProcessDef("q", output("a", 0, Name("q")))]
        )
        assert len(defs) == 2

    def test_guard_check_can_be_disabled(self):
        defs = DefinitionList(
            [ProcessDef("p", Name("p"))], require_guarded=False
        )
        assert "p" in defs

    def test_merge(self):
        d1 = DefinitionList([copier_def()])
        d2 = DefinitionList([ProcessDef("stopper", STOP)])
        merged = d1.merge(d2)
        assert merged.names() == {"copier", "stopper"}

    def test_merge_name_clash_rejected(self):
        d1 = DefinitionList([copier_def()])
        with pytest.raises(DefinitionError):
            d1.merge(d1)

    def test_iteration_preserves_order(self):
        defs = DefinitionList([ProcessDef("a", STOP), ProcessDef("b", STOP)])
        assert [d.name for d in defs] == ["a", "b"]

"""Unit tests for static analysis of process expressions."""

import pytest

from repro.errors import SemanticsError
from repro.process.analysis import (
    EntryKey,
    channel_names,
    concrete_channels,
    condense_entries,
    consult_depths,
    definition_entries,
    entry_dependencies,
    free_variables,
    has_guarded_recursion,
    is_guarded,
    referenced_names,
    scc_ranks,
    unguarded_references,
    uses_chan,
)
from repro.process.ast import (
    STOP,
    ArrayRef,
    Chan,
    Choice,
    Name,
    Parallel,
    input_,
    output,
)
from repro.process.channels import ChannelExpr, ChannelList
from repro.process.definitions import DefinitionList, ProcessDef
from repro.process.parser import parse_definitions, parse_process
from repro.traces.events import Channel
from repro.values.environment import Environment
from repro.values.expressions import NatSet, const


class TestReferencedNames:
    def test_collects_names_and_array_refs(self):
        p = Choice(Name("p"), output("c", 0, ArrayRef("q", const(1))))
        assert referenced_names(p) == {"p", "q"}

    def test_stop_references_nothing(self):
        assert referenced_names(STOP) == frozenset()

    def test_through_all_constructs(self):
        p = Chan(
            ChannelList([ChannelExpr("w")]),
            Parallel(Name("a"), input_("c", "x", NatSet(), Name("b"))),
        )
        assert referenced_names(p) == {"a", "b"}


class TestGuardedness:
    def test_prefix_guards(self):
        assert is_guarded(output("c", 0, Name("p")), frozenset({"p"}))
        assert is_guarded(input_("c", "x", NatSet(), Name("p")), frozenset({"p"}))

    def test_bare_name_unguarded(self):
        assert not is_guarded(Name("p"), frozenset({"p"}))
        assert unguarded_references(Choice(Name("p"), STOP), frozenset({"p"})) == {"p"}

    def test_choice_parallel_chan_do_not_guard(self):
        assert not is_guarded(Choice(Name("p"), STOP), frozenset({"p"}))
        assert not is_guarded(Parallel(Name("p"), STOP), frozenset({"p"}))
        assert not is_guarded(
            Chan(ChannelList([ChannelExpr("w")]), Name("p")), frozenset({"p"})
        )

    def test_graph_cycle_detection(self):
        guarded = DefinitionList(
            [ProcessDef("p", Name("q")), ProcessDef("q", output("a", 0, Name("p")))]
        )
        assert has_guarded_recursion(guarded)

    def test_graph_cycle_detected_as_unguarded(self):
        cyclic = DefinitionList(
            [ProcessDef("p", Name("q")), ProcessDef("q", Name("p"))],
            require_guarded=False,
        )
        assert not has_guarded_recursion(cyclic)


class TestChannelNames:
    def test_direct(self):
        p = parse_process("input?x:NAT -> wire!x -> STOP")
        assert channel_names(p) == {"input", "wire"}

    def test_follows_definitions(self):
        defs = parse_definitions("copier = input?x:NAT -> wire!x -> copier")
        assert channel_names(Name("copier"), defs) == {"input", "wire"}

    def test_recursion_safe(self):
        defs = parse_definitions(
            "p = a!0 -> q; q = b!0 -> p"
        )
        assert channel_names(Name("p"), defs) == {"a", "b"}

    def test_chan_names_included(self):
        p = parse_process("chan wire; STOP")
        assert channel_names(p) == {"wire"}

    def test_unknown_name_without_defs_ignored(self):
        assert channel_names(Name("ghost")) == frozenset()


class TestConcreteChannels:
    ENV = Environment()

    def test_simple(self):
        p = parse_process("input?x:NAT -> wire!x -> STOP")
        assert concrete_channels(p, None, self.ENV) == {
            Channel("input"),
            Channel("wire"),
        }

    def test_array_parameter_resolved(self):
        # mult[2] uses row[2], col[1], col[2]
        defs = parse_definitions(
            "mult[i:{1..3}] = row[i]?x:NAT -> col[i-1]?y:NAT -> col[i]!x+y -> mult[i]",
        )
        chans = concrete_channels(ArrayRef("mult", const(2)), defs, self.ENV)
        assert chans == {Channel("row", 2), Channel("col", 1), Channel("col", 2)}

    def test_input_dependent_channel_rejected(self):
        # the channel d[x] depends on the received value x
        p = parse_process("c?x:NAT -> d[x]!0 -> STOP")
        with pytest.raises(SemanticsError, match="annotate"):
            concrete_channels(p, None, self.ENV)

    def test_input_variable_not_needed_is_fine(self):
        p = parse_process("c?x:NAT -> d!x -> STOP")
        assert concrete_channels(p, None, self.ENV) == {Channel("c"), Channel("d")}

    def test_chan_list_channels_included(self):
        p = parse_process("chan col[0..1]; STOP")
        assert concrete_channels(p, None, self.ENV) == {
            Channel("col", 0),
            Channel("col", 1),
        }

    def test_recursive_array_terminates(self):
        defs = parse_definitions("zeroes = col[0]!0 -> zeroes")
        assert concrete_channels(Name("zeroes"), defs, self.ENV) == {Channel("col", 0)}


class TestFreeVariables:
    def test_delegates_to_ast(self):
        p = parse_process("wire!x -> STOP")
        assert free_variables(p) == {"x"}


class TestUsesChan:
    def test_direct_chan(self):
        assert uses_chan(parse_process("chan wire; STOP"))

    def test_chan_free(self):
        assert not uses_chan(parse_process("a!0 -> (b!1 -> STOP | c?x:NAT -> STOP)"))

    def test_follows_definitions(self):
        defs = parse_definitions(
            "net = chan wire; STOP; top = a!0 -> net"
        )
        assert uses_chan(Name("top"), defs)
        assert not uses_chan(Name("top"))  # without defs the name is opaque

    def test_recursion_safe(self):
        defs = parse_definitions("p = a!0 -> q; q = b!0 -> p")
        assert not uses_chan(Name("p"), defs)


def _graph(source, sample=2, env=None):
    defs = parse_definitions(source)
    env = env if env is not None else Environment()
    return defs, definition_entries(defs, env, sample), entry_dependencies(
        defs, env, sample
    )


class TestEntryGraph:
    def test_plain_definitions_one_entry_each(self):
        _, entries, deps = _graph("p = a!0 -> q; q = b!0 -> p")
        assert entries == [EntryKey("p"), EntryKey("q")]
        assert deps[EntryKey("p")] == (EntryKey("q"),)
        assert deps[EntryKey("q")] == (EntryKey("p"),)

    def test_array_one_entry_per_sampled_subscript(self):
        _, entries, deps = _graph(
            "arr[i:{0..4}] = a[i]!0 -> arr[i]", sample=3
        )
        assert entries == [EntryKey("arr", 0), EntryKey("arr", 1), EntryKey("arr", 2)]
        # arr[i] under i=1 resolves concretely to arr[1]: a single edge.
        assert deps[EntryKey("arr", 1)] == (EntryKey("arr", 1),)

    def test_unknown_subscript_depends_on_all_sampled(self):
        # the subscript depends on a received value → conservative edges
        _, _, deps = _graph(
            "p = c?x:NAT -> arr[x]; arr[i:{0..2}] = a!0 -> STOP", sample=2
        )
        assert deps[EntryKey("p")] == (EntryKey("arr", 0), EntryKey("arr", 1))

    def test_out_of_sample_subscript_depends_on_all_sampled(self):
        _, _, deps = _graph(
            "p = c!0 -> arr[7]; arr[i:{0..2}] = a!0 -> STOP", sample=2
        )
        assert deps[EntryKey("p")] == (EntryKey("arr", 0), EntryKey("arr", 1))

    def test_undefined_names_contribute_no_edges(self):
        # a non-strict list may reference names it does not define
        defs = DefinitionList(
            [ProcessDef("p", output("a", 0, Name("ghost")))], strict=False
        )
        deps = entry_dependencies(defs, Environment(), 2)
        assert deps[EntryKey("p")] == ()


class TestCondense:
    def test_mutual_recursion_is_one_recursive_scc(self):
        _, _, deps = _graph("p = a!0 -> q; q = b!0 -> p")
        sccs = condense_entries(deps)
        assert len(sccs) == 1
        assert set(sccs[0].entries) == {EntryKey("p"), EntryKey("q")}
        assert sccs[0].recursive

    def test_self_loop_is_recursive(self):
        _, _, deps = _graph("p = a!0 -> p")
        (scc,) = condense_entries(deps)
        assert scc.recursive

    def test_acyclic_definition_not_recursive(self):
        _, _, deps = _graph("leaf = a!0 -> STOP; top = b!0 -> leaf")
        sccs = condense_entries(deps)
        assert all(not s.recursive for s in sccs)

    def test_dependencies_emitted_first(self):
        _, _, deps = _graph(
            "top = a!0 -> mid; mid = b!0 -> leaf; leaf = c!0 -> leaf"
        )
        sccs = condense_entries(deps)
        order = [scc.entries[0].name for scc in sccs]
        assert order.index("leaf") < order.index("mid") < order.index("top")


class TestSccRanks:
    def test_leaves_rank_zero_dependents_above(self):
        _, _, deps = _graph(
            "top = a!0 -> mid; mid = b!0 -> leaf; leaf = c!0 -> leaf"
        )
        sccs = condense_entries(deps)
        ranks = scc_ranks(sccs, deps)
        by_name = {scc.entries[0].name: rank for scc, rank in zip(sccs, ranks)}
        assert by_name == {"leaf": 0, "mid": 1, "top": 2}

    def test_independent_sccs_share_a_rank(self):
        _, _, deps = _graph("p = a!0 -> p; q = b!0 -> q")
        sccs = condense_entries(deps)
        assert scc_ranks(sccs, deps) == [0, 0]


class TestSubscriptCandidates:
    """Finite input domains split the conservative all-sampled edges."""

    def test_finite_input_splits_the_mega_scc(self):
        # x ranges over {0,1}: arr[i] needs only arr[0] and arr[1], so
        # arr[2] must not be pulled into the recursive SCC.
        _, _, deps = _graph(
            "arr[i:{0..2}] = c?x:{0,1} -> arr[x]", sample=3
        )
        for sub in (0, 1, 2):
            assert deps[EntryKey("arr", sub)] == (
                EntryKey("arr", 0),
                EntryKey("arr", 1),
            )
        sccs = condense_entries(deps)
        recursive = [s for s in sccs if s.recursive]
        assert len(recursive) == 1
        assert set(recursive[0].entries) == {
            EntryKey("arr", 0),
            EntryKey("arr", 1),
        }
        flat = [s for s in sccs if not s.recursive]
        assert {e for s in flat for e in s.entries} == {EntryKey("arr", 2)}

    def test_infinite_domain_stays_conservative(self):
        _, _, deps = _graph(
            "p = c?x:NAT -> arr[x]; arr[i:{0..2}] = a!0 -> STOP", sample=2
        )
        assert deps[EntryKey("p")] == (EntryKey("arr", 0), EntryKey("arr", 1))

    def test_out_of_sample_candidate_stays_conservative(self):
        # One candidate (7) is out of sample: the precise split would
        # miss an edge the Denoter actually takes, so all-sampled wins.
        _, _, deps = _graph(
            "p = c?x:{0,7} -> arr[x]; arr[i:{0..9}] = a!0 -> STOP",
            sample=2,
        )
        assert deps[EntryKey("p")] == (EntryKey("arr", 0), EntryKey("arr", 1))

    def test_arithmetic_over_candidates_is_evaluated(self):
        # arr[x+1] with x in {0,1} → edges to arr[1] and arr[2] only.
        _, _, deps = _graph(
            "arr[i:{0..3}] = c?x:{0,1} -> arr[x+1]", sample=4
        )
        assert deps[EntryKey("arr", 0)] == (
            EntryKey("arr", 1),
            EntryKey("arr", 2),
        )


class TestConsultDepths:
    def test_prefix_consumes_one_level(self):
        p = parse_process("a!0 -> q")
        assert consult_depths(p, 4, 10) == {"q": 3}

    def test_zero_budget_reference_not_recorded(self):
        # truncate(binding, 0) = STOP no matter the binding: a reference
        # reached with no residual budget never consults anything.
        p = parse_process("a!0 -> q")
        assert consult_depths(p, 1, 10) == {}

    def test_choice_and_parallel_pass_budget_through(self):
        p = parse_process("(p | a!0 -> q)")
        assert consult_depths(p, 3, 10) == {"p": 3, "q": 2}

    def test_input_consumes_one_level(self):
        p = parse_process("c?x:{0,1} -> p")
        assert consult_depths(p, 2, 10) == {"p": 1}

    def test_chan_deepens_to_hide_depth(self):
        p = parse_process("chan w; a!0 -> p")
        assert consult_depths(p, 4, 10) == {"p": 9}

    def test_max_budget_wins_across_occurrences(self):
        p = parse_process("(q | a!0 -> q)")
        assert consult_depths(p, 3, 10) == {"q": 3}

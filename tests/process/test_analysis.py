"""Unit tests for static analysis of process expressions."""

import pytest

from repro.errors import SemanticsError
from repro.process.analysis import (
    channel_names,
    concrete_channels,
    free_variables,
    has_guarded_recursion,
    is_guarded,
    referenced_names,
    unguarded_references,
)
from repro.process.ast import (
    STOP,
    ArrayRef,
    Chan,
    Choice,
    Name,
    Parallel,
    input_,
    output,
)
from repro.process.channels import ChannelExpr, ChannelList
from repro.process.definitions import DefinitionList, ProcessDef
from repro.process.parser import parse_definitions, parse_process
from repro.traces.events import Channel
from repro.values.environment import Environment
from repro.values.expressions import NatSet, const


class TestReferencedNames:
    def test_collects_names_and_array_refs(self):
        p = Choice(Name("p"), output("c", 0, ArrayRef("q", const(1))))
        assert referenced_names(p) == {"p", "q"}

    def test_stop_references_nothing(self):
        assert referenced_names(STOP) == frozenset()

    def test_through_all_constructs(self):
        p = Chan(
            ChannelList([ChannelExpr("w")]),
            Parallel(Name("a"), input_("c", "x", NatSet(), Name("b"))),
        )
        assert referenced_names(p) == {"a", "b"}


class TestGuardedness:
    def test_prefix_guards(self):
        assert is_guarded(output("c", 0, Name("p")), frozenset({"p"}))
        assert is_guarded(input_("c", "x", NatSet(), Name("p")), frozenset({"p"}))

    def test_bare_name_unguarded(self):
        assert not is_guarded(Name("p"), frozenset({"p"}))
        assert unguarded_references(Choice(Name("p"), STOP), frozenset({"p"})) == {"p"}

    def test_choice_parallel_chan_do_not_guard(self):
        assert not is_guarded(Choice(Name("p"), STOP), frozenset({"p"}))
        assert not is_guarded(Parallel(Name("p"), STOP), frozenset({"p"}))
        assert not is_guarded(
            Chan(ChannelList([ChannelExpr("w")]), Name("p")), frozenset({"p"})
        )

    def test_graph_cycle_detection(self):
        guarded = DefinitionList(
            [ProcessDef("p", Name("q")), ProcessDef("q", output("a", 0, Name("p")))]
        )
        assert has_guarded_recursion(guarded)

    def test_graph_cycle_detected_as_unguarded(self):
        cyclic = DefinitionList(
            [ProcessDef("p", Name("q")), ProcessDef("q", Name("p"))],
            require_guarded=False,
        )
        assert not has_guarded_recursion(cyclic)


class TestChannelNames:
    def test_direct(self):
        p = parse_process("input?x:NAT -> wire!x -> STOP")
        assert channel_names(p) == {"input", "wire"}

    def test_follows_definitions(self):
        defs = parse_definitions("copier = input?x:NAT -> wire!x -> copier")
        assert channel_names(Name("copier"), defs) == {"input", "wire"}

    def test_recursion_safe(self):
        defs = parse_definitions(
            "p = a!0 -> q; q = b!0 -> p"
        )
        assert channel_names(Name("p"), defs) == {"a", "b"}

    def test_chan_names_included(self):
        p = parse_process("chan wire; STOP")
        assert channel_names(p) == {"wire"}

    def test_unknown_name_without_defs_ignored(self):
        assert channel_names(Name("ghost")) == frozenset()


class TestConcreteChannels:
    ENV = Environment()

    def test_simple(self):
        p = parse_process("input?x:NAT -> wire!x -> STOP")
        assert concrete_channels(p, None, self.ENV) == {
            Channel("input"),
            Channel("wire"),
        }

    def test_array_parameter_resolved(self):
        # mult[2] uses row[2], col[1], col[2]
        defs = parse_definitions(
            "mult[i:{1..3}] = row[i]?x:NAT -> col[i-1]?y:NAT -> col[i]!x+y -> mult[i]",
        )
        chans = concrete_channels(ArrayRef("mult", const(2)), defs, self.ENV)
        assert chans == {Channel("row", 2), Channel("col", 1), Channel("col", 2)}

    def test_input_dependent_channel_rejected(self):
        # the channel d[x] depends on the received value x
        p = parse_process("c?x:NAT -> d[x]!0 -> STOP")
        with pytest.raises(SemanticsError, match="annotate"):
            concrete_channels(p, None, self.ENV)

    def test_input_variable_not_needed_is_fine(self):
        p = parse_process("c?x:NAT -> d!x -> STOP")
        assert concrete_channels(p, None, self.ENV) == {Channel("c"), Channel("d")}

    def test_chan_list_channels_included(self):
        p = parse_process("chan col[0..1]; STOP")
        assert concrete_channels(p, None, self.ENV) == {
            Channel("col", 0),
            Channel("col", 1),
        }

    def test_recursive_array_terminates(self):
        defs = parse_definitions("zeroes = col[0]!0 -> zeroes")
        assert concrete_channels(Name("zeroes"), defs, self.ENV) == {Channel("col", 0)}


class TestFreeVariables:
    def test_delegates_to_ast(self):
        p = parse_process("wire!x -> STOP")
        assert free_variables(p) == {"x"}

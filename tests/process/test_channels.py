"""Unit tests for syntactic channel references (paper §1.1 items 10–13)."""

import pytest

from repro.errors import DomainError
from repro.process.channels import ChannelArraySpec, ChannelExpr, ChannelList
from repro.traces.events import Channel
from repro.values.environment import Environment
from repro.values.expressions import BinOp, NatSet, RangeSet, const, var

ENV = Environment().bind("i", 2)


class TestChannelExpr:
    def test_plain_channel(self):
        assert ChannelExpr("wire").evaluate(ENV) == Channel("wire")

    def test_subscripted_channel(self):
        # col[i-1] with i=2 denotes col[1]
        ref = ChannelExpr("col", BinOp("-", var("i"), const(1)))
        assert ref.evaluate(ENV) == Channel("col", 1)

    def test_free_variables(self):
        assert ChannelExpr("wire").free_variables() == frozenset()
        assert ChannelExpr("col", var("i")).free_variables() == {"i"}

    def test_substitute(self):
        ref = ChannelExpr("col", var("i")).substitute("i", const(3))
        assert ref.evaluate(Environment()) == Channel("col", 3)

    def test_substitute_plain_is_identity(self):
        ref = ChannelExpr("wire")
        assert ref.substitute("i", const(3)) is ref

    def test_equality(self):
        assert ChannelExpr("col", var("i")) == ChannelExpr("col", var("i"))
        assert ChannelExpr("col") != ChannelExpr("row")


class TestChannelArraySpec:
    def test_expands_to_concrete_channels(self):
        # col[0..3] = {col[0], col[1], col[2], col[3]} (§1.1 item 12)
        spec = ChannelArraySpec("col", RangeSet(const(0), const(3)))
        assert spec.evaluate(ENV) == {
            Channel("col", 0),
            Channel("col", 1),
            Channel("col", 2),
            Channel("col", 3),
        }

    def test_infinite_subscripts_rejected(self):
        spec = ChannelArraySpec("col", NatSet())
        with pytest.raises(DomainError):
            spec.evaluate(ENV)

    def test_variable_bounds(self):
        spec = ChannelArraySpec("col", RangeSet(const(0), var("i")))
        assert len(spec.evaluate(ENV)) == 3

    def test_substitute(self):
        spec = ChannelArraySpec("col", RangeSet(const(0), var("i")))
        fixed = spec.substitute("i", const(1))
        assert fixed.evaluate(Environment()) == {Channel("col", 0), Channel("col", 1)}


class TestChannelList:
    def test_mixed_entries(self):
        clist = ChannelList(
            [
                ChannelExpr("wire"),
                ChannelExpr("col", const(7)),
                ChannelArraySpec("row", RangeSet(const(1), const(2))),
            ]
        )
        assert clist.evaluate(ENV) == {
            Channel("wire"),
            Channel("col", 7),
            Channel("row", 1),
            Channel("row", 2),
        }

    def test_names_ignores_subscripts(self):
        clist = ChannelList([ChannelExpr("col", const(0)), ChannelExpr("wire")])
        assert clist.names() == {"col", "wire"}

    def test_rejects_bad_entries(self):
        with pytest.raises(TypeError):
            ChannelList(["wire"])

    def test_free_variables_and_substitute(self):
        clist = ChannelList([ChannelExpr("col", var("i"))])
        assert clist.free_variables() == {"i"}
        assert clist.substitute("i", const(0)).evaluate(Environment()) == {
            Channel("col", 0)
        }

    def test_equality_and_hash(self):
        a = ChannelList([ChannelExpr("wire")])
        b = ChannelList([ChannelExpr("wire")])
        assert a == b and hash(a) == hash(b)

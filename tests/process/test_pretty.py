"""Pretty-printer tests, including the parse∘pretty round-trip property."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.process.ast import (
    STOP,
    ArrayRef,
    Chan,
    Choice,
    Input,
    Name,
    Output,
    Parallel,
    Process,
)
from repro.process.channels import ChannelExpr, ChannelList
from repro.process.parser import parse_definitions, parse_process
from repro.process.pretty import pretty, pretty_definition, pretty_definitions
from repro.values.expressions import (
    BinOp,
    Const,
    FuncCall,
    NamedSet,
    NatSet,
    RangeSet,
    SetLiteral,
    UnaryOp,
    Var,
)


class TestExamples:
    def test_copier(self):
        text = "input?x:NAT -> wire!x -> copier"
        assert pretty(parse_process(text)) == text

    def test_choice_parens_inside_prefix(self):
        text = "wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])"
        assert parse_process(pretty(parse_process(text))) == parse_process(text)

    def test_chan_always_parenthesised(self):
        p = parse_process("(chan w; a!0 -> STOP) || b!0 -> STOP")
        assert parse_process(pretty(p)) == p

    def test_nested_parallel(self):
        p = parse_process("a!0 -> STOP || b!0 -> STOP || c!0 -> STOP")
        assert parse_process(pretty(p)) == p

    def test_expression_precedence(self):
        p = parse_process("c!(x + 1) * 2 -> STOP")
        assert parse_process(pretty(p)) == p

    def test_double_negation_does_not_emit_comment(self):
        p = Output(ChannelExpr("c"), UnaryOp("-", UnaryOp("-", Var("x"))), STOP)
        assert "--" not in pretty(p)
        assert parse_process(pretty(p)) == p

    def test_definition_rendering(self):
        defs = parse_definitions("q[x:M] = wire!x -> q[x]")
        assert pretty_definition(defs.lookup("q")) == "q[x:M] = wire!x -> q[x]"

    def test_definitions_rendering_round_trip(self):
        text = """
        copier = input?x:NAT -> wire!x -> copier;
        recopier = wire?y:NAT -> output!y -> recopier;
        net = chan wire; (copier || recopier)
        """
        defs = parse_definitions(text)
        assert parse_definitions(pretty_definitions(defs)) == defs

    def test_explicit_alphabets_render_with_note(self):
        p = Parallel(
            Name("a"),
            Name("b"),
            ChannelList([ChannelExpr("x")]),
            ChannelList([ChannelExpr("y")]),
        )
        rendered = pretty(p)
        assert "X={x}" in rendered and "Y={y}" in rendered


# ---------------------------------------------------------------------------
# Property: parse(pretty(P)) == P on generated ASTs.
# ---------------------------------------------------------------------------

_exprs = st.recursive(
    st.one_of(
        st.integers(min_value=0, max_value=9).map(Const),
        st.sampled_from(["x", "y", "i"]).map(Var),
        st.sampled_from(["ACK", "NACK"]).map(Const),
    ),
    lambda children: st.one_of(
        st.tuples(st.sampled_from(["+", "-", "*"]), children, children).map(
            lambda t: BinOp(*t)
        ),
        children.map(lambda e: UnaryOp("-", e)),
        children.map(lambda e: FuncCall("v", (e,))),
    ),
    max_leaves=4,
)

_setexprs = st.one_of(
    st.just(NatSet()),
    st.just(NamedSet("M")),
    st.builds(RangeSet, st.integers(0, 3).map(Const), st.integers(4, 6).map(Const)),
    st.lists(_exprs, min_size=1, max_size=2).map(lambda es: SetLiteral(tuple(es))),
)

_channel_exprs = st.one_of(
    st.sampled_from(["a", "b", "wire"]).map(ChannelExpr),
    st.builds(ChannelExpr, st.just("col"), _exprs),
)


def _processes():
    return st.recursive(
        st.one_of(
            st.just(STOP),
            st.sampled_from(["p", "q2"]).map(Name),
            st.builds(ArrayRef, st.just("q"), _exprs),
        ),
        lambda children: st.one_of(
            st.builds(Output, _channel_exprs, _exprs, children),
            st.builds(
                Input,
                _channel_exprs,
                st.sampled_from(["x", "y"]),
                _setexprs,
                children,
            ),
            st.builds(Choice, children, children),
            st.builds(Parallel, children, children),
            st.builds(
                Chan,
                st.lists(_channel_exprs, min_size=1, max_size=2).map(ChannelList),
                children,
            ),
        ),
        max_leaves=8,
    )


@settings(max_examples=200, deadline=None)
@given(_processes())
def test_parse_pretty_roundtrip(process: Process):
    assert parse_process(pretty(process)) == process

"""Unit tests for the process-notation parser (§1)."""

import pytest

from repro.errors import ParseError
from repro.process.ast import (
    STOP,
    ArrayRef,
    Chan,
    Choice,
    Input,
    Name,
    Output,
    Parallel,
)
from repro.process.channels import ChannelArraySpec, ChannelExpr
from repro.process.parser import parse_definitions, parse_process
from repro.values.expressions import (
    BinOp,
    Const,
    FuncCall,
    IntSet,
    NamedSet,
    NatSet,
    RangeSet,
    SetLiteral,
    SetUnion,
    Var,
)


class TestAtoms:
    def test_stop(self):
        assert parse_process("STOP") is STOP

    def test_name(self):
        assert parse_process("copier") == Name("copier")

    def test_array_ref(self):
        assert parse_process("q[y]") == ArrayRef("q", Var("y"))
        assert parse_process("mult[i+1]") == ArrayRef(
            "mult", BinOp("+", Var("i"), Const(1))
        )

    def test_parenthesised(self):
        assert parse_process("(STOP)") is STOP


class TestPrefixes:
    def test_output(self):
        p = parse_process("wire!3 -> STOP")
        assert p == Output(ChannelExpr("wire"), Const(3), STOP)

    def test_output_of_expression(self):
        p = parse_process("col[i]!(v[i]*x + y) -> STOP")
        assert isinstance(p, Output)
        assert p.channel == ChannelExpr("col", Var("i"))
        assert p.message == BinOp("+", BinOp("*", FuncCall("v", (Var("i"),)), Var("x")), Var("y"))

    def test_input(self):
        p = parse_process("input?x:NAT -> STOP")
        assert p == Input(ChannelExpr("input"), "x", NatSet(), STOP)

    def test_arrow_is_right_associative(self):
        p = parse_process("input?x:NAT -> wire!x -> copier")
        assert isinstance(p, Input)
        assert isinstance(p.continuation, Output)
        assert p.continuation.continuation == Name("copier")

    def test_uppercase_message_is_constant(self):
        p = parse_process("wire!ACK -> STOP")
        assert p.message == Const("ACK")

    def test_quoted_string_message(self):
        p = parse_process('wire!"hello world" -> STOP')
        assert p.message == Const("hello world")


class TestSetExpressions:
    def test_singleton_ack(self):
        p = parse_process("wire?y:{ACK} -> STOP")
        assert p.domain == SetLiteral((Const("ACK"),))

    def test_named_set(self):
        p = parse_process("input?y:M -> STOP")
        assert p.domain == NamedSet("M")

    def test_range(self):
        p = parse_process("c?x:{0..3} -> STOP")
        assert p.domain == RangeSet(Const(0), Const(3))

    def test_int_set(self):
        p = parse_process("c?x:INT -> STOP")
        assert p.domain == IntSet()

    def test_union(self):
        p = parse_process("c?x:M union {ACK, NACK} -> STOP")
        assert p.domain == SetUnion(
            (NamedSet("M"), SetLiteral((Const("ACK"), Const("NACK"))))
        )

    def test_empty_set(self):
        p = parse_process("c?x:{} -> STOP")
        assert p.domain == SetLiteral(())


class TestOperators:
    def test_choice(self):
        p = parse_process("a!0 -> STOP | b!1 -> STOP")
        assert isinstance(p, Choice)

    def test_arrow_binds_tighter_than_choice(self):
        # §1.2: "→ binds tighter than |"
        p = parse_process("wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x]")
        assert isinstance(p, Choice)
        assert isinstance(p.left, Input)
        assert isinstance(p.right, Input)

    def test_choice_left_associative(self):
        p = parse_process("STOP | STOP | STOP")
        assert isinstance(p, Choice) and isinstance(p.left, Choice)

    def test_parallel(self):
        p = parse_process("copier || recopier")
        assert p == Parallel(Name("copier"), Name("recopier"))

    def test_choice_binds_tighter_than_parallel(self):
        p = parse_process("a!0 -> STOP | b!0 -> STOP || c!0 -> STOP")
        assert isinstance(p, Parallel)
        assert isinstance(p.left, Choice)

    def test_chan(self):
        p = parse_process("chan wire; copier || recopier")
        assert isinstance(p, Chan)
        assert p.channels.names() == {"wire"}
        assert isinstance(p.body, Parallel)

    def test_chan_array(self):
        p = parse_process("chan col[0..3]; network")
        (entry,) = p.channels.entries
        assert isinstance(entry, ChannelArraySpec)
        assert entry.subscripts == RangeSet(Const(0), Const(3))

    def test_chan_list_mixed(self):
        p = parse_process("chan wire, col[0], row[1..2]; STOP")
        assert len(p.channels.entries) == 3

    def test_parenthesised_chan_inside_parallel(self):
        p = parse_process("(chan w; a!0 -> STOP) || b!0 -> STOP")
        assert isinstance(p, Parallel)
        assert isinstance(p.left, Chan)


class TestUnicodeAliases:
    def test_paper_spelling(self):
        ascii_p = parse_process("input?x:NAT -> wire!x -> copier")
        unicode_p = parse_process("input?x:NAT → wire!x → copier")
        assert ascii_p == unicode_p

    def test_parallel_and_define(self):
        d_ascii = parse_definitions("net = copier || recopier", strict=False)
        d_unicode = parse_definitions("net ≜ copier ‖ recopier", strict=False)
        assert d_ascii == d_unicode


class TestDefinitions:
    def test_paper_protocol_definitions(self):
        defs = parse_definitions(
            """
            sender = input?y:M -> q[y];
            q[x:M] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x]);
            receiver = wire?z:M -> (wire!ACK -> output!z -> receiver
                                   | wire!NACK -> receiver);
            protocol = chan wire; (sender || receiver)
            """
        )
        assert defs.names() == {"sender", "q", "receiver", "protocol"}
        q = defs.lookup_array("q")
        assert q.parameter == "x"
        assert q.domain == NamedSet("M")

    def test_trailing_semicolon_allowed(self):
        defs = parse_definitions("p = a!0 -> p;")
        assert "p" in defs

    def test_comments_ignored(self):
        defs = parse_definitions(
            """
            -- the endless copier from section 1.3
            copier = input?x:NAT -> wire!x -> copier
            """
        )
        assert "copier" in defs

    def test_reserved_name_rejected(self):
        with pytest.raises(ParseError, match="reserved"):
            parse_definitions("STOP = a!0 -> STOP")


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "wire!3",  # missing arrow and continuation
            "input?x -> STOP",  # missing :M
            "c?x:NAT -> ",  # dangling arrow
            "(STOP",  # unbalanced paren
            "chan ; STOP",  # empty channel list
            "a!0 -> STOP |",  # dangling choice
            "q[",  # unbalanced subscript
            'wire!"unterminated -> STOP',
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(ParseError):
            parse_process(bad)

    def test_error_carries_position(self):
        try:
            parse_process("input?x:NAT =>")
        except ParseError as exc:
            assert exc.line == 1
            assert exc.column > 1
        else:  # pragma: no cover
            pytest.fail("expected ParseError")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_process("STOP STOP")

"""Unit tests for the process AST (paper §1.2)."""

from repro.process.ast import (
    STOP,
    ArrayRef,
    Chan,
    Choice,
    Input,
    Name,
    Output,
    Parallel,
    Stop,
    input_,
    output,
)
from repro.process.channels import ChannelExpr, ChannelList
from repro.values.expressions import BinOp, NatSet, SetLiteral, const, var


def copier_body():
    # input?x:NAT -> wire!x -> copier
    return input_("input", "x", NatSet(), output("wire", var("x"), Name("copier")))


class TestConstruction:
    def test_stop_is_shared(self):
        assert Stop() == STOP

    def test_output_structure(self):
        p = output("wire", 3, STOP)
        assert p.channel == ChannelExpr("wire")
        assert p.message == const(3)
        assert p.continuation is STOP

    def test_builders_with_subscripts(self):
        p = output("col", var("x"), STOP, index=BinOp("-", var("i"), const(1)))
        assert p.channel.name == "col"
        assert p.channel.index == BinOp("-", var("i"), const(1))

    def test_infix_choice_sugar(self):
        p = STOP | Name("p")
        assert p == Choice(STOP, Name("p"))

    def test_infix_parallel_sugar(self):
        p = Name("copier") // Name("recopier")
        assert p == Parallel(Name("copier"), Name("recopier"))


class TestEquality:
    def test_structural_equality(self):
        assert copier_body() == copier_body()
        assert hash(copier_body()) == hash(copier_body())

    def test_inequality_on_different_variable(self):
        a = input_("input", "x", NatSet(), STOP)
        b = input_("input", "y", NatSet(), STOP)
        assert a != b  # syntactic, not α-equivalence

    def test_name_vs_arrayref(self):
        assert Name("q") != ArrayRef("q", const(0))


class TestFreeVariables:
    def test_input_binds_its_variable(self):
        p = copier_body()
        assert p.free_variables() == frozenset()

    def test_free_variable_in_output(self):
        p = output("wire", var("x"), STOP)
        assert p.free_variables() == {"x"}

    def test_array_index_variables_are_free(self):
        assert ArrayRef("q", var("y")).free_variables() == {"y"}

    def test_channel_subscript_variables_are_free(self):
        p = output("col", 0, STOP, index=var("i"))
        assert p.free_variables() == {"i"}

    def test_domain_variables_are_free(self):
        p = input_("c", "x", SetLiteral((var("m"),)), STOP)
        assert p.free_variables() == {"m"}

    def test_shadowing_nested_input(self):
        inner = output("d", var("x"), STOP)
        p = input_("c", "x", NatSet(), inner)
        assert p.free_variables() == frozenset()


class TestSubstitution:
    def test_substitute_into_output(self):
        p = output("wire", var("x"), STOP).substitute("x", const(5))
        assert p == output("wire", 5, STOP)

    def test_substitute_into_array_ref(self):
        p = ArrayRef("q", var("y")).substitute("y", const(1))
        assert p == ArrayRef("q", const(1))

    def test_substitute_stops_at_binder(self):
        p = input_("c", "x", NatSet(), output("d", var("x"), STOP))
        assert p.substitute("x", const(9)) == p

    def test_substitute_reaches_channel_and_domain_of_binder(self):
        p = Input(
            ChannelExpr("col", var("i")),
            "x",
            SetLiteral((var("i"),)),
            STOP,
        )
        q = p.substitute("i", const(2))
        assert q.channel == ChannelExpr("col", const(2))
        assert q.domain == SetLiteral((const(2),))

    def test_capture_avoiding_substitution(self):
        # (c?x:NAT -> d!y -> STOP)[y := x] must NOT capture x.
        p = input_("c", "x", NatSet(), output("d", var("y"), STOP))
        q = p.substitute("y", var("x"))
        assert isinstance(q, Input)
        assert q.variable != "x"  # binder renamed
        assert isinstance(q.continuation, Output)
        assert q.continuation.message == var("x")  # the substituted x is free

    def test_substitution_in_chan_and_parallel(self):
        body = output("col", var("i"), STOP, index=var("i"))
        p = Chan(ChannelList([ChannelExpr("col", var("i"))]), body)
        q = p.substitute("i", const(0))
        assert q.channels == ChannelList([ChannelExpr("col", const(0))])
        par = Parallel(body, STOP).substitute("i", const(1))
        assert par.left == output("col", const(1), STOP, index=const(1))

    def test_substitute_name_is_identity(self):
        assert Name("p").substitute("x", const(0)) == Name("p")

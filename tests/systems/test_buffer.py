"""Integration tests: the n-place buffer chain."""

import pytest

from repro.systems import buffer


class TestConstruction:
    def test_source_single_cell(self):
        text = buffer.source(1)
        assert "chan" not in text  # nothing internal to hide

    def test_source_three_cells(self):
        text = buffer.source(3)
        assert "chan link[1..2]" in text

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            buffer.source(0)

    @pytest.mark.parametrize("places", [1, 2, 3, 4])
    def test_definitions_parse(self, places):
        defs = buffer.definitions(places)
        assert defs.names() == {"cell", "buffer"}


class TestModelChecking:
    @pytest.mark.parametrize("places", [1, 2, 3])
    def test_order_and_capacity(self, places):
        results = buffer.check(places=places, depth=5)
        assert results["order"].holds
        assert results["capacity"].holds

    def test_capacity_is_tight(self):
        # a 2-buffer violates the capacity bound of a 1-buffer
        from repro.process.ast import Name
        from repro.sat.checker import SatChecker
        from repro.semantics.config import SemanticsConfig

        checker = SatChecker(
            buffer.definitions(2), buffer.environment(), SemanticsConfig(5, 2)
        )
        too_tight = buffer.capacity_spec(1)  # #link[0] ≤ #link[1] + 1: wrong channel
        import repro.assertions.parser as ap

        # claim capacity 1 of the 2-buffer, on its real channels
        spec = ap.parse_assertion("#link[0] <= #link[2] + 1", buffer.CHANNELS)
        assert not checker.check(Name("buffer"), spec).holds


class TestProofs:
    @pytest.mark.parametrize("places", [1, 2, 3])
    def test_buffer_theorem_proved(self, places):
        report = buffer.prove(places=places)
        text = repr(report.conclusion)
        assert f"link[{places}] <= link[0]" in text
        assert f"#link[0] <= #link[{places}] + {places}" in text

    def test_proof_uses_compositional_rules(self):
        report = buffer.prove(places=2)
        used = report.rules_used
        assert used.get("parallelism", 0) >= 1
        assert used.get("chan", 0) == 1
        assert used.get("recursion", 0) == 1

    def test_chan_side_condition_is_subscript_granular(self):
        # the buffer spec mentions link[0] and link[n] while link[1..n-1]
        # are concealed — the chan rule must allow this
        report = buffer.prove(places=2)
        assert report.nodes > 0

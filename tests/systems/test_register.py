"""Integration tests: the register — provable integrity, inexpressible
freshness."""

import pytest

from repro.assertions.eval import evaluate_formula
from repro.systems import register
from repro.traces.histories import ch
from repro.values.environment import Environment


class TestIntegrity:
    def test_model_checked(self):
        result = register.check_integrity(initial=0, depth=5)
        assert result.holds

    @pytest.mark.parametrize("initial", [0, 1])
    def test_each_initial_value(self, initial):
        assert register.check_integrity(initial=initial, depth=4).holds

    def test_proved_for_all_initial_values(self):
        report = register.prove_integrity()
        from repro.proof.judgments import ForAllSat

        assert isinstance(report.conclusion, ForAllSat)
        assert report.rules_used.get("recursion") == 1

    def test_bigger_value_alphabet(self):
        report = register.prove_integrity(values={0, 1, 2})
        assert report.nodes > 0

    def test_violating_register_detected(self):
        # a register that invents the value 9
        from repro.process.parser import parse_definitions
        from repro.process.ast import ArrayRef
        from repro.sat.checker import SatChecker
        from repro.semantics.config import SemanticsConfig
        from repro.values.expressions import Const

        broken = parse_definitions(
            "reg[v:M] = get!9 -> reg[v] | set?w:M -> reg[w]"
        )
        checker = SatChecker(
            broken, register.environment(), SemanticsConfig(4, 2)
        )
        result = checker.check(
            ArrayRef("reg", Const(0)), register.integrity_spec(0)
        )
        assert not result.holds


class TestFreshnessInexpressibility:
    def test_witnesses_have_identical_histories(self):
        fresh, stale = register.freshness_is_inexpressible_witnesses()
        assert fresh != stale
        assert ch(fresh) == ch(stale)

    def test_no_assertion_separates_the_witnesses(self):
        # spot-check: a battery of assertions evaluates identically on both
        from repro.soundness.generators import AssertionGenerator

        fresh, stale = register.freshness_is_inexpressible_witnesses()
        generator = AssertionGenerator(seed=3, channels=("get", "set"))
        env = Environment()
        for _ in range(200):
            formula = generator.formula()
            try:
                left = evaluate_formula(formula, env, ch(fresh))
                right = evaluate_formula(formula, env, ch(stale))
            except Exception:
                continue
            assert left == right

    def test_stale_witness_is_not_a_register_trace(self):
        # the semantics distinguishes what the assertions cannot
        from repro.process.ast import ArrayRef
        from repro.sat.checker import SatChecker
        from repro.semantics.config import SemanticsConfig
        from repro.values.expressions import Const

        fresh, stale = register.freshness_is_inexpressible_witnesses()
        checker = SatChecker(
            register.definitions(), register.environment(), SemanticsConfig(4, 2)
        )
        traces = checker.traces_of(ArrayRef("reg", Const(0)))
        # prepend nothing: reg[0] with set.1 first matches the fresh trace
        assert fresh in traces
        assert stale not in traces

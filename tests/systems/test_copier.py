"""Integration tests: the copier system's paper claims (E1, E2)."""

from repro.proof.judgments import Sat
from repro.systems import copier


class TestModelChecking:
    def test_all_claims_hold_bounded(self):
        results = copier.check_all(depth=5, sample=2)
        assert all(result.holds for result in results.values())

    def test_deeper_bound_still_holds(self):
        results = copier.check_all(depth=7, sample=2)
        assert all(result.holds for result in results.values())


class TestProofs:
    def test_all_claims_proved(self):
        reports = copier.prove_all()
        assert set(reports) == {"copier", "recopier", "network", "copier-length"}
        for report in reports.values():
            assert report.nodes > 0

    def test_network_proof_conclusion(self):
        reports = copier.prove_all()
        conclusion = reports["network"].conclusion
        assert isinstance(conclusion, Sat)
        assert repr(conclusion.formula) == "output <= input"

    def test_length_invariant_proved(self):
        reports = copier.prove_all()
        assert repr(reports["copier-length"].conclusion.formula) == "#input <= #wire + 1"

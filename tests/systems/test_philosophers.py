"""Integration tests: dining philosophers — provable safety, detectable
deadlock (the §4 gap)."""

import pytest

from repro.systems import philosophers


class TestConstruction:
    def test_source_parses(self):
        for seats in (2, 3):
            defs = philosophers.definitions(seats)
            assert defs.names() == {"phil", "fork", "table"}

    def test_too_few_seats_rejected(self):
        with pytest.raises(ValueError):
            philosophers.source(1)


class TestSafety:
    @pytest.mark.parametrize("seats", [2, 3])
    def test_fork_invariants_hold(self, seats):
        results = philosophers.check_safety(seats=seats, depth=4)
        assert all(r.holds for r in results.values())

    def test_fork_lemma_proved(self):
        report = philosophers.prove_fork_safety(seats=2)
        from repro.proof.judgments import ForAllSat

        assert isinstance(report.conclusion, ForAllSat)
        assert report.rules_used.get("recursion") == 1

    def test_eating_requires_both_forks(self):
        # no eat[i] before both grab[i] and reach[i]
        from repro.operational.explorer import explore_traces
        from repro.process.ast import Name

        semantics = philosophers.semantics(2)
        traces = explore_traces(Name("table"), semantics, depth=3)
        for trace in traces.traces:
            for k, event in enumerate(trace):
                if event.channel.name == "eat":
                    i = event.channel.index
                    prior = {(e.channel.name, e.channel.index) for e in trace[:k]}
                    assert ("grab", i) in prior and ("reach", i) in prior


class TestDeadlock:
    @pytest.mark.parametrize("seats", [2, 3])
    def test_classic_deadlock_found(self, seats):
        deadlocks = philosophers.find_deadlocks(seats=seats)
        classic = set(philosophers.classic_deadlock_trace(seats))
        assert any(set(trace) == classic for trace in deadlocks)

    def test_deadlock_needs_all_seats_to_act(self):
        # no deadlock reachable in fewer visible events than seats
        deadlocks = philosophers.find_deadlocks(seats=3, depth=2)
        assert deadlocks == []

    def test_all_minimal_deadlocks_are_left_grab_permutations(self):
        deadlocks = philosophers.find_deadlocks(seats=3, depth=3)
        classic = set(philosophers.classic_deadlock_trace(3))
        for trace in deadlocks:
            assert set(trace) == classic

    def test_partial_correctness_holds_despite_deadlock(self):
        # the §4 gap in one test: safety provable, deadlock present
        safety = philosophers.check_safety(seats=2, depth=4)
        assert all(r.holds for r in safety.values())
        assert philosophers.find_deadlocks(seats=2)

"""Integration tests: the multiplier network (E1, E2)."""

import pytest

from repro.systems import multiplier
from repro.traces.events import channel


class TestScalarProduct:
    def test_paper_invariant_holds(self):
        results = multiplier.check_all(depth=4, sample=2)
        assert results["scalar-product"].holds
        assert results["progress"].holds

    def test_nontrivial_coverage(self):
        # the check must actually exercise traces that produce output
        traces = multiplier.traces(depth=4, sample=2)
        with_output = [
            t
            for t in traces
            if any(e.channel == channel("output") for e in t)
        ]
        assert len(with_output) > 10

    def test_different_vector(self):
        results = multiplier.check_all(depth=4, sample=2, vector=(0, 1, 1, 1))
        assert results["scalar-product"].holds

    def test_wrong_vector_binding_caught(self):
        # check the checker can refute: claim the spec for vector w while
        # running with vector v ≠ w is detected via a doctored spec
        from repro.assertions.parser import parse_assertion
        from repro.process.ast import Name

        sat = multiplier.checker(depth=4, sample=2, vector=(0, 2, 3, 5))
        wrong = parse_assertion(
            "forall i : NAT . 1 <= i & i <= #output =>"
            " output@i = (sum j : 1..3 . (v(j) + 1) * row[j]@i)",
            multiplier.CHANNELS,
        )
        result = sat.check(Name("multiplier"), wrong)
        assert not result.holds

    def test_scalar_product_theorem_proved(self):
        # the paper states the invariant (§2 item 3); we prove it with the
        # §2.1 rules: per-cell invariants, parallelism ×4, consequence, chan
        report = multiplier.prove_scalar_product()
        assert "sum j : 1 .. 3" in repr(report.conclusion)
        used = report.rules_used
        assert used.get("parallelism") == 4  # five components, four ‖ nodes
        assert used.get("chan") == 1
        assert used.get("recursion") == 1

    def test_proof_fails_for_wrong_cell_invariant(self):
        from repro.assertions.parser import parse_assertion
        from repro.errors import ProofError
        from repro.proof.tactics import SatProver, TacticError
        from repro.proof.oracle import Oracle, OracleConfig

        bad = multiplier.invariants()
        bad["zeroes"] = parse_assertion(
            "forall k : NAT . 1 <= k & k <= #col[0] => col[0]@k = 1",
            multiplier.CHANNELS,
        )
        oracle = Oracle(
            multiplier.environment(),
            OracleConfig(value_pool=(0, 1), max_history_length=2, random_trials=400),
        )
        prover = SatProver(multiplier.definitions(), oracle, bad)
        with pytest.raises((ProofError, TacticError)):
            prover.prove_name("multiplier")

    def test_output_values_are_computed_not_sampled(self):
        # outputs like 2+3+5=10 exceed the sample bound 2: receptive sync
        traces = multiplier.traces(depth=4, sample=2)
        outputs = {
            e.message
            for t in traces
            for e in t
            if e.channel == channel("output")
        }
        assert any(v > 2 for v in outputs)

"""Integration tests: the protocol's paper theorems (E3, E4, E5)."""

import functools

import pytest

from repro.proof.judgments import ForAllSat
from repro.systems import protocol

prove_all_cached = functools.lru_cache(maxsize=1)(protocol.prove_all)
check_table1_cached = functools.lru_cache(maxsize=1)(protocol.check_table1_proof)


class TestModelChecking:
    def test_all_claims_hold_bounded(self):
        results = protocol.check_all(depth=5, sample=3)
        for label, result in results.items():
            assert result.holds, f"{label}: {result.counterexample}"

    def test_larger_message_alphabet(self):
        results = protocol.check_all(depth=4, sample=3, messages={0, 1, 2})
        assert all(result.holds for result in results.values())


class TestAutomatedProofs:
    def test_prove_all(self):
        reports = prove_all_cached()
        assert set(reports) == {"sender", "q", "receiver", "protocol"}

    def test_sender_theorem(self):
        reports = prove_all_cached()
        assert repr(reports["sender"].conclusion) == "sender sat f(wire) <= input"

    def test_q_lemma_is_universally_quantified(self):
        reports = prove_all_cached()
        assert isinstance(reports["q"].conclusion, ForAllSat)

    def test_protocol_theorem_uses_expected_rules(self):
        reports = prove_all_cached()
        used = set(reports["protocol"].rules_used)
        assert {"chan", "parallelism", "consequence", "recursion"} <= used


class TestTable1Explicit:
    """Experiment E3: the displayed Table 1 proof, line by line."""

    def test_checks(self):
        report = check_table1_cached()
        assert repr(report.conclusion) == "sender sat f(wire) <= input"

    def test_rule_profile_matches_the_table(self):
        # Table 1 uses: input ×3 (lines 4, 15, 16), alternative (17),
        # output (19), consequence (10, 12), ∀-elim (5, 7), ∀-intro
        # (11, 13, 21), plus the recursion wrapper and its assumptions.
        report = check_table1_cached()
        rules = report.rules_used
        assert rules["input"] == 3
        assert rules["alternative"] == 1
        assert rules["output"] == 1
        assert rules["consequence"] == 2
        assert rules["forall-sat-elim"] == 2
        assert rules["recursion"] == 1

    def test_def_f_side_conditions_discharged(self):
        report = check_table1_cached()
        # the "(def f)" lines become oracle discharges
        assert len(report.discharges) == 8
        assert all(d.verdict.ok for d in report.discharges)

    def test_agrees_with_tactic_built_proof(self):
        explicit = check_table1_cached()
        automated = prove_all_cached()["sender"]
        assert explicit.conclusion == automated.conclusion


class TestTamperedProofRejected:
    def test_wrong_invariant_fails(self):
        from repro.assertions.parser import parse_assertion
        from repro.errors import ProofError
        from repro.proof.checker import ProofChecker
        from repro.proof.tactics import SatProver, TacticError

        bad_invariants = dict(protocol.invariants())
        bad_invariants["sender"] = parse_assertion(
            "input <= f(wire)", protocol.CHANNELS
        )
        prover = SatProver(protocol.definitions(), protocol.oracle(), bad_invariants)
        with pytest.raises((ProofError, TacticError)):
            proof = prover.prove_name("sender")
            ProofChecker(protocol.definitions(), protocol.oracle()).check(proof)

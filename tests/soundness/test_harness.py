"""The §3.4 soundness experiments (E8): every rule, zero violations."""

import pytest

from repro.soundness.harness import (
    ALL_RULE_EXPERIMENTS,
    run_all_rule_experiments,
    run_rule_experiment,
)


class TestPerRule:
    @pytest.mark.parametrize("rule", sorted(ALL_RULE_EXPERIMENTS))
    def test_rule_is_sound(self, rule):
        result = run_rule_experiment(rule, trials=120, seed=11)
        assert result.sound, result.example_violation
        assert result.premises_held > 0, f"{rule}: experiment was vacuous"

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            run_rule_experiment("modus-ponens")


class TestHarness:
    def test_run_all_covers_every_rule(self):
        results = run_all_rule_experiments(trials=30, seed=3)
        assert {r.rule for r in results} == set(ALL_RULE_EXPERIMENTS)
        assert all(r.sound for r in results)

    def test_results_are_reproducible(self):
        a = run_rule_experiment("consequence", trials=40, seed=5)
        b = run_rule_experiment("consequence", trials=40, seed=5)
        assert a == b

    def test_summary_format(self):
        result = run_rule_experiment("emptiness", trials=20, seed=0)
        assert "emptiness" in result.summary()
        assert "violations=0" in result.summary()

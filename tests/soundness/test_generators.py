"""Unit tests for the random generators."""

from repro.process.ast import Process
from repro.assertions.ast import Formula
from repro.assertions.substitution import channels_mentioned
from repro.soundness.generators import AssertionGenerator, ProcessGenerator


class TestProcessGenerator:
    def test_deterministic_by_seed(self):
        a = [ProcessGenerator(seed=7).process() for _ in range(10)]
        b = [ProcessGenerator(seed=7).process() for _ in range(10)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [ProcessGenerator(seed=1).process() for _ in range(10)]
        b = [ProcessGenerator(seed=2).process() for _ in range(10)]
        assert a != b

    def test_generates_processes(self):
        gen = ProcessGenerator(seed=0)
        for _ in range(50):
            assert isinstance(gen.process(), Process)

    def test_generated_processes_are_closed(self):
        gen = ProcessGenerator(seed=3)
        for _ in range(50):
            assert gen.process().free_variables() == frozenset()

    def test_depth_zero_is_stop(self):
        from repro.process.ast import STOP

        assert ProcessGenerator(seed=0).process(0) is STOP

    def test_generated_processes_denote(self):
        from repro.semantics.denotation import denote
        from repro.semantics.config import SemanticsConfig

        gen = ProcessGenerator(seed=5, allow_networks=True)
        for _ in range(30):
            closure = denote(gen.process(), config=SemanticsConfig(depth=3, sample=2))
            assert closure.is_prefix_closed()


class TestAssertionGenerator:
    def test_deterministic_by_seed(self):
        a = [AssertionGenerator(seed=7).formula() for _ in range(10)]
        b = [AssertionGenerator(seed=7).formula() for _ in range(10)]
        assert a == b

    def test_generates_formulas(self):
        gen = AssertionGenerator(seed=0)
        for _ in range(50):
            assert isinstance(gen.formula(), Formula)

    def test_formula_over_restricts_channels(self):
        gen = AssertionGenerator(seed=1)
        for _ in range(30):
            formula = gen.formula_over(("a",))
            assert {c.name for c in channels_mentioned(formula)} <= {"a"}

    def test_formula_over_restores_universe(self):
        gen = AssertionGenerator(seed=2)
        gen.formula_over(("a",))
        assert gen.channels == ("a", "b", "wire")

    def test_generated_formulas_evaluate(self):
        from repro.assertions.eval import evaluate_formula
        from repro.traces.histories import ch
        from repro.traces.events import trace
        from repro.values.environment import Environment

        gen = AssertionGenerator(seed=4)
        history = ch(trace(("a", 0), ("wire", 1)))
        for _ in range(50):
            evaluate_formula(gen.formula(), Environment(), history)

"""Unit tests for the dependency-graph denotation engine.

The engine's contract is *exact* reproduction of the monolithic
:class:`~repro.semantics.fixpoint.ApproximationChain` — pointer-identical
roots per definition (and per sampled array subscript) — while spending
strictly fewer definition-level denotations.  These tests check that
contract on the full systems suite, plus the engine-specific behaviours:
SCC plans, delta accounting, worker threads, budget soundness, and loud
failure on unscheduled bindings.
"""

import pytest

from repro.errors import BudgetExceeded, SemanticsError
from repro.process.parser import parse_definitions
from repro.runtime.governor import Budget, activate
from repro.semantics.config import SemanticsConfig
from repro.semantics.engine import DenotationEngine, engine_denotation
from repro.semantics.fixpoint import ApproximationChain, fixpoint_denotation
from repro.systems import buffer, copier, multiplier, philosophers, protocol, register

# sample=3 covers every subscript the systems suite consults (multiplier's
# network reaches mult[3]); depth 4 keeps the suite fast.
CFG = SemanticsConfig(depth=4, sample=3)

SYSTEMS = [
    pytest.param(copier, id="copier"),
    pytest.param(multiplier, id="multiplier"),
    pytest.param(protocol, id="protocol"),
    pytest.param(buffer, id="buffer"),
    pytest.param(philosophers, id="philosophers"),
    pytest.param(register, id="register"),
]


def _assert_pointer_identical(chain_fix, engine):
    for name, value in chain_fix.items():
        if isinstance(value, dict):
            for subscript, closure in value.items():
                assert engine.closure_for(name, subscript).root is closure.root
        else:
            assert engine.closure_for(name).root is value.root


class TestChainEquivalence:
    @pytest.mark.parametrize("system", SYSTEMS)
    def test_pointer_identical_to_chain(self, system):
        defs, env = system.definitions(), system.environment()
        chain = ApproximationChain(defs, env, CFG)
        engine = DenotationEngine(defs, env, CFG)
        _assert_pointer_identical(chain.fixpoint(), engine)

    @pytest.mark.parametrize("system", SYSTEMS)
    def test_pointer_identical_with_two_jobs(self, system):
        defs, env = system.definitions(), system.environment()
        chain = ApproximationChain(defs, env, CFG)
        engine = DenotationEngine(defs, env, CFG, jobs=2)
        _assert_pointer_identical(chain.fixpoint(), engine)

    def test_fixpoint_shape_matches_chain(self):
        defs, env = multiplier.definitions(), multiplier.environment()
        chain_fix = ApproximationChain(defs, env, CFG).fixpoint()
        engine_fix = DenotationEngine(defs, env, CFG).fixpoint()
        assert set(chain_fix) == set(engine_fix)
        assert set(chain_fix["mult"]) == set(engine_fix["mult"])

    def test_engine_denotation_matches_fixpoint_denotation(self):
        defs, env = protocol.definitions(), protocol.environment()
        via_engine = engine_denotation(defs, "sender", env=env, config=CFG)
        via_chain = fixpoint_denotation(defs, "sender", env=env, config=CFG)
        assert via_engine.root is via_chain.root

    def test_engine_spends_fewer_definition_levels(self):
        defs, env = multiplier.definitions(), multiplier.environment()
        chain = ApproximationChain(defs, env, CFG)
        chain.run_until_stable()
        naive_levels = (chain.levels_computed() - 1) * len(
            list(DenotationEngine(defs, env, CFG).plan())
        )
        engine = DenotationEngine(defs, env, CFG)
        engine.run()
        assert engine.redenoted_entries < chain.redenoted_entries + chain.delta_skipped
        assert engine.redenoted_entries <= naive_levels


class TestScheduling:
    def test_non_recursive_scc_denoted_once(self):
        defs = parse_definitions("leaf = a!0 -> leaf; top = b!0 -> leaf")
        engine = DenotationEngine(defs, config=CFG)
        engine.run()
        top = next(r for r in engine.reports if r.entries == ("top",))
        assert not top.recursive
        assert top.redenoted == 1 and top.skipped == 0

    def test_recursive_scc_runs_local_chain(self):
        defs = parse_definitions("p = a!0 -> p")
        engine = DenotationEngine(defs, config=CFG)
        engine.run()
        (report,) = engine.reports
        assert report.recursive
        assert len(report.levels) >= 2  # at least one growth + one stable level

    def test_plan_orders_dependencies_first(self):
        defs = parse_definitions("top = a!0 -> mid; mid = b!0 -> leaf; leaf = c!0 -> leaf")
        plan = DenotationEngine(defs, config=CFG).plan()
        names = [scc.entries[0].name for _, scc in plan]
        assert names.index("leaf") < names.index("mid") < names.index("top")
        ranks = {scc.entries[0].name: rank for rank, scc in plan}
        assert ranks["leaf"] == 0 and ranks["top"] == 2

    def test_delta_skip_in_uneven_scc(self):
        # sender stabilises before the q entries it feeds; the engine must
        # skip its re-denotations while still matching the chain.  Depth 5
        # gives the q chain enough levels to outlive sender's.
        deep = SemanticsConfig(depth=5, sample=3)
        defs, env = protocol.definitions(), protocol.environment()
        engine = DenotationEngine(defs, env, deep)
        engine.run()
        assert engine.delta_skipped > 0
        chain = ApproximationChain(defs, env, deep)
        _assert_pointer_identical(chain.fixpoint(), engine)

    def test_explain_mentions_plan_and_totals(self):
        defs, env = multiplier.definitions(), multiplier.environment()
        engine = DenotationEngine(defs, env, CFG)
        text = engine.explain()
        assert "engine plan:" in text
        assert "rank 0" in text
        assert "definition-levels denoted" in text

    def test_levels_computed_comparable_to_chain(self):
        defs, env = copier.definitions(), copier.environment()
        chain = ApproximationChain(defs, env, CFG)
        chain.run_until_stable()
        engine = DenotationEngine(defs, env, CFG)
        engine.run()
        # The engine's deepest local chain never outruns the monolithic
        # chain, and a recursive definition always needs at least one
        # growth level beyond the bottom.
        assert 2 <= engine.levels_computed() <= chain.levels_computed()


class TestErrors:
    def test_missing_array_subscript(self):
        defs, env = multiplier.definitions(), multiplier.environment()
        engine = DenotationEngine(defs, env, CFG)
        with pytest.raises(SemanticsError, match="no sampled subscript"):
            engine.closure_for("mult", 99)

    def test_subscript_on_plain_name(self):
        defs, env = copier.definitions(), copier.environment()
        engine = DenotationEngine(defs, env, CFG)
        with pytest.raises(SemanticsError, match="not a process array"):
            engine.closure_for("copier", 1)

    def test_out_of_sample_lookup_matches_chain_message(self):
        # Consulting an out-of-sample subscript through engine bindings
        # raises the same guidance the chain gives.
        defs, env = multiplier.definitions(), multiplier.environment()
        engine = DenotationEngine(defs, env, CFG)
        bindings = engine.bindings()
        with pytest.raises(SemanticsError, match="raise config.sample"):
            bindings["mult"](99)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_worker_errors_keep_their_class(self, jobs):
        # multiplier's environment carries the vector host function; drop
        # it so every SCC's denotation fails, including on worker threads.
        # The caller must see the *original* exception class — thread
        # workers never launder errors the way a pickled process pool does.
        from repro.errors import UnboundVariableError
        from repro.values.environment import Environment

        defs = multiplier.definitions()
        engine = DenotationEngine(defs, Environment(), CFG, jobs=jobs)
        with pytest.raises(UnboundVariableError, match="'v'"):
            engine.run()


class TestBudgets:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_budget_trip_carries_engine_checkpoint(self, jobs):
        # A private kernel state makes every node newly interned, so the
        # node budget bites regardless of what earlier tests built.
        from repro.traces.trie import private_state

        defs, env = multiplier.definitions(), multiplier.environment()
        with private_state(), activate(Budget(max_nodes=40).start()):
            engine = DenotationEngine(defs, env, CFG, jobs=jobs)
            with pytest.raises(BudgetExceeded) as excinfo:
                engine.run()
        checkpoint = excinfo.value.checkpoint
        assert checkpoint is not None
        assert checkpoint.phase == "engine"

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_deadline_trip_is_budget_exceeded(self, jobs):
        defs, env = protocol.definitions(), protocol.environment()
        with activate(Budget(deadline=0.0).start()):
            engine = DenotationEngine(defs, env, CFG, jobs=jobs)
            with pytest.raises(BudgetExceeded):
                engine.run()

    def test_unbudgeted_run_unaffected(self):
        defs, env = copier.definitions(), copier.environment()
        engine = DenotationEngine(defs, env, CFG)
        engine.run()
        assert engine.reports


class TestHorizonSkips:
    """Sub-level delta skips: entries whose dependencies changed only
    beyond the consult horizon are served from the previous level."""

    DEEP = SemanticsConfig(depth=5, sample=3)

    @pytest.mark.parametrize(
        "system", [pytest.param(multiplier, id="multiplier"),
                   pytest.param(protocol, id="protocol"),
                   pytest.param(philosophers, id="philosophers")]
    )
    def test_horizon_skips_fire_and_preserve_identity(self, system):
        defs, env = system.definitions(), system.environment()
        engine = DenotationEngine(defs, env, self.DEEP)
        engine.run()
        assert engine.frontier_skipped > 0
        assert engine.delta_skipped >= engine.frontier_skipped
        chain = ApproximationChain(defs, env, self.DEEP)
        _assert_pointer_identical(chain.fixpoint(), engine)

    def test_horizon_skips_survive_worker_threads(self):
        defs, env = protocol.definitions(), protocol.environment()
        engine = DenotationEngine(defs, env, self.DEEP, jobs=2)
        engine.run()
        assert engine.frontier_skipped > 0
        chain = ApproximationChain(defs, env, self.DEEP)
        _assert_pointer_identical(chain.fixpoint(), engine)

    def test_explain_reports_horizon_detail(self):
        defs, env = protocol.definitions(), protocol.environment()
        engine = DenotationEngine(defs, env, self.DEEP)
        text = engine.explain()
        assert "beyond the consult horizon" in text
        assert "delta frontiers:" in text
        assert "sub-level/horizon" in text

    def test_reports_account_for_every_entry_each_level(self):
        defs, env = multiplier.definitions(), multiplier.environment()
        engine = DenotationEngine(defs, env, self.DEEP)
        engine.run()
        for scc in engine.reports:
            if not scc.recursive:
                continue
            entries = len(scc.entries)
            for level in scc.levels:
                assert (
                    len(level.redenoted)
                    + len(level.skipped)
                    + len(level.horizon)
                    == entries
                )

"""The failures extension (§4's future work): bounded failures model."""

import pytest

from repro.process.ast import Choice, Name, STOP
from repro.process.parser import parse_definitions, parse_process
from repro.semantics.config import SemanticsConfig
from repro.semantics.equivalence import trace_equivalent
from repro.semantics.failures import (
    InternalChoiceSemantics,
    failures,
    failures_difference,
    failures_equivalent,
    failures_of,
)
from repro.traces.events import EMPTY_TRACE, event, trace

P = parse_process("a!0 -> b!1 -> STOP")


class TestBasicFailures:
    def test_stop_refuses_everything(self):
        f = failures_of(STOP)
        assert f.traces() == {EMPTY_TRACE}
        assert f.after(EMPTY_TRACE).can_refuse(f.alphabet)
        assert not f.after(EMPTY_TRACE).diverges

    def test_prefix_cannot_refuse_its_event_initially(self):
        f = failures_of(P)
        assert not f.can_refuse(EMPTY_TRACE, frozenset({event("a", 0)}))
        assert f.can_refuse(EMPTY_TRACE, frozenset({event("b", 1)}))

    def test_refusals_after_trace(self):
        f = failures_of(P)
        after_a = (event("a", 0),)
        assert f.can_refuse(after_a, frozenset({event("a", 0)}))
        assert not f.can_refuse(after_a, frozenset({event("b", 1)}))

    def test_terminal_state_refuses_all(self):
        f = failures_of(P)
        full = trace(("a", 0), ("b", 1))
        assert full in f.deadlock_failures()

    def test_unknown_trace_raises(self):
        f = failures_of(P)
        with pytest.raises(KeyError):
            f.after(trace(("z", 9)))


class TestSection4Resolution:
    """The model §4 hoped for: STOP | P ≠ P here, = P in traces."""

    def test_stop_choice_distinguished(self):
        hedged = Choice(STOP, P)
        assert trace_equivalent(hedged, P, config=SemanticsConfig(4, 2))
        assert not failures_equivalent(hedged, P)

    def test_difference_is_initial_total_refusal(self):
        hedged = Choice(STOP, P)
        witness = failures_difference(hedged, P)
        assert witness is not None and "refusals differ" in witness
        f = failures_of(hedged)
        assert EMPTY_TRACE in f.deadlock_failures()
        assert EMPTY_TRACE not in failures_of(P).deadlock_failures()

    def test_mid_run_deadlock_option_distinguished(self):
        # §4: "the same identity holds if the deadlock could happen after
        # a certain number of communications" — failures see that too.
        early = parse_process("a!0 -> (STOP | b!1 -> STOP)")
        late = parse_process("a!0 -> b!1 -> STOP")
        assert trace_equivalent(early, late, config=SemanticsConfig(4, 2))
        assert not failures_equivalent(early, late)

    def test_internal_choice_union_law(self):
        # failures(P ⊓ Q) ⊇ failures(P): either branch's refusals appear
        q = parse_process("b!1 -> STOP")
        both = Choice(P, q)
        f_both = failures_of(both)
        f_p = failures_of(P)
        # P's initial refusal of b is still available after ⟨⟩ in P ⊓ Q
        assert f_both.can_refuse(EMPTY_TRACE, frozenset({event("b", 1)}))
        assert f_both.can_refuse(EMPTY_TRACE, frozenset({event("a", 0)}))

    def test_deterministic_processes_unchanged(self):
        assert failures_equivalent(P, P)
        q = parse_process("a!0 -> b!1 -> STOP")
        assert failures_equivalent(P, q)


class TestFailuresRefinement:
    """Spec ⊑F Impl: trace containment plus refusal containment."""

    def test_reflexive(self):
        from repro.semantics.failures import failures_refines

        assert failures_refines(P, P)

    def test_branch_refines_choice_in_traces_but_also_failures(self):
        from repro.semantics.failures import failures_refines

        left = parse_process("a!0 -> STOP")
        both = Choice(parse_process("a!0 -> STOP"), parse_process("b!1 -> STOP"))
        # internal choice may refuse a or refuse b, so the deterministic
        # branch (which refuses only b) refines it
        assert failures_refines(left, both)

    def test_stop_does_not_failures_refine_a_live_spec(self):
        from repro.semantics.failures import failures_refines

        # STOP trace-refines everything; failures refinement rejects it
        # when the spec cannot refuse its initial events
        from repro.semantics.laws import refines

        assert refines(STOP, P)  # trace refinement accepts
        assert not failures_refines(STOP, P)  # failures refinement does not

    def test_hedged_implementation_rejected(self):
        from repro.semantics.failures import failures_refines

        hedged = Choice(STOP, P)
        assert failures_refines(P, hedged)  # spec allows the deadlock
        assert not failures_refines(hedged, P)  # impl may deadlock: rejected

    def test_trace_violation_rejected(self):
        from repro.semantics.failures import failures_refines

        bigger = parse_process("a!0 -> b!1 -> c!2 -> STOP")
        assert not failures_refines(bigger, P)


class TestWithNetworks:
    def test_hidden_network_failures(self):
        defs = parse_definitions(
            "p = w!0 -> done!1 -> STOP; q = w?x:NAT -> STOP;"
            "net = chan w; (p || q)"
        )
        semantics = InternalChoiceSemantics(defs, sample=2)
        f = failures(Name("net"), semantics, depth=3)
        # before the hidden sync happens the state is unstable (τ
        # available), so the only stable refusals appear once it fired
        assert (event("done", 1),) in f.traces()

    def test_divergence_reported(self):
        # an endless hidden loop never reaches a stable state
        defs = parse_definitions(
            "spin = w!0 -> spin; sink = w?x:NAT -> sink;"
            "net = chan w; (spin || sink)"
        )
        semantics = InternalChoiceSemantics(defs, sample=1)
        f = failures(Name("net"), semantics, depth=2)
        assert EMPTY_TRACE in f.diverging_traces()

    def test_recursion_through_names(self):
        defs = parse_definitions("loop = a!0 -> loop")
        semantics = InternalChoiceSemantics(defs, sample=1)
        f = failures(Name("loop"), semantics, depth=3)
        assert not f.after(EMPTY_TRACE).can_refuse(frozenset({event("a", 0)}))

    def test_failures_respect_trace_set(self):
        from repro.semantics.denotation import denote

        defs = parse_definitions("p = a!0 -> p | b!1 -> STOP")
        semantics = InternalChoiceSemantics(defs, sample=2)
        f = failures(Name("p"), semantics, depth=3)
        closure = denote(Name("p"), defs, config=SemanticsConfig(3, 2))
        assert f.traces() == closure.traces

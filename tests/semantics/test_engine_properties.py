"""Property-based equivalence tests for the denotation engine.

For random guarded definition lists — mutual recursion, self-loops, and
process arrays included — the dependency-graph engine must be

* **pointer-identical** to the monolithic approximation chain on the
  hash-consed trie kernel (the engine's exactness contract), sequential
  and with worker threads alike; and
* **value-equal** to the chain run on the flat-set ``_reference`` kernel
  (the independent oracle the trie kernel is itself validated against).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.process.parser import parse_definitions
from repro.semantics.config import SemanticsConfig
from repro.semantics.engine import DenotationEngine
from repro.semantics.fixpoint import ApproximationChain

CFG = SemanticsConfig(depth=3, sample=3)

CHANNELS = ("a", "b", "c")
ARRAY_DOMAIN = "{0..2}"
SUBSCRIPTS = (0, 1, 2)


@st.composite
def definition_sources(draw):
    """Source text of a random guarded definition list.

    One to three plain definitions plus (sometimes) a process array;
    every reference sits behind a communication, so the list always
    passes the guardedness check, and every subscript is drawn from the
    sampled domain so the chain itself never faults.
    """
    n = draw(st.integers(min_value=1, max_value=3))
    names = [f"p{i}" for i in range(n)]
    with_array = draw(st.booleans())

    def tail(in_array):
        options = ["STOP"] + names
        if with_array:
            options += [f"arr[{draw(st.sampled_from(SUBSCRIPTS))}]"]
            if in_array:
                options += ["arr[i]"]
        return draw(st.sampled_from(options))

    def guarded(in_array):
        parts = []
        for _ in range(draw(st.integers(min_value=1, max_value=2))):
            channel = draw(st.sampled_from(CHANNELS))
            if draw(st.booleans()):
                parts.append(f"{channel}!{draw(st.sampled_from((0, 1)))}")
            else:
                parts.append(f"{channel}?x:NAT")
        return " -> ".join(parts + [tail(in_array)])

    def body(in_array):
        if draw(st.booleans()):
            return f"({guarded(in_array)} | {guarded(in_array)})"
        return guarded(in_array)

    clauses = [f"{name} = {body(False)}" for name in names]
    if with_array:
        clauses.append(f"arr[i:{ARRAY_DOMAIN}] = {body(True)}")
    return "; ".join(clauses)


def _roots(fixpoint):
    flat = {}
    for name, value in fixpoint.items():
        if isinstance(value, dict):
            for subscript, closure in value.items():
                flat[(name, subscript)] = closure
        else:
            flat[(name, None)] = closure = value
    return flat


@settings(max_examples=50, deadline=None)
@given(definition_sources())
def test_engine_pointer_identical_to_chain(source):
    defs = parse_definitions(source)
    chain_fix = _roots(ApproximationChain(defs, config=CFG).fixpoint())
    engine = DenotationEngine(defs, config=CFG)
    for (name, subscript), closure in chain_fix.items():
        assert engine.closure_for(name, subscript).root is closure.root


@settings(max_examples=25, deadline=None)
@given(definition_sources())
def test_engine_with_workers_pointer_identical_to_chain(source):
    defs = parse_definitions(source)
    chain_fix = _roots(ApproximationChain(defs, config=CFG).fixpoint())
    engine = DenotationEngine(defs, config=CFG, jobs=2)
    for (name, subscript), closure in chain_fix.items():
        assert engine.closure_for(name, subscript).root is closure.root


@settings(max_examples=25, deadline=None)
@given(definition_sources())
def test_engine_agrees_with_reference_kernel_oracle(source):
    defs = parse_definitions(source)
    oracle = _roots(
        ApproximationChain(defs, config=CFG, kernel="reference").fixpoint()
    )
    engine = DenotationEngine(defs, config=CFG)
    for (name, subscript), closure in oracle.items():
        assert engine.closure_for(name, subscript) == closure

"""Property-based equivalence tests for the denotation engine.

For random guarded definition lists — mutual recursion, self-loops, and
process arrays included — the dependency-graph engine must be

* **pointer-identical** to the monolithic approximation chain on the
  hash-consed trie kernel (the engine's exactness contract), sequential
  and with worker threads alike; and
* **value-equal** to the chain run on the flat-set ``_reference`` kernel
  (the independent oracle the trie kernel is itself validated against).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.process.ast import Name
from repro.process.parser import parse_definitions
from repro.sat.checker import SatChecker
from repro.semantics.config import SemanticsConfig
from repro.semantics.denotation import Denoter
from repro.semantics.engine import DenotationEngine
from repro.semantics.fixpoint import ApproximationChain
from repro.values.environment import Environment

CFG = SemanticsConfig(depth=3, sample=3)

CHANNELS = ("a", "b", "c")
ARRAY_DOMAIN = "{0..2}"
SUBSCRIPTS = (0, 1, 2)


@st.composite
def definition_sources(draw):
    """Source text of a random guarded definition list.

    One to three plain definitions plus (sometimes) a process array;
    bodies are sometimes wrapped in a ``chan`` hiding one channel.  Every
    reference sits behind a communication, so the list always passes the
    guardedness check, and every subscript is drawn from the sampled
    domain so the chain itself never faults.
    """
    n = draw(st.integers(min_value=1, max_value=3))
    names = [f"p{i}" for i in range(n)]
    with_array = draw(st.booleans())

    def tail(in_array):
        options = ["STOP"] + names
        if with_array:
            options += [f"arr[{draw(st.sampled_from(SUBSCRIPTS))}]"]
            if in_array:
                options += ["arr[i]"]
        return draw(st.sampled_from(options))

    def guarded(in_array):
        parts = []
        for _ in range(draw(st.integers(min_value=1, max_value=2))):
            channel = draw(st.sampled_from(CHANNELS))
            if draw(st.booleans()):
                parts.append(f"{channel}!{draw(st.sampled_from((0, 1)))}")
            else:
                parts.append(f"{channel}?x:NAT")
        return " -> ".join(parts + [tail(in_array)])

    def body(in_array):
        if draw(st.booleans()):
            return f"({guarded(in_array)} | {guarded(in_array)})"
        if draw(st.booleans()):
            # Hide one channel: exercises the chan rule's deepened inner
            # denotation (hide_depth) through chain, engine, and checker.
            hidden = draw(st.sampled_from(CHANNELS))
            return f"chan {hidden}; {guarded(in_array)}"
        return guarded(in_array)

    clauses = [f"{name} = {body(False)}" for name in names]
    if with_array:
        clauses.append(f"arr[i:{ARRAY_DOMAIN}] = {body(True)}")
    return "; ".join(clauses)


def _roots(fixpoint):
    flat = {}
    for name, value in fixpoint.items():
        if isinstance(value, dict):
            for subscript, closure in value.items():
                flat[(name, subscript)] = closure
        else:
            flat[(name, None)] = closure = value
    return flat


@settings(max_examples=50, deadline=None)
@given(definition_sources())
def test_engine_pointer_identical_to_chain(source):
    defs = parse_definitions(source)
    chain_fix = _roots(ApproximationChain(defs, config=CFG).fixpoint())
    engine = DenotationEngine(defs, config=CFG)
    for (name, subscript), closure in chain_fix.items():
        assert engine.closure_for(name, subscript).root is closure.root


@settings(max_examples=25, deadline=None)
@given(definition_sources())
def test_engine_with_workers_pointer_identical_to_chain(source):
    defs = parse_definitions(source)
    chain_fix = _roots(ApproximationChain(defs, config=CFG).fixpoint())
    engine = DenotationEngine(defs, config=CFG, jobs=2)
    for (name, subscript), closure in chain_fix.items():
        assert engine.closure_for(name, subscript).root is closure.root


@settings(max_examples=25, deadline=None)
@given(definition_sources())
def test_engine_agrees_with_reference_kernel_oracle(source):
    defs = parse_definitions(source)
    oracle = _roots(
        ApproximationChain(defs, config=CFG, kernel="reference").fixpoint()
    )
    engine = DenotationEngine(defs, config=CFG)
    for (name, subscript), closure in oracle.items():
        assert engine.closure_for(name, subscript) == closure

@settings(max_examples=25, deadline=None)
@given(definition_sources())
def test_checker_supply_matches_unfold_and_reference_oracle(source):
    """The sat checker's engine-backed trace supply is exact: pointer-
    identical to the monolithic chain (and to pure unfold-on-demand
    wherever unfolding terminates) and value-equal to the flat-set
    reference chain — arrays and chan targets included."""
    from repro.errors import BudgetExceeded

    defs = parse_definitions(source)
    checker = SatChecker(defs, config=CFG)
    target = Name("p0")
    got = checker.traces_of(target)
    chain_fix = ApproximationChain(defs, config=CFG).fixpoint()
    assert got.root is chain_fix["p0"].root
    try:
        want = Denoter(defs, Environment(), CFG).denote(target, CFG.depth)
    except BudgetExceeded:
        # Pure unfolding can diverge when recursion re-enters a chan (the
        # hide rule resets the depth); the level-bounded chain above is
        # the oracle for those systems.
        pass
    else:
        assert got.root is want.root
    oracle = ApproximationChain(defs, config=CFG, kernel="reference").fixpoint()
    assert got == oracle["p0"]

"""Error-path tests for the denotational semantics plumbing."""

import pytest

from repro.errors import SemanticsError
from repro.process.ast import ArrayRef, Name
from repro.process.parser import parse_definitions
from repro.semantics.config import SemanticsConfig
from repro.semantics.denotation import Denoter
from repro.traces.prefix_closure import STOP_CLOSURE
from repro.values.expressions import Const


class TestProcessBindings:
    DEFS = parse_definitions("p = a!0 -> p; q[x:{0..1}] = b!x -> q[x]")

    def test_name_bound_to_closure(self):
        denoter = Denoter(
            self.DEFS, config=SemanticsConfig(3, 2), process_bindings={"p": STOP_CLOSURE}
        )
        assert denoter.denote(Name("p")) == STOP_CLOSURE

    def test_name_bound_to_garbage_rejected(self):
        denoter = Denoter(
            self.DEFS, config=SemanticsConfig(3, 2), process_bindings={"p": 42}
        )
        with pytest.raises(SemanticsError, match="non-closure"):
            denoter.denote(Name("p"))

    def test_array_bound_to_function(self):
        denoter = Denoter(
            self.DEFS,
            config=SemanticsConfig(3, 2),
            process_bindings={"q": lambda v: STOP_CLOSURE},
        )
        assert denoter.denote(ArrayRef("q", Const(0))) == STOP_CLOSURE

    def test_array_bound_to_non_callable_rejected(self):
        denoter = Denoter(
            self.DEFS, config=SemanticsConfig(3, 2), process_bindings={"q": 42}
        )
        with pytest.raises(SemanticsError, match="non-function"):
            denoter.denote(ArrayRef("q", Const(0)))

    def test_array_function_returning_garbage_rejected(self):
        denoter = Denoter(
            self.DEFS,
            config=SemanticsConfig(3, 2),
            process_bindings={"q": lambda v: "oops"},
        )
        with pytest.raises(SemanticsError, match="non-closure"):
            denoter.denote(ArrayRef("q", Const(0)))


class TestConfigValidation:
    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            SemanticsConfig(depth=-1)

    def test_zero_sample_rejected(self):
        with pytest.raises(ValueError):
            SemanticsConfig(sample=0)

    def test_with_depth_copies(self):
        cfg = SemanticsConfig(depth=4, sample=3)
        deeper = cfg.with_depth(8)
        assert deeper.depth == 8 and deeper.sample == 3
        assert cfg.depth == 4  # original untouched

    def test_equality_and_repr(self):
        assert SemanticsConfig(4, 2) == SemanticsConfig(4, 2)
        assert "depth=4" in repr(SemanticsConfig(4, 2))


class TestOperationalStateErrors:
    def test_array_name_without_subscript_rejected(self):
        from repro.errors import OperationalError
        from repro.operational.state import lift
        from repro.values.environment import Environment

        defs = parse_definitions("q[x:{0..1}] = b!x -> q[x]")
        with pytest.raises(OperationalError, match="without subscript"):
            lift(Name("q"), defs, Environment())

"""Property-based consistency tests of the semantics on random processes.

The heavyweight cross-checks: for arbitrary generated processes,

* bounded denotations are prefix-closed and monotone in depth;
* the denotational and operational semantics agree exactly;
* the explicit fixpoint chain agrees with unfold-on-demand on random
  guarded recursions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operational.explorer import explore_traces
from repro.operational.step import OperationalSemantics
from repro.process.ast import Name
from repro.process.definitions import NO_DEFINITIONS
from repro.process.parser import parse_definitions
from repro.semantics.config import SemanticsConfig
from repro.semantics.denotation import denote
from repro.semantics.fixpoint import fixpoint_denotation
from repro.soundness.generators import ProcessGenerator


@st.composite
def random_processes(draw, allow_networks=True):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return ProcessGenerator(
        seed=seed, max_depth=4, allow_networks=allow_networks
    ).process()


@settings(max_examples=60, deadline=None)
@given(random_processes())
def test_denotation_is_prefix_closed(process):
    closure = denote(process, config=SemanticsConfig(depth=4, sample=2))
    assert closure.is_prefix_closed()


@settings(max_examples=60, deadline=None)
@given(random_processes())
def test_denotation_monotone_in_depth(process):
    shallow = denote(process, config=SemanticsConfig(depth=3, sample=2))
    deep = denote(process, config=SemanticsConfig(depth=5, sample=2))
    assert shallow.issubset(deep)
    assert deep.truncate(3) == shallow


@settings(max_examples=60, deadline=None)
@given(random_processes())
def test_denotation_monotone_in_sample(process):
    narrow = denote(process, config=SemanticsConfig(depth=4, sample=1))
    wide = denote(process, config=SemanticsConfig(depth=4, sample=3))
    assert narrow.issubset(wide)


@settings(max_examples=40, deadline=None)
@given(random_processes())
def test_operational_agrees_with_denotational(process):
    cfg = SemanticsConfig(depth=4, sample=2)
    denotational = denote(process, config=cfg)
    semantics = OperationalSemantics(NO_DEFINITIONS, sample=cfg.sample)
    operational = explore_traces(process, semantics, cfg.depth)
    assert operational == denotational


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=1, max_value=3),
)
def test_fixpoint_agrees_on_random_linear_recursion(seed, length):
    import random

    rng = random.Random(seed)
    body = " -> ".join(
        f"{rng.choice('ab')}!{rng.choice((0, 1))}" for _ in range(length)
    )
    defs = parse_definitions(f"p = {body} -> p")
    cfg = SemanticsConfig(depth=4, sample=2)
    assert fixpoint_denotation(defs, "p", config=cfg) == denote(
        Name("p"), defs, config=cfg
    )

"""Algebraic laws of the trace model, checked concretely and on random
processes (extending the §3.1 theorems)."""

import pytest

from repro.process.ast import STOP
from repro.process.channels import ChannelExpr, ChannelList
from repro.process.parser import parse_process
from repro.semantics.config import SemanticsConfig
from repro.semantics.laws import ALL_LAWS, check_law, choice_unit_stop, refines
from repro.soundness.generators import ProcessGenerator

CFG = SemanticsConfig(depth=4, sample=2)
WIRE_LIST = ChannelList([ChannelExpr("wire")])
A_LIST = ChannelList([ChannelExpr("a")])

P = parse_process("a!0 -> wire!1 -> STOP")
Q = parse_process("wire?x:NAT -> b!0 -> STOP")
R = parse_process("b!1 -> STOP | a!2 -> STOP")

LAW_BY_NAME = {law.name: law for law in ALL_LAWS}


class TestConcreteInstances:
    @pytest.mark.parametrize("law", ALL_LAWS, ids=lambda l: l.name)
    def test_law_on_paper_style_processes(self, law):
        processes = (P, Q, R)[: law.arity]
        channels = (WIRE_LIST, A_LIST) if law.needs_channels else None
        result = check_law(law, processes, channels, config=CFG)
        assert result.holds, f"{law.name}: {result.witness}"

    def test_choice_unit_is_the_section4_defect(self):
        lhs, rhs = choice_unit_stop(P)
        result = check_law(LAW_BY_NAME["choice-unit-stop"], (P,), config=CFG)
        assert result.holds  # in THIS model; the failures model disagrees

    def test_witness_on_a_non_law(self):
        from repro.semantics.laws import _check

        bad = _check("fake", P, Q, __import__("repro.process.definitions", fromlist=["NO_DEFINITIONS"]).NO_DEFINITIONS, None, CFG)
        assert not bad.holds
        assert bad.witness is not None


class TestRandomSweep:
    GEN = ProcessGenerator(seed=99, max_depth=3)

    @pytest.mark.parametrize("law", ALL_LAWS, ids=lambda l: l.name)
    def test_law_on_random_processes(self, law):
        for _ in range(15):
            processes = tuple(self.GEN.process() for _ in range(law.arity))
            channels = (WIRE_LIST, A_LIST) if law.needs_channels else None
            result = check_law(law, processes, channels, config=CFG)
            assert result.holds, f"{law.name}: {result.witness}"


class TestRefinement:
    def test_reflexive(self):
        assert refines(P, P, config=CFG)

    def test_stop_refines_everything(self):
        # {⟨⟩} ⊆ P for every prefix closure (§3.1)
        assert refines(STOP, P, config=CFG)

    def test_branch_refines_choice(self):
        left = parse_process("a!0 -> STOP")
        both = parse_process("a!0 -> STOP | b!1 -> STOP")
        assert refines(left, both, config=CFG)
        assert not refines(both, left, config=CFG)

    def test_deeper_process_does_not_refine_shallower(self):
        small = parse_process("a!0 -> STOP")
        big = parse_process("a!0 -> a!1 -> STOP")
        assert not refines(big, small, config=CFG)
        assert refines(small, big, config=CFG)

"""Process-parallel engine mode: ``parallel="processes"``.

The contract mirrors the thread mode's, with a stronger isolation story:
each worker *process* solves its same-rank SCCs into a private arena and
ships packed flat segments back over a pipe; the parent splices them into
the canonical store in plan order.  These tests pin down

* **pointer identity** — final roots identical to a sequential solve, so
  every downstream consumer (checker, report, snapshots) is oblivious to
  how the fixpoint was scheduled;
* **exact accounting** — the ambient governor's ``note_nodes`` totals
  match a sequential run on a cold arena (children report solve deltas
  only; dependency carry-in is not double-charged);
* **isolation** — cross-process node ids enter the parent only via the
  splice path; raw foreign views still raise
  :class:`~repro.errors.KernelStateError`;
* **fault tolerance** — budget trips cross the pipe as budget trips, and
  a child that dies without a payload falls back to an in-process solve.
"""

import os

import pytest

from repro.errors import BudgetExceeded, KernelStateError
from repro.process.parser import parse_definitions
from repro.runtime.governor import Budget, activate
from repro.sat.checker import SatChecker
from repro.semantics.config import SemanticsConfig
from repro.semantics.engine import DenotationEngine
from repro.systems import multiplier, philosophers, protocol
from repro.traces.stats import KERNEL_STATS, reset_stats
from repro.traces.trie import clear_interner, make_node, private_state

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="process mode needs os.fork"
)

CFG = SemanticsConfig(depth=4, sample=3)

#: Two independent recursive processes over disjoint channels: two
#: singleton SCCs at the same rank, the smallest plan that actually
#: fans out across workers.
DISJOINT = (
    "left = a?x:{0,1} -> a!x -> left; "
    "right = b?x:{0,1} -> b!x -> right"
)

SYSTEMS = [
    pytest.param(multiplier, id="multiplier"),
    pytest.param(protocol, id="protocol"),
    pytest.param(philosophers, id="philosophers"),
]


def _roots(engine_fix):
    flat = {}
    for name, value in engine_fix.items():
        if isinstance(value, dict):
            for subscript, closure in value.items():
                flat[(name, subscript)] = closure.root
        else:
            flat[(name, None)] = value.root
    return flat


class TestPointerIdentity:
    @pytest.mark.parametrize("system", SYSTEMS)
    def test_roots_identical_to_sequential(self, system):
        defs, env = system.definitions(), system.environment()
        sequential = _roots(DenotationEngine(defs, env, CFG).fixpoint())
        spliced = _roots(
            DenotationEngine(
                defs, env, CFG, jobs=2, parallel="processes"
            ).fixpoint()
        )
        assert set(sequential) == set(spliced)
        for key, root in sequential.items():
            assert spliced[key] is root

    def test_cold_arena_roots_survive_the_splice(self):
        """On a cold arena the children's nodes are genuinely foreign —
        the splice path must rebuild them canonically, and a sequential
        solve afterwards must land on the very same views."""
        defs = parse_definitions(DISJOINT)
        with private_state():
            spliced = _roots(
                DenotationEngine(
                    defs, config=CFG, jobs=2, parallel="processes"
                ).fixpoint()
            )
            sequential = _roots(DenotationEngine(defs, config=CFG).fixpoint())
            for key, root in sequential.items():
                assert spliced[key] is root

    def test_splice_path_is_exercised(self):
        defs = parse_definitions(DISJOINT)
        with private_state():
            reset_stats()
            DenotationEngine(
                defs, config=CFG, jobs=2, parallel="processes"
            ).fixpoint()
            assert KERNEL_STATS.spliced_ids > 0
            assert KERNEL_STATS.spliced_bytes > 0
            assert KERNEL_STATS.remap_entries > 0
        reset_stats()


class TestCheckerEquivalence:
    def test_verdict_and_result_identical(self):
        defs, env = protocol.definitions(), protocol.environment()
        from repro.process.ast import Name

        sequential = SatChecker(defs, env, CFG).check(
            Name("protocol"), "output <= input"
        )
        parallel = SatChecker(
            defs, env, CFG, jobs=2, parallel="processes"
        ).check(Name("protocol"), "output <= input")
        assert parallel == sequential  # NamedTuple: verdict-for-verdict


class TestGovernorAccounting:
    def _nodes_interned(self, **engine_kwargs):
        defs = parse_definitions(DISJOINT)
        with private_state():
            governor = Budget(max_nodes=10**9).start()
            with activate(governor):
                DenotationEngine(defs, config=CFG, **engine_kwargs).fixpoint()
            return governor.nodes_interned

    def test_note_nodes_matches_sequential_exactly(self):
        assert self._nodes_interned(
            jobs=2, parallel="processes"
        ) == self._nodes_interned()

    def test_budget_trip_crosses_the_pipe(self):
        defs = parse_definitions(DISJOINT)
        with private_state():
            governor = Budget(max_nodes=3).start()
            with activate(governor):
                with pytest.raises(BudgetExceeded):
                    DenotationEngine(
                        defs, config=CFG, jobs=2, parallel="processes"
                    ).fixpoint()
            assert governor.exhausted


class TestIsolation:
    def test_raw_cross_state_use_still_raises(self):
        """The splice path is the *only* sanctioned crossing: a view
        carried raw out of a private arena is rejected the moment an
        operator would build with it."""
        from repro.traces.events import channel, event
        from repro.traces.trie import node_from_traces

        a0 = event(channel("a"), 0)
        with private_state():
            foreign = node_from_traces([(a0,)])
        with pytest.raises(KernelStateError):
            make_node({a0: foreign})


class TestFaultTolerance:
    def test_dead_child_falls_back_in_process(self, monkeypatch):
        defs, env = philosophers.definitions(), philosophers.environment()
        sequential = _roots(DenotationEngine(defs, env, CFG).fixpoint())

        def die(self, indices, rank, fd):
            os.close(fd)  # EOF with no payload: a crash before the write

        monkeypatch.setattr(DenotationEngine, "_child_run", die)
        survived = _roots(
            DenotationEngine(
                defs, env, CFG, jobs=2, parallel="processes"
            ).fixpoint()
        )
        for key, root in sequential.items():
            assert survived[key] is root

"""Unit tests for the bounded denotational semantics (paper §3.2)."""

import pytest

from repro.errors import SemanticsError
from repro.process.ast import Name, STOP
from repro.process.parser import parse_definitions, parse_process
from repro.semantics.config import SemanticsConfig
from repro.semantics.denotation import Denoter, denote
from repro.traces.events import EMPTY_TRACE, channel, event, trace
from repro.traces.prefix_closure import STOP_CLOSURE
from repro.values.domains import FiniteDomain
from repro.values.environment import Environment

CFG = SemanticsConfig(depth=4, sample=2)


class TestBasicForms:
    def test_stop(self):
        assert denote(STOP) == STOP_CLOSURE

    def test_output_prefix(self):
        p = parse_process("wire!3 -> STOP")
        assert denote(p).traces == {EMPTY_TRACE, trace(("wire", 3))}

    def test_output_evaluates_expression(self):
        p = parse_process("wire!(2*x + 1) -> STOP")
        env = Environment().bind("x", 3)
        assert trace(("wire", 7)) in denote(p, env=env)

    def test_input_branches_over_domain(self):
        p = parse_process("c?x:{0..1} -> STOP")
        assert denote(p).traces == {
            EMPTY_TRACE,
            trace(("c", 0)),
            trace(("c", 1)),
        }

    def test_input_binds_variable(self):
        p = parse_process("c?x:{0..1} -> d!x -> STOP")
        d = denote(p)
        assert trace(("c", 0), ("d", 0)) in d
        assert trace(("c", 1), ("d", 1)) in d
        assert trace(("c", 0), ("d", 1)) not in d

    def test_nat_input_sampled(self):
        p = parse_process("c?x:NAT -> STOP")
        d = denote(p, config=SemanticsConfig(depth=2, sample=3))
        assert {s[0].message for s in d.traces if s} == {0, 1, 2}

    def test_choice_is_union(self):
        p = parse_process("a!0 -> STOP | b!1 -> STOP")
        d = denote(p)
        assert trace(("a", 0)) in d and trace(("b", 1)) in d

    def test_depth_zero_is_stop(self):
        p = parse_process("a!0 -> STOP")
        assert denote(p, depth=0) == STOP_CLOSURE

    def test_depth_truncates(self):
        defs = parse_definitions("loop = a!0 -> loop")
        d = denote(Name("loop"), defs, depth=3)
        assert d.depth() == 3

    def test_subscripted_channels(self):
        p = parse_process("col[1]!5 -> STOP")
        assert trace((channel("col", 1), 5)) in denote(p)


class TestRecursion:
    DEFS = parse_definitions("copier = input?x:NAT -> wire!x -> copier")

    def test_copier_alternates_input_wire(self):
        d = denote(Name("copier"), self.DEFS, config=CFG)
        assert trace(("input", 1), ("wire", 1), ("input", 0), ("wire", 0)) in d

    def test_copier_never_outputs_uncopied_value(self):
        d = denote(Name("copier"), self.DEFS, config=CFG)
        for s in d.traces:
            for i, e in enumerate(s):
                if e.channel == channel("wire"):
                    assert s[i - 1] == event("input", e.message)

    def test_memoisation_shares_unfoldings(self):
        denoter = Denoter(self.DEFS, config=SemanticsConfig(depth=6, sample=2))
        first = denoter.denote(Name("copier"))
        second = denoter.denote(Name("copier"))
        assert first is second  # memo hit, not recompute

    def test_mutual_recursion(self):
        defs = parse_definitions("ping = a!0 -> pong; pong = b!1 -> ping")
        d = denote(Name("ping"), defs, depth=4)
        assert trace(("a", 0), ("b", 1), ("a", 0), ("b", 1)) in d

    def test_undefined_name_raises(self):
        with pytest.raises(Exception):
            denote(Name("ghost"))


class TestProcessArrays:
    ENV = Environment().bind("M", FiniteDomain({0, 1}))
    DEFS = parse_definitions(
        "sender = input?y:M -> q[y];"
        "q[x:M] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])"
    )

    def test_array_instantiation(self):
        from repro.process.ast import ArrayRef
        from repro.values.expressions import const

        d = denote(ArrayRef("q", const(1)), self.DEFS, env=self.ENV, config=CFG)
        assert trace(("wire", 1)) in d
        assert trace(("wire", 0)) not in d

    def test_retransmission_on_nack(self):
        d = denote(Name("sender"), self.DEFS, env=self.ENV, config=SemanticsConfig(depth=5, sample=3))
        assert (
            trace(("input", 1), ("wire", 1), ("wire", "NACK"), ("wire", 1)) in d
        )

    def test_ack_returns_to_sender(self):
        d = denote(Name("sender"), self.DEFS, env=self.ENV, config=SemanticsConfig(depth=5, sample=3))
        assert (
            trace(("input", 1), ("wire", 1), ("wire", "ACK"), ("input", 0)) in d
        )

    def test_subscript_outside_domain_raises(self):
        from repro.process.ast import ArrayRef
        from repro.values.expressions import const

        with pytest.raises(SemanticsError, match="outside its domain"):
            denote(ArrayRef("q", const(9)), self.DEFS, env=self.ENV, config=CFG)


class TestParallelAndChan:
    DEFS = parse_definitions(
        "copier = input?x:NAT -> wire!x -> copier;"
        "recopier = wire?y:NAT -> output!y -> recopier;"
        "net = copier || recopier;"
        "hiddennet = chan wire; (copier || recopier)"
    )

    def test_network_synchronises_on_wire(self):
        d = denote(Name("net"), self.DEFS, config=CFG)
        assert trace(("input", 1), ("wire", 1), ("output", 1)) in d
        # wire value must match what copier sends
        for s in d.traces:
            for i, e in enumerate(s):
                if e.channel == channel("wire"):
                    assert event("input", e.message) in s[:i]

    def test_hiding_removes_wire(self):
        d = denote(Name("hiddennet"), self.DEFS, config=CFG)
        assert all(e.channel != channel("wire") for s in d.traces for e in s)
        assert trace(("input", 1), ("output", 1)) in d

    def test_hide_depth_allows_deep_internal_chatter(self):
        # external trace of length 4 needs 8 internal events
        d = denote(Name("hiddennet"), self.DEFS, config=SemanticsConfig(depth=4, sample=2))
        assert trace(("input", 1), ("output", 1), ("input", 0), ("output", 0)) in d

    def test_explicit_alphabets(self):
        from repro.process.ast import Parallel
        from repro.process.channels import ChannelExpr, ChannelList

        p = Parallel(
            parse_process("wire!1 -> STOP"),
            parse_process("wire?x:NAT -> STOP"),
            ChannelList([ChannelExpr("wire")]),
            ChannelList([ChannelExpr("wire")]),
        )
        d = denote(p, config=CFG)
        assert d.traces == {EMPTY_TRACE, trace(("wire", 1))}

    def test_section4_stop_choice_identity(self):
        # §4: STOP | P = P in the prefix-closure model
        p = parse_process("a!0 -> STOP")
        q = parse_process("STOP | a!0 -> STOP")
        assert denote(p) == denote(q)


class TestKernelSelection:
    def test_reference_kernel_agrees_with_trie(self):
        from repro.process.parser import parse_definitions
        from repro.semantics.config import SemanticsConfig
        from repro.semantics.denotation import Denoter

        defs = parse_definitions(
            "copier = input?x:NAT -> wire!x -> copier;"
            "recopier = wire?y:NAT -> output!y -> recopier;"
            "network = chan wire; (copier || recopier)"
        )
        cfg = SemanticsConfig(depth=5, sample=2)
        for name in ("copier", "recopier", "network"):
            trie = Denoter(defs, config=cfg, kernel="trie").denote_name(name)
            ref = Denoter(defs, config=cfg, kernel="reference").denote_name(name)
            assert trie == ref

    def test_unknown_kernel_rejected(self):
        import pytest

        from repro.errors import SemanticsError
        from repro.semantics.denotation import Denoter

        with pytest.raises(SemanticsError, match="unknown kernel"):
            Denoter(kernel="flat-set")

    def test_memo_hits_are_pointer_equal(self):
        from repro.process.ast import Name
        from repro.process.parser import parse_definitions
        from repro.semantics.config import SemanticsConfig
        from repro.semantics.denotation import Denoter

        defs = parse_definitions("copier = input?x:NAT -> wire!x -> copier")
        denoter = Denoter(defs, config=SemanticsConfig(depth=4, sample=2))
        first = denoter.denote(Name("copier"))
        second = denoter.denote(Name("copier"))
        assert first.root is second.root

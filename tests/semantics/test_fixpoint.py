"""Unit tests for the §3.3 approximation chain (experiment E7)."""

import pytest

from repro.errors import SemanticsError
from repro.process.ast import Name
from repro.process.parser import parse_definitions
from repro.semantics.config import SemanticsConfig
from repro.semantics.denotation import denote
from repro.semantics.fixpoint import ApproximationChain, fixpoint_denotation
from repro.traces.events import trace
from repro.traces.prefix_closure import STOP_CLOSURE
from repro.values.domains import FiniteDomain
from repro.values.environment import Environment

CFG = SemanticsConfig(depth=4, sample=2)
COPIER = parse_definitions("copier = input?x:NAT -> wire!x -> copier")


class TestChainShape:
    def test_a0_is_stop(self):
        chain = ApproximationChain(COPIER, config=CFG)
        assert chain.level(0) == {"copier": STOP_CLOSURE}

    def test_a1_allows_one_unfolding(self):
        # a₁ allows recursion to depth 1: two events, then stops
        chain = ApproximationChain(COPIER, config=CFG)
        a1 = chain.level(1)["copier"]
        assert trace(("input", 1), ("wire", 1)) in a1
        assert trace(("input", 1), ("wire", 1), ("input", 0)) not in a1

    def test_chain_is_monotone(self):
        chain = ApproximationChain(COPIER, config=CFG)
        chain.level(3)
        assert chain.is_monotone()

    def test_stabilises_within_depth_plus_one(self):
        chain = ApproximationChain(COPIER, config=CFG)
        steps = chain.run_until_stable()
        assert steps <= CFG.depth + 1

    def test_fixpoint_equals_unfolding_denotation(self):
        # The explicit chain and the on-demand unfolder must agree.
        assert fixpoint_denotation(COPIER, "copier", config=CFG) == denote(
            Name("copier"), COPIER, config=CFG
        )

    def test_deeper_bound_needs_more_steps(self):
        shallow = ApproximationChain(COPIER, config=SemanticsConfig(depth=2, sample=2))
        deep = ApproximationChain(COPIER, config=SemanticsConfig(depth=8, sample=2))
        assert shallow.run_until_stable() < deep.run_until_stable()


class TestMutualRecursion:
    DEFS = parse_definitions("ping = a!0 -> pong; pong = b!1 -> ping")

    def test_both_names_reach_fixpoint(self):
        chain = ApproximationChain(self.DEFS, config=CFG)
        fixed = chain.fixpoint()
        assert trace(("a", 0), ("b", 1)) in fixed["ping"]
        assert trace(("b", 1), ("a", 0)) in fixed["pong"]

    def test_agrees_with_unfolding(self):
        for name in ("ping", "pong"):
            assert fixpoint_denotation(self.DEFS, name, config=CFG) == denote(
                Name(name), self.DEFS, config=CFG
            )


class TestArrays:
    ENV = Environment().bind("M", FiniteDomain({0, 1}))
    DEFS = parse_definitions(
        "sender = input?y:M -> q[y];"
        "q[x:M] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])"
    )

    def test_array_fixpoint_per_subscript(self):
        chain = ApproximationChain(self.DEFS, env=self.ENV, config=CFG)
        q0 = chain.closure_for("q", 0)
        q1 = chain.closure_for("q", 1)
        assert trace(("wire", 0)) in q0
        assert trace(("wire", 1)) in q1
        assert q0 != q1

    def test_array_agrees_with_unfolding(self):
        from repro.process.ast import ArrayRef
        from repro.values.expressions import const

        chain = ApproximationChain(self.DEFS, env=self.ENV, config=CFG)
        assert chain.closure_for("q", 1) == denote(
            ArrayRef("q", const(1)), self.DEFS, env=self.ENV, config=CFG
        )

    def test_missing_subscript_raises(self):
        chain = ApproximationChain(self.DEFS, env=self.ENV, config=CFG)
        with pytest.raises(SemanticsError, match="no sampled subscript"):
            chain.closure_for("q", 99)

    def test_non_array_subscript_rejected(self):
        chain = ApproximationChain(self.DEFS, env=self.ENV, config=CFG)
        with pytest.raises(SemanticsError, match="not a process array"):
            chain.closure_for("sender", 0)


class TestEquivalence:
    def test_trace_equivalent(self):
        from repro.process.parser import parse_process
        from repro.semantics.equivalence import trace_difference, trace_equivalent

        p = parse_process("a!0 -> STOP")
        q = parse_process("STOP | a!0 -> STOP")
        assert trace_equivalent(p, q)

    def test_trace_difference_witness(self):
        from repro.process.parser import parse_process
        from repro.semantics.equivalence import trace_difference

        p = parse_process("a!0 -> b!1 -> STOP")
        q = parse_process("a!0 -> STOP")
        side, witness = trace_difference(p, q)
        assert side == "left-only"
        assert witness == trace(("a", 0), ("b", 1))

    def test_trace_difference_none_when_equal(self):
        from repro.process.parser import parse_process
        from repro.semantics.equivalence import trace_difference

        p = parse_process("a!0 -> STOP")
        assert trace_difference(p, p) is None


class TestKernelIntegration:
    def test_stabilisation_by_root_identity(self):
        # Once stable, consecutive levels hold the *same* interned root.
        chain = ApproximationChain(COPIER, config=CFG)
        chain.run_until_stable()
        last, previous = chain.level(chain.levels_computed() - 1), chain.level(
            chain.levels_computed() - 2
        )
        assert last["copier"].root is previous["copier"].root

    def test_level_deltas_report_monotone_growth(self):
        chain = ApproximationChain(COPIER, config=CFG)
        chain.run_until_stable()
        deltas = chain.level_deltas()
        assert deltas[0].traces == 1  # a₀ = ⟦STOP⟧
        assert deltas[0].new_traces == 0
        assert all(d.new_traces >= 0 for d in deltas)
        assert all(d.nodes <= d.traces for d in deltas)  # sharing never loses
        assert deltas[-1].new_traces == 0  # stable level adds nothing
        assert "a0" in str(deltas[0])

    def test_reference_kernel_chain_agrees(self):
        trie_chain = ApproximationChain(COPIER, config=CFG, kernel="trie")
        ref_chain = ApproximationChain(COPIER, config=CFG, kernel="reference")
        assert trie_chain.fixpoint()["copier"] == ref_chain.fixpoint()["copier"]

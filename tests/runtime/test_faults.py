"""Exception safety under deterministic fault injection.

The governor may abort a computation at any trigger site.  These tests
prove the invariant that makes such aborts sound: the interner and every
memo table only store *completed* results, so after an abort at **any**
site, at **any** visit count, a clean re-run computes exactly what the
flat-set oracle (:mod:`repro.traces._reference`) says it should.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.process.ast import Name
from repro.process.parser import parse_definitions
from repro.runtime import faults
from repro.runtime.faults import FaultInjected, FaultPlan
from repro.semantics.config import SemanticsConfig
from repro.semantics.denotation import denote
from repro.semantics.fixpoint import ApproximationChain
from repro.traces import _reference as ref
from repro.traces import operations as ops
from repro.traces.events import channel, event
from repro.traces.prefix_closure import FiniteClosure
from repro.traces.trie import make_node

CHANNELS = ("a", "b", "wire")
VALUES = (0, 1)

events = st.builds(event, st.sampled_from(CHANNELS), st.sampled_from(VALUES))
traces = st.lists(events, max_size=5).map(tuple)
trace_lists = st.lists(traces, max_size=8)
hidden_sets = st.lists(
    st.sampled_from([channel(c) for c in CHANNELS]), max_size=2
).map(frozenset)

#: Unique-channel generator for tests that need *fresh* interner misses
#: (the interner is process-global, so already-seen shapes never miss).
_FRESH = itertools.count()


def _fresh_channel() -> str:
    return f"fresh{next(_FRESH)}"


def _kernel_workload(trace_list, other_list, hidden):
    """A composite trie-kernel computation passing several trigger sites."""
    p = FiniteClosure.from_traces(trace_list)
    q = FiniteClosure.from_traces(other_list)
    merged = ops.hide(ops.union(p, q), hidden)
    return ops.truncate(merged, 3)


def _kernel_oracle(trace_list, other_list, hidden):
    p = FiniteClosure.from_traces(trace_list)
    q = FiniteClosure.from_traces(other_list)
    return ref.truncate(ref.hide(ref.union(p, q), hidden), 3)


class TestPlans:
    def test_maybe_fail_is_noop_without_plan(self):
        faults.maybe_fail("trie.intern")  # must not raise

    def test_observation_mode_counts_without_firing(self):
        defs = parse_definitions("p = a!0 -> b!1 -> p")
        with faults.observe() as plan:
            denote(Name("p"), defs, config=SemanticsConfig(depth=4, sample=2))
        assert not plan.fired
        assert plan.total > 0
        assert plan.counts.get("denote.unfold", 0) >= 0  # counts recorded per site

    def test_plan_fires_at_exact_visit(self):
        plan = FaultPlan(site="s", after=3)
        plan.visit("s")
        plan.visit("other")
        plan.visit("s")
        with pytest.raises(FaultInjected) as info:
            plan.visit("s")
        assert info.value.site == "s"
        assert info.value.visit == 3
        plan.visit("s")  # a fired plan never fires twice

    def test_after_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultPlan(after=0)

    def test_serving_sites_are_registered(self):
        # PR 7 trigger sites, depended on by the daemon chaos harness.
        for site in ("serve.dispatch", "serve.worker_exit", "snapshot.write"):
            assert site in faults.SITES

    def test_frontier_sites_are_registered(self):
        # PR 10 trigger sites: the explorer's persisted-frontier path,
        # depended on by the differential harness's abort-safety sweep.
        for site in ("explorer.frontier_save", "explorer.frontier_load"):
            assert site in faults.SITES

    def test_parse_plan_site_and_count(self):
        plan = faults.parse_plan("serve.worker_exit:3")
        assert plan.site == "serve.worker_exit"
        assert plan.after == 3

    def test_parse_plan_defaults_to_first_visit(self):
        plan = faults.parse_plan("snapshot.write")
        assert plan.site == "snapshot.write"
        assert plan.after == 1

    def test_parse_plan_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            faults.parse_plan("no.such.site:2")

    def test_intern_site_aborts_before_insertion(self):
        # A genuinely fresh shape misses the interner; firing at that miss
        # must leave the interner without the aborted node.
        name = _fresh_channel()
        child = make_node({})
        with faults.inject(FaultPlan(site="trie.intern", after=1)):
            with pytest.raises(FaultInjected):
                make_node({event(name, 0): child})
        # clean re-run interns the node normally and it behaves
        node = make_node({event(name, 0): child})
        assert node.children[event(name, 0)] is child
        assert node is make_node({event(name, 0): child})


class TestKernelExceptionSafety:
    @settings(max_examples=60, deadline=None)
    @given(
        trace_lists,
        trace_lists,
        hidden_sets,
        st.sampled_from(faults.SITES),
        st.integers(min_value=1, max_value=6),
    )
    def test_abort_anywhere_then_rerun_matches_oracle(
        self, ts_p, ts_q, hidden, site, after
    ):
        plan = FaultPlan(site=site, after=after)
        try:
            with faults.inject(plan):
                _kernel_workload(ts_p, ts_q, hidden)
        except FaultInjected:
            pass
        got = _kernel_workload(ts_p, ts_q, hidden)
        want = _kernel_oracle(ts_p, ts_q, hidden)
        assert got == want  # pointer equality of interned roots
        assert got.traces == want.traces  # and flat-set equality

    @settings(max_examples=30, deadline=None)
    @given(
        trace_lists,
        trace_lists,
        st.sampled_from(faults.SITES),
        st.integers(min_value=1, max_value=6),
    )
    def test_parallel_abort_then_rerun_matches_oracle(self, ts_p, ts_q, site, after):
        p = FiniteClosure.from_traces(ts_p)
        q = FiniteClosure.from_traces(ts_q)
        alphabet = p.channels() | q.channels()
        try:
            with faults.inject(FaultPlan(site=site, after=after)):
                ops.parallel(p, alphabet, q, alphabet, depth=4)
        except FaultInjected:
            pass
        got = ops.parallel(p, alphabet, q, alphabet, depth=4)
        want = ref.parallel(p, alphabet, q, alphabet, depth=4)
        assert got == want and got.traces == want.traces


class TestSnapshotWriteExceptionSafety:
    """Quantified abort-safety for the snapshot writer: abort the save
    at *any* trigger visit and the on-disk file is still a complete
    decodable snapshot (the old one — never a torn hybrid), and a clean
    re-save persists everything that was pending."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=4))
    def test_abort_anywhere_leaves_old_or_new_never_torn(self, after):
        import shutil
        import tempfile
        from pathlib import Path

        from repro.traces.prefix_closure import FiniteClosure
        from repro.traces.snapshot import SnapshotCache

        directory = Path(tempfile.mkdtemp(prefix="repro-snapfault-"))
        try:
            key = "deadbeef" * 4
            root_a = FiniteClosure.from_traces([(event("a", 0),)]).root
            root_b = FiniteClosure.from_traces([(event("b", 1),)]).root
            cache = SnapshotCache(directory, key)
            cache.put("fix:a", root_a)
            cache.save()
            cache.put("fix:b", root_b)
            try:
                with faults.inject(
                    FaultPlan(site="snapshot.write", after=after)
                ):
                    cache.save()  # may abort before or after the temp write
            except FaultInjected:
                pass
            mid = SnapshotCache(directory, key)
            assert not mid.rebuilt and not mid.quarantined
            assert mid.get("fix:a") is root_a  # old state always intact
            cache.save()  # clean re-save completes the interrupted write
            final = SnapshotCache(directory, key)
            assert final.get("fix:a") is root_a
            assert final.get("fix:b") is root_b
        finally:
            shutil.rmtree(directory, ignore_errors=True)


class TestSemanticsExceptionSafety:
    DEFS = (
        "copier = input?x:NAT -> wire!x -> copier;"
        "recopier = wire?y:NAT -> output!y -> recopier;"
        "network = chan wire; (copier || recopier)"
    )

    @settings(max_examples=25, deadline=None)
    @given(
        st.sampled_from(faults.SITES),
        st.integers(min_value=1, max_value=40),
    )
    def test_denotation_abort_then_rerun_matches_reference_kernel(self, site, after):
        defs = parse_definitions(self.DEFS)
        cfg = SemanticsConfig(depth=4, sample=2)
        try:
            with faults.inject(FaultPlan(site=site, after=after)):
                denote(Name("network"), defs, config=cfg)
        except FaultInjected:
            pass
        got = denote(Name("network"), defs, config=cfg)
        want = denote(Name("network"), defs, config=cfg, kernel="reference")
        assert got == want and got.traces == want.traces

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=5))
    def test_fixpoint_step_abort_then_rerun_stabilises_identically(self, after):
        defs = parse_definitions("p = a!0 -> b!1 -> p")
        cfg = SemanticsConfig(depth=4, sample=2)
        aborted = ApproximationChain(defs, config=cfg)
        try:
            with faults.inject(FaultPlan(site="fixpoint.step", after=after)):
                aborted.run_until_stable()
        except FaultInjected:
            pass
        clean = ApproximationChain(defs, config=cfg)
        clean.run_until_stable()
        want = denote(Name("p"), defs, config=cfg, kernel="reference")
        assert clean.closure_for("p") == want

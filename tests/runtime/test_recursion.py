"""Deep-structure hardening: no raw RecursionError escapes the library.

Deep linear processes are legitimate inputs (a protocol unrolled a few
thousand steps), so the structural trie walks — interning, truncation,
channel collection — run on an explicit stack and handle any depth.
The remaining genuinely recursive paths (lattice merges, denotation of
deep terms, serialisation) trap :class:`RecursionError` at their entry
points and convert it into a structured
:class:`~repro.errors.BudgetExceeded` ("recursion-depth"), leaving the
kernel consistent for subsequent work.
"""

import pytest

from repro.errors import BudgetExceeded
from repro.process.ast import Output, STOP
from repro.process.channels import ChannelExpr
from repro.semantics.config import SemanticsConfig
from repro.semantics.denotation import denote
from repro import serialize
from repro.traces.events import channel, event
from repro.traces.prefix_closure import FiniteClosure
from repro.values.expressions import const

#: Comfortably past CPython's default recursion limit of 1000.
DEEP = 3000


def _chain_trace(length, chan="a", value=0):
    return tuple(event(chan, value) for _ in range(length))


def _deep_output_term(length):
    term = STOP
    for _ in range(length):
        term = Output(ChannelExpr("a"), const(0), term)
    return term


class TestIterativeTrieWalks:
    def test_deep_linear_trace_interns_without_recursion(self):
        closure = FiniteClosure.from_traces([_chain_trace(DEEP)])
        assert len(closure) == DEEP + 1
        assert closure.depth() == DEEP

    def test_deep_truncation_is_iterative(self):
        closure = FiniteClosure.from_traces([_chain_trace(DEEP)])
        half = closure.truncate(DEEP // 2)
        assert half.depth() == DEEP // 2
        assert len(half) == DEEP // 2 + 1

    def test_deep_channel_collection_is_iterative(self):
        closure = FiniteClosure.from_traces([_chain_trace(DEEP)])
        assert closure.channels() == frozenset({channel("a")})


class TestGuardedRecursions:
    def test_deep_union_trips_recursion_budget(self):
        # two chains sharing a 3000-event prefix force the merge that deep
        long = _chain_trace(DEEP)
        left = FiniteClosure.from_traces([long])
        right = FiniteClosure.from_traces([long + (event("b", 1),)])
        with pytest.raises(BudgetExceeded) as info:
            left.union(right)
        assert info.value.resource == "recursion-depth"

    def test_kernel_still_consistent_after_recursion_trip(self):
        long = _chain_trace(DEEP)
        left = FiniteClosure.from_traces([long])
        right = FiniteClosure.from_traces([long + (event("b", 1),)])
        with pytest.raises(BudgetExceeded):
            left.union(right)
        # shallow work on the same tries still computes correctly
        shallow = left.truncate(5).union(right.truncate(5))
        assert shallow == left.truncate(5)  # identical 5-deep prefixes
        assert len(shallow) == 6

    def test_deep_term_denotation_trips_recursion_budget(self):
        term = _deep_output_term(DEEP)
        with pytest.raises(BudgetExceeded) as info:
            denote(term, config=SemanticsConfig(depth=DEEP + 1, sample=2))
        assert info.value.resource == "recursion-depth"
        assert info.value.checkpoint.phase == "denotation"

    def test_moderate_term_denotes_fine(self):
        term = _deep_output_term(50)
        closure = denote(term, config=SemanticsConfig(depth=60, sample=2))
        assert closure.depth() == 50


class TestSerializeGuard:
    def test_deep_encode_trips_recursion_budget(self):
        term = _deep_output_term(DEEP)
        with pytest.raises(BudgetExceeded) as info:
            serialize.encode(term)
        assert info.value.resource == "recursion-depth"

    def test_moderate_term_round_trips(self):
        term = _deep_output_term(60)
        assert serialize.decode(serialize.encode(term)) == term

    def test_errors_still_structured_after_guard(self):
        with pytest.raises(serialize.SerializationError):
            serialize.encode(object())
        # the guard's reentrancy flag must be reset after an error
        assert serialize.decode(serialize.encode(STOP)) == STOP

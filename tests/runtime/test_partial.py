"""Governed ``sat`` checking: sound partial verdicts by deepening.

Under an ambient governor the checker verifies depth 0, 1, … in turn, so
a budget trip still yields "verified to depth k, no counterexample" —
and because bounded closures are monotone in depth, a counterexample
found at any depth is a *complete* refutation regardless of the budget.
"""

import pytest

from repro.errors import BudgetExceeded
from repro.process.ast import Name
from repro.process.parser import parse_definitions
from repro.runtime.governor import Budget, activate
from repro.sat.checker import SatChecker
from repro.semantics.config import SemanticsConfig
from repro.traces.trie import clear_interner

COPIER = "copier = input?x:NAT -> wire!x -> copier"


def checker(depth=6):
    return SatChecker(
        parse_definitions(COPIER), config=SemanticsConfig(depth=depth, sample=2)
    )


class TestGovernedCheck:
    def test_budget_trip_reports_verified_depth(self):
        clear_interner()
        with activate(Budget(max_nodes=15).start()):
            with pytest.raises(BudgetExceeded) as info:
                checker(depth=8).check(Name("copier"), "wire <= input")
        checkpoint = info.value.checkpoint
        assert checkpoint.phase == "sat"
        assert checkpoint.completed_depth is not None
        assert checkpoint.completed_depth < 8
        assert checkpoint.traces_verified > 0
        assert "verified to depth" in str(info.value)

    def test_ample_budget_completes_with_depth(self):
        with activate(Budget(max_nodes=1_000_000).start()):
            result = checker(depth=4).check(Name("copier"), "wire <= input")
        assert result.holds
        assert result.complete
        assert result.verified_depth == 4

    def test_counterexample_is_complete_even_when_governed(self):
        with activate(Budget(max_nodes=1_000_000).start()):
            result = checker(depth=6).check(Name("copier"), "input <= wire")
        assert not result.holds
        assert result.complete  # refutations are real traces, never partial
        assert result.counterexample is not None
        assert result.verified_depth is not None

    def test_deadline_zero_trips_before_depth_zero(self):
        with activate(Budget(deadline=0.0).start()):
            with pytest.raises(BudgetExceeded) as info:
                checker(depth=4).check(Name("copier"), "wire <= input")
        assert info.value.checkpoint.completed_depth is None

    def test_ungoverned_check_unchanged(self):
        result = checker(depth=4).check(Name("copier"), "wire <= input")
        assert result.holds and result.complete
        assert result.verified_depth is None  # single-pass path

    def test_governed_verdict_matches_ungoverned(self):
        ungoverned = checker(depth=4).check(Name("copier"), "wire <= input")
        with activate(Budget(max_nodes=1_000_000).start()):
            governed = checker(depth=4).check(Name("copier"), "wire <= input")
        assert governed.holds == ungoverned.holds


class TestTracesPartial:
    def test_ungoverned_is_complete(self):
        result = checker(depth=3).traces_partial(Name("copier"))
        assert result.complete
        assert result.verified_depth == 3
        assert result.closure is not None and len(result.closure) > 1

    def test_budget_trip_keeps_last_finished_closure(self):
        clear_interner()
        with activate(Budget(max_nodes=15).start()):
            result = checker(depth=8).traces_partial(Name("copier"))
        assert not result.complete
        assert result.verified_depth is not None and result.verified_depth < 8
        assert result.closure is not None
        # the partial closure is exact at its depth: every trace real
        assert result.closure.depth() <= result.verified_depth

    def test_partial_closure_is_prefix_of_full(self):
        clear_interner()
        with activate(Budget(max_nodes=15).start()):
            partial = checker(depth=8).traces_partial(Name("copier"))
        full = checker(depth=8).traces_of(Name("copier"))
        assert partial.closure is not None
        assert partial.closure.issubset(full)

    def test_deadline_zero_yields_no_closure(self):
        with activate(Budget(deadline=0.0).start()):
            result = checker(depth=4).traces_partial(Name("copier"))
        assert not result.complete
        assert result.closure is None

"""Budgets, governors, checkpoints, and resume.

Covers the governor in isolation (budget validation, ambient
activation), each budget axis threaded through a real subsystem
(interner, fixpoint chain, explorer), the per-call accounting contract
of the explorer, and checkpoint-based resumption.
"""

import pytest

from repro.errors import (
    EXIT_BUDGET,
    EXIT_ERROR,
    EXIT_OPERATIONAL,
    EXIT_PARSE,
    EXIT_PROOF,
    EXIT_SEMANTICS,
    BudgetExceeded,
    DefinitionError,
    EvaluationError,
    OperationalError,
    ProofError,
    ReproError,
    SemanticsError,
    exit_code_for,
)
from repro.operational.explorer import Explorer
from repro.operational.step import OperationalSemantics
from repro.process.ast import Name
from repro.process.parser import parse_definitions
from repro.runtime import governor as gov_mod
from repro.runtime.governor import Budget, Checkpoint, activate
from repro.semantics.config import SemanticsConfig
from repro.semantics.denotation import denote
from repro.semantics.fixpoint import ApproximationChain
from repro.traces.trie import clear_interner

COPIER = "copier = input?x:NAT -> wire!x -> copier"
DEADLOCKER = (
    "p = w!1 -> out!1 -> STOP;"
    "q = w?x:{2..3} -> STOP;"
    "net = p || q"
)


class TestBudget:
    @pytest.mark.parametrize(
        "kwargs",
        [{"deadline": -1}, {"max_nodes": -1}, {"max_states": -5}],
    )
    def test_negative_limits_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Budget(**kwargs)

    def test_unlimited(self):
        assert Budget().unlimited
        assert not Budget(max_nodes=10).unlimited

    def test_start_gives_fresh_governor(self):
        budget = Budget(max_nodes=3)
        governor = budget.start()
        assert governor.budget is budget
        assert governor.nodes_interned == 0
        assert not governor.exhausted


class TestAmbient:
    def test_hooks_are_noops_without_governor(self):
        assert gov_mod.current() is None
        gov_mod.note_node()
        gov_mod.note_state()
        gov_mod.tick()  # must not raise

    def test_activate_restores_on_exit(self):
        outer = Budget(max_nodes=100).start()
        inner = Budget(max_nodes=200).start()
        with activate(outer):
            assert gov_mod.current() is outer
            with activate(inner):
                assert gov_mod.current() is inner
            assert gov_mod.current() is outer
        assert gov_mod.current() is None

    def test_activate_none_is_noop(self):
        with activate(None) as governor:
            assert governor is None
            assert gov_mod.current() is None


class TestTrips:
    def test_max_nodes_trips_on_interner_growth(self):
        clear_interner()
        defs = parse_definitions(COPIER)
        governor = Budget(max_nodes=5).start()
        with activate(governor):
            with pytest.raises(BudgetExceeded, match="interned-node budget"):
                denote(Name("copier"), defs, config=SemanticsConfig(depth=6, sample=2))
        assert governor.exhausted
        assert governor.nodes_interned > 5

    def test_deadline_zero_trips_fixpoint_step(self):
        defs = parse_definitions(COPIER)
        chain = ApproximationChain(defs, config=SemanticsConfig(depth=3, sample=2))
        governor = Budget(deadline=0.0).start()
        with activate(governor):
            with pytest.raises(BudgetExceeded, match="wall-clock"):
                chain.run_until_stable()

    def test_max_states_trips_explorer_via_governor(self):
        defs = parse_definitions("count[n:NAT] = c!n -> count[n+1]")
        from repro.process.ast import ArrayRef
        from repro.values.expressions import const

        semantics = OperationalSemantics(defs, sample=2)
        governor = Budget(max_states=40).start()
        with activate(governor):
            with pytest.raises(BudgetExceeded) as info:
                Explorer(semantics).visible_traces(ArrayRef("count", const(0)), 100)
        assert info.value.resource == "explored-state"
        # the explorer enriched the trip with its own sound frontier
        assert info.value.checkpoint.phase == "explore"

    def test_trip_checkpoint_reports_recorded_progress(self):
        governor = Budget(max_nodes=1).start()
        governor.record_progress(phase="sat", completed_depth=3, traces_verified=12)
        with pytest.raises(BudgetExceeded) as info:
            with activate(governor):
                gov_mod.note_node()
                gov_mod.note_node()
        checkpoint = info.value.checkpoint
        assert checkpoint.completed_depth == 3
        assert checkpoint.traces_verified == 12
        assert "verified to depth 3" in str(info.value)


class TestExplorerAccounting:
    """Satellite 1: the state budget is per call, not per explorer."""

    def test_budget_does_not_leak_across_calls(self):
        defs = parse_definitions(
            "p = a!0 -> p | b!1 -> STOP; q = c!0 -> q | d!1 -> STOP"
        )
        semantics = OperationalSemantics(defs, sample=2)
        probe_p = Explorer(semantics)
        probe_p.visible_traces(Name("p"), 4)
        cost_p = probe_p.states_touched
        probe_q = Explorer(semantics)
        probe_q.visible_traces(Name("q"), 4)
        cost_q = probe_q.states_touched
        assert cost_p > 0 and cost_q > 0
        # enough for either query alone, not for both combined: with the
        # old cumulative counter the second query would trip
        explorer = Explorer(semantics, max_states=max(cost_p, cost_q) + 1)
        explorer.visible_traces(Name("p"), 4)
        explorer.visible_traces(Name("q"), 4)
        assert explorer.states_touched <= max(cost_p, cost_q) + 1

    def test_deadlock_report_includes_exploration_cost(self):
        defs = parse_definitions(DEADLOCKER)
        semantics = OperationalSemantics(defs, sample=2)
        report = Explorer(semantics).deadlock_report(Name("net"), 2)
        assert report.complete
        assert report.states_touched > 0
        assert report.completed_depth >= 0
        assert report.deadlocks  # p offers w!1, q only accepts {2..3}
        assert "states touched" in str(report)

    def test_find_deadlocks_matches_report(self):
        defs = parse_definitions(DEADLOCKER)
        semantics = OperationalSemantics(defs, sample=2)
        report = Explorer(semantics).deadlock_report(Name("net"), 2)
        assert Explorer(semantics).find_deadlocks(Name("net"), 2) == list(
            report.deadlocks
        )


class TestResume:
    def test_fixpoint_resume_matches_ungoverned_run(self):
        clear_interner()
        defs = parse_definitions(COPIER)
        cfg = SemanticsConfig(depth=6, sample=2)
        governed = ApproximationChain(defs, config=cfg)
        with activate(Budget(max_nodes=10).start()):
            with pytest.raises(BudgetExceeded) as info:
                governed.run_until_stable()
        checkpoint = info.value.checkpoint
        assert checkpoint.phase == "fixpoint"
        assert isinstance(checkpoint.payload, dict)
        assert checkpoint.payload["levels"]
        resumed = ApproximationChain(defs, config=cfg, resume_from=checkpoint)
        assert resumed.levels_computed() == len(checkpoint.payload["levels"])
        fresh = ApproximationChain(defs, config=cfg)
        assert resumed.closure_for("copier") == fresh.closure_for("copier")

    def test_explorer_resume_matches_full_run(self):
        defs = parse_definitions("p = a!0 -> p | b!1 -> STOP")
        semantics = OperationalSemantics(defs, sample=2)
        full_explorer = Explorer(semantics)
        full = full_explorer.visible_traces(Name("p"), 6)
        cost = full_explorer.states_touched
        tight = Explorer(OperationalSemantics(defs, sample=2), max_states=max(1, cost // 2))
        with pytest.raises(BudgetExceeded) as info:
            tight.visible_traces(Name("p"), 6)
        checkpoint = info.value.checkpoint
        resumed = Explorer(OperationalSemantics(defs, sample=2)).visible_traces(
            Name("p"), 6, resume=checkpoint
        )
        assert resumed == full

    def test_fixpoint_resume_rejects_empty_checkpoint(self):
        defs = parse_definitions(COPIER)
        with pytest.raises(SemanticsError, match="no fixpoint levels"):
            ApproximationChain(defs, resume_from=Checkpoint(phase="sat"))

    def test_explorer_resume_rejects_empty_checkpoint(self):
        defs = parse_definitions(COPIER)
        semantics = OperationalSemantics(defs, sample=2)
        with pytest.raises(OperationalError, match="no explorer frontier"):
            Explorer(semantics).visible_traces(
                Name("copier"), 3, resume=Checkpoint(phase="explore")
            )


class TestExitCodes:
    @pytest.mark.parametrize(
        "exc,code",
        [
            (BudgetExceeded("wall-clock", "1s"), EXIT_BUDGET),
            (DefinitionError("dup"), EXIT_PARSE),
            (OSError("missing"), EXIT_PARSE),
            (SemanticsError("bad"), EXIT_SEMANTICS),
            (EvaluationError("bad"), EXIT_SEMANTICS),
            (OperationalError("stuck"), EXIT_OPERATIONAL),
            (ProofError("rejected"), EXIT_PROOF),
            (ReproError("other"), EXIT_ERROR),
        ],
    )
    def test_mapping(self, exc, code):
        assert exit_code_for(exc) == code

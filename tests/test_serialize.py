"""JSON round-trip tests for the serialization layer."""

import json

import pytest

from repro.assertions.parser import parse_assertion
from repro.process.parser import parse_process
from repro.serialize import SerializationError, decode, dumps, encode, loads
from repro.systems import protocol


CHANS = {"input", "wire", "output", "col"}


class TestProcessRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "STOP",
            "wire!3 -> STOP",
            "input?x:NAT -> wire!x -> copier",
            "a!0 -> STOP | b!1 -> STOP",
            "copier || recopier",
            "chan wire; (copier || recopier)",
            "q[x+1]",
            "col[i-1]?y:{0..3} -> col[i]!(v[i]*x + y) -> mult[i]",
            "c?x:M union {ACK, NACK} -> STOP",
        ],
    )
    def test_round_trip(self, text):
        process = parse_process(text)
        assert decode(encode(process)) == process
        assert loads(dumps(process)) == process

    def test_payload_is_plain_json(self):
        process = parse_process("input?x:NAT -> wire!x -> STOP")
        payload = dumps(process)
        assert json.loads(payload)["kind"] == "Input"

    def test_definitions_round_trip(self):
        defs = protocol.definitions()
        assert decode(encode(defs)) == defs

    def test_explicit_parallel_alphabets_round_trip(self):
        from repro.process.ast import Parallel
        from repro.process.channels import ChannelExpr, ChannelList

        process = Parallel(
            parse_process("a!0 -> STOP"),
            parse_process("b!0 -> STOP"),
            ChannelList([ChannelExpr("a")]),
            ChannelList([ChannelExpr("b")]),
        )
        assert decode(encode(process)) == process


class TestAssertionRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "wire <= input",
            "#input <= #wire + 1",
            "f(wire) <= x ^ input",
            "<> <= <3, 4> ++ s",
            "forall i : NAT . 1 <= i & i <= #output =>"
            " output@i = (sum j : 1..3 . v(j) * row[j]@i)",
            "not (a = b) => true",
            "exists k : {0..9} . wire@k = 0",
        ],
    )
    def test_round_trip(self, text):
        formula = parse_assertion(text, CHANS | {"a", "b", "s"})
        assert decode(encode(formula)) == formula

    def test_tuple_constants_survive(self):
        from repro.assertions.builders import const_, eq_

        formula = eq_(const_((1, 2)), const_((1, 2)))
        assert decode(encode(formula)) == formula


class TestProofRoundTrip:
    def test_table1_proof_round_trips(self):
        proof = protocol.table1_proof()
        restored = loads(dumps(proof))
        assert restored.conclusion == proof.conclusion
        assert restored.size() == proof.size()
        assert restored.rules_used() == proof.rules_used()

    def test_restored_proof_still_checks(self):
        from repro.proof.checker import ProofChecker

        proof = protocol.table1_proof()
        restored = loads(dumps(proof))
        report = ProofChecker(protocol.definitions(), protocol.oracle()).check(restored)
        assert repr(report.conclusion) == "sender sat f(wire) <= input"

    def test_tampered_proof_rejected_after_decode(self):
        from repro.errors import ProofError
        from repro.proof.checker import ProofChecker

        payload = json.loads(dumps(protocol.table1_proof()))
        # tamper: claim a different conclusion channel
        text = json.dumps(payload).replace('"input"', '"output"')
        restored = loads(text)
        with pytest.raises(ProofError):
            ProofChecker(protocol.definitions(), protocol.oracle()).check(restored)


class TestErrors:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError, match="unknown kind"):
            decode({"kind": "Teleport"})

    def test_non_dict_rejected(self):
        with pytest.raises(SerializationError):
            decode([1, 2, 3])

    def test_unencodable_object_rejected(self):
        with pytest.raises(SerializationError):
            encode(object())

    def test_unencodable_value_rejected(self):
        from repro.values.expressions import Const

        with pytest.raises(SerializationError):
            encode(Const(3.5j))

"""Unit tests for the §3.4 substitution operators and their lemmas."""

import pytest

from repro.assertions.builders import (
    at_,
    chan_,
    const_,
    eq_,
    forall_,
    le_,
    seq_,
    sum_,
    var_,
)
from repro.assertions.ast import ForAll, Sum
from repro.assertions.eval import evaluate_formula
from repro.assertions.parser import parse_assertion
from repro.assertions.substitution import (
    blank_channels,
    channels_mentioned,
    expr_to_term,
    formula_free_variables,
    mentions_channel_name,
    prefix_channel,
    substitute_variable,
    term_to_expr,
)
from repro.errors import SubstitutionError
from repro.process.channels import ChannelExpr
from repro.traces.events import event, trace
from repro.traces.histories import ch
from repro.values.environment import Environment
from repro.values.expressions import Const, NatSet, Var

CHANS = {"input", "wire", "output"}
ENV = Environment()


class TestBlankChannels:
    def test_replaces_every_channel(self):
        r = parse_assertion("wire <= input", CHANS)
        assert blank_channels(r) == parse_assertion("<> <= <>", CHANS)

    def test_leaves_variables_alone(self):
        r = parse_assertion("f(wire) <= x ^ input", CHANS)
        blanked = blank_channels(r)
        assert blanked == parse_assertion("f(<>) <= x ^ <>", CHANS)

    def test_lemma_b(self):
        # (ρ + ch(⟨⟩))⟦R⟧ = ρ⟦R_<>⟧ (§3.4 lemma b)
        r = parse_assertion("#wire + 1 <= #input + 1 & wire <= wire", CHANS)
        lhs = evaluate_formula(r, ENV, ch(()))
        rhs = evaluate_formula(blank_channels(r), ENV, ch(()))
        assert lhs == rhs


class TestPrefixChannel:
    WIRE = ChannelExpr("wire")

    def test_rewrites_only_target_channel(self):
        r = parse_assertion("wire <= input", CHANS)
        out = prefix_channel(r, self.WIRE, const_(3))
        assert out == parse_assertion("3 ^ wire <= input", CHANS)

    def test_rewrites_all_occurrences(self):
        r = parse_assertion("wire <= wire", CHANS)
        out = prefix_channel(r, self.WIRE, var_("x"))
        assert out == parse_assertion("x ^ wire <= x ^ wire", CHANS)

    def test_subscripted_channels_matched_structurally(self):
        r = parse_assertion("col[i] <= col[j]", {"col"})
        out = prefix_channel(r, ChannelExpr("col", Var("i")), const_(0))
        assert out == parse_assertion("0 ^ col[i] <= col[j]", {"col"})

    def test_lemma_c(self):
        # (ρ+ch(s))⟦R^c_{e⌢c}⟧ = (ρ+ch(c.e ⌢ s))⟦R⟧ (§3.4 lemma c)
        r = parse_assertion("wire <= input & #wire <= 5", CHANS)
        s = trace(("input", 3), ("wire", 3))
        substituted = prefix_channel(r, self.WIRE, const_(3))
        extended = (event("wire", 3),) + s
        assert evaluate_formula(substituted, ENV, ch(s)) == evaluate_formula(
            r, ENV, ch(extended)
        )


class TestSubstituteVariable:
    def test_simple(self):
        r = parse_assertion("f(wire) <= x ^ input", CHANS)
        out = substitute_variable(r, "x", const_(5))
        assert out == parse_assertion("f(wire) <= 5 ^ input", CHANS)

    def test_reaches_channel_subscripts(self):
        r = parse_assertion("col[i] <= col[i]", {"col"})
        out = substitute_variable(r, "i", const_(2))
        assert out == parse_assertion("col[2] <= col[2]", {"col"})

    def test_sequence_replacement_in_subscript_rejected(self):
        r = parse_assertion("col[i] <= col[i]", {"col"})
        with pytest.raises(SubstitutionError):
            substitute_variable(r, "i", seq_(1, 2))

    def test_quantifier_shadows(self):
        r = forall_("x", NatSet(), eq_(var_("x"), var_("x")))
        assert substitute_variable(r, "x", const_(5)) == r

    def test_capture_avoided_in_quantifier(self):
        # (∀i. x ≤ i)[x := i] must not capture i
        r = forall_("i", NatSet(), le_(var_("x"), var_("i")))
        out = substitute_variable(r, "x", var_("i"))
        assert isinstance(out, ForAll)
        assert out.variable != "i"
        assert formula_free_variables(out) == {"i"}

    def test_capture_avoided_in_sum(self):
        t = sum_("j", 1, 3, at_(chan_("input"), var_("k")))
        out = substitute_variable(eq_(t, const_(0)), "k", var_("j"))
        inner = out.left
        assert isinstance(inner, Sum)
        assert inner.variable != "j"

    def test_sum_binder_shadows(self):
        t = sum_("j", 1, var_("j"), var_("j"))
        out = substitute_variable(eq_(t, const_(0)), "j", const_(9))
        # the bound occurrences stay, the free bound-expression is replaced
        assert out.left.high == const_(9)
        assert out.left.body == var_("j")

    def test_lemma_a(self):
        # (ρ+ch(s))⟦R^x_e⟧ = (ρ[ρ⟦e⟧/x]+ch(s))⟦R⟧ (§3.4 lemma a)
        r = parse_assertion("f(wire) <= x ^ input", CHANS)
        s = trace(("wire", 5))
        env = ENV.bind("f", lambda seq: seq).bind("y", 5)
        substituted = substitute_variable(r, "x", var_("y"))
        assert evaluate_formula(substituted, env, ch(s)) == evaluate_formula(
            r, env.bind("x", 5), ch(s)
        )


class TestChannelsMentioned:
    def test_collects_channels(self):
        r = parse_assertion("wire <= input & #output < 3", CHANS)
        assert channels_mentioned(r) == {
            ChannelExpr("wire"),
            ChannelExpr("input"),
            ChannelExpr("output"),
        }

    def test_mentions_by_name_ignores_subscripts(self):
        r = parse_assertion("col[i] <= col[j]", {"col"})
        assert mentions_channel_name(r, "col")
        assert not mentions_channel_name(r, "wire")

    def test_variables_not_counted(self):
        r = parse_assertion("x <= y", set())
        assert channels_mentioned(r) == frozenset()


class TestFreeVariables:
    def test_quantifier_binds(self):
        r = parse_assertion("forall i : NAT . x <= i", set())
        assert formula_free_variables(r) == {"x"}

    def test_sum_binds(self):
        r = parse_assertion("(sum j : 1..n . j) = m", set())
        assert formula_free_variables(r) == {"n", "m"}

    def test_channel_subscript_variables_free(self):
        r = parse_assertion("col[i] <= col[i]", {"col"})
        assert formula_free_variables(r) == {"i"}


class TestConversion:
    def test_term_expr_roundtrip(self):
        t = parse_assertion("v(i) + 2 * k <= 9", set()).left
        assert expr_to_term(term_to_expr(t)) == t

    def test_sequence_terms_not_convertible(self):
        with pytest.raises(SubstitutionError):
            term_to_expr(seq_(1))

    def test_const_var(self):
        assert term_to_expr(const_(3)) == Const(3)
        assert expr_to_term(Var("x")) == var_("x")

"""Unit tests for assertion evaluation under ρ + ch(s) (§3.3)."""

import pytest

from repro.assertions.builders import (
    EMPTY_SEQ,
    FALSE,
    TRUE,
    and_,
    apply_,
    at_,
    cat_,
    chan_,
    cons_,
    const_,
    eq_,
    exists_,
    forall_,
    implies_,
    le_,
    len_,
    lt_,
    ne_,
    not_,
    or_,
    plus_,
    seq_,
    sum_,
    times_,
    var_,
)
from repro.assertions.eval import EvalConfig, evaluate_formula, evaluate_term
from repro.errors import EvaluationError
from repro.traces.events import channel, trace
from repro.traces.histories import ch
from repro.values.environment import Environment
from repro.values.expressions import NatSet, RangeSet, const

ENV = Environment()
S = trace(("input", 27), ("wire", 27), ("input", 0), ("wire", 0), ("input", 3))
H = ch(S)


class TestTermEvaluation:
    def test_channel_trace_is_history(self):
        assert evaluate_term(chan_("input"), ENV, H) == (27, 0, 3)
        assert evaluate_term(chan_("wire"), ENV, H) == (27, 0)

    def test_unused_channel_is_empty(self):
        assert evaluate_term(chan_("output"), ENV, H) == ()

    def test_subscripted_channel(self):
        h = ch(trace((channel("col", 1), 5)))
        env = ENV.bind("i", 1)
        assert evaluate_term(chan_("col", "i"), env, h) == (5,)
        assert evaluate_term(chan_("col", 0), env, h) == ()

    def test_variables_and_constants(self):
        env = ENV.bind("x", 9)
        assert evaluate_term(var_("x"), env, H) == 9
        assert evaluate_term(const_("ACK"), env, H) == "ACK"

    def test_sequence_literal(self):
        assert evaluate_term(seq_(1, 2, 3), ENV, H) == (1, 2, 3)
        assert evaluate_term(EMPTY_SEQ, ENV, H) == ()

    def test_cons_and_concat(self):
        assert evaluate_term(cons_(0, chan_("wire")), ENV, H) == (0, 27, 0)
        assert evaluate_term(cat_(seq_(1), seq_(2)), ENV, H) == (1, 2)

    def test_cons_onto_non_sequence_rejected(self):
        with pytest.raises(EvaluationError):
            evaluate_term(cons_(0, const_(5)), ENV, H)

    def test_length(self):
        assert evaluate_term(len_(chan_("input")), ENV, H) == 3

    def test_index_is_one_based(self):
        assert evaluate_term(at_(chan_("input"), 1), ENV, H) == 27
        assert evaluate_term(at_(chan_("input"), 3), ENV, H) == 3

    def test_index_out_of_range(self):
        with pytest.raises(EvaluationError):
            evaluate_term(at_(chan_("input"), 4), ENV, H)

    def test_arithmetic(self):
        assert evaluate_term(plus_(len_(chan_("wire")), 1), ENV, H) == 3
        assert evaluate_term(times_(const_(3), const_(4)), ENV, H) == 12

    def test_apply_host_function(self):
        env = ENV.bind("double", lambda s: s + s)
        assert evaluate_term(apply_("double", seq_(1)), env, H) == (1, 1)

    def test_sum(self):
        term = sum_("j", 1, 3, times_(var_("j"), var_("j")))
        assert evaluate_term(term, ENV, H) == 14

    def test_empty_sum_is_zero(self):
        assert evaluate_term(sum_("j", 2, 1, var_("j")), ENV, H) == 0


class TestFormulaEvaluation:
    def test_paper_copier_invariant(self):
        # wire ≤ input holds of the §3.3 example trace
        assert evaluate_formula(le_(chan_("wire"), chan_("input")), ENV, H)

    def test_prefix_violated(self):
        h = ch(trace(("wire", 9), ("input", 1)))
        assert not evaluate_formula(le_(chan_("wire"), chan_("input")), ENV, h)

    def test_length_bound_invariant(self):
        # #input ≤ #wire + 1 (§2 item 2 example)
        formula = le_(len_(chan_("input")), plus_(len_(chan_("wire")), 1))
        assert evaluate_formula(formula, ENV, H)

    def test_numeric_vs_sequence_comparison(self):
        assert evaluate_formula(lt_(const_(1), const_(2)), ENV, H)
        assert evaluate_formula(lt_(seq_(1), seq_(1, 2)), ENV, H)
        with pytest.raises(EvaluationError):
            evaluate_formula(le_(const_(1), seq_(1)), ENV, H)

    def test_equality_is_generic(self):
        assert evaluate_formula(eq_(seq_(1), seq_(1)), ENV, H)
        assert evaluate_formula(ne_(const_(1), const_(2)), ENV, H)

    def test_connectives(self):
        assert evaluate_formula(and_(TRUE, TRUE), ENV, H)
        assert not evaluate_formula(and_(TRUE, FALSE), ENV, H)
        assert evaluate_formula(or_(FALSE, TRUE), ENV, H)
        assert evaluate_formula(not_(FALSE), ENV, H)
        assert evaluate_formula(implies_(FALSE, FALSE), ENV, H)
        assert not evaluate_formula(implies_(TRUE, FALSE), ENV, H)

    def test_implication_short_circuits_guarded_index(self):
        # 4 ≤ #input ⇒ input_4 = 0 must not raise though input_4 is undefined
        guarded = implies_(
            le_(const_(4), len_(chan_("input"))), eq_(at_(chan_("input"), 4), const_(0))
        )
        assert evaluate_formula(guarded, ENV, H)

    def test_forall_over_finite_range(self):
        formula = forall_(
            "i",
            RangeSet(const(1), const(3)),
            lt_(at_(chan_("input"), var_("i")), const_(100)),
        )
        assert evaluate_formula(formula, ENV, H)

    def test_forall_over_nat_is_bounded(self):
        formula = forall_("i", NatSet(), lt_(var_("i"), const_(10)))
        assert evaluate_formula(formula, ENV, H, EvalConfig(quant_bound=5))
        assert not evaluate_formula(formula, ENV, H, EvalConfig(quant_bound=20))

    def test_exists(self):
        formula = exists_(
            "i",
            RangeSet(const(1), const(3)),
            eq_(at_(chan_("input"), var_("i")), const_(0)),
        )
        assert evaluate_formula(formula, ENV, H)

    def test_guarded_forall_pattern_from_paper(self):
        # ∀i:NAT. 1 ≤ i & i ≤ #wire ⇒ wire_i = input_i
        formula = forall_(
            "i",
            NatSet(),
            implies_(
                and_(
                    le_(const_(1), var_("i")),
                    le_(var_("i"), len_(chan_("wire"))),
                ),
                eq_(at_(chan_("wire"), var_("i")), at_(chan_("input"), var_("i"))),
            ),
        )
        assert evaluate_formula(formula, ENV, H)

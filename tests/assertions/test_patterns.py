"""Unit tests for the specification-pattern library."""

import pytest

from repro.assertions.patterns import (
    bounded_lag,
    copies,
    guarded_forall,
    monotone,
    pointwise_equal,
    relays_through,
    values_in,
)
from repro.assertions.builders import chan_
from repro.assertions.eval import evaluate_formula
from repro.process.ast import Name
from repro.process.parser import parse_definitions
from repro.sat.checker import check_sat
from repro.semantics.config import SemanticsConfig
from repro.traces.events import channel, trace
from repro.traces.histories import ch
from repro.values.environment import Environment

ENV = Environment()
CFG = SemanticsConfig(depth=5, sample=2)

COPIER = parse_definitions(
    "copier = input?x:NAT -> wire!x -> copier;"
    "recopier = wire?y:NAT -> output!y -> recopier;"
    "network = chan wire; (copier || recopier)"
)


def holds_on(formula, *events):
    return evaluate_formula(formula, ENV, ch(trace(*events)))


class TestCopies:
    def test_against_copier(self):
        assert check_sat(Name("copier"), copies("input", "wire"), COPIER, config=CFG)

    def test_direction_matters(self):
        assert not check_sat(
            Name("copier"), copies("wire", "input"), COPIER, config=CFG
        )


class TestBoundedLag:
    def test_copier_lag_one(self):
        assert check_sat(
            Name("copier"), bounded_lag("input", "wire", 1), COPIER, config=CFG
        )

    def test_zero_lag_fails(self):
        assert not check_sat(
            Name("copier"), bounded_lag("input", "wire", 0), COPIER, config=CFG
        )

    def test_evaluation(self):
        spec = bounded_lag("a", "b", 2)
        assert holds_on(spec, ("a", 1), ("a", 2), ("b", 1))
        assert not holds_on(spec, ("a", 1), ("a", 2), ("a", 3))


class TestGuardedForall:
    def test_empty_sequence_vacuous(self):
        spec = guarded_forall("i", chan_("c"), evaluate_never())
        assert holds_on(spec)  # no elements: guard never fires


def evaluate_never():
    from repro.assertions.builders import FALSE

    return FALSE


class TestPointwiseAndValues:
    def test_pointwise_equal(self):
        spec = pointwise_equal("out", "inp")
        assert holds_on(spec, ("inp", 1), ("out", 1))
        assert holds_on(spec, ("inp", 1), ("inp", 2), ("out", 1))  # shorter left? out shorter
        assert not holds_on(spec, ("inp", 1), ("out", 2))

    def test_values_in(self):
        spec = values_in("c", [0, 1])
        assert holds_on(spec, ("c", 0), ("c", 1))
        assert not holds_on(spec, ("c", 7))

    def test_values_in_rejects_empty(self):
        with pytest.raises(ValueError):
            values_in("c", [])

    def test_values_in_on_process(self):
        defs = parse_definitions("p = c!0 -> c!1 -> p")
        assert check_sat(Name("p"), values_in("c", [0, 1]), defs, config=CFG)
        assert not check_sat(Name("p"), values_in("c", [0]), defs, config=CFG)


class TestMonotone:
    def test_holds(self):
        assert holds_on(monotone("c"), ("c", 1), ("c", 1), ("c", 3))

    def test_violated(self):
        assert not holds_on(monotone("c"), ("c", 2), ("c", 1))

    def test_counter_process(self):
        defs = parse_definitions(
            "count[n:NAT] = c!n -> count[n+1]", require_guarded=True
        )
        from repro.process.ast import ArrayRef
        from repro.sat.checker import SatChecker
        from repro.values.expressions import Const

        checker = SatChecker(defs, ENV, SemanticsConfig(depth=4, sample=2))
        assert checker.check(ArrayRef("count", Const(0)), monotone("c")).holds


class TestRelays:
    def test_network_spec_via_transitivity(self):
        spec = relays_through("input", "wire", "output")
        # the unhidden network satisfies the conjunction...
        from repro.process.parser import parse_process

        assert check_sat(
            parse_process("copier || recopier"), spec, COPIER, config=CFG
        )

    def test_subscripted_channels(self):
        spec = copies(("link", 0), ("link", 2))
        assert holds_on(spec, (channel("link", 0), 5), (channel("link", 2), 5))

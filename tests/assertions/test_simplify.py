"""Unit + property tests for the assertion simplifier."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assertions.ast import BoolLit, Compare
from repro.assertions.builders import (
    FALSE,
    TRUE,
    and_,
    cons_,
    implies_,
    not_,
    or_,
    seq_,
)
from repro.assertions.eval import evaluate_formula
from repro.assertions.parser import parse_assertion
from repro.assertions.simplify import simplify, simplify_term
from repro.assertions.substitution import blank_channels
from repro.errors import EvaluationError
from repro.traces.events import channel
from repro.traces.histories import ChannelHistory
from repro.values.environment import Environment

CHANS = {"input", "wire", "output"}


def S(text):
    return simplify(parse_assertion(text, CHANS))


class TestConstantFolding:
    def test_ground_prefix_comparison(self):
        assert S("<> <= <3>") == TRUE
        assert S("<4> <= <3>") == FALSE
        assert S("<3> <= <3, 4>") == TRUE

    def test_ground_arithmetic(self):
        assert S("1 + 2 * 3 = 7") == TRUE
        assert S("7 div 2 = 3") == TRUE
        assert S("1 div 0 = 0") != TRUE  # not folded: would raise at eval

    def test_length_of_literal(self):
        assert S("#<3, 4> = 2") == TRUE

    def test_index_into_literal(self):
        assert S("<3, 4>@2 = 4") == TRUE
        # out-of-range indexing is left alone (it raises at eval time)
        out = S("<3>@5 = 0")
        assert not isinstance(out, BoolLit)

    def test_cons_and_concat_fold_to_literals(self):
        assert simplify_term(cons_(1, seq_(2))) == seq_(1, 2)
        assert simplify_term(
            parse_assertion("<1> ++ <2> = s", {"s"}).left
        ) == seq_(1, 2)

    def test_concat_unit(self):
        t = parse_assertion("<> ++ wire = wire", CHANS)
        assert simplify(t) == TRUE  # folds to wire = wire, then reflexivity

    def test_empty_sum_is_zero(self):
        assert S("(sum j : 3..2 . j) = 0") == TRUE


class TestReflexivity:
    def test_channel_reflexive(self):
        assert S("wire <= wire") == TRUE
        assert S("wire < wire") == FALSE
        assert S("wire = wire") == TRUE

    def test_variable_equality_reflexive(self):
        assert S("x = x") == TRUE

    def test_variable_order_not_folded(self):
        # x might be a string: x <= x would be ill-typed, so keep it
        out = S("x <= x")
        assert isinstance(out, Compare)

    def test_partial_term_not_folded(self):
        # input@5 may be out of range: input@5 = input@5 must survive
        out = S("input@5 = input@5")
        assert isinstance(out, Compare)

    def test_host_function_not_folded(self):
        out = S("f(wire) = f(wire)")
        assert isinstance(out, Compare)


class TestPropositional:
    def test_units_and_absorbers(self):
        x = parse_assertion("wire <= input", CHANS)
        assert simplify(and_(TRUE, x)) == x
        assert simplify(and_(x, FALSE)) == FALSE
        assert simplify(or_(x, TRUE)) == TRUE
        assert simplify(or_(FALSE, x)) == x

    def test_idempotence(self):
        x = parse_assertion("wire <= input", CHANS)
        assert simplify(and_(x, x)) == x
        assert simplify(or_(x, x)) == x

    def test_negation(self):
        x = parse_assertion("wire <= input", CHANS)
        assert simplify(not_(TRUE)) == FALSE
        assert simplify(not_(not_(x))) == x

    def test_implication(self):
        x = parse_assertion("wire <= input", CHANS)
        assert simplify(implies_(FALSE, x)) == TRUE
        assert simplify(implies_(TRUE, x)) == x
        assert simplify(implies_(x, x)) == TRUE

    def test_quantifiers(self):
        assert S("forall i : NAT . <> <= <>") == TRUE
        assert S("exists i : NAT . <1> <= <>") == FALSE


class TestBlankedSideConditions:
    """The oracle fast path: typical R_<> premises fold to true."""

    @pytest.mark.parametrize(
        "spec",
        [
            "wire <= input",
            "output <= input",
            "#input <= #wire + 1",
            "wire <= x ^ input",
        ],
    )
    def test_blanked_claim_is_syntactically_true(self, spec):
        formula = parse_assertion(spec, CHANS)
        assert simplify(blank_channels(formula)) == TRUE

    def test_oracle_uses_the_fast_path(self):
        from repro.proof.oracle import Oracle

        formula = blank_channels(parse_assertion("wire <= input", CHANS))
        verdict = Oracle().holds(formula)
        assert verdict.ok and verdict.method == "syntactic"


# ---------------------------------------------------------------------------
# Property: simplify preserves meaning.
# ---------------------------------------------------------------------------

from repro.soundness.generators import AssertionGenerator

_histories = st.builds(
    lambda a, w: ChannelHistory({channel("a"): tuple(a), channel("wire"): tuple(w)}),
    st.lists(st.integers(0, 2), max_size=3),
    st.lists(st.integers(0, 2), max_size=3),
)


@settings(max_examples=300, deadline=None)
@given(st.integers(0, 10_000), _histories)
def test_simplify_preserves_evaluation(seed, history):
    formula = AssertionGenerator(seed=seed).formula()
    simplified = simplify(formula)
    env = Environment()
    try:
        expected = evaluate_formula(formula, env, history)
    except EvaluationError:
        return  # partial formulas stay partial; nothing to compare
    assert evaluate_formula(simplified, env, history) == expected

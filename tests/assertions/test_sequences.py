"""Unit tests for sequence operators and the cancellation function f (§2.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.assertions.sequences import (
    cancel_protocol,
    is_seq_prefix,
    is_strict_seq_prefix,
    seq_index,
)


class TestPrefixOrder:
    def test_empty_prefix_of_all(self):
        assert is_seq_prefix((), (1, 2))
        assert is_seq_prefix((), ())

    def test_reflexive(self):
        assert is_seq_prefix((1, 2), (1, 2))

    def test_proper_prefix(self):
        assert is_seq_prefix((1,), (1, 2))
        assert not is_seq_prefix((2,), (1, 2))
        assert not is_seq_prefix((1, 2, 3), (1, 2))

    def test_strict(self):
        assert is_strict_seq_prefix((1,), (1, 2))
        assert not is_strict_seq_prefix((1, 2), (1, 2))

    @given(st.lists(st.integers(0, 3), max_size=5), st.lists(st.integers(0, 3), max_size=5))
    def test_matches_existential_definition(self, s, t):
        # s ≤ t ⇔ ∃u. s ++ u = t
        s, t = tuple(s), tuple(t)
        witness = any(s + u == t for u in [t[len(s):]]) if len(s) <= len(t) else False
        assert is_seq_prefix(s, t) == witness


class TestIndexing:
    def test_one_based(self):
        assert seq_index((10, 20, 30), 1) == 10
        assert seq_index((10, 20, 30), 3) == 30

    @pytest.mark.parametrize("i", [0, 4, -1])
    def test_out_of_range(self, i):
        with pytest.raises(IndexError):
            seq_index((10, 20, 30), i)


class TestCancellationFunction:
    """The function f of §2.2 with its defining laws."""

    def test_paper_worked_example(self):
        # f(⟨x, NACK, y, ACK⟩) = ⟨y⟩
        assert cancel_protocol(("x", "NACK", "y", "ACK")) == ("y",)

    def test_empty(self):
        assert cancel_protocol(()) == ()

    def test_single_message(self):
        assert cancel_protocol((5,)) == (5,)

    def test_law_ack(self):
        # f(x ⌢ ⟨ACK⟩ ⌢ s) = x ⌢ f(s)
        s = (1, "NACK", 2, "ACK")
        assert cancel_protocol((9, "ACK") + s) == (9,) + cancel_protocol(s)

    def test_law_nack(self):
        # f(x ⌢ ⟨NACK⟩ ⌢ s) = f(s)
        s = (1, "ACK", 2)
        assert cancel_protocol((9, "NACK") + s) == cancel_protocol(s)

    def test_lone_ack_cancelled(self):
        assert cancel_protocol(("ACK",)) == ()

    def test_lone_nack_cancelled(self):
        assert cancel_protocol(("NACK",)) == ()

    def test_pending_message_kept(self):
        # a message not yet acknowledged is already in f(s): f(⟨x⟩) = ⟨x⟩
        assert cancel_protocol((7, "ACK", 8)) == (7, 8)

    def test_repeated_retransmission(self):
        assert cancel_protocol((5, "NACK", 5, "NACK", 5, "ACK")) == (5,)

    def test_custom_signal_values(self):
        assert cancel_protocol((1, "no", 2, "yes"), ack="yes", nack="no") == (2,)

    @given(st.lists(st.sampled_from([0, 1, "ACK", "NACK"]), max_size=8))
    def test_result_contains_no_signals(self, s):
        out = cancel_protocol(tuple(s))
        assert "ACK" not in out and "NACK" not in out

    @given(st.lists(st.sampled_from([0, 1]), max_size=6))
    def test_identity_on_pure_messages(self, s):
        assert cancel_protocol(tuple(s)) == tuple(s)

    @given(
        st.lists(st.sampled_from([0, 1, "ACK", "NACK"]), max_size=6),
        st.sampled_from([0, 1]),
    )
    def test_laws_hold_generically(self, s, x):
        s = tuple(s)
        assert cancel_protocol((x, "ACK") + s) == (x,) + cancel_protocol(s)
        assert cancel_protocol((x, "NACK") + s) == cancel_protocol(s)

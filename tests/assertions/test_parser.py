"""Unit tests for the assertion parser and pretty-printer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assertions.ast import (
    Apply,
    ChannelTrace,
    Compare,
    ForAll,
    Implies,
    LogicalAnd,
    SeqLit,
    Sum,
    VarTerm,
)
from repro.assertions.builders import (
    and_,
    apply_,
    at_,
    cat_,
    chan_,
    cons_,
    const_,
    eq_,
    forall_,
    implies_,
    le_,
    len_,
    not_,
    or_,
    plus_,
    seq_,
    sum_,
    times_,
    var_,
)
from repro.assertions.parser import parse_assertion
from repro.assertions.pretty import pretty_assertion
from repro.errors import ParseError
from repro.values.expressions import NatSet

CHANS = {"input", "wire", "output", "col", "row"}


class TestPaperAssertions:
    def test_copier_spec(self):
        assert parse_assertion("wire <= input", CHANS) == le_(
            chan_("wire"), chan_("input")
        )

    def test_length_spec(self):
        assert parse_assertion("#input <= #wire + 1", CHANS) == le_(
            len_(chan_("input")), plus_(len_(chan_("wire")), 1)
        )

    def test_table1_invariant(self):
        assert parse_assertion("f(wire) <= x ^ input", CHANS) == le_(
            apply_("f", chan_("wire")), cons_(var_("x"), chan_("input"))
        )

    def test_multiplier_invariant_shape(self):
        formula = parse_assertion(
            "forall i : NAT . 1 <= i & i <= #output =>"
            " output@i = (sum j : 1..3 . v(j) * row[j]@i)",
            CHANS,
        )
        assert isinstance(formula, ForAll)
        assert isinstance(formula.body, Implies)
        assert isinstance(formula.body.consequent.right, Sum)

    def test_unicode_paper_spelling(self):
        ascii_f = parse_assertion("forall x : M . <> <= wire => wire <= input", CHANS)
        unicode_f = parse_assertion("∀ x : M . ⟨⟩ ≤ wire ⇒ wire ≤ input", CHANS)
        assert ascii_f == unicode_f


class TestResolution:
    def test_channel_vs_variable(self):
        f = parse_assertion("wire <= x", {"wire"})
        assert isinstance(f.left, ChannelTrace)
        assert isinstance(f.right, VarTerm)

    def test_uppercase_is_constant(self):
        f = parse_assertion("x = ACK", set())
        assert f.right == const_("ACK")

    def test_subscripted_channel_vs_function(self):
        f = parse_assertion("col[1] = v[1]", {"col"})
        assert isinstance(f.left, ChannelTrace)
        assert isinstance(f.right, Apply)

    def test_quoted_string(self):
        f = parse_assertion('x = "hello"', set())
        assert f.right == const_("hello")


class TestTermSyntax:
    def test_cons_right_associative(self):
        f = parse_assertion("a ^ b ^ s = s", set())
        assert f.left == cons_(var_("a"), cons_(var_("b"), var_("s")))

    def test_concat(self):
        f = parse_assertion("s ++ t = u", set())
        assert f.left == cat_(var_("s"), var_("t"))

    def test_sequence_literals(self):
        assert parse_assertion("<> = <>", set()).left == SeqLit(())
        f = parse_assertion("<3, 4> = s", set())
        assert f.left == seq_(3, 4)

    def test_index_binds_tightest(self):
        f = parse_assertion("wire@i * 2 = x", {"wire"})
        assert f.left == times_(at_(chan_("wire"), var_("i")), const_(2))

    def test_length_of_indexed(self):
        f = parse_assertion("#f(s) = n", set())
        assert f.left == len_(apply_("f", var_("s")))

    def test_arith_precedence(self):
        f = parse_assertion("1 + 2 * 3 = 7", set())
        assert f.left == plus_(const_(1), times_(const_(2), const_(3)))

    def test_parenthesised_term(self):
        f = parse_assertion("(1 + 2) * 3 = 9", set())
        assert f.left == times_(plus_(const_(1), const_(2)), const_(3))


class TestFormulaSyntax:
    def test_precedence_chain(self):
        f = parse_assertion("a = b & c = d or e = g => h = i", set())
        assert isinstance(f, Implies)
        assert isinstance(f.antecedent.left, LogicalAnd)

    def test_implication_right_associative(self):
        f = parse_assertion("a = b => c = d => e = g", set())
        assert isinstance(f.consequent, Implies)

    def test_parenthesised_formula(self):
        f = parse_assertion("(a = b or c = d) & e = g", set())
        assert isinstance(f, LogicalAnd)

    def test_parenthesised_term_followed_by_relop(self):
        f = parse_assertion("(x) <= y", set())
        assert f == le_(var_("x"), var_("y"))

    def test_not(self):
        f = parse_assertion("not a = b", set())
        assert f == not_(eq_(var_("a"), var_("b")))

    def test_nested_quantifiers(self):
        f = parse_assertion("forall i : NAT . exists j : NAT . i < j", set())
        assert isinstance(f.body.body, Compare)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "wire",  # bare term, no comparison
            "wire <=",
            "forall : NAT . x = y",
            "forall i NAT . x = y",
            "<3, 4 = s",
            "x = y extra",
            "sum j 1..3 . j = 0",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(ParseError):
            parse_assertion(bad, CHANS)


# ---------------------------------------------------------------------------
# Round-trip property
# ---------------------------------------------------------------------------

_terms = st.recursive(
    st.one_of(
        st.integers(0, 9).map(const_),
        st.sampled_from(["x", "y", "i"]).map(var_),
        st.sampled_from(["wire", "input"]).map(chan_),
        st.just(SeqLit(())),
    ),
    lambda children: st.one_of(
        st.builds(cons_, children, children),
        st.builds(cat_, children, children),
        st.builds(len_, children),
        st.builds(at_, children, children),
        st.builds(plus_, children, children),
        st.builds(times_, children, children),
        st.builds(lambda a: apply_("f", a), children),
        st.builds(lambda lo, hi, b: sum_("j", lo, hi, b), children, children, children),
    ),
    max_leaves=5,
)

_formulas = st.recursive(
    st.builds(
        lambda op, l, r: Compare(op, l, r),
        st.sampled_from(["<=", "<", "=", "!=", ">", ">="]),
        _terms,
        _terms,
    ),
    lambda children: st.one_of(
        st.builds(and_, children, children),
        st.builds(or_, children, children),
        st.builds(not_, children),
        st.builds(implies_, children, children),
        st.builds(lambda b: forall_("k", NatSet(), b), children),
    ),
    max_leaves=5,
)


@settings(max_examples=200, deadline=None)
@given(_formulas)
def test_parse_pretty_roundtrip(formula):
    rendered = pretty_assertion(formula)
    assert parse_assertion(rendered, {"wire", "input"}) == formula

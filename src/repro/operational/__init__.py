"""Operational simulator — the "intended implementation" of §3.

The denotational semantics (:mod:`repro.semantics`) says *which traces* a
process has; this package says *how a network actually runs*: a
small-step labelled transition system whose states are process
configurations and whose labels are communications (or τ for concealed
internal communications introduced by ``chan``).

* :mod:`repro.operational.state`     — immutable network configurations;
* :mod:`repro.operational.step`      — the transition relation;
* :mod:`repro.operational.scheduler` — single-run simulation under a
  scheduling policy;
* :mod:`repro.operational.explorer`  — exhaustive BFS over the state
  space, producing the visible-trace closure (cross-validated against the
  denotational semantics in the integration tests).
"""

from repro.operational.explorer import Explorer, explore_traces
from repro.operational.scheduler import (
    DeterministicScheduler,
    RandomScheduler,
    Scheduler,
    SimulationRun,
    simulate,
)
from repro.operational.state import ChanState, LeafState, ParallelState, State, lift
from repro.operational.step import OperationalSemantics, Step

__all__ = [
    "State",
    "LeafState",
    "ParallelState",
    "ChanState",
    "lift",
    "OperationalSemantics",
    "Step",
    "Scheduler",
    "RandomScheduler",
    "DeterministicScheduler",
    "SimulationRun",
    "simulate",
    "Explorer",
    "explore_traces",
]

"""Exhaustive exploration of a network's visible behaviours.

The explorer performs a breadth-first search of the configuration space,
treating internal (τ) steps as invisible: it computes, level by level,
the set of *visible traces* of length ≤ depth together with the
configurations reachable under each trace.  The result is a
:class:`~repro.traces.prefix_closure.FiniteClosure` directly comparable
with the bounded denotational semantics — the consistency check at the
heart of the integration test suite.

τ-cycles (e.g. the protocol's unbounded NACK retransmissions) are finite
in configuration space and handled by the closure's visited set; a
``max_states`` budget guards against genuinely infinite-state networks.

Budget accounting is **per call**: each public entry point resets the
touched-state counter, so one long-lived explorer serving many queries
does not leak budget from one query into the next (the τ-closure memo
*is* shared — it caches only completed closures, so reuse is sound).
Exhaustion raises :class:`~repro.errors.BudgetExceeded` carrying a
checkpoint whose payload holds the last completed BFS frontier; passing
that checkpoint back via ``resume=`` continues the search where it
stopped instead of re-exploring from the initial configuration.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, FrozenSet, List, NamedTuple, Optional, Set, Tuple

from repro import serialize
from repro.errors import BudgetExceeded, OperationalError, ReproError
from repro.operational.state import State
from repro.operational.step import OperationalSemantics
from repro.process.ast import Process
from repro.runtime import faults as _faults
from repro.runtime import governor as _governor
from repro.runtime.governor import Checkpoint
from repro.traces import stats as _stats
from repro.traces.events import Event, Trace
from repro.traces.prefix_closure import FiniteClosure
from repro.traces.snapshot import SnapshotCache, frontier_slot


class DeadlockReport(NamedTuple):
    """Outcome of a deadlock search, including its exploration cost."""

    deadlocks: Tuple[Trace, ...]  #: shortest-first traces reaching a stuck state
    states_touched: int  #: configurations visited by this search
    completed_depth: int  #: deepest BFS level fully scanned
    complete: bool = True  #: False when a budget cut the search short

    def __str__(self) -> str:
        status = "complete" if self.complete else "PARTIAL"
        return (
            f"{len(self.deadlocks)} deadlock(s) to depth {self.completed_depth} "
            f"({status}, {self.states_touched} states touched)"
        )


def _blob_key(obj: object) -> str:
    """Deterministic sort key for events/states in a frontier blob —
    equal frontiers must serialise to byte-identical payloads no matter
    what set-iteration order this process happened to use."""
    return json.dumps(serialize.encode(obj), sort_keys=True)


class FrontierStore:
    """Persisted explorer frontiers for one named term.

    Every completed BFS level writes a ``frontier:{name}@level{k}`` slot
    into the snapshot cache holding *two* values under one name: the
    trace-closure root completed at level ``k`` (a plain closure slot,
    format-2 segments) and a JSON blob with the serialised frontier
    configurations (:mod:`repro.serialize` state codecs) that index into
    the blob's own event/state tables.  Slot content is fully determined
    by the cache key and the level — never by the budget that stopped a
    run — so the slots are served in ``checkpoint_only`` (governed) mode
    too.

    Loading trusts nothing: the blob's tables must decode to real
    events/configurations, every index must land, every frontier trace
    must have length exactly ``k`` *and* be present in the closure root
    stored beside it.  Any defect quarantines the whole snapshot file
    (:meth:`SnapshotCache.reject`) and the run degrades to a cold,
    correct exploration.

    Both fault sites of the chaos suite live here: ``frontier_save``
    fires *before* anything is recorded (an abort leaves only previously
    completed levels), ``frontier_load`` fires before the cache is
    consulted (a crash while warming never corrupts a run).
    """

    def __init__(self, cache: SnapshotCache, name: str) -> None:
        self.cache = cache
        self.name = name
        #: Slots written by this store, in completion order — the sat
        #: checker folds these into budget-trip checkpoints so a resumed
        #: invocation knows which slots to trust.
        self.written: List[str] = []

    def save(
        self,
        frontier: Dict[Trace, FrozenSet[State]],
        traces: Set[Trace],
        level: int,
        complete: bool,
    ) -> None:
        """Persist the frontier completed at BFS ``level`` (in memory;
        the owning cache's ``save()`` writes the file)."""
        _faults.maybe_fail("explorer.frontier_save")
        slot = frontier_slot(self.name, level)
        # Suspended governor: persistence must not spend the budget of
        # the exploration it is checkpointing.
        with _governor.suspended():
            closure = FiniteClosure(frozenset(traces), _trusted=True)
            events = sorted({e for t in frontier for e in t}, key=_blob_key)
            states = sorted(
                {s for group in frontier.values() for s in group}, key=_blob_key
            )
            eidx = {e: i for i, e in enumerate(events)}
            sidx = {s: i for i, s in enumerate(states)}
            entries = sorted(
                (
                    ([eidx[e] for e in trace], sorted(sidx[s] for s in group))
                    for trace, group in frontier.items()
                ),
            )
            blob = {
                "level": level,
                "complete": bool(complete),
                "events": [serialize.encode(e) for e in events],
                "states": [serialize.encode(s) for s in states],
                "frontier": [[t, s] for t, s in entries],
            }
            self.cache.put(slot, closure.root)
            self.cache.put_blob(slot, blob)
        if slot not in self.written:
            self.written.append(slot)
        _stats.KERNEL_STATS.frontier_saved += 1

    def load(
        self, depth: int
    ) -> Optional[Tuple[Dict[Trace, FrozenSet[State]], FiniteClosure, int, bool]]:
        """The deepest sound frontier at level ≤ ``depth``, or ``None``.

        Returns ``(frontier, closure, level, complete)``; ``complete``
        means the exploration saturated at ``level`` (no deeper visible
        step exists), so ``closure`` is the full answer for *any* depth.
        """
        _faults.maybe_fail("explorer.frontier_load")
        with _governor.suspended():
            for level in range(depth, -1, -1):
                slot = frontier_slot(self.name, level)
                blob = self.cache.get_blob(slot)
                if blob is None:
                    continue
                node = self.cache.get(slot)
                if node is None:
                    continue
                decoded = _validate_frontier(blob, node, level)
                if decoded is None:
                    # Structurally plausible but semantically corrupt:
                    # quarantine the evidence, rebuild cold.
                    self.cache.reject()
                    return None
                _stats.KERNEL_STATS.frontier_reused += 1
                return decoded
        return None


def _validate_frontier(
    blob: dict, node, level: int
) -> Optional[Tuple[Dict[Trace, FrozenSet[State]], FiniteClosure, int, bool]]:
    """Decode and fully verify one frontier blob against its closure
    root; ``None`` on any defect (the caller quarantines)."""
    try:
        complete = blob.get("complete")
        if blob.get("level") != level or not isinstance(complete, bool):
            return None
        events = [serialize.decode(e) for e in blob["events"]]
        states = [serialize.decode(s) for s in blob["states"]]
        if not all(isinstance(e, Event) for e in events):
            return None
        if not all(isinstance(s, State) for s in states):
            return None
        closure = FiniteClosure.from_node(node)
        frontier: Dict[Trace, FrozenSet[State]] = {}
        for entry in blob["frontier"]:
            tpart, spart = entry
            if not all(
                isinstance(i, int) and 0 <= i < len(events) for i in tpart
            ):
                return None
            if not all(
                isinstance(i, int) and 0 <= i < len(states) for i in spart
            ):
                return None
            trace = tuple(events[i] for i in tpart)
            if len(trace) != level or trace in frontier or not spart:
                return None
            if trace not in closure:
                return None
            frontier[trace] = frozenset(states[i] for i in spart)
        if not frontier:
            return None
        return frontier, closure, level, complete
    except (
        serialize.SerializationError,
        ReproError,
        KeyError,
        IndexError,
        TypeError,
        ValueError,
    ):
        return None


class Explorer:
    """Breadth-first enumerator of visible traces."""

    def __init__(
        self,
        semantics: OperationalSemantics,
        max_states: int = 200_000,
    ) -> None:
        self.semantics = semantics
        self.max_states = max_states
        self._closure_memo: Dict[State, FrozenSet[State]] = {}
        self._states_touched = 0

    def _begin(self) -> None:
        """Reset per-call accounting (the τ-closure memo persists: it holds
        only completed closures, so reuse across calls is sound)."""
        self._states_touched = 0

    @property
    def states_touched(self) -> int:
        """Configurations visited by the most recent query."""
        return self._states_touched

    # -- τ-closure ---------------------------------------------------------

    def tau_closure(self, state: State) -> FrozenSet[State]:
        """All configurations reachable from ``state`` by internal steps."""
        if state in self._closure_memo:
            return self._closure_memo[state]
        seen: Set[State] = {state}
        queue: Deque[State] = deque([state])
        while queue:
            current = queue.popleft()
            self._touch()
            for step in self.semantics.steps(current):
                if step.is_internal and step.state not in seen:
                    seen.add(step.state)
                    queue.append(step.state)
        # Inserted only once fully computed — an abort above leaves the
        # memo consistent (exception safety).
        result = frozenset(seen)
        self._closure_memo[state] = result
        return result

    def _touch(self) -> None:
        _faults.maybe_fail("explorer.step")
        _governor.note_state()
        self._states_touched += 1
        if self._states_touched > self.max_states:
            raise BudgetExceeded("explorer-state", self.max_states)

    # -- trace enumeration -----------------------------------------------------

    def visible_traces(
        self,
        term: Process,
        depth: int,
        resume: Optional[Checkpoint] = None,
        store: Optional[FrontierStore] = None,
    ) -> FiniteClosure:
        """Every visible trace of length ≤ ``depth``.

        ``resume`` accepts the checkpoint of a previous budget trip on the
        same term: the search restarts from the saved frontier, so work
        already paid for is not repeated.  A budget trip raises
        :class:`~repro.errors.BudgetExceeded` whose checkpoint holds every
        trace of length ≤ ``completed_depth`` — a sound under-approximation
        — plus the frontier needed to resume.

        ``store`` enables *cross-run* warm restarts: exploration resumes
        from the deepest persisted frontier (``resume`` wins when both
        are given — an in-process checkpoint is at least as deep), and
        every completed level is persisted back, including a
        ``complete`` marker when the search saturates before ``depth``.
        The result is pointer-identical to a cold run's: both intern the
        same trace set.
        """
        self._begin()
        frontier: Dict[Trace, FrozenSet[State]] = {}
        traces: Set[Trace] = set()
        level = 0
        try:
            if resume is not None:
                frontier, traces, level = _restore(resume)
            else:
                warm = store.load(depth) if store is not None else None
                if warm is not None:
                    frontier, closure, level, complete = warm
                    if complete or level >= depth:
                        # Saturated (full answer at any depth) or already
                        # at the requested horizon: zero exploration.
                        return closure
                    traces = set(closure.traces)
                else:
                    initial = self.semantics.initial_state(term)
                    frontier = {(): self.tau_closure(initial)}
                    traces = {()}
                    if store is not None:
                        store.save(frontier, traces, 0, complete=False)
            for level in range(level, depth):
                governor = _governor.current()
                if governor is not None:
                    governor.check_deadline()
                    governor.record_progress(
                        phase="explore",
                        completed_depth=level,
                        traces_verified=len(traces),
                        payload=_payload(frontier, traces, level),
                    )
                next_frontier: Dict[Trace, Set[State]] = {}
                for trace, states in frontier.items():
                    for state in states:
                        for event, successor in self._visible_steps(state):
                            extended = trace + (event,)
                            next_frontier.setdefault(extended, set()).update(
                                self.tau_closure(successor)
                            )
                if not next_frontier:
                    if store is not None:
                        # No visible step extends any frontier trace: the
                        # closure is saturated — re-mark this level's slot
                        # complete so deeper queries skip exploration.
                        store.save(frontier, traces, level, complete=True)
                    break
                frontier = {t: frozenset(s) for t, s in next_frontier.items()}
                traces.update(frontier)
                if store is not None:
                    store.save(frontier, traces, level + 1, complete=False)
        except BudgetExceeded as exc:
            raise exc.with_checkpoint(
                self._checkpoint("explore", frontier, traces, level, exc)
            ) from None
        return FiniteClosure(frozenset(traces), _trusted=True)

    def _visible_steps(self, state: State) -> List[Tuple[Event, State]]:
        result = []
        for step in self.semantics.steps(state):
            if not step.is_internal:
                assert step.event is not None
                result.append((step.event, step.state))
        return result

    def _checkpoint(
        self,
        phase: str,
        frontier: Dict[Trace, FrozenSet[State]],
        traces: Set[Trace],
        level: int,
        exc: BudgetExceeded,
        extra: Optional[Dict[str, object]] = None,
    ) -> Checkpoint:
        inner = exc.checkpoint
        payload = _payload(frontier, traces, level)
        if extra:
            payload.update(extra)
        return Checkpoint(
            phase=phase,
            completed_depth=level,
            traces_verified=len(traces),
            states_explored=self._states_touched,
            nodes_interned=inner.nodes_interned if inner is not None else 0,
            elapsed=inner.elapsed if inner is not None else 0.0,
            payload=payload,
        )

    # -- deadlock search ---------------------------------------------------

    def deadlock_report(self, term: Process, depth: int) -> DeadlockReport:
        """Visible traces after which some reachable configuration has no
        transition at all — the behaviour the paper's partial-correctness
        system cannot exclude (§4) — together with the exploration cost.

        On a budget trip the raised :class:`~repro.errors.BudgetExceeded`
        carries the deadlocks found so far in its checkpoint payload
        (``payload["deadlocks"]``), sound for every fully scanned level.
        """
        self._begin()
        frontier: Dict[Trace, FrozenSet[State]] = {}
        deadlocks: List[Trace] = []
        completed = -1
        try:
            initial = self.semantics.initial_state(term)
            frontier = {(): self.tau_closure(initial)}
            for level in range(depth + 1):
                governor = _governor.current()
                if governor is not None:
                    governor.check_deadline()
                    governor.record_progress(
                        phase="deadlock", completed_depth=completed
                    )
                next_frontier: Dict[Trace, Set[State]] = {}
                for trace, states in sorted(frontier.items()):
                    for state in states:
                        if not self.semantics.steps(state):
                            deadlocks.append(trace)
                            break
                for trace, states in frontier.items():
                    for state in states:
                        for event, successor in self._visible_steps(state):
                            next_frontier.setdefault(trace + (event,), set()).update(
                                self.tau_closure(successor)
                            )
                completed = level
                frontier = {t: frozenset(s) for t, s in next_frontier.items()}
                if not frontier:
                    break
        except BudgetExceeded as exc:
            found = tuple(sorted(deadlocks, key=len))
            raise exc.with_checkpoint(
                self._checkpoint(
                    "deadlock",
                    frontier,
                    set(frontier),
                    max(completed, 0),
                    exc,
                    extra={"deadlocks": found},
                )
            ) from None
        return DeadlockReport(
            deadlocks=tuple(sorted(deadlocks, key=len)),
            states_touched=self._states_touched,
            completed_depth=completed,
            complete=True,
        )

    def find_deadlocks(self, term: Process, depth: int) -> List[Trace]:
        """Shortest-first deadlock traces (see :meth:`deadlock_report`)."""
        return list(self.deadlock_report(term, depth).deadlocks)


def _payload(
    frontier: Dict[Trace, FrozenSet[State]],
    traces: Set[Trace],
    level: int,
) -> Dict[str, object]:
    return {
        "frontier": dict(frontier),
        "traces": frozenset(traces),
        "level": level,
    }


def _restore(
    checkpoint: Checkpoint,
) -> Tuple[Dict[Trace, FrozenSet[State]], Set[Trace], int]:
    payload = checkpoint.payload if isinstance(checkpoint.payload, dict) else {}
    frontier = payload.get("frontier")
    if not frontier:
        raise OperationalError(
            "checkpoint carries no explorer frontier to resume from"
        )
    traces = set(payload.get("traces") or {()})
    level = int(payload.get("level") or 0)
    return dict(frontier), traces, level


def explore_traces(
    term: Process,
    semantics: OperationalSemantics,
    depth: int,
    max_states: int = 200_000,
) -> FiniteClosure:
    """One-shot convenience wrapper around :class:`Explorer`."""
    return Explorer(semantics, max_states).visible_traces(term, depth)

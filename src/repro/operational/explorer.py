"""Exhaustive exploration of a network's visible behaviours.

The explorer performs a breadth-first search of the configuration space,
treating internal (τ) steps as invisible: it computes, level by level,
the set of *visible traces* of length ≤ depth together with the
configurations reachable under each trace.  The result is a
:class:`~repro.traces.prefix_closure.FiniteClosure` directly comparable
with the bounded denotational semantics — the consistency check at the
heart of the integration test suite.

τ-cycles (e.g. the protocol's unbounded NACK retransmissions) are finite
in configuration space and handled by the closure's visited set; a
``max_states`` budget guards against genuinely infinite-state networks.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, FrozenSet, List, Set, Tuple

from repro.errors import OperationalError
from repro.operational.state import State
from repro.operational.step import OperationalSemantics
from repro.process.ast import Process
from repro.traces.events import Event, Trace
from repro.traces.prefix_closure import FiniteClosure


class Explorer:
    """Breadth-first enumerator of visible traces."""

    def __init__(
        self,
        semantics: OperationalSemantics,
        max_states: int = 200_000,
    ) -> None:
        self.semantics = semantics
        self.max_states = max_states
        self._closure_memo: Dict[State, FrozenSet[State]] = {}
        self._states_touched = 0

    # -- τ-closure ---------------------------------------------------------

    def tau_closure(self, state: State) -> FrozenSet[State]:
        """All configurations reachable from ``state`` by internal steps."""
        if state in self._closure_memo:
            return self._closure_memo[state]
        seen: Set[State] = {state}
        queue: Deque[State] = deque([state])
        while queue:
            current = queue.popleft()
            self._touch()
            for step in self.semantics.steps(current):
                if step.is_internal and step.state not in seen:
                    seen.add(step.state)
                    queue.append(step.state)
        result = frozenset(seen)
        self._closure_memo[state] = result
        return result

    def _touch(self) -> None:
        self._states_touched += 1
        if self._states_touched > self.max_states:
            raise OperationalError(
                f"state budget of {self.max_states} exceeded during exploration; "
                f"the network may be infinite-state at this depth"
            )

    # -- trace enumeration -----------------------------------------------------

    def visible_traces(self, term: Process, depth: int) -> FiniteClosure:
        """Every visible trace of length ≤ ``depth``."""
        initial = self.semantics.initial_state(term)
        frontier: Dict[Trace, FrozenSet[State]] = {(): self.tau_closure(initial)}
        traces: Set[Trace] = {()}
        for _ in range(depth):
            next_frontier: Dict[Trace, Set[State]] = {}
            for trace, states in frontier.items():
                for state in states:
                    for event, successor in self._visible_steps(state):
                        extended = trace + (event,)
                        next_frontier.setdefault(extended, set()).update(
                            self.tau_closure(successor)
                        )
            if not next_frontier:
                break
            frontier = {t: frozenset(s) for t, s in next_frontier.items()}
            traces.update(frontier)
        return FiniteClosure(frozenset(traces), _trusted=True)

    def _visible_steps(self, state: State) -> List[Tuple[Event, State]]:
        result = []
        for step in self.semantics.steps(state):
            if not step.is_internal:
                assert step.event is not None
                result.append((step.event, step.state))
        return result

    # -- deadlock search ---------------------------------------------------

    def find_deadlocks(self, term: Process, depth: int) -> List[Trace]:
        """Visible traces after which some reachable configuration has no
        transition at all — the behaviour the paper's partial-correctness
        system cannot exclude (§4).  Returns shortest-first."""
        initial = self.semantics.initial_state(term)
        frontier: Dict[Trace, FrozenSet[State]] = {(): self.tau_closure(initial)}
        deadlocks: List[Trace] = []
        for _ in range(depth + 1):
            next_frontier: Dict[Trace, Set[State]] = {}
            for trace, states in sorted(frontier.items()):
                for state in states:
                    if not self.semantics.steps(state):
                        deadlocks.append(trace)
                        break
            for trace, states in frontier.items():
                for state in states:
                    for event, successor in self._visible_steps(state):
                        next_frontier.setdefault(trace + (event,), set()).update(
                            self.tau_closure(successor)
                        )
            frontier = {t: frozenset(s) for t, s in next_frontier.items()}
            if not frontier:
                break
        return sorted(deadlocks, key=len)


def explore_traces(
    term: Process,
    semantics: OperationalSemantics,
    depth: int,
    max_states: int = 200_000,
) -> FiniteClosure:
    """One-shot convenience wrapper around :class:`Explorer`."""
    return Explorer(semantics, max_states).visible_traces(term, depth)

"""Exhaustive exploration of a network's visible behaviours.

The explorer performs a breadth-first search of the configuration space,
treating internal (τ) steps as invisible: it computes, level by level,
the set of *visible traces* of length ≤ depth together with the
configurations reachable under each trace.  The result is a
:class:`~repro.traces.prefix_closure.FiniteClosure` directly comparable
with the bounded denotational semantics — the consistency check at the
heart of the integration test suite.

τ-cycles (e.g. the protocol's unbounded NACK retransmissions) are finite
in configuration space and handled by the closure's visited set; a
``max_states`` budget guards against genuinely infinite-state networks.

Budget accounting is **per call**: each public entry point resets the
touched-state counter, so one long-lived explorer serving many queries
does not leak budget from one query into the next (the τ-closure memo
*is* shared — it caches only completed closures, so reuse is sound).
Exhaustion raises :class:`~repro.errors.BudgetExceeded` carrying a
checkpoint whose payload holds the last completed BFS frontier; passing
that checkpoint back via ``resume=`` continues the search where it
stopped instead of re-exploring from the initial configuration.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, FrozenSet, List, NamedTuple, Optional, Set, Tuple

from repro.errors import BudgetExceeded, OperationalError
from repro.operational.state import State
from repro.operational.step import OperationalSemantics
from repro.process.ast import Process
from repro.runtime import faults as _faults
from repro.runtime import governor as _governor
from repro.runtime.governor import Checkpoint
from repro.traces.events import Event, Trace
from repro.traces.prefix_closure import FiniteClosure


class DeadlockReport(NamedTuple):
    """Outcome of a deadlock search, including its exploration cost."""

    deadlocks: Tuple[Trace, ...]  #: shortest-first traces reaching a stuck state
    states_touched: int  #: configurations visited by this search
    completed_depth: int  #: deepest BFS level fully scanned
    complete: bool = True  #: False when a budget cut the search short

    def __str__(self) -> str:
        status = "complete" if self.complete else "PARTIAL"
        return (
            f"{len(self.deadlocks)} deadlock(s) to depth {self.completed_depth} "
            f"({status}, {self.states_touched} states touched)"
        )


class Explorer:
    """Breadth-first enumerator of visible traces."""

    def __init__(
        self,
        semantics: OperationalSemantics,
        max_states: int = 200_000,
    ) -> None:
        self.semantics = semantics
        self.max_states = max_states
        self._closure_memo: Dict[State, FrozenSet[State]] = {}
        self._states_touched = 0

    def _begin(self) -> None:
        """Reset per-call accounting (the τ-closure memo persists: it holds
        only completed closures, so reuse across calls is sound)."""
        self._states_touched = 0

    @property
    def states_touched(self) -> int:
        """Configurations visited by the most recent query."""
        return self._states_touched

    # -- τ-closure ---------------------------------------------------------

    def tau_closure(self, state: State) -> FrozenSet[State]:
        """All configurations reachable from ``state`` by internal steps."""
        if state in self._closure_memo:
            return self._closure_memo[state]
        seen: Set[State] = {state}
        queue: Deque[State] = deque([state])
        while queue:
            current = queue.popleft()
            self._touch()
            for step in self.semantics.steps(current):
                if step.is_internal and step.state not in seen:
                    seen.add(step.state)
                    queue.append(step.state)
        # Inserted only once fully computed — an abort above leaves the
        # memo consistent (exception safety).
        result = frozenset(seen)
        self._closure_memo[state] = result
        return result

    def _touch(self) -> None:
        _faults.maybe_fail("explorer.step")
        _governor.note_state()
        self._states_touched += 1
        if self._states_touched > self.max_states:
            raise BudgetExceeded("explorer-state", self.max_states)

    # -- trace enumeration -----------------------------------------------------

    def visible_traces(
        self,
        term: Process,
        depth: int,
        resume: Optional[Checkpoint] = None,
    ) -> FiniteClosure:
        """Every visible trace of length ≤ ``depth``.

        ``resume`` accepts the checkpoint of a previous budget trip on the
        same term: the search restarts from the saved frontier, so work
        already paid for is not repeated.  A budget trip raises
        :class:`~repro.errors.BudgetExceeded` whose checkpoint holds every
        trace of length ≤ ``completed_depth`` — a sound under-approximation
        — plus the frontier needed to resume.
        """
        self._begin()
        frontier: Dict[Trace, FrozenSet[State]] = {}
        traces: Set[Trace] = set()
        level = 0
        try:
            if resume is not None:
                frontier, traces, level = _restore(resume)
            else:
                initial = self.semantics.initial_state(term)
                frontier = {(): self.tau_closure(initial)}
                traces = {()}
            for level in range(level, depth):
                governor = _governor.current()
                if governor is not None:
                    governor.check_deadline()
                    governor.record_progress(
                        phase="explore",
                        completed_depth=level,
                        traces_verified=len(traces),
                        payload=_payload(frontier, traces, level),
                    )
                next_frontier: Dict[Trace, Set[State]] = {}
                for trace, states in frontier.items():
                    for state in states:
                        for event, successor in self._visible_steps(state):
                            extended = trace + (event,)
                            next_frontier.setdefault(extended, set()).update(
                                self.tau_closure(successor)
                            )
                if not next_frontier:
                    break
                frontier = {t: frozenset(s) for t, s in next_frontier.items()}
                traces.update(frontier)
        except BudgetExceeded as exc:
            raise exc.with_checkpoint(
                self._checkpoint("explore", frontier, traces, level, exc)
            ) from None
        return FiniteClosure(frozenset(traces), _trusted=True)

    def _visible_steps(self, state: State) -> List[Tuple[Event, State]]:
        result = []
        for step in self.semantics.steps(state):
            if not step.is_internal:
                assert step.event is not None
                result.append((step.event, step.state))
        return result

    def _checkpoint(
        self,
        phase: str,
        frontier: Dict[Trace, FrozenSet[State]],
        traces: Set[Trace],
        level: int,
        exc: BudgetExceeded,
        extra: Optional[Dict[str, object]] = None,
    ) -> Checkpoint:
        inner = exc.checkpoint
        payload = _payload(frontier, traces, level)
        if extra:
            payload.update(extra)
        return Checkpoint(
            phase=phase,
            completed_depth=level,
            traces_verified=len(traces),
            states_explored=self._states_touched,
            nodes_interned=inner.nodes_interned if inner is not None else 0,
            elapsed=inner.elapsed if inner is not None else 0.0,
            payload=payload,
        )

    # -- deadlock search ---------------------------------------------------

    def deadlock_report(self, term: Process, depth: int) -> DeadlockReport:
        """Visible traces after which some reachable configuration has no
        transition at all — the behaviour the paper's partial-correctness
        system cannot exclude (§4) — together with the exploration cost.

        On a budget trip the raised :class:`~repro.errors.BudgetExceeded`
        carries the deadlocks found so far in its checkpoint payload
        (``payload["deadlocks"]``), sound for every fully scanned level.
        """
        self._begin()
        frontier: Dict[Trace, FrozenSet[State]] = {}
        deadlocks: List[Trace] = []
        completed = -1
        try:
            initial = self.semantics.initial_state(term)
            frontier = {(): self.tau_closure(initial)}
            for level in range(depth + 1):
                governor = _governor.current()
                if governor is not None:
                    governor.check_deadline()
                    governor.record_progress(
                        phase="deadlock", completed_depth=completed
                    )
                next_frontier: Dict[Trace, Set[State]] = {}
                for trace, states in sorted(frontier.items()):
                    for state in states:
                        if not self.semantics.steps(state):
                            deadlocks.append(trace)
                            break
                for trace, states in frontier.items():
                    for state in states:
                        for event, successor in self._visible_steps(state):
                            next_frontier.setdefault(trace + (event,), set()).update(
                                self.tau_closure(successor)
                            )
                completed = level
                frontier = {t: frozenset(s) for t, s in next_frontier.items()}
                if not frontier:
                    break
        except BudgetExceeded as exc:
            found = tuple(sorted(deadlocks, key=len))
            raise exc.with_checkpoint(
                self._checkpoint(
                    "deadlock",
                    frontier,
                    set(frontier),
                    max(completed, 0),
                    exc,
                    extra={"deadlocks": found},
                )
            ) from None
        return DeadlockReport(
            deadlocks=tuple(sorted(deadlocks, key=len)),
            states_touched=self._states_touched,
            completed_depth=completed,
            complete=True,
        )

    def find_deadlocks(self, term: Process, depth: int) -> List[Trace]:
        """Shortest-first deadlock traces (see :meth:`deadlock_report`)."""
        return list(self.deadlock_report(term, depth).deadlocks)


def _payload(
    frontier: Dict[Trace, FrozenSet[State]],
    traces: Set[Trace],
    level: int,
) -> Dict[str, object]:
    return {
        "frontier": dict(frontier),
        "traces": frozenset(traces),
        "level": level,
    }


def _restore(
    checkpoint: Checkpoint,
) -> Tuple[Dict[Trace, FrozenSet[State]], Set[Trace], int]:
    payload = checkpoint.payload if isinstance(checkpoint.payload, dict) else {}
    frontier = payload.get("frontier")
    if not frontier:
        raise OperationalError(
            "checkpoint carries no explorer frontier to resume from"
        )
    traces = set(payload.get("traces") or {()})
    level = int(payload.get("level") or 0)
    return dict(frontier), traces, level


def explore_traces(
    term: Process,
    semantics: OperationalSemantics,
    depth: int,
    max_states: int = 200_000,
) -> FiniteClosure:
    """One-shot convenience wrapper around :class:`Explorer`."""
    return Explorer(semantics, max_states).visible_traces(term, depth)

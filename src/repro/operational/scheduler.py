"""Single-run simulation of a process network under a scheduling policy.

Where the explorer enumerates *all* behaviours, a scheduler resolves the
non-determinism one way and produces a single execution — the library's
stand-in for actually deploying the network on real processors.  Runs
record both visible communications and internal (τ) steps, and report
whether the network ended in deadlock (no transition available), the
phenomenon the paper's proof system famously cannot rule out (§4).
"""

from __future__ import annotations

import random
from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.operational.state import State
from repro.operational.step import OperationalSemantics, Step
from repro.process.ast import Process
from repro.traces.events import Event, Trace


class Scheduler:
    """Strategy interface: pick one of the available steps."""

    def choose(self, steps: Sequence[Step]) -> Step:
        raise NotImplementedError


class RandomScheduler(Scheduler):
    """Uniformly random choice; seedable for reproducibility."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed)

    def choose(self, steps: Sequence[Step]) -> Step:
        return steps[self._rng.randrange(len(steps))]


class DeterministicScheduler(Scheduler):
    """Always the first step in the deterministic order — useful for
    reproducible smoke runs and as a worst-case fairness example."""

    def choose(self, steps: Sequence[Step]) -> Step:
        return steps[0]


class SimulationRun(NamedTuple):
    """The outcome of one simulated execution."""

    #: Visible communications, in order.
    trace: Trace
    #: Every step taken, with ``None`` marking internal steps.
    full_history: Tuple[Optional[Event], ...]
    #: The final configuration.
    final_state: State
    #: True when the run stopped because no transition was available.
    deadlocked: bool

    @property
    def internal_steps(self) -> int:
        return sum(1 for event in self.full_history if event is None)


def simulate(
    term: Process,
    semantics: OperationalSemantics,
    max_steps: int = 100,
    scheduler: Optional[Scheduler] = None,
) -> SimulationRun:
    """Run ``term`` for up to ``max_steps`` transitions.

    >>> from repro.process import parse_definitions, Name
    >>> defs = parse_definitions("copier = input?x:NAT -> wire!x -> copier")
    >>> sem = OperationalSemantics(defs)
    >>> run = simulate(Name("copier"), sem, max_steps=4,
    ...                scheduler=DeterministicScheduler())
    >>> [repr(e) for e in run.trace]
    ['input.0', 'wire.0', 'input.0', 'wire.0']
    """
    if scheduler is None:
        scheduler = RandomScheduler(seed=0)
    state = semantics.initial_state(term)
    history: List[Optional[Event]] = []
    visible: List[Event] = []
    deadlocked = False
    for _ in range(max_steps):
        steps = semantics.steps(state)
        if not steps:
            deadlocked = True
            break
        step = scheduler.choose(steps)
        history.append(step.event)
        if step.event is not None:
            visible.append(step.event)
        state = step.state
    return SimulationRun(tuple(visible), tuple(history), state, deadlocked)

"""Single-run simulation of a process network under a scheduling policy.

Where the explorer enumerates *all* behaviours, a scheduler resolves the
non-determinism one way and produces a single execution — the library's
stand-in for actually deploying the network on real processors.  Runs
record both visible communications and internal (τ) steps, and report
whether the network ended in deadlock (no transition available), the
phenomenon the paper's proof system famously cannot rule out (§4).
"""

from __future__ import annotations

import random
from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.operational.state import State
from repro.operational.step import OperationalSemantics, Step
from repro.process.ast import Process
from repro.traces.events import Event, Trace


class Scheduler:
    """Strategy interface: pick one of the available steps."""

    def choose(self, steps: Sequence[Step]) -> Step:
        raise NotImplementedError


class RandomScheduler(Scheduler):
    """Uniformly random choice; seedable for reproducibility."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed)

    def choose(self, steps: Sequence[Step]) -> Step:
        return steps[self._rng.randrange(len(steps))]


class DeterministicScheduler(Scheduler):
    """Always the first step in the deterministic order — useful for
    reproducible smoke runs and as a worst-case fairness example."""

    def choose(self, steps: Sequence[Step]) -> Step:
        return steps[0]


class ReplayScheduler(Scheduler):
    """Follow a recorded visible trace — e.g. one loaded from a persisted
    explorer frontier or a counterexample — resolving τ-steps greedily.

    At each choice point: if an available visible step carries the next
    expected event, take it; otherwise take the first internal step (τ
    never consumes the script).  A visible step that does *not* match the
    script raises, which is how the differential harness detects an
    execution diverging from a trace the explorer claims reachable.
    """

    def __init__(self, trace: Trace) -> None:
        self._script: List[Event] = list(trace)
        self._position = 0

    @property
    def exhausted(self) -> bool:
        """True once every scripted event has been replayed."""
        return self._position >= len(self._script)

    def choose(self, steps: Sequence[Step]) -> Step:
        expected = (
            self._script[self._position] if not self.exhausted else None
        )
        for step in steps:
            if expected is not None and step.event == expected:
                self._position += 1
                return step
        for step in steps:
            if step.is_internal:
                return step
        raise ValueError(
            f"replay diverged: expected {expected!r}, available "
            f"{[step.event for step in steps]!r}"
        )


class SimulationRun(NamedTuple):
    """The outcome of one simulated execution."""

    #: Visible communications, in order.
    trace: Trace
    #: Every step taken, with ``None`` marking internal steps.
    full_history: Tuple[Optional[Event], ...]
    #: The final configuration.
    final_state: State
    #: True when the run stopped because no transition was available.
    deadlocked: bool

    @property
    def internal_steps(self) -> int:
        return sum(1 for event in self.full_history if event is None)


def simulate(
    term: Process,
    semantics: OperationalSemantics,
    max_steps: int = 100,
    scheduler: Optional[Scheduler] = None,
) -> SimulationRun:
    """Run ``term`` for up to ``max_steps`` transitions.

    >>> from repro.process import parse_definitions, Name
    >>> defs = parse_definitions("copier = input?x:NAT -> wire!x -> copier")
    >>> sem = OperationalSemantics(defs)
    >>> run = simulate(Name("copier"), sem, max_steps=4,
    ...                scheduler=DeterministicScheduler())
    >>> [repr(e) for e in run.trace]
    ['input.0', 'wire.0', 'input.0', 'wire.0']
    """
    if scheduler is None:
        scheduler = RandomScheduler(seed=0)
    state = semantics.initial_state(term)
    history: List[Optional[Event]] = []
    visible: List[Event] = []
    deadlocked = False
    for _ in range(max_steps):
        steps = semantics.steps(state)
        if not steps:
            deadlocked = True
            break
        step = scheduler.choose(steps)
        history.append(step.event)
        if step.event is not None:
            visible.append(step.event)
        state = step.state
    return SimulationRun(tuple(visible), tuple(history), state, deadlocked)

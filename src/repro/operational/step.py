"""The transition relation of the operational semantics.

A configuration offers three kinds of transition:

* :class:`Comm` — a concrete communication ``c.m`` (an output, or an input
  already resolved by synchronisation), leading to a successor state;
* :class:`Offer` — a *symbolic input*: the component is ready to accept
  **any** value of a set ``M`` on channel ``c``.  Keeping inputs symbolic
  is what makes synchronisation *receptive*: when a partner outputs
  ``c.v``, the offer matches iff ``v ∈ M`` — exact membership, not the
  bounded sample — so computed values (the multiplier's ``v[i]*x + y``)
  synchronise correctly;
* :class:`Tau` — an internal step: a communication on a channel concealed
  by ``chan``, which "occurs independently and automatically whenever the
  processes connected by the channel are all ready for it" (§1.2 item 8).

Synchronisation on a shared channel pairs an output with an input offer
(the paper: "one of them determines the value transmitted … and the other
is prepared to accept any value"), two equal outputs (both determine the
same value), or two input offers (both accept: the value ranges over the
*intersection* of their sets — the paper's simultaneous-input note).

Only at the top level — the network's interface with its environment —
are offers expanded into concrete events, sampled with the configured
bound; :class:`repro.operational.explorer.Explorer` does that.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional, Tuple, Union

from repro.errors import OperationalError
from repro.operational.state import ChanState, LeafState, ParallelState, State, lift
from repro.process.ast import (
    ArrayRef,
    Chan,
    Choice,
    Input,
    Name,
    Output,
    Parallel,
    Process,
    Stop,
)
from repro.process.definitions import DefinitionList, NO_DEFINITIONS
from repro.traces.events import Channel, Event
from repro.values.domains import Domain, IntersectionDomain
from repro.values.environment import Environment
from repro.values.expressions import Const


class Comm(NamedTuple):
    """A concrete communication transition."""

    event: Event
    state: State


class Offer(NamedTuple):
    """A symbolic input: accepts any ``v ∈ domain`` on ``channel``;
    ``resume(v)`` is the successor state."""

    channel: Channel
    domain: Domain
    resume: Callable[[object], State]


class Tau(NamedTuple):
    """An internal (concealed) step."""

    state: State


Transition = Union[Comm, Offer, Tau]


class Step(NamedTuple):
    """A resolved transition as seen by schedulers and explorers:
    ``event`` is ``None`` for internal steps."""

    event: Optional[Event]
    state: State

    @property
    def is_internal(self) -> bool:
        return self.event is None


class OperationalSemantics:
    """The transition relation, parameterised like the denotational
    semantics: a definition list, a global environment (set names, host
    functions), and a sample bound used only when expanding *top-level*
    input offers into concrete events."""

    def __init__(
        self,
        definitions: DefinitionList = NO_DEFINITIONS,
        env: Optional[Environment] = None,
        sample: int = 3,
    ) -> None:
        self.definitions = definitions
        self.env = env if env is not None else Environment()
        self.sample = sample

    # -- entry points ---------------------------------------------------------

    def initial_state(self, term: Process) -> State:
        """The starting configuration for a process term."""
        return lift(term, self.definitions, self.env)

    def transitions(self, state: State) -> List[Transition]:
        """All raw transitions (offers kept symbolic)."""
        if isinstance(state, LeafState):
            return self._term_transitions(state.term)
        if isinstance(state, ParallelState):
            return self._parallel_transitions(state)
        if isinstance(state, ChanState):
            return self._chan_transitions(state)
        raise OperationalError(f"unknown state {state!r}")

    def steps(self, state: State) -> Tuple[Step, ...]:
        """Transitions with top-level offers expanded to sampled events,
        deterministically ordered.  This is the network-as-a-whole view:
        the environment supplies input values from the sample."""
        resolved: List[Step] = []
        for transition in self.transitions(state):
            if isinstance(transition, Comm):
                resolved.append(Step(transition.event, transition.state))
            elif isinstance(transition, Tau):
                resolved.append(Step(None, transition.state))
            else:
                for value in transition.domain.enumerate(self.sample):
                    resolved.append(
                        Step(
                            Event(transition.channel, value),
                            transition.resume(value),
                        )
                    )
        return tuple(
            sorted(
                resolved,
                key=lambda s: ("" if s.event is None else repr(s.event), repr(s.state)),
            )
        )

    # -- sequential terms ------------------------------------------------------

    def _term_transitions(self, term: Process, _budget: int = 1000) -> List[Transition]:
        if _budget <= 0:
            raise OperationalError("unfolding limit exceeded while stepping")
        if isinstance(term, Stop):
            return []
        if isinstance(term, Output):
            channel = term.channel.evaluate(self.env)
            message = term.message.evaluate(self.env)
            return [Comm(Event(channel, message), self._resume(term.continuation))]
        if isinstance(term, Input):
            channel = term.channel.evaluate(self.env)
            domain = term.domain.evaluate(self.env)

            def resume(value: object, term: Input = term) -> State:
                continuation = term.continuation.substitute(term.variable, Const(value))
                return self._resume(continuation)

            return [Offer(channel, domain, resume)]
        if isinstance(term, Choice):
            return self._term_transitions(term.left, _budget - 1) + self._term_transitions(
                term.right, _budget - 1
            )
        if isinstance(term, Name):
            definition = self.definitions.lookup_process(term.name)
            return self._term_transitions(definition.body, _budget - 1)
        if isinstance(term, ArrayRef):
            definition = self.definitions.lookup_array(term.name)
            value = term.index.evaluate(self.env)
            domain = definition.domain.evaluate(self.env)
            if value not in domain:
                raise OperationalError(
                    f"subscript {value!r} of {term.name!r} outside its domain"
                )
            return self._term_transitions(definition.instantiate(Const(value)), _budget - 1)
        if isinstance(term, (Parallel, Chan)):
            # A network appearing under a prefix: build its configuration.
            return self.transitions(lift(term, self.definitions, self.env))
        raise OperationalError(f"unknown process term {term!r}")

    def _resume(self, continuation: Process) -> State:
        return lift(continuation, self.definitions, self.env)

    # -- parallel composition ---------------------------------------------------

    def _parallel_transitions(self, state: ParallelState) -> List[Transition]:
        shared = state.shared
        left = self.transitions(state.left)
        right = self.transitions(state.right)
        result: List[Transition] = []

        # Independent moves: τ always; communications and offers on
        # channels outside the shared set.
        for transition in left:
            lifted = self._lift_left(transition, state, shared)
            if lifted is not None:
                result.append(lifted)
        for transition in right:
            lifted = self._lift_right(transition, state, shared)
            if lifted is not None:
                result.append(lifted)

        # Synchronised moves on shared channels.
        left_shared = [t for t in left if self._on_shared(t, shared)]
        right_shared = [t for t in right if self._on_shared(t, shared)]
        for lt in left_shared:
            for rt in right_shared:
                result.extend(self._synchronise(lt, rt, state))
        return result

    @staticmethod
    def _on_shared(transition: Transition, shared) -> bool:
        if isinstance(transition, Comm):
            return transition.event.channel in shared
        if isinstance(transition, Offer):
            return transition.channel in shared
        return False

    def _lift_left(
        self, transition: Transition, state: ParallelState, shared
    ) -> Optional[Transition]:
        if isinstance(transition, Tau):
            return Tau(state.with_children(transition.state, state.right))
        if isinstance(transition, Comm):
            if transition.event.channel in shared:
                return None
            return Comm(
                transition.event, state.with_children(transition.state, state.right)
            )
        if transition.channel in shared:
            return None
        resume = transition.resume
        return Offer(
            transition.channel,
            transition.domain,
            lambda v: state.with_children(resume(v), state.right),
        )

    def _lift_right(
        self, transition: Transition, state: ParallelState, shared
    ) -> Optional[Transition]:
        if isinstance(transition, Tau):
            return Tau(state.with_children(state.left, transition.state))
        if isinstance(transition, Comm):
            if transition.event.channel in shared:
                return None
            return Comm(
                transition.event, state.with_children(state.left, transition.state)
            )
        if transition.channel in shared:
            return None
        resume = transition.resume
        return Offer(
            transition.channel,
            transition.domain,
            lambda v: state.with_children(state.left, resume(v)),
        )

    def _synchronise(
        self, lt: Transition, rt: Transition, state: ParallelState
    ) -> List[Transition]:
        """Pairings of one left and one right shared-channel transition."""
        if isinstance(lt, Comm) and isinstance(rt, Comm):
            # Output/output: only if they determine the same communication.
            if lt.event == rt.event:
                return [Comm(lt.event, state.with_children(lt.state, rt.state))]
            return []
        if isinstance(lt, Comm) and isinstance(rt, Offer):
            if lt.event.channel == rt.channel and lt.event.message in rt.domain:
                return [
                    Comm(
                        lt.event,
                        state.with_children(lt.state, rt.resume(lt.event.message)),
                    )
                ]
            return []
        if isinstance(lt, Offer) and isinstance(rt, Comm):
            if rt.event.channel == lt.channel and rt.event.message in lt.domain:
                return [
                    Comm(
                        rt.event,
                        state.with_children(lt.resume(rt.event.message), rt.state),
                    )
                ]
            return []
        assert isinstance(lt, Offer) and isinstance(rt, Offer)
        # Input/input: both accept; the value ranges over the intersection
        # (the paper's simultaneous-input case).
        if lt.channel != rt.channel:
            return []
        l_resume, r_resume = lt.resume, rt.resume
        return [
            Offer(
                lt.channel,
                IntersectionDomain((lt.domain, rt.domain)),
                lambda v: state.with_children(l_resume(v), r_resume(v)),
            )
        ]

    # -- hiding -----------------------------------------------------------------

    def _chan_transitions(self, state: ChanState) -> List[Transition]:
        result: List[Transition] = []
        for transition in self.transitions(state.body):
            if isinstance(transition, Tau):
                result.append(Tau(state.with_body(transition.state)))
            elif isinstance(transition, Comm):
                if transition.event.channel in state.hidden:
                    result.append(Tau(state.with_body(transition.state)))
                else:
                    result.append(
                        Comm(transition.event, state.with_body(transition.state))
                    )
            else:
                if transition.channel in state.hidden:
                    # An input offer on a concealed channel fires silently
                    # with a non-determinate value (§1.2 item 8: concealed
                    # communications "occur automatically … if more than
                    # one is possible the choice is non-determinate"), so
                    # ⟦chan C; P⟧ = ⟦P⟧\C keeps those traces.  Values are
                    # drawn from the bounded sample, mirroring the
                    # denotational enumeration.
                    for value in transition.domain.enumerate(self.sample):
                        result.append(
                            Tau(state.with_body(transition.resume(value)))
                        )
                    continue
                result.append(
                    Offer(
                        transition.channel,
                        transition.domain,
                        # bind per-iteration: lambdas capture variables late
                        lambda v, resume=transition.resume: state.with_body(
                            resume(v)
                        ),
                    )
                )
        return result

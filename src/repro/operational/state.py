"""Immutable network configurations for the operational semantics.

A configuration mirrors the *network structure* of a process expression —
the paper's box-and-wire diagrams — while sequential behaviour stays as a
term:

* :class:`LeafState` — a sequential component, represented by its closed
  process term (input bindings are performed by substitution, so states
  need no environments and hash structurally);
* :class:`ParallelState` — two sub-networks with their *static* alphabets
  ``X`` and ``Y``.  Alphabets are computed once when the configuration is
  built (the paper's ‖ is annotated with fixed channel sets; re-inferring
  them as components evolve would wrongly let a partner's channel fall out
  of the synchronisation set mid-run);
* :class:`ChanState` — a sub-network with a set of concealed channels.

:func:`lift` converts a process expression whose root is ``‖``/``chan``
into the corresponding configuration, unfolding name references as needed.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.errors import OperationalError
from repro.process.analysis import concrete_channels
from repro.process.ast import ArrayRef, Chan, Name, Parallel, Process
from repro.process.definitions import DefinitionList
from repro.traces.events import Channel
from repro.values.environment import Environment


class State:
    """Abstract immutable configuration."""

    __slots__ = ()

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))  # type: ignore[attr-defined]

    def _key(self) -> Tuple[object, ...]:
        raise NotImplementedError


class LeafState(State):
    """A sequential component: a closed process term."""

    __slots__ = ("term",)

    def __init__(self, term: Process) -> None:
        self.term = term

    def _key(self) -> Tuple[object, ...]:
        return (self.term,)

    def __repr__(self) -> str:
        return f"⟪{self.term!r}⟫"


class ParallelState(State):
    """Two sub-networks composed with fixed alphabets ``x`` and ``y``."""

    __slots__ = ("left", "right", "x", "y")

    def __init__(
        self,
        left: State,
        right: State,
        x: FrozenSet[Channel],
        y: FrozenSet[Channel],
    ) -> None:
        self.left = left
        self.right = right
        self.x = frozenset(x)
        self.y = frozenset(y)

    @property
    def shared(self) -> FrozenSet[Channel]:
        return self.x & self.y

    def with_children(self, left: State, right: State) -> "ParallelState":
        return ParallelState(left, right, self.x, self.y)

    def _key(self) -> Tuple[object, ...]:
        return (self.left, self.right, self.x, self.y)

    def __repr__(self) -> str:
        return f"({self.left!r} ‖ {self.right!r})"


class ChanState(State):
    """A sub-network whose communications on ``hidden`` are concealed."""

    __slots__ = ("hidden", "body")

    def __init__(self, hidden: FrozenSet[Channel], body: State) -> None:
        self.hidden = frozenset(hidden)
        self.body = body

    def with_body(self, body: State) -> "ChanState":
        return ChanState(self.hidden, body)

    def _key(self) -> Tuple[object, ...]:
        return (self.hidden, self.body)

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in sorted(self.hidden))
        return f"(chan {inner}; {self.body!r})"


# -- serialization ----------------------------------------------------------
#
# Configurations ride snapshot blobs (persisted explorer frontiers), so
# they register with :mod:`repro.serialize` like every other AST.  The
# registration lives here rather than in ``serialize.py`` because the
# operational package imports the snapshot layer, which imports
# ``serialize`` — registering from the other side would close an import
# cycle.  Channel sets encode as *sorted* lists so equal states produce
# byte-identical payloads.

from repro import serialize as _serialize

_serialize._register(
    LeafState,
    lambda n: _serialize._k(n, term=_serialize.encode(n.term)),
    lambda d: LeafState(_serialize.decode(d["term"])),
)
_serialize._register(
    ParallelState,
    lambda n: _serialize._k(
        n,
        left=_serialize.encode(n.left),
        right=_serialize.encode(n.right),
        x=[_serialize.encode(c) for c in sorted(n.x)],
        y=[_serialize.encode(c) for c in sorted(n.y)],
    ),
    lambda d: ParallelState(
        _serialize.decode(d["left"]),
        _serialize.decode(d["right"]),
        frozenset(_serialize.decode(c) for c in d["x"]),
        frozenset(_serialize.decode(c) for c in d["y"]),
    ),
)
_serialize._register(
    ChanState,
    lambda n: _serialize._k(
        n,
        hidden=[_serialize.encode(c) for c in sorted(n.hidden)],
        body=_serialize.encode(n.body),
    ),
    lambda d: ChanState(
        frozenset(_serialize.decode(c) for c in d["hidden"]),
        _serialize.decode(d["body"]),
    ),
)


def lift(
    term: Process,
    definitions: DefinitionList,
    env: Environment,
    _unfold_budget: int = 1000,
) -> State:
    """Build the configuration for a process term.

    Network operators at the root become structural nodes (with alphabets
    fixed *now*); name references whose bodies are networks are unfolded.
    Sequential roots stay as :class:`LeafState`.
    """
    if _unfold_budget <= 0:
        raise OperationalError(
            "unfolding limit exceeded while building a configuration; "
            "is a definition an unguarded alias cycle?"
        )
    if isinstance(term, Parallel):
        if term.left_channels is not None:
            x = term.left_channels.evaluate(env)
        else:
            x = concrete_channels(term.left, definitions, env)
        if term.right_channels is not None:
            y = term.right_channels.evaluate(env)
        else:
            y = concrete_channels(term.right, definitions, env)
        return ParallelState(
            lift(term.left, definitions, env, _unfold_budget - 1),
            lift(term.right, definitions, env, _unfold_budget - 1),
            x,
            y,
        )
    if isinstance(term, Chan):
        hidden = term.channels.evaluate(env)
        return ChanState(hidden, lift(term.body, definitions, env, _unfold_budget - 1))
    if isinstance(term, Name):
        definition = definitions.lookup(term.name)
        if definition.is_array:
            raise OperationalError(f"{term.name!r} is an array, used without subscript")
        body = definition.body
        if isinstance(body, (Parallel, Chan, Name, ArrayRef)):
            return lift(body, definitions, env, _unfold_budget - 1)
        return LeafState(term)
    if isinstance(term, ArrayRef):
        definition = definitions.lookup_array(term.name)
        from repro.values.expressions import Const

        value = term.index.evaluate(env)
        body = definition.instantiate(Const(value))
        if isinstance(body, (Parallel, Chan, Name, ArrayRef)):
            return lift(body, definitions, env, _unfold_budget - 1)
        return LeafState(term)
    return LeafState(term)

"""Judgment forms of the proof system.

* :class:`Pure` — a predicate with no process: channel names universally
  quantified over all histories, variables over all values (the premises
  written above the line as plain formulas, e.g. ``R_<>`` or ``R ⇒ S``);
* :class:`Sat` — ``P sat R`` (§2);
* :class:`ForAllSat` — ``∀x∈M. P sat R``, the quantified judgment of the
  input and recursion rules.

Judgments are immutable values; proofs and assumption sets treat them
structurally.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.assertions.ast import Formula
from repro.process.ast import Process
from repro.values.expressions import SetExpr


class Judgment:
    """Abstract judgment."""

    __slots__ = ()

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))  # type: ignore[attr-defined]

    def _key(self) -> Tuple[object, ...]:
        raise NotImplementedError


class Pure(Judgment):
    """A process-free predicate, valid for all histories and values."""

    __slots__ = ("formula",)

    def __init__(self, formula: Formula) -> None:
        self.formula = formula

    def _key(self) -> Tuple[object, ...]:
        return (self.formula,)

    def __repr__(self) -> str:
        return f"⊨ {self.formula!r}"


class Sat(Judgment):
    """``P sat R``: R is true before and after every communication of P."""

    __slots__ = ("process", "formula")

    def __init__(self, process: Process, formula: Formula) -> None:
        self.process = process
        self.formula = formula

    def _key(self) -> Tuple[object, ...]:
        return (self.process, self.formula)

    def __repr__(self) -> str:
        return f"{self.process!r} sat {self.formula!r}"


class ForAllSat(Judgment):
    """``∀variable ∈ domain. inner`` where ``inner`` is a :class:`Sat`
    (or a nested :class:`ForAllSat`)."""

    __slots__ = ("variable", "domain", "inner")

    def __init__(self, variable: str, domain: SetExpr, inner: Judgment) -> None:
        if not isinstance(inner, (Sat, ForAllSat)):
            raise TypeError("ForAllSat quantifies a Sat judgment")
        self.variable = variable
        self.domain = domain
        self.inner = inner

    def _key(self) -> Tuple[object, ...]:
        return (self.variable, self.domain, self.inner)

    def __repr__(self) -> str:
        return f"∀{self.variable}∈{self.domain!r}. {self.inner!r}"


SatLike = Union[Sat, ForAllSat]

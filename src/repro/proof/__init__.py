"""The partial-correctness proof system (paper §2.1).

* :mod:`repro.proof.judgments` — the judgment forms: pure predicates,
  ``P sat R``, and ``∀x∈M. P sat R``;
* :mod:`repro.proof.proof`     — proofs as checkable trees of rule
  applications;
* :mod:`repro.proof.oracle`    — semantic discharge of pure premises
  (the "(def f)"-style steps of Table 1);
* :mod:`repro.proof.rules`     — the ten inference rules, plus the
  structural rules (∀-introduction/elimination, assumption);
* :mod:`repro.proof.checker`   — re-validates every node of a proof;
* :mod:`repro.proof.tactics`   — backward-chaining automation that builds
  the paper's proofs from per-process invariant annotations.
"""

from repro.proof.checker import CheckReport, ProofChecker
from repro.proof.judgments import ForAllSat, Judgment, Pure, Sat
from repro.proof.oracle import Oracle, OracleConfig
from repro.proof.proof import ProofNode
from repro.proof import rules
from repro.proof.rules import (
    alternative,
    assume,
    chan_rule,
    conjunction,
    consequence,
    emptiness,
    forall_sat_elim,
    generalize,
    input_rule,
    oracle_leaf,
    output_rule,
    parallelism,
    recursion,
    triviality,
)
from repro.proof.table import proof_table, render_table
from repro.proof.tactics import SatProver

__all__ = [
    "Judgment",
    "Pure",
    "Sat",
    "ForAllSat",
    "ProofNode",
    "Oracle",
    "OracleConfig",
    "ProofChecker",
    "CheckReport",
    "SatProver",
    "rules",
    "assume",
    "oracle_leaf",
    "triviality",
    "consequence",
    "conjunction",
    "emptiness",
    "output_rule",
    "input_rule",
    "alternative",
    "parallelism",
    "chan_rule",
    "recursion",
    "generalize",
    "forall_sat_elim",
    "proof_table",
    "render_table",
]

"""Proofs as data: immutable trees of rule applications.

A :class:`ProofNode` records the rule name, the concluded judgment, the
sub-proofs it rests on, and rule-specific parameters (e.g. which variable
the input rule generalised).  Nothing about a node is trusted until
:class:`repro.proof.checker.ProofChecker` has re-validated it — building
proofs through :mod:`repro.proof.rules` checks eagerly, but a proof
deserialised or constructed by hand goes through the same validation.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Tuple

from repro.proof.judgments import Judgment


class ProofNode:
    """One rule application (or leaf) in a proof tree."""

    __slots__ = ("rule", "conclusion", "premises", "params")

    def __init__(
        self,
        rule: str,
        conclusion: Judgment,
        premises: Tuple["ProofNode", ...] = (),
        params: Mapping[str, Any] = (),
    ) -> None:
        self.rule = rule
        self.conclusion = conclusion
        self.premises = tuple(premises)
        self.params = dict(params) if params else {}

    # -- inspection ------------------------------------------------------

    def size(self) -> int:
        """Number of nodes in the tree."""
        return 1 + sum(p.size() for p in self.premises)

    def depth(self) -> int:
        """Height of the tree."""
        return 1 + max((p.depth() for p in self.premises), default=0)

    def walk(self) -> Iterator["ProofNode"]:
        """All nodes, root first."""
        yield self
        for premise in self.premises:
            yield from premise.walk()

    def rules_used(self) -> Mapping[str, int]:
        """Histogram of rule names across the tree."""
        counts: dict = {}
        for node in self.walk():
            counts[node.rule] = counts.get(node.rule, 0) + 1
        return counts

    def oracle_obligations(self) -> Tuple["ProofNode", ...]:
        """The semantically discharged leaves — the proof's trust boundary."""
        return tuple(node for node in self.walk() if node.rule == "oracle")

    def pretty(self, indent: int = 0) -> str:
        """An indented rendering of the whole derivation."""
        pad = "  " * indent
        lines = [f"{pad}{self.conclusion!r}   [{self.rule}]"]
        for premise in self.premises:
            lines.append(premise.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ProofNode({self.rule!r}, {self.conclusion!r}, "
            f"{len(self.premises)} premises)"
        )

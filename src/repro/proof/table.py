"""Render proofs in the paper's tabular style (like Table 1).

The paper displays proofs as numbered lines, each a judgment justified by
a rule applied to earlier lines::

    (1)  sender sat f(wire) <= input            (assumption)
    (2)  ∀x∈M. q[x] sat f(wire) <= x ^ input    (assumption)
    ...
    (19) wire!x -> ... sat f(wire) <= x ^ input (output (18), (17))

:func:`proof_table` linearises a :class:`~repro.proof.proof.ProofNode`
tree the same way: premises first (post-order), each line numbered, each
justification citing its premises' line numbers.  Shared leaves (the same
assumption used twice) collapse onto a single line, matching the paper's
habit of citing one assumption repeatedly.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple

from repro.proof.judgments import Judgment
from repro.proof.proof import ProofNode


class TableLine(NamedTuple):
    """One numbered line of a proof table."""

    number: int
    judgment: Judgment
    justification: str

    def render(self, width: int = 0) -> str:
        body = repr(self.judgment)
        pad = " " * max(1, width - len(body))
        return f"({self.number})  {body}{pad}({self.justification})"


def proof_table(proof: ProofNode) -> List[TableLine]:
    """The proof as numbered lines, premises before conclusions."""
    lines: List[TableLine] = []
    seen: Dict[Tuple[str, Judgment], int] = {}

    def visit(node: ProofNode) -> int:
        key = (node.rule, node.conclusion)
        if not node.premises and key in seen:
            return seen[key]  # collapse repeated leaves, as the paper does
        premise_numbers = [visit(premise) for premise in node.premises]
        number = len(lines) + 1
        if node.rule == "assumption":
            justification = "assumption"
        elif node.rule == "oracle":
            justification = "oracle"
        elif premise_numbers:
            refs = ", ".join(f"({n})" for n in premise_numbers)
            justification = f"{node.rule} {refs}"
        else:
            justification = node.rule
        lines.append(TableLine(number, node.conclusion, justification))
        if not node.premises:
            seen[key] = number
        return number

    visit(proof)
    return lines


def render_table(proof: ProofNode) -> str:
    """The whole table as aligned text."""
    lines = proof_table(proof)
    width = max((len(repr(line.judgment)) for line in lines), default=0) + 4
    return "\n".join(line.render(width) for line in lines)

"""Backward-chaining proof search for ``sat`` judgments.

Given per-process invariant annotations — exactly what the paper's proofs
supply (``Δ1 ⊢ sender sat f(wire) ≤ input`` etc.) — :class:`SatProver`
builds full proof trees using the §2.1 rules:

* prefixes apply the output/input rules (the input rule generalising a
  fresh eigenvariable, as in Table 1's steps (11)–(17));
* choices split with the alternative rule;
* defined names apply the recursion rule over the group of annotated
  definitions they reach, assuming each name's invariant hypothetically —
  the paper's "assume about p the very thing we are trying to prove";
* mismatched goals are bridged by the consequence rule, with the
  implication discharged by the oracle — the "(def f)" steps;
* networks use the parallelism and chan rules, conjoining component
  invariants and weakening via consequence (the §2.2(3) proof).

Every generated proof is returned un-trusted; run it through
:class:`~repro.proof.checker.ProofChecker` (``prove_checked`` does both).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Mapping, Optional, Set, Tuple

from repro.assertions.ast import ForAll, Formula, Implies, LogicalAnd, VarTerm
from repro.assertions.substitution import (
    blank_channels,
    expr_to_term,
    formula_free_variables,
    prefix_channel,
    substitute_variable,
)
from repro.errors import ProofError
from repro.process.analysis import referenced_names
from repro.process.ast import (
    ArrayRef,
    Chan,
    Choice,
    Input,
    Name,
    Output,
    Parallel,
    Process,
    Stop,
)
from repro.process.definitions import DefinitionList, NO_DEFINITIONS
from repro.proof.checker import CheckReport, ProofChecker
from repro.proof.judgments import ForAllSat, Judgment, Sat
from repro.proof.oracle import Oracle
from repro.proof.proof import ProofNode
from repro.proof.rules import (
    Invariant,
    alternative,
    assume,
    chan_rule,
    consequence,
    emptiness,
    forall_sat_elim,
    generalize,
    input_rule,
    judgment_free_variables,
    oracle_leaf,
    output_rule,
    parallelism,
    recursion,
    recursion_goal_with_defs,
)
from repro.values.expressions import SetExpr, Var


class TacticError(ProofError):
    """Proof search failed; the message says where and why."""


class SatProver:
    """Builds §2.1 proofs from invariant annotations.

    ``invariants`` maps process names to their specifications: a
    :class:`Formula` for a plain process, ``(parameter, Formula)`` for a
    process array.
    """

    _FRESH_POOL = ("v", "w", "u", "t")

    def __init__(
        self,
        definitions: DefinitionList = NO_DEFINITIONS,
        oracle: Optional[Oracle] = None,
        invariants: Optional[Mapping[str, Invariant]] = None,
    ) -> None:
        self.definitions = definitions
        self.oracle = oracle if oracle is not None else Oracle()
        self.invariants: Dict[str, Invariant] = dict(invariants or {})

    # -- public API -----------------------------------------------------------

    def prove(
        self,
        process: Process,
        formula: Formula,
        assumptions: Tuple[Judgment, ...] = (),
    ) -> ProofNode:
        """A proof of ``process sat formula`` (un-trusted; check it)."""
        return self._prove(
            process, formula, frozenset(assumptions), eigenvars={}
        )

    def prove_name(self, name: str) -> ProofNode:
        """A proof of the annotated invariant of a defined process name:
        ``p sat R`` or ``∀x∈M. q[x] sat S``."""
        invariant = self._invariant_of(name)
        return self._recursion_proof(name, frozenset(), {})

    def prove_checked(
        self,
        process: Process,
        formula: Formula,
        assumptions: Tuple[Judgment, ...] = (),
    ) -> Tuple[ProofNode, CheckReport]:
        """Build and validate in one call."""
        proof = self.prove(process, formula, assumptions)
        checker = ProofChecker(self.definitions, self.oracle)
        report = checker.check(proof, assumptions)
        return proof, report

    # -- the search -------------------------------------------------------------

    def _prove(
        self,
        process: Process,
        formula: Formula,
        assumptions: FrozenSet[Judgment],
        eigenvars: Mapping[str, SetExpr],
    ) -> ProofNode:
        goal = Sat(process, formula)
        if goal in assumptions:
            return assume(goal)
        if isinstance(process, Stop):
            return emptiness(formula, self._pure(blank_channels(formula), eigenvars))
        if isinstance(process, Output):
            return self._prove_output(process, formula, assumptions, eigenvars)
        if isinstance(process, Input):
            return self._prove_input(process, formula, assumptions, eigenvars)
        if isinstance(process, Choice):
            left = self._prove(process.left, formula, assumptions, eigenvars)
            right = self._prove(process.right, formula, assumptions, eigenvars)
            return alternative(left, right)
        if isinstance(process, Parallel):
            return self._prove_parallel(process, formula, assumptions, eigenvars)
        if isinstance(process, Chan):
            inner = self._prove(process.body, formula, assumptions, eigenvars)
            return chan_rule(inner, process)
        if isinstance(process, Name):
            return self._prove_named(process, formula, assumptions, eigenvars)
        if isinstance(process, ArrayRef):
            return self._prove_array_ref(process, formula, assumptions, eigenvars)
        raise TacticError(f"no tactic for process {process!r}")

    def _prove_output(
        self, process: Output, formula, assumptions, eigenvars
    ) -> ProofNode:
        empty = self._pure(blank_channels(formula), eigenvars)
        body_goal = prefix_channel(
            formula, process.channel, expr_to_term(process.message)
        )
        body = self._prove(process.continuation, body_goal, assumptions, eigenvars)
        return output_rule(process, formula, empty, body)

    def _prove_input(
        self, process: Input, formula, assumptions, eigenvars
    ) -> ProofNode:
        empty = self._pure(blank_channels(formula), eigenvars)
        fresh = self._fresh_variable(process, formula, assumptions, eigenvars)
        inner_process = process.continuation.substitute(process.variable, Var(fresh))
        inner_formula = prefix_channel(formula, process.channel, VarTerm(fresh))
        inner = self._prove(
            inner_process,
            inner_formula,
            assumptions,
            {**eigenvars, fresh: process.domain},
        )
        forall = generalize(fresh, process.domain, inner)
        return input_rule(process, formula, empty, forall)

    def _prove_parallel(
        self, process: Parallel, formula, assumptions, eigenvars
    ) -> ProofNode:
        if isinstance(formula, LogicalAnd):
            # First try the direct component-wise split (R for the left,
            # S for the right); if the conjunction is not aligned with the
            # network structure, fall through to the invariant route.
            try:
                left = self._prove(process.left, formula.left, assumptions, eigenvars)
                right = self._prove(
                    process.right, formula.right, assumptions, eigenvars
                )
                return parallelism(left, right, process)
            except TacticError:
                pass
        # Conjoin the components' annotated invariants, then weaken.
        left_inv = self._component_invariant(process.left, assumptions, eigenvars)
        right_inv = self._component_invariant(process.right, assumptions, eigenvars)
        if left_inv is None or right_inv is None:
            raise TacticError(
                f"parallel goal {formula!r} is not a conjunction and component "
                f"invariants are not annotated; add them to `invariants`"
            )
        left = self._prove(process.left, left_inv, assumptions, eigenvars)
        right = self._prove(process.right, right_inv, assumptions, eigenvars)
        combined = parallelism(left, right, process)
        implication = Implies(LogicalAnd(left_inv, right_inv), formula)
        return consequence(combined, self._pure(implication, eigenvars))

    def _component_invariant(
        self, process: Process, assumptions, eigenvars
    ) -> Optional[Formula]:
        if isinstance(process, Name):
            invariant = self.invariants.get(process.name)
            if isinstance(invariant, Formula):
                return invariant
            return None
        if isinstance(process, ArrayRef):
            invariant = self.invariants.get(process.name)
            if isinstance(invariant, tuple):
                param, spec = invariant
                return substitute_variable(spec, param, expr_to_term(process.index))
            return None
        if isinstance(process, Parallel):
            left = self._component_invariant(process.left, assumptions, eigenvars)
            right = self._component_invariant(process.right, assumptions, eigenvars)
            if left is not None and right is not None:
                return LogicalAnd(left, right)
        return None

    def _prove_named(
        self, process: Name, formula, assumptions, eigenvars
    ) -> ProofNode:
        hypothesis = self._find_sat_assumption(process, assumptions)
        if hypothesis is not None:
            return self._weaken(assume(hypothesis), hypothesis.formula, formula, eigenvars)
        invariant = self.invariants.get(process.name)
        if invariant is None:
            raise TacticError(
                f"no invariant annotated for process {process.name!r} and no "
                f"matching assumption in scope"
            )
        if isinstance(invariant, tuple):
            raise TacticError(f"{process.name!r} is annotated as an array")
        node = self._recursion_proof(process.name, assumptions, eigenvars)
        return self._weaken(node, invariant, formula, eigenvars)

    def _prove_array_ref(
        self, process: ArrayRef, formula, assumptions, eigenvars
    ) -> ProofNode:
        term = expr_to_term(process.index)
        forall_hyp = self._find_forall_assumption(process.name, assumptions)
        if forall_hyp is not None:
            node = forall_sat_elim(assume(forall_hyp), term)
        else:
            invariant = self.invariants.get(process.name)
            if not isinstance(invariant, tuple):
                raise TacticError(
                    f"no array invariant annotated for {process.name!r}"
                )
            forall_node = self._recursion_proof(process.name, assumptions, eigenvars)
            node = forall_sat_elim(forall_node, term)
        derived = node.conclusion.formula  # type: ignore[union-attr]
        return self._weaken(node, derived, formula, eigenvars)

    # -- helpers -----------------------------------------------------------

    def _weaken(
        self, node: ProofNode, have: Formula, want: Formula, eigenvars
    ) -> ProofNode:
        if have == want:
            return node
        implication = Implies(have, want)
        return consequence(node, self._pure(implication, eigenvars))

    def _pure(self, formula: Formula, eigenvars) -> ProofNode:
        """An oracle leaf, verified eagerly so search fails at the first
        unprovable side condition rather than at check time."""
        verdict = self.oracle.holds(formula, eigenvars)
        if not verdict.ok:
            raise TacticError(
                f"oracle refuted side condition {formula!r}"
                + (f" ({verdict.counterexample})" if verdict.counterexample else "")
            )
        return oracle_leaf(formula)

    def _fresh_variable(self, process: Input, formula, assumptions, eigenvars) -> str:
        taken: Set[str] = set(eigenvars)
        taken |= process.continuation.free_variables()
        taken |= process.channel.free_variables()
        taken |= formula_free_variables(formula)
        taken.add(process.variable)
        for judgment in assumptions:
            taken |= judgment_free_variables(judgment)
        for candidate in itertools.chain(
            self._FRESH_POOL, (f"v{i}" for i in itertools.count())
        ):
            if candidate not in taken:
                return candidate
        raise AssertionError("unreachable")

    def _find_sat_assumption(
        self, process: Name, assumptions: FrozenSet[Judgment]
    ) -> Optional[Sat]:
        for judgment in assumptions:
            if isinstance(judgment, Sat) and judgment.process == process:
                return judgment
        return None

    def _find_forall_assumption(
        self, name: str, assumptions: FrozenSet[Judgment]
    ) -> Optional[ForAllSat]:
        for judgment in assumptions:
            if (
                isinstance(judgment, ForAllSat)
                and isinstance(judgment.inner, Sat)
                and isinstance(judgment.inner.process, ArrayRef)
                and judgment.inner.process.name == name
            ):
                return judgment
        return None

    def _invariant_of(self, name: str) -> Invariant:
        invariant = self.invariants.get(name)
        if invariant is None:
            raise TacticError(f"no invariant annotated for {name!r}")
        return invariant

    def _recursion_group(self, root: str) -> Tuple[str, ...]:
        """Annotated names reachable from ``root`` through definitions."""
        group: Set[str] = set()
        frontier = [root]
        while frontier:
            name = frontier.pop()
            if name in group or name not in self.invariants:
                continue
            group.add(name)
            if name in self.definitions:
                for referenced in referenced_names(self.definitions.lookup(name).body):
                    frontier.append(referenced)
        return tuple(sorted(group))

    def _recursion_proof(
        self, root: str, assumptions: FrozenSet[Judgment], eigenvars
    ) -> ProofNode:
        group = self._recursion_group(root)
        invariants = {name: self.invariants[name] for name in group}
        hypotheses = tuple(
            recursion_goal_with_defs(name, invariants[name], self.definitions)
            for name in group
        )
        inner_assumptions = assumptions | frozenset(hypotheses)
        empty_premises = {}
        body_premises = {}
        for name in group:
            invariant = invariants[name]
            definition = self.definitions.lookup(name)
            if isinstance(invariant, tuple):
                param, spec = invariant
                empty_formula = ForAll(
                    param, definition.domain, blank_channels(spec)  # type: ignore[attr-defined]
                )
                empty_premises[name] = self._pure(empty_formula, eigenvars)
                body = self._prove(
                    definition.body,
                    spec,
                    inner_assumptions,
                    {**eigenvars, param: definition.domain},  # type: ignore[attr-defined]
                )
                body_premises[name] = generalize(
                    param, definition.domain, body  # type: ignore[attr-defined]
                )
            else:
                empty_premises[name] = self._pure(
                    blank_channels(invariant), eigenvars
                )
                body_premises[name] = self._prove(
                    definition.body, invariant, inner_assumptions, eigenvars
                )
        return recursion(
            self.definitions, invariants, empty_premises, body_premises, root
        )

"""The inference rules of §2.1, as proof-node builders and validators.

Each paper rule has a *builder* (constructs a :class:`ProofNode`) and a
*validator* (re-checks the application; used by
:class:`~repro.proof.checker.ProofChecker`).  Builders do not validate —
the checker is the single source of truth — so hand-built or deserialised
proofs get exactly the same scrutiny.

Rule inventory (numbers from the paper):

====  ==================  =========================================
 #    name                conclusion
====  ==================  =========================================
 1    triviality          ``P sat T``             from ⊨ T
 2    consequence         ``P sat S``             from P sat R, ⊨ R ⇒ S
 3    conjunction         ``P sat R & S``         from P sat R, P sat S
 4    emptiness           ``STOP sat R``          from ⊨ R_<>
 5    output              ``(c!e → P) sat R``     from ⊨ R_<>, P sat R^c_{e⌢c}
 6    input               ``(c?x:M → P) sat R``   from ⊨ R_<>, ∀v∈M. P^x_v sat R^c_{v⌢c}
 7    alternative         ``(P | Q) sat R``       from P sat R, Q sat R
 8    parallelism         ``(P ‖ Q) sat R & S``   from P sat R, Q sat S
 9    chan                ``(chan L; P) sat R``   from P sat R, R mentions no L
 10   recursion           ``p sat R``             from hypothetical body proofs
====  ==================  =========================================

plus the structural rules the paper uses silently: ``assumption``,
``oracle`` (semantic discharge of a pure premise), ``generalize``
(∀-introduction over a sat judgment, with the eigenvariable condition),
and ``forall-sat-elim`` (∀-elimination, with a membership side condition).
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Tuple, Union

from repro.assertions.ast import ForAll, Formula, Implies, LogicalAnd, VarTerm
from repro.assertions.substitution import (
    blank_channels,
    channels_mentioned,
    expr_to_term,
    formula_free_variables,
    prefix_channel,
    substitute_variable,
    term_to_expr,
)
from repro.errors import RuleApplicationError, SideConditionError
from repro.process.analysis import channel_names
from repro.process.ast import (
    ArrayRef,
    Chan,
    Choice,
    Input,
    Name,
    Output,
    Parallel,
    Process,
    Stop,
)
from repro.process.definitions import ArrayDef, ProcessDef
from repro.proof.judgments import ForAllSat, Judgment, Pure, Sat
from repro.proof.proof import ProofNode
from repro.values.expressions import SetExpr, Var

#: A recursion-rule invariant: a formula for a plain process, or
#: ``(parameter, formula)`` for a process array.
Invariant = Union[Formula, Tuple[str, Formula]]


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


def assume(judgment: Judgment) -> ProofNode:
    """Use a judgment from the assumption context Γ."""
    return ProofNode("assumption", judgment)


def oracle_leaf(formula: Formula) -> ProofNode:
    """A pure premise to be discharged semantically by the oracle."""
    return ProofNode("oracle", Pure(formula))


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def triviality(process: Process, pure_premise: ProofNode) -> ProofNode:
    """Rule 1: from ⊨ T conclude ``P sat T``."""
    formula = _pure_formula(pure_premise)
    return ProofNode("triviality", Sat(process, formula), (pure_premise,))


def consequence(sat_premise: ProofNode, implication: ProofNode) -> ProofNode:
    """Rule 2: from ``P sat R`` and ⊨ ``R ⇒ S`` conclude ``P sat S``."""
    sat = _sat_conclusion(sat_premise)
    impl = _pure_formula(implication)
    if not isinstance(impl, Implies):
        raise RuleApplicationError("consequence needs an implication premise")
    return ProofNode(
        "consequence", Sat(sat.process, impl.consequent), (sat_premise, implication)
    )


def conjunction(left: ProofNode, right: ProofNode) -> ProofNode:
    """Rule 3: from ``P sat R`` and ``P sat S`` conclude ``P sat R & S``."""
    l, r = _sat_conclusion(left), _sat_conclusion(right)
    return ProofNode(
        "conjunction",
        Sat(l.process, LogicalAnd(l.formula, r.formula)),
        (left, right),
    )


def emptiness(formula: Formula, pure_premise: ProofNode) -> ProofNode:
    """Rule 4: from ⊨ R_<> conclude ``STOP sat R``."""
    return ProofNode("emptiness", Sat(Stop(), formula), (pure_premise,))


def output_rule(
    process: Output, formula: Formula, empty_premise: ProofNode, body_premise: ProofNode
) -> ProofNode:
    """Rule 5: ``(c!e → P) sat R`` from ⊨ R_<> and ``P sat R^c_{e⌢c}``."""
    return ProofNode(
        "output", Sat(process, formula), (empty_premise, body_premise)
    )


def input_rule(
    process: Input, formula: Formula, empty_premise: ProofNode, forall_premise: ProofNode
) -> ProofNode:
    """Rule 6: ``(c?x:M → P) sat R`` from ⊨ R_<> and
    ``∀v∈M. P^x_v sat R^c_{v⌢c}`` (v fresh)."""
    return ProofNode("input", Sat(process, formula), (empty_premise, forall_premise))


def alternative(left: ProofNode, right: ProofNode) -> ProofNode:
    """Rule 7: ``(P | Q) sat R`` from ``P sat R`` and ``Q sat R``."""
    l, r = _sat_conclusion(left), _sat_conclusion(right)
    return ProofNode(
        "alternative", Sat(Choice(l.process, r.process), l.formula), (left, right)
    )


def parallelism(left: ProofNode, right: ProofNode, process: Optional[Parallel] = None) -> ProofNode:
    """Rule 8: ``(P ‖ Q) sat R & S`` from ``P sat R`` and ``Q sat S``."""
    l, r = _sat_conclusion(left), _sat_conclusion(right)
    if process is None:
        process = Parallel(l.process, r.process)
    return ProofNode(
        "parallelism",
        Sat(process, LogicalAnd(l.formula, r.formula)),
        (left, right),
    )


def chan_rule(premise: ProofNode, process: Chan) -> ProofNode:
    """Rule 9: ``(chan L; P) sat R`` from ``P sat R``, R not mentioning L."""
    sat = _sat_conclusion(premise)
    return ProofNode("chan", Sat(process, sat.formula), (premise,))


def generalize(variable: str, domain: SetExpr, premise: ProofNode) -> ProofNode:
    """∀-introduction over a sat judgment: from ``P sat R`` (with the
    eigenvariable free) conclude ``∀variable∈domain. P sat R``."""
    inner = premise.conclusion
    if not isinstance(inner, (Sat, ForAllSat)):
        raise RuleApplicationError("generalize applies to sat judgments")
    return ProofNode(
        "generalize",
        ForAllSat(variable, domain, inner),
        (premise,),
        params={"variable": variable},
    )


def forall_sat_elim(premise: ProofNode, term) -> ProofNode:
    """∀-elimination: from ``∀v∈M. P sat R`` conclude ``P^v_t sat R^v_t``.

    The membership side condition ``t ∈ M`` is checked by the validator:
    ``t`` must be an eigenvariable declared over (a subset of) ``M`` or a
    constant provably in ``M``.
    """
    forall = premise.conclusion
    if not isinstance(forall, ForAllSat) or not isinstance(forall.inner, Sat):
        raise RuleApplicationError("forall_sat_elim needs a ∀-sat premise")
    inner = forall.inner
    process = inner.process.substitute(forall.variable, term_to_expr(term))
    formula = substitute_variable(inner.formula, forall.variable, term)
    return ProofNode(
        "forall-sat-elim",
        Sat(process, formula),
        (premise,),
        params={"term": term},
    )


def recursion(
    definitions,
    invariants: Mapping[str, Invariant],
    empty_premises: Mapping[str, ProofNode],
    body_premises: Mapping[str, ProofNode],
    goal_name: str,
) -> ProofNode:
    """Rule 10 (with the array and mutual-recursion extensions).

    ``invariants`` maps each equation name of the (mutually recursive)
    group to its invariant; ``body_premises[name]`` proves the equation's
    body satisfies its invariant *under the hypothetical assumptions* that
    every name already does.  The conclusion is the invariant judgment for
    ``goal_name``.
    """
    names = tuple(sorted(invariants))
    if goal_name not in invariants:
        raise RuleApplicationError(f"goal {goal_name!r} not among the equations")
    premises = []
    for name in names:
        premises.append(empty_premises[name])
        premises.append(body_premises[name])
    conclusion = recursion_goal_with_defs(goal_name, invariants[goal_name], definitions)
    return ProofNode(
        "recursion",
        conclusion,
        tuple(premises),
        params={"invariants": dict(invariants), "names": names},
    )


def recursion_goal_with_defs(name: str, invariant: Invariant, definitions) -> Judgment:
    """The judgment the recursion rule concludes (and assumes) for a name:
    ``p sat R`` for a plain equation, ``∀x∈M. q[x] sat S`` for an array."""
    if isinstance(invariant, tuple):
        param, formula = invariant
        _raise_if_not_formula(formula)
        definition = definitions.lookup_array(name)
        return ForAllSat(
            param, definition.domain, Sat(ArrayRef(name, Var(param)), formula)
        )
    _raise_if_not_formula(invariant)
    return Sat(Name(name), invariant)


def _raise_if_not_formula(formula) -> None:
    if not isinstance(formula, Formula):
        raise RuleApplicationError(f"invariant must be a Formula, got {formula!r}")


# ---------------------------------------------------------------------------
# Validators — one per rule, invoked by the checker.
#
# Each validator receives the node and a Context (see checker.py) and must
# (a) verify the node's conclusion follows from its premises' conclusions,
# (b) verify the rule's side conditions, and (c) recurse into premises via
# ctx.check (possibly with extended assumptions/eigenvariables).
# ---------------------------------------------------------------------------


def _pure_formula(node: ProofNode) -> Formula:
    conclusion = node.conclusion
    if not isinstance(conclusion, Pure):
        raise RuleApplicationError(f"expected a pure premise, got {conclusion!r}")
    return conclusion.formula


def _sat_conclusion(node: ProofNode) -> Sat:
    conclusion = node.conclusion
    if not isinstance(conclusion, Sat):
        raise RuleApplicationError(f"expected a sat premise, got {conclusion!r}")
    return conclusion


def judgment_free_variables(judgment: Judgment):
    """Free value variables of a judgment (for eigenvariable conditions)."""
    if isinstance(judgment, Pure):
        return formula_free_variables(judgment.formula)
    if isinstance(judgment, Sat):
        return judgment.process.free_variables() | formula_free_variables(
            judgment.formula
        )
    assert isinstance(judgment, ForAllSat)
    return (
        judgment_free_variables(judgment.inner) - {judgment.variable}
    ) | judgment.domain.free_variables()


def _validate_triviality(node: ProofNode, ctx) -> None:
    (premise,) = _expect_premises(node, 1)
    formula = _pure_formula(premise)
    conclusion = _expect_sat(node)
    if conclusion.formula != formula:
        raise RuleApplicationError("triviality: conclusion formula ≠ premise")
    if premise.rule == "assumption" and channels_mentioned(formula):
        raise SideConditionError(
            "triviality: an assumed (not oracle-validated) premise must not "
            "mention channel names"
        )
    ctx.check(premise)


def _validate_consequence(node: ProofNode, ctx) -> None:
    sat_premise, implication = _expect_premises(node, 2)
    sat = _sat_conclusion(sat_premise)
    impl = _pure_formula(implication)
    conclusion = _expect_sat(node)
    if not isinstance(impl, Implies):
        raise RuleApplicationError("consequence: second premise must be R ⇒ S")
    if impl.antecedent != sat.formula:
        raise RuleApplicationError("consequence: implication antecedent ≠ R")
    if conclusion.process != sat.process or conclusion.formula != impl.consequent:
        raise RuleApplicationError("consequence: conclusion mismatch")
    ctx.check(sat_premise)
    ctx.check(implication)


def _validate_conjunction(node: ProofNode, ctx) -> None:
    left, right = _expect_premises(node, 2)
    l, r = _sat_conclusion(left), _sat_conclusion(right)
    conclusion = _expect_sat(node)
    if l.process != r.process or conclusion.process != l.process:
        raise RuleApplicationError("conjunction: premises about different processes")
    if conclusion.formula != LogicalAnd(l.formula, r.formula):
        raise RuleApplicationError("conjunction: conclusion is not R & S")
    ctx.check(left)
    ctx.check(right)


def _validate_emptiness(node: ProofNode, ctx) -> None:
    (premise,) = _expect_premises(node, 1)
    conclusion = _expect_sat(node)
    if not isinstance(conclusion.process, Stop):
        raise RuleApplicationError("emptiness concludes about STOP only")
    expected = blank_channels(conclusion.formula)
    if _pure_formula(premise) != expected:
        raise RuleApplicationError(
            f"emptiness: premise must be R_<> = {expected!r}"
        )
    ctx.check(premise)


def _validate_output(node: ProofNode, ctx) -> None:
    empty_premise, body_premise = _expect_premises(node, 2)
    conclusion = _expect_sat(node)
    process = conclusion.process
    if not isinstance(process, Output):
        raise RuleApplicationError("output rule concludes about c!e → P")
    formula = conclusion.formula
    if _pure_formula(empty_premise) != blank_channels(formula):
        raise RuleApplicationError("output: first premise must be R_<>")
    body = _sat_conclusion(body_premise)
    if body.process != process.continuation:
        raise RuleApplicationError("output: body premise about the wrong process")
    expected = prefix_channel(formula, process.channel, expr_to_term(process.message))
    if body.formula != expected:
        raise RuleApplicationError(
            f"output: body premise must be R^c_(e⌢c) = {expected!r}, "
            f"got {body.formula!r}"
        )
    ctx.check(empty_premise)
    ctx.check(body_premise)


def _validate_input(node: ProofNode, ctx) -> None:
    empty_premise, forall_premise = _expect_premises(node, 2)
    conclusion = _expect_sat(node)
    process = conclusion.process
    if not isinstance(process, Input):
        raise RuleApplicationError("input rule concludes about c?x:M → P")
    formula = conclusion.formula
    if _pure_formula(empty_premise) != blank_channels(formula):
        raise RuleApplicationError("input: first premise must be R_<>")
    forall = forall_premise.conclusion
    if not isinstance(forall, ForAllSat) or not isinstance(forall.inner, Sat):
        raise RuleApplicationError("input: second premise must be ∀v∈M. …")
    v = forall.variable
    if forall.domain != process.domain:
        raise RuleApplicationError("input: quantifier domain ≠ input set M")
    # Freshness of v (§2.1 rule 6: v not free in P, R, or c).
    if v in process.continuation.free_variables() and v != process.variable:
        raise SideConditionError(f"input: {v!r} is free in the continuation")
    if v in formula_free_variables(formula):
        raise SideConditionError(f"input: {v!r} is free in R")
    if v in process.channel.free_variables():
        raise SideConditionError(f"input: {v!r} is free in the channel")
    expected_process = process.continuation.substitute(process.variable, Var(v))
    expected_formula = prefix_channel(formula, process.channel, VarTerm(v))
    if forall.inner.process != expected_process:
        raise RuleApplicationError("input: premise process must be P^x_v")
    if forall.inner.formula != expected_formula:
        raise RuleApplicationError(
            f"input: premise formula must be R^c_(v⌢c) = {expected_formula!r}"
        )
    ctx.check(empty_premise)
    ctx.check(forall_premise)


def _validate_alternative(node: ProofNode, ctx) -> None:
    left, right = _expect_premises(node, 2)
    l, r = _sat_conclusion(left), _sat_conclusion(right)
    conclusion = _expect_sat(node)
    if l.formula != r.formula or conclusion.formula != l.formula:
        raise RuleApplicationError("alternative: both premises must share R")
    if conclusion.process != Choice(l.process, r.process):
        raise RuleApplicationError("alternative: conclusion is not P | Q")
    ctx.check(left)
    ctx.check(right)


def _validate_parallelism(node: ProofNode, ctx) -> None:
    left, right = _expect_premises(node, 2)
    l, r = _sat_conclusion(left), _sat_conclusion(right)
    conclusion = _expect_sat(node)
    process = conclusion.process
    if not isinstance(process, Parallel):
        raise RuleApplicationError("parallelism concludes about P ‖ Q")
    if process.left != l.process or process.right != r.process:
        raise RuleApplicationError("parallelism: component mismatch")
    if conclusion.formula != LogicalAnd(l.formula, r.formula):
        raise RuleApplicationError("parallelism: conclusion is not R & S")
    # Side condition (§2.1 rule 8): X ⊇ channels(R), Y ⊇ channels(S).  With
    # inferred alphabets this means: any channel R mentions that the partner
    # also uses must belong to P (and symmetrically), so partner-only events
    # cannot disturb R.
    if process.left_channels is not None:
        x_names = process.left_channels.names() | channel_names(
            process.left, ctx.definitions
        )
    else:
        x_names = channel_names(process.left, ctx.definitions)
    if process.right_channels is not None:
        y_names = process.right_channels.names() | channel_names(
            process.right, ctx.definitions
        )
    else:
        y_names = channel_names(process.right, ctx.definitions)
    r_names = {chan.name for chan in channels_mentioned(l.formula)}
    s_names = {chan.name for chan in channels_mentioned(r.formula)}
    bad_r = (r_names & y_names) - x_names
    if bad_r:
        raise SideConditionError(
            f"parallelism: R mentions channels {sorted(bad_r)} controlled "
            f"only by the right component"
        )
    bad_s = (s_names & x_names) - y_names
    if bad_s:
        raise SideConditionError(
            f"parallelism: S mentions channels {sorted(bad_s)} controlled "
            f"only by the left component"
        )
    ctx.check(left)
    ctx.check(right)


def _may_conceal(entry, ref, env) -> bool:
    """Could the channel list entry ``entry`` conceal the channel that the
    assertion's reference ``ref`` denotes?  Conservative: unevaluable
    subscripts count as a conflict."""
    from repro.errors import DomainError, EvaluationError
    from repro.process.channels import ChannelArraySpec, ChannelExpr

    if entry.name != ref.name:
        return False
    if isinstance(entry, ChannelExpr):
        if entry.index is None or ref.index is None:
            # a plain channel `c` and a subscripted `c[e]` are distinct
            return (entry.index is None) == (ref.index is None)
        try:
            return entry.index.evaluate(env) == ref.index.evaluate(env)
        except EvaluationError:
            return True
    assert isinstance(entry, ChannelArraySpec)
    if ref.index is None:
        return False
    try:
        domain = entry.subscripts.evaluate(env)
        return ref.index.evaluate(env) in domain
    except (EvaluationError, DomainError):
        return True


def _validate_chan(node: ProofNode, ctx) -> None:
    (premise,) = _expect_premises(node, 1)
    sat = _sat_conclusion(premise)
    conclusion = _expect_sat(node)
    process = conclusion.process
    if not isinstance(process, Chan):
        raise RuleApplicationError("chan rule concludes about chan L; P")
    if process.body != sat.process or conclusion.formula != sat.formula:
        raise RuleApplicationError("chan: premise mismatch")
    # Side condition (§2.1 rule 9): R mentions no channel of L.  Channels
    # are compared at subscript granularity — `link[0]` survives the
    # concealment of `link[1..n-1]`.
    for ref in channels_mentioned(conclusion.formula):
        for entry in process.channels.entries:
            if _may_conceal(entry, ref, ctx.env):
                raise SideConditionError(
                    f"chan: R mentions concealed channel {ref!r}"
                )
    ctx.check(premise)


def _validate_generalize(node: ProofNode, ctx) -> None:
    (premise,) = _expect_premises(node, 1)
    conclusion = node.conclusion
    if not isinstance(conclusion, ForAllSat):
        raise RuleApplicationError("generalize concludes a ∀-sat judgment")
    if premise.conclusion != conclusion.inner:
        raise RuleApplicationError("generalize: inner judgment mismatch")
    v = conclusion.variable
    # Eigenvariable condition: v may not be free in any assumption in Γ.
    for assumption in ctx.assumptions:
        if v in judgment_free_variables(assumption):
            raise SideConditionError(
                f"generalize: eigenvariable {v!r} is free in assumption "
                f"{assumption!r}"
            )
    ctx.check(premise, extra_eigenvars={v: conclusion.domain})


def _validate_forall_sat_elim(node: ProofNode, ctx) -> None:
    (premise,) = _expect_premises(node, 1)
    forall = premise.conclusion
    if not isinstance(forall, ForAllSat) or not isinstance(forall.inner, Sat):
        raise RuleApplicationError("forall-sat-elim needs a ∀-sat premise")
    term = node.params.get("term")
    if term is None:
        raise RuleApplicationError("forall-sat-elim: missing instantiation term")
    ctx.require_membership(term, forall.domain)
    expected_process = forall.inner.process.substitute(
        forall.variable, term_to_expr(term)
    )
    expected_formula = substitute_variable(forall.inner.formula, forall.variable, term)
    conclusion = _expect_sat(node)
    if conclusion.process != expected_process or conclusion.formula != expected_formula:
        raise RuleApplicationError("forall-sat-elim: conclusion mismatch")
    ctx.check(premise)


def _validate_recursion(node: ProofNode, ctx) -> None:
    invariants: Mapping[str, Invariant] = node.params.get("invariants", {})
    names = tuple(node.params.get("names", ()))
    if not invariants or tuple(sorted(invariants)) != names:
        raise RuleApplicationError("recursion: malformed invariant table")
    if len(node.premises) != 2 * len(names):
        raise RuleApplicationError("recursion: need an empty and a body premise per name")

    # The hypothetical assumptions available to every body proof.
    hypotheses = tuple(
        recursion_goal_with_defs(name, invariants[name], ctx.definitions)
        for name in names
    )

    goal_matches = False
    for index, name in enumerate(names):
        empty_premise = node.premises[2 * index]
        body_premise = node.premises[2 * index + 1]
        invariant = invariants[name]
        definition = ctx.definitions.lookup(name)
        if isinstance(invariant, tuple):
            param, formula = invariant
            if not isinstance(definition, ArrayDef):
                raise RuleApplicationError(f"recursion: {name!r} is not an array")
            if param != definition.parameter:
                # Allow a differently named parameter by rewriting the body
                # expectation; simplest is to require agreement.
                raise RuleApplicationError(
                    f"recursion: invariant parameter {param!r} ≠ definition "
                    f"parameter {definition.parameter!r}"
                )
            expected_empty = ForAll(param, definition.domain, blank_channels(formula))
            expected_body = ForAllSat(
                param, definition.domain, Sat(definition.body, formula)
            )
        else:
            if not isinstance(definition, ProcessDef):
                raise RuleApplicationError(
                    f"recursion: {name!r} is an array; give (param, formula)"
                )
            expected_empty = blank_channels(invariant)
            expected_body = Sat(definition.body, invariant)
        if _pure_formula(empty_premise) != expected_empty:
            raise RuleApplicationError(
                f"recursion: empty premise for {name!r} must be {expected_empty!r}"
            )
        if body_premise.conclusion != expected_body:
            raise RuleApplicationError(
                f"recursion: body premise for {name!r} must conclude "
                f"{expected_body!r}, got {body_premise.conclusion!r}"
            )
        ctx.check(empty_premise)
        ctx.check(body_premise, extra_assumptions=hypotheses)
        if node.conclusion == recursion_goal_with_defs(
            name, invariant, ctx.definitions
        ):
            goal_matches = True
    if not goal_matches:
        raise RuleApplicationError(
            "recursion: conclusion is not the invariant judgment of any equation"
        )


def _expect_premises(node: ProofNode, count: int) -> Tuple[ProofNode, ...]:
    if len(node.premises) != count:
        raise RuleApplicationError(
            f"{node.rule}: expected {count} premises, found {len(node.premises)}"
        )
    return node.premises


def _expect_sat(node: ProofNode) -> Sat:
    if not isinstance(node.conclusion, Sat):
        raise RuleApplicationError(f"{node.rule}: conclusion must be a sat judgment")
    return node.conclusion


#: Validator dispatch table used by the checker.
VALIDATORS: Dict[str, Callable] = {
    "triviality": _validate_triviality,
    "consequence": _validate_consequence,
    "conjunction": _validate_conjunction,
    "emptiness": _validate_emptiness,
    "output": _validate_output,
    "input": _validate_input,
    "alternative": _validate_alternative,
    "parallelism": _validate_parallelism,
    "chan": _validate_chan,
    "generalize": _validate_generalize,
    "forall-sat-elim": _validate_forall_sat_elim,
    "recursion": _validate_recursion,
}

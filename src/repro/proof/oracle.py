"""Semantic discharge of pure premises (the trust boundary of proofs).

The paper's proofs lean on steps justified "(def f)", "(trans ≤)",
"(theorem)" — facts of sequence arithmetic valid for *all* channel
histories and variable values.  §3.3 defines their semantics:

    ρ⟦T⟧ = ∀s. (ρ + ch(s))⟦T⟧

The oracle decides such facts by bounded exhaustive evaluation: every
assignment of pool values to free variables (eigenvariables range over
their declared domains instead) and every assignment of bounded-length
histories to the mentioned channels.  When the combination space exceeds
a limit it falls back to seeded random sampling.

This is deliberately a *refutation-complete-up-to-bounds* decision
procedure, not a theorem prover; every discharge records its method and
instance count, and :class:`~repro.proof.checker.CheckReport` surfaces
them, so the trust boundary of a checked proof is explicit (DESIGN.md §4).
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterator, List, Mapping, NamedTuple, Optional, Sequence, Tuple, Union

from repro.assertions.ast import BoolLit, Formula
from repro.assertions.eval import DEFAULT_EVAL_CONFIG, EvalConfig, evaluate_formula
from repro.assertions.substitution import channels_mentioned, formula_free_variables
from repro.errors import DischargeError, EvaluationError
from repro.traces.histories import ChannelHistory
from repro.values.domains import Domain
from repro.values.environment import Environment
from repro.values.expressions import SetExpr


class OracleConfig:
    """Bounds for the oracle's search.

    ``value_pool`` supplies candidate values for unconstrained variables
    and for channel messages; ``max_history_length`` bounds the histories
    tried per channel; above ``exhaustive_limit`` total instances the
    oracle samples ``random_trials`` assignments instead (seeded).
    """

    __slots__ = (
        "value_pool",
        "max_history_length",
        "exhaustive_limit",
        "random_trials",
        "seed",
        "eval_config",
    )

    def __init__(
        self,
        value_pool: Sequence[object] = (0, 1, "ACK", "NACK"),
        max_history_length: int = 3,
        exhaustive_limit: int = 200_000,
        random_trials: int = 5_000,
        seed: int = 0,
        eval_config: EvalConfig = DEFAULT_EVAL_CONFIG,
    ) -> None:
        self.value_pool = tuple(value_pool)
        self.max_history_length = max_history_length
        self.exhaustive_limit = exhaustive_limit
        self.random_trials = random_trials
        self.seed = seed
        self.eval_config = eval_config

    def __repr__(self) -> str:
        return (
            f"OracleConfig(pool={self.value_pool!r}, "
            f"hist≤{self.max_history_length})"
        )


def _evaluable_channels(channel_refs, env: Environment):
    """The concrete channels of the refs whose subscripts evaluate under
    ``env``.  Refs whose subscript mentions a quantifier-bound variable
    (e.g. ``row[j]`` under a Σ) are skipped: their instantiated siblings
    cover the relevant channels, and any channel absent from a history
    reads as ⟨⟩ — part of the oracle's documented bounds."""
    concrete = set()
    for ref in channel_refs:
        try:
            concrete.add(ref.evaluate(env))
        except EvaluationError:
            continue
    return sorted(concrete, key=lambda c: c.sort_key())


class Verdict(NamedTuple):
    """Outcome of a discharge attempt."""

    ok: bool
    method: str  # 'exhaustive-bounded' or 'randomized'
    instances: int
    counterexample: Optional[str]


DomainLike = Union[Domain, SetExpr]


class Oracle:
    """Decides pure formulas by bounded evaluation."""

    def __init__(
        self, env: Optional[Environment] = None, config: Optional[OracleConfig] = None
    ) -> None:
        self.env = env if env is not None else Environment()
        self.config = config if config is not None else OracleConfig()

    # -- public API --------------------------------------------------------

    def holds(
        self,
        formula: Formula,
        var_domains: Optional[Mapping[str, DomainLike]] = None,
    ) -> Verdict:
        """Decide ``⊨ formula``.  ``var_domains`` constrains eigenvariables
        to their declared sets; other free variables range over the pool."""
        var_domains = dict(var_domains or {})
        # Fast path: many side conditions (R_<> blanks especially) fold to
        # a literal truth value syntactically, for every history and value.
        from repro.assertions.simplify import simplify

        folded = simplify(formula)
        if isinstance(folded, BoolLit):
            return Verdict(folded.value, "syntactic", 1, None if folded.value else "simplifies to false")
        variables = sorted(formula_free_variables(formula) - set(self.env.names()))
        assignments = self._assignments(variables, var_domains)
        total, instance_stream = self._instances(formula, assignments)

        if total <= self.config.exhaustive_limit:
            return self._run(formula, instance_stream, total, "exhaustive-bounded")
        sampled = self._sampled_instances(formula, variables, var_domains)
        return self._run(formula, sampled, self.config.random_trials, "randomized")

    def require(
        self,
        formula: Formula,
        var_domains: Optional[Mapping[str, DomainLike]] = None,
    ) -> Verdict:
        """Like :meth:`holds`, raising :class:`DischargeError` on failure."""
        verdict = self.holds(formula, var_domains)
        if not verdict.ok:
            raise DischargeError(
                f"oracle refuted {formula!r}"
                + (f": {verdict.counterexample}" if verdict.counterexample else "")
            )
        return verdict

    # -- instance generation ----------------------------------------------

    def _domain_values(
        self, domain: DomainLike, env: Optional[Environment] = None
    ) -> Tuple[object, ...]:
        if isinstance(domain, SetExpr):
            domain = domain.evaluate(env if env is not None else self.env)
        return domain.sample(len(self.config.value_pool) + 8)

    def _ordered_variables(
        self, variables: List[str], var_domains: Mapping[str, DomainLike]
    ) -> List[str]:
        """Order eigenvariables so that any whose domain mentions another
        eigenvariable comes after it (e.g. ``k ∈ {j}`` inside the dining
        philosophers' fork)."""
        remaining = list(variables)
        ordered: List[str] = []
        while remaining:
            progressed = False
            for name in list(remaining):
                domain = var_domains.get(name)
                deps = (
                    domain.free_variables() & set(remaining)
                    if isinstance(domain, SetExpr)
                    else set()
                )
                if not deps - {name}:
                    ordered.append(name)
                    remaining.remove(name)
                    progressed = True
            if not progressed:
                raise DischargeError(
                    f"cyclic eigenvariable domains among {remaining!r}"
                )
        return ordered

    def _assignments(
        self, variables: List[str], var_domains: Mapping[str, DomainLike]
    ) -> List[Dict[str, object]]:
        ordered = self._ordered_variables(variables, var_domains)
        partials: List[Dict[str, object]] = [{}]
        for name in ordered:
            extended: List[Dict[str, object]] = []
            for partial in partials:
                if name in var_domains:
                    env = self.env.bind_all(partial)
                    values = self._domain_values(var_domains[name], env)
                else:
                    values = self.config.value_pool
                for value in values:
                    extended.append({**partial, name: value})
            partials = extended
        return partials

    def _histories(self, channels) -> Iterator[ChannelHistory]:
        pool = self.config.value_pool
        per_channel: List[List[Tuple[object, ...]]] = []
        all_seqs = [
            seq
            for length in range(self.config.max_history_length + 1)
            for seq in itertools.product(pool, repeat=length)
        ]
        for _ in channels:
            per_channel.append(all_seqs)
        for combo in itertools.product(*per_channel):
            yield ChannelHistory(dict(zip(channels, combo)))

    def _history_count(self, n_channels: int) -> int:
        pool = len(self.config.value_pool)
        per = sum(pool ** l for l in range(self.config.max_history_length + 1))
        return per ** n_channels

    def _instances(
        self, formula: Formula, assignments: List[Dict[str, object]]
    ) -> Tuple[int, Iterator[Tuple[Environment, ChannelHistory]]]:
        channel_refs = sorted(channels_mentioned(formula), key=repr)

        def generate() -> Iterator[Tuple[Environment, ChannelHistory]]:
            for assignment in assignments:
                env = self.env.bind_all(assignment)
                concrete = _evaluable_channels(channel_refs, env)
                for history in self._histories(concrete):
                    yield env, history

        # Upper bound on instance count (subscripts may collapse channels).
        n_chans = len({ref.name for ref in channel_refs}) + sum(
            1 for ref in channel_refs if ref.index is not None
        )
        total = max(len(assignments), 1) * self._history_count(
            min(n_chans, len(channel_refs))
        )
        return total, generate()

    def _sampled_instances(
        self,
        formula: Formula,
        variables: List[str],
        var_domains: Mapping[str, DomainLike],
    ) -> Iterator[Tuple[Environment, ChannelHistory]]:
        rng = random.Random(self.config.seed)
        channel_refs = sorted(channels_mentioned(formula), key=repr)
        pool = self.config.value_pool
        ordered = self._ordered_variables(list(variables), var_domains)
        for _ in range(self.config.random_trials):
            assignment: Dict[str, object] = {}
            for name in ordered:
                if name in var_domains:
                    env = self.env.bind_all(assignment)
                    values = self._domain_values(var_domains[name], env)
                else:
                    values = pool
                if not values:
                    break
                assignment[name] = rng.choice(values)
            if len(assignment) < len(ordered):
                continue
            env = self.env.bind_all(assignment)
            concrete = _evaluable_channels(channel_refs, env)
            history = {}
            for chan in concrete:
                length = rng.randrange(self.config.max_history_length + 1)
                history[chan] = tuple(rng.choice(pool) for _ in range(length))
            yield env, ChannelHistory(history)

    # -- evaluation loop -----------------------------------------------------

    def _run(
        self,
        formula: Formula,
        instances: Iterator[Tuple[Environment, ChannelHistory]],
        budget: int,
        method: str,
    ) -> Verdict:
        evaluated = 0
        errors = 0
        for env, history in instances:
            try:
                ok = evaluate_formula(formula, env, history, self.config.eval_config)
            except EvaluationError:
                errors += 1
                continue
            evaluated += 1
            if not ok:
                detail = self._describe(env, history)
                return Verdict(False, method, evaluated, detail)
        if evaluated == 0:
            raise DischargeError(
                f"oracle could not evaluate {formula!r} on any instance "
                f"({errors} evaluation errors) — check host-function bindings"
            )
        return Verdict(True, method, evaluated, None)

    def _describe(self, env: Environment, history: ChannelHistory) -> str:
        parts = []
        for chan, seq in history.items():
            parts.append(f"{chan!r}={seq!r}")
        return ", ".join(parts) or "empty histories"

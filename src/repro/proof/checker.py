"""The proof checker: re-validates every node of a proof tree.

A proof is accepted only if every rule application matches its validator
(:data:`repro.proof.rules.VALIDATORS`), every assumption leaf is licensed
by the current context (initial assumptions, plus hypotheses introduced by
the recursion rule), and every oracle leaf is discharged by the
:class:`~repro.proof.oracle.Oracle` — with eigenvariables (introduced by
``generalize``) constrained to their declared domains.

The resulting :class:`CheckReport` lists the oracle discharges — the trust
boundary of the proof — and basic statistics.
"""

from __future__ import annotations

from typing import FrozenSet, List, Mapping, NamedTuple, Optional, Tuple

from repro.errors import ProofError, RuleApplicationError, SideConditionError
from repro.process.definitions import DefinitionList, NO_DEFINITIONS
from repro.proof.judgments import Judgment, Pure
from repro.proof.oracle import Oracle, Verdict
from repro.proof.proof import ProofNode
from repro.proof.rules import VALIDATORS
from repro.assertions.ast import ConstTerm, Term, VarTerm
from repro.values.expressions import SetExpr


class OracleDischarge(NamedTuple):
    """Record of one semantically discharged pure premise."""

    judgment: Judgment
    verdict: Verdict


class CheckReport(NamedTuple):
    """Outcome of checking a proof."""

    conclusion: Judgment
    nodes: int
    rules_used: Mapping[str, int]
    discharges: Tuple[OracleDischarge, ...]

    def summary(self) -> str:
        rules = ", ".join(f"{r}×{n}" for r, n in sorted(self.rules_used.items()))
        return (
            f"checked ⊢ {self.conclusion!r}\n"
            f"  {self.nodes} nodes; rules: {rules}\n"
            f"  {len(self.discharges)} side conditions discharged semantically"
        )


class _Context:
    """Checking context threaded through validators."""

    __slots__ = ("checker", "assumptions", "eigenvars")

    def __init__(
        self,
        checker: "ProofChecker",
        assumptions: FrozenSet[Judgment],
        eigenvars: Mapping[str, SetExpr],
    ) -> None:
        self.checker = checker
        self.assumptions = assumptions
        self.eigenvars = dict(eigenvars)

    @property
    def definitions(self) -> DefinitionList:
        return self.checker.definitions

    @property
    def env(self):
        """The oracle's environment (for evaluating channel subscripts in
        side conditions)."""
        return self.checker.oracle.env

    def check(
        self,
        node: ProofNode,
        extra_assumptions: Tuple[Judgment, ...] = (),
        extra_eigenvars: Optional[Mapping[str, SetExpr]] = None,
    ) -> None:
        assumptions = self.assumptions
        if extra_assumptions:
            assumptions = assumptions | frozenset(extra_assumptions)
        eigenvars = self.eigenvars
        if extra_eigenvars:
            eigenvars = {**eigenvars, **extra_eigenvars}
        self.checker._check_node(node, assumptions, eigenvars)

    def require_membership(self, term: Term, domain: SetExpr) -> None:
        """Side condition of ∀-elimination: the instantiating term's value
        must lie in the quantifier's domain."""
        if isinstance(term, VarTerm):
            declared = self.eigenvars.get(term.name)
            if declared == domain:
                return
            raise SideConditionError(
                f"forall-sat-elim: {term.name!r} is not an eigenvariable over "
                f"{domain!r} (declared: {declared!r})"
            )
        if isinstance(term, ConstTerm):
            semantic = domain.evaluate(self.checker.oracle.env)
            if term.value in semantic:
                return
            raise SideConditionError(
                f"forall-sat-elim: constant {term.value!r} not in {domain!r}"
            )
        raise SideConditionError(
            f"forall-sat-elim: cannot justify membership of {term!r} in {domain!r}"
        )


class ProofChecker:
    """Validates proof trees against a definition list and an oracle."""

    def __init__(
        self,
        definitions: DefinitionList = NO_DEFINITIONS,
        oracle: Optional[Oracle] = None,
    ) -> None:
        self.definitions = definitions
        self.oracle = oracle if oracle is not None else Oracle()
        self._discharges: List[OracleDischarge] = []

    def check(
        self,
        proof: ProofNode,
        assumptions: Tuple[Judgment, ...] = (),
    ) -> CheckReport:
        """Validate ``proof`` under initial ``assumptions``; raises
        :class:`~repro.errors.ProofError` on any defect."""
        self._discharges = []
        self._check_node(proof, frozenset(assumptions), {})
        return CheckReport(
            conclusion=proof.conclusion,
            nodes=proof.size(),
            rules_used=dict(proof.rules_used()),
            discharges=tuple(self._discharges),
        )

    def is_valid(
        self, proof: ProofNode, assumptions: Tuple[Judgment, ...] = ()
    ) -> bool:
        """Non-raising variant of :meth:`check`."""
        try:
            self.check(proof, assumptions)
        except ProofError:
            return False
        return True

    # -- internals ------------------------------------------------------------

    def _check_node(
        self,
        node: ProofNode,
        assumptions: FrozenSet[Judgment],
        eigenvars: Mapping[str, SetExpr],
    ) -> None:
        if node.rule == "assumption":
            if node.conclusion not in assumptions:
                raise RuleApplicationError(
                    f"assumption {node.conclusion!r} is not in the context"
                )
            return
        if node.rule == "oracle":
            conclusion = node.conclusion
            if not isinstance(conclusion, Pure):
                raise RuleApplicationError("oracle leaves must conclude pure judgments")
            verdict = self.oracle.require(conclusion.formula, eigenvars)
            self._discharges.append(OracleDischarge(conclusion, verdict))
            return
        validator = VALIDATORS.get(node.rule)
        if validator is None:
            raise RuleApplicationError(f"unknown rule {node.rule!r}")
        validator(node, _Context(self, assumptions, eigenvars))

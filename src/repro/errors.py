"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also catching programming
mistakes such as :class:`TypeError` from their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class EvaluationError(ReproError):
    """An expression, set expression, or assertion could not be evaluated."""


class UnboundVariableError(EvaluationError):
    """A variable, process name, or channel was looked up but never bound."""

    def __init__(self, name: str, kind: str = "variable") -> None:
        super().__init__(f"unbound {kind}: {name!r}")
        self.name = name
        self.kind = kind


class DomainError(EvaluationError):
    """A value fell outside the set expression that was meant to contain it,
    or an infinite set was used where a finite one is required."""


class ParseError(ReproError):
    """The process- or assertion-notation parser rejected its input."""

    def __init__(self, message: str, position: int, text: str) -> None:
        line = text.count("\n", 0, position) + 1
        col = position - (text.rfind("\n", 0, position) + 1) + 1
        super().__init__(f"{message} at line {line}, column {col}")
        self.position = position
        self.line = line
        self.column = col


class DefinitionError(ReproError):
    """A process definition list is malformed (duplicate names, unguarded
    recursion where a guard is required, reference to an undefined name)."""


class SemanticsError(ReproError):
    """The denotational semantics could not be computed as requested."""


class OperationalError(ReproError):
    """The operational simulator was driven into an invalid configuration."""


class SubstitutionError(ReproError):
    """An assertion substitution would capture a bound variable or is
    otherwise ill-formed."""


class ProofError(ReproError):
    """Base class for failures of the proof checker."""


class RuleApplicationError(ProofError):
    """An inference rule was applied to premises of the wrong shape."""


class SideConditionError(ProofError):
    """A rule's side condition (freshness, channel-name disjointness, ...)
    does not hold for the attempted application."""


class DischargeError(ProofError):
    """The oracle could not discharge a pure (process-free) premise."""

"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also catching programming
mistakes such as :class:`TypeError` from their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class BudgetExceeded(ReproError):
    """A resource budget tripped and the computation stopped cooperatively.

    Carries the :class:`~repro.runtime.governor.Checkpoint` describing
    what had been *soundly completed* when the budget ran out — the
    deepest finished approximation level, traces verified so far, states
    explored — so callers can report a partial result ("verified to depth
    k, no counterexample") and, where supported, resume from it.
    """

    def __init__(self, resource: str, limit: object, checkpoint: object = None) -> None:
        message = f"{resource} budget of {limit} exceeded"
        if checkpoint is not None:
            message += f" — {checkpoint.describe()}"
        super().__init__(message)
        self.resource = resource
        self.limit = limit
        self.checkpoint = checkpoint

    def with_checkpoint(self, checkpoint: object) -> "BudgetExceeded":
        """The same trip, re-raised with an enriched checkpoint (outer
        layers know more about what they had completed than the inner
        counter that tripped)."""
        return BudgetExceeded(self.resource, self.limit, checkpoint)


class KernelStateError(ReproError):
    """A trie node was used against a kernel state it does not belong to.

    Arena node ids are state-local: a :class:`~repro.traces.trie.ClosureNode`
    view built inside one :class:`~repro.traces.trie.KernelState` (a worker's
    ``private_state()``, or a generation discarded by ``clear_interner()``)
    names a row of *that* state's arena and nothing else.  Feeding it to an
    operator running against a different state would silently alias an
    unrelated node, so the kernel raises instead; carry nodes across states
    with :func:`~repro.traces.trie.reintern`.
    """


class EvaluationError(ReproError):
    """An expression, set expression, or assertion could not be evaluated."""


class UnboundVariableError(EvaluationError):
    """A variable, process name, or channel was looked up but never bound."""

    def __init__(self, name: str, kind: str = "variable") -> None:
        super().__init__(f"unbound {kind}: {name!r}")
        self.name = name
        self.kind = kind


class DomainError(EvaluationError):
    """A value fell outside the set expression that was meant to contain it,
    or an infinite set was used where a finite one is required."""


class ParseError(ReproError):
    """The process- or assertion-notation parser rejected its input."""

    def __init__(self, message: str, position: int, text: str) -> None:
        line = text.count("\n", 0, position) + 1
        col = position - (text.rfind("\n", 0, position) + 1) + 1
        super().__init__(f"{message} at line {line}, column {col}")
        self.position = position
        self.line = line
        self.column = col


class DefinitionError(ReproError):
    """A process definition list is malformed (duplicate names, unguarded
    recursion where a guard is required, reference to an undefined name)."""


class SemanticsError(ReproError):
    """The denotational semantics could not be computed as requested."""


class OperationalError(ReproError):
    """The operational simulator was driven into an invalid configuration."""


class SubstitutionError(ReproError):
    """An assertion substitution would capture a bound variable or is
    otherwise ill-formed."""


class ProofError(ReproError):
    """Base class for failures of the proof checker."""


class RuleApplicationError(ProofError):
    """An inference rule was applied to premises of the wrong shape."""


class SideConditionError(ProofError):
    """A rule's side condition (freshness, channel-name disjointness, ...)
    does not hold for the attempted application."""


class DischargeError(ProofError):
    """The oracle could not discharge a pure (process-free) premise."""


class ServerError(ReproError):
    """The ``repro serve`` daemon (or its client) failed structurally —
    connection lost beyond the retry budget, malformed wire frame, worker
    pool crashed repeatedly on one request.  Distinct from the errors a
    *query* can produce, which travel inside a response and keep their
    own exit codes."""


class Overloaded(ServerError):
    """The daemon shed this request because its bounded queue was full.

    Deliberately explicit instead of queueing unboundedly: the client
    knows immediately that the verdict was never computed and may retry
    later; nothing was partially evaluated."""


# ---------------------------------------------------------------------------
# CLI exit-code taxonomy
# ---------------------------------------------------------------------------

#: Input could not be read or parsed (bad file, bad notation).
EXIT_PARSE = 2
#: The semantics could not be computed (bad bounds, unbound names, ...).
EXIT_SEMANTICS = 3
#: A resource budget tripped; a partial result was reported.
EXIT_BUDGET = 4
#: The operational simulator hit an invalid configuration.
EXIT_OPERATIONAL = 5
#: The proof checker rejected a derivation.
EXIT_PROOF = 6
#: Any other library error.
EXIT_ERROR = 7
#: The ``repro serve`` daemon shed the request (bounded queue full).
EXIT_OVERLOADED = 8
#: Client/daemon failure: connection lost beyond the retry budget,
#: malformed frames, or a request that crashed every worker it was
#: dispatched to.
EXIT_SERVER = 9


def exit_code_for(exc: BaseException) -> int:
    """Map an exception to the CLI's exit-code taxonomy.

    One family, one code, so scripts can branch on the *kind* of failure
    without scraping stderr.
    """
    if isinstance(exc, BudgetExceeded):
        return EXIT_BUDGET
    if isinstance(exc, Overloaded):
        return EXIT_OVERLOADED
    if isinstance(exc, ServerError):
        return EXIT_SERVER
    if isinstance(exc, (ParseError, DefinitionError, OSError)):
        return EXIT_PARSE
    if isinstance(exc, (SemanticsError, EvaluationError, SubstitutionError)):
        return EXIT_SEMANTICS
    if isinstance(exc, OperationalError):
        return EXIT_OPERATIONAL
    if isinstance(exc, ProofError):
        return EXIT_PROOF
    return EXIT_ERROR

"""Semantic value sets (paper §1.1 item 4).

A *domain* is the meaning of a set expression such as ``NAT``, ``{0..3}``
or ``{ACK, NACK}``: a set of message values supporting membership tests
and *bounded enumeration*.  Bounded enumeration is the reproduction
substitute for the paper's infinite sets (DESIGN.md §4): ``NAT`` is
infinite, so wherever the library must enumerate it (input prefixes during
trace enumeration, ∀-elimination during model checking) it draws the first
``limit`` elements in a fixed canonical order.  Membership, by contrast,
is always exact.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterator, Tuple

from repro.errors import DomainError

Value = Any  # message values: ints, strings, tuples thereof


def _value_sort_key(value: Value) -> Tuple[str, Any]:
    """A total order across the mixed value universe, for canonical output."""
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, int):
        return ("int", value)
    if isinstance(value, str):
        return ("str", value)
    if isinstance(value, tuple):
        return ("tuple", tuple(_value_sort_key(v) for v in value))
    return ("other", repr(value))


class Domain:
    """Abstract set of message values.

    Subclasses implement :meth:`__contains__` (exact membership) and
    :meth:`enumerate` (canonical bounded enumeration).
    """

    #: True when :meth:`enumerate` with a large enough limit yields every
    #: element of the domain.
    is_finite: bool = False

    def __contains__(self, value: Value) -> bool:
        raise NotImplementedError

    def enumerate(self, limit: int) -> Iterator[Value]:
        """Yield up to ``limit`` elements in a deterministic canonical order."""
        raise NotImplementedError

    def sample(self, limit: int) -> Tuple[Value, ...]:
        """The canonical bounded enumeration as a tuple."""
        return tuple(self.enumerate(limit))

    def require_finite(self) -> FrozenSet[Value]:
        """Return all elements, or raise :class:`DomainError` if infinite."""
        if not self.is_finite:
            raise DomainError(f"domain {self!r} is not finite")
        return frozenset(self.enumerate(10 ** 9))

    def union(self, other: "Domain") -> "Domain":
        return UnionDomain((self, other))


class FiniteDomain(Domain):
    """An explicit finite set of values, e.g. ``{ACK, NACK}`` or ``{0..3}``."""

    is_finite = True

    __slots__ = ("_values",)

    def __init__(self, values: Any) -> None:
        self._values: FrozenSet[Value] = frozenset(values)

    @property
    def values(self) -> FrozenSet[Value]:
        return self._values

    def __contains__(self, value: Value) -> bool:
        return value in self._values

    def enumerate(self, limit: int) -> Iterator[Value]:
        ordered = sorted(self._values, key=_value_sort_key)
        yield from ordered[:limit]

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FiniteDomain) and self._values == other._values

    def __hash__(self) -> int:
        return hash(("FiniteDomain", self._values))

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in sorted(self._values, key=_value_sort_key))
        return f"{{{inner}}}"


class NaturalsDomain(Domain):
    """The natural numbers ``NAT`` = {0, 1, 2, ...} (paper §1.1)."""

    is_finite = False

    def __contains__(self, value: Value) -> bool:
        return isinstance(value, int) and not isinstance(value, bool) and value >= 0

    def enumerate(self, limit: int) -> Iterator[Value]:
        yield from range(max(limit, 0))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NaturalsDomain)

    def __hash__(self) -> int:
        return hash("NaturalsDomain")

    def __repr__(self) -> str:
        return "NAT"


class IntegersDomain(Domain):
    """All integers; enumerated canonically as 0, -1, 1, -2, 2, ..."""

    is_finite = False

    def __contains__(self, value: Value) -> bool:
        return isinstance(value, int) and not isinstance(value, bool)

    def enumerate(self, limit: int) -> Iterator[Value]:
        count = 0
        n = 0
        while count < limit:
            yield n
            count += 1
            if count >= limit:
                return
            if n >= 0:
                n = -(n + 1)
            else:
                n = -n

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntegersDomain)

    def __hash__(self) -> int:
        return hash("IntegersDomain")

    def __repr__(self) -> str:
        return "INT"


class UnionDomain(Domain):
    """Union of several domains, e.g. ``M ∪ {ACK, NACK}`` (§2.2)."""

    __slots__ = ("_parts",)

    def __init__(self, parts: Any) -> None:
        flattened = []
        for part in parts:
            if isinstance(part, UnionDomain):
                flattened.extend(part._parts)
            else:
                flattened.append(part)
        self._parts: Tuple[Domain, ...] = tuple(flattened)
        if not self._parts:
            raise DomainError("union of no domains")

    @property
    def parts(self) -> Tuple[Domain, ...]:
        return self._parts

    @property
    def is_finite(self) -> bool:  # type: ignore[override]
        return all(part.is_finite for part in self._parts)

    def __contains__(self, value: Value) -> bool:
        return any(value in part for part in self._parts)

    def enumerate(self, limit: int) -> Iterator[Value]:
        seen = set()
        # Round-robin across parts so an infinite first part cannot starve
        # the finite ones.
        iterators = [part.enumerate(limit) for part in self._parts]
        active = list(iterators)
        while active and len(seen) < limit:
            next_round = []
            for iterator in active:
                try:
                    value = next(iterator)
                except StopIteration:
                    continue
                next_round.append(iterator)
                if value not in seen:
                    seen.add(value)
                    yield value
                    if len(seen) >= limit:
                        return
            active = next_round

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UnionDomain) and self._parts == other._parts

    def __hash__(self) -> int:
        return hash(("UnionDomain", self._parts))

    def __repr__(self) -> str:
        return " ∪ ".join(repr(part) for part in self._parts)


class IntersectionDomain(Domain):
    """Intersection of several domains.

    Arises when two processes *input* on the same shared channel (the
    paper's "all such inputs occur simultaneously" note, §1.2): the
    communicated value must lie in every input's set.  Enumeration filters
    the first part's canonical enumeration, over-scanning by a bounded
    factor, so a sparse intersection may enumerate fewer than ``limit``
    elements; membership is always exact.
    """

    __slots__ = ("_parts",)

    _SCAN_FACTOR = 64

    def __init__(self, parts: Any) -> None:
        flattened = []
        for part in parts:
            if isinstance(part, IntersectionDomain):
                flattened.extend(part._parts)
            else:
                flattened.append(part)
        self._parts: Tuple[Domain, ...] = tuple(flattened)
        if not self._parts:
            raise DomainError("intersection of no domains")

    @property
    def parts(self) -> Tuple[Domain, ...]:
        return self._parts

    @property
    def is_finite(self) -> bool:  # type: ignore[override]
        return any(part.is_finite for part in self._parts)

    def __contains__(self, value: Value) -> bool:
        return all(value in part for part in self._parts)

    def enumerate(self, limit: int) -> Iterator[Value]:
        finite = [p for p in self._parts if p.is_finite]
        base = finite[0] if finite else self._parts[0]
        scan = limit * self._SCAN_FACTOR if not base.is_finite else 10 ** 9
        count = 0
        for value in base.enumerate(scan):
            if count >= limit:
                return
            if all(value in part for part in self._parts if part is not base):
                count += 1
                yield value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntersectionDomain) and self._parts == other._parts

    def __hash__(self) -> int:
        return hash(("IntersectionDomain", self._parts))

    def __repr__(self) -> str:
        return " ∩ ".join(repr(part) for part in self._parts)


#: Shared instance of the naturals, the paper's default message type.
NAT = NaturalsDomain()

#: Shared instance of the integers.
INT = IntegersDomain()

"""The expression language (paper §1.1 items 1–4).

Expressions appear in output prefixes ``c!e``, process subscripts ``q[e]``,
channel subscripts ``col[e]``, and — as *set expressions* — in input
prefixes ``c?x:M``.  Per the paper's restriction, expressions contain
constants, variables, and operators only: never process names or channel
names.

Two ASTs live here:

* :class:`Expr` — value-producing expressions (``3*x + y``, ``v[i]``);
* :class:`SetExpr` — set-valued expressions (``NAT``, ``{0..3}``,
  ``{ACK, NACK}``) evaluating to a :class:`~repro.values.domains.Domain`.

Both support :meth:`evaluate` under an :class:`Environment`,
:meth:`free_variables`, and capture-free :meth:`substitute` of a variable
by an expression — the workhorse of the input rule's ``P^x_v``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Tuple

from repro.errors import DomainError, EvaluationError
from repro.values.domains import (
    NAT,
    Domain,
    FiniteDomain,
    UnionDomain,
    Value,
)
from repro.values.environment import Environment

# ---------------------------------------------------------------------------
# Value expressions
# ---------------------------------------------------------------------------


class Expr:
    """Abstract value expression."""

    __slots__ = ()

    def evaluate(self, env: Environment) -> Value:
        """The value of this expression under ``env``."""
        raise NotImplementedError

    def free_variables(self) -> FrozenSet[str]:
        """Names of variables occurring free in this expression."""
        raise NotImplementedError

    def substitute(self, name: str, replacement: "Expr") -> "Expr":
        """This expression with free occurrences of ``name`` replaced."""
        raise NotImplementedError

    # Expressions are plain data: equality is structural and they hash, so
    # they can key dictionaries during proof search.

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))  # type: ignore[attr-defined]

    def _key(self) -> Tuple[Any, ...]:
        raise NotImplementedError


class Const(Expr):
    """A literal value: ``3``, ``"ACK"``."""

    __slots__ = ("value",)

    def __init__(self, value: Value) -> None:
        self.value = value

    def evaluate(self, env: Environment) -> Value:
        return self.value

    def free_variables(self) -> FrozenSet[str]:
        return frozenset()

    def substitute(self, name: str, replacement: Expr) -> Expr:
        return self

    def _key(self) -> Tuple[Any, ...]:
        return (self.value,)

    def __repr__(self) -> str:
        return repr(self.value)


class Var(Expr):
    """A variable reference: ``x``, ``i``."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, env: Environment) -> Value:
        return env.lookup(self.name)

    def free_variables(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def substitute(self, name: str, replacement: Expr) -> Expr:
        return replacement if name == self.name else self

    def _key(self) -> Tuple[Any, ...]:
        return (self.name,)

    def __repr__(self) -> str:
        return self.name


_BINARY_OPS: Dict[str, Callable[[Value, Value], Value]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "div": lambda a, b: a // b,
    "mod": lambda a, b: a % b,
}


class BinOp(Expr):
    """A binary arithmetic operation: ``3*x + y``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _BINARY_OPS:
            raise EvaluationError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env: Environment) -> Value:
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        try:
            return _BINARY_OPS[self.op](left, right)
        except (TypeError, ZeroDivisionError) as exc:
            raise EvaluationError(
                f"cannot evaluate {left!r} {self.op} {right!r}: {exc}"
            ) from exc

    def free_variables(self) -> FrozenSet[str]:
        return self.left.free_variables() | self.right.free_variables()

    def substitute(self, name: str, replacement: Expr) -> Expr:
        return BinOp(
            self.op,
            self.left.substitute(name, replacement),
            self.right.substitute(name, replacement),
        )

    def _key(self) -> Tuple[Any, ...]:
        return (self.op, self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class UnaryOp(Expr):
    """A unary operation; only negation is needed by the paper's examples."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr) -> None:
        if op != "-":
            raise EvaluationError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def evaluate(self, env: Environment) -> Value:
        value = self.operand.evaluate(env)
        try:
            return -value
        except TypeError as exc:
            raise EvaluationError(f"cannot negate {value!r}") from exc

    def free_variables(self) -> FrozenSet[str]:
        return self.operand.free_variables()

    def substitute(self, name: str, replacement: Expr) -> Expr:
        return UnaryOp(self.op, self.operand.substitute(name, replacement))

    def _key(self) -> Tuple[Any, ...]:
        return (self.op, self.operand)

    def __repr__(self) -> str:
        return f"(-{self.operand!r})"


class FuncCall(Expr):
    """Application of a named host function, e.g. the fixed vector ``v[i]``
    of the multiplier network (§1.3 example 5).

    The environment must bind ``name`` to a Python callable.  This is how
    constant tables and pure helper functions enter expressions without
    extending the core grammar.
    """

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Tuple[Expr, ...]) -> None:
        self.name = name
        self.args = tuple(args)

    def evaluate(self, env: Environment) -> Value:
        func = env.lookup(self.name, kind="function")
        if not callable(func):
            raise EvaluationError(f"{self.name!r} is bound to a non-callable")
        values = [arg.evaluate(env) for arg in self.args]
        try:
            return func(*values)
        except Exception as exc:  # host function failure is an eval failure
            raise EvaluationError(f"{self.name}({values}) raised {exc!r}") from exc

    def free_variables(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for arg in self.args:
            result |= arg.free_variables()
        return result

    def substitute(self, name: str, replacement: Expr) -> Expr:
        return FuncCall(
            self.name, tuple(arg.substitute(name, replacement) for arg in self.args)
        )

    def _key(self) -> Tuple[Any, ...]:
        return (self.name, self.args)

    def __repr__(self) -> str:
        inner = ", ".join(repr(arg) for arg in self.args)
        return f"{self.name}({inner})"


# ---------------------------------------------------------------------------
# Set expressions
# ---------------------------------------------------------------------------


class SetExpr:
    """Abstract set-valued expression, evaluating to a :class:`Domain`."""

    __slots__ = ()

    def evaluate(self, env: Environment) -> Domain:
        raise NotImplementedError

    def free_variables(self) -> FrozenSet[str]:
        raise NotImplementedError

    def substitute(self, name: str, replacement: Expr) -> "SetExpr":
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))  # type: ignore[attr-defined]

    def _key(self) -> Tuple[Any, ...]:
        raise NotImplementedError


class NatSet(SetExpr):
    """The literal set expression ``NAT``."""

    __slots__ = ()

    def evaluate(self, env: Environment) -> Domain:
        return NAT

    def free_variables(self) -> FrozenSet[str]:
        return frozenset()

    def substitute(self, name: str, replacement: Expr) -> SetExpr:
        return self

    def _key(self) -> Tuple[Any, ...]:
        return ()

    def __repr__(self) -> str:
        return "NAT"


class IntSet(SetExpr):
    """The literal set expression ``INT`` (all integers)."""

    __slots__ = ()

    def evaluate(self, env: Environment) -> Domain:
        from repro.values.domains import INT

        return INT

    def free_variables(self) -> FrozenSet[str]:
        return frozenset()

    def substitute(self, name: str, replacement: Expr) -> SetExpr:
        return self

    def _key(self) -> Tuple[Any, ...]:
        return ()

    def __repr__(self) -> str:
        return "INT"


class SetLiteral(SetExpr):
    """A finite set of expressions, e.g. ``{ACK, NACK}`` or ``{x+1, 0}``."""

    __slots__ = ("elements",)

    def __init__(self, elements: Tuple[Expr, ...]) -> None:
        self.elements = tuple(elements)

    def evaluate(self, env: Environment) -> Domain:
        return FiniteDomain(element.evaluate(env) for element in self.elements)

    def free_variables(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for element in self.elements:
            result |= element.free_variables()
        return result

    def substitute(self, name: str, replacement: Expr) -> SetExpr:
        return SetLiteral(
            tuple(element.substitute(name, replacement) for element in self.elements)
        )

    def _key(self) -> Tuple[Any, ...]:
        return (self.elements,)

    def __repr__(self) -> str:
        inner = ", ".join(repr(element) for element in self.elements)
        return f"{{{inner}}}"


class RangeSet(SetExpr):
    """A finite integer range ``{lo..hi}``, inclusive at both ends."""

    __slots__ = ("low", "high")

    def __init__(self, low: Expr, high: Expr) -> None:
        self.low = low
        self.high = high

    def evaluate(self, env: Environment) -> Domain:
        low = self.low.evaluate(env)
        high = self.high.evaluate(env)
        if not isinstance(low, int) or not isinstance(high, int):
            raise DomainError(f"range bounds must be integers: {low!r}..{high!r}")
        return FiniteDomain(range(low, high + 1))

    def free_variables(self) -> FrozenSet[str]:
        return self.low.free_variables() | self.high.free_variables()

    def substitute(self, name: str, replacement: Expr) -> SetExpr:
        return RangeSet(
            self.low.substitute(name, replacement),
            self.high.substitute(name, replacement),
        )

    def _key(self) -> Tuple[Any, ...]:
        return (self.low, self.high)

    def __repr__(self) -> str:
        return f"{{{self.low!r}..{self.high!r}}}"


class NamedSet(SetExpr):
    """A set named in the environment, e.g. the abstract message type ``M``
    of the protocol example (§1.3).  The environment must bind the name to a
    :class:`Domain`."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, env: Environment) -> Domain:
        domain = env.lookup(self.name, kind="set name")
        if not isinstance(domain, Domain):
            raise DomainError(f"{self.name!r} is bound to {domain!r}, not a Domain")
        return domain

    def free_variables(self) -> FrozenSet[str]:
        # Set names are resolved from the environment but are not message
        # variables; they are not substitutable and not "free variables" in
        # the paper's sense.
        return frozenset()

    def substitute(self, name: str, replacement: Expr) -> SetExpr:
        return self

    def _key(self) -> Tuple[Any, ...]:
        return (self.name,)

    def __repr__(self) -> str:
        return self.name


class SetUnion(SetExpr):
    """Union of set expressions, e.g. ``M ∪ {ACK, NACK}`` (§2.2)."""

    __slots__ = ("parts",)

    def __init__(self, parts: Tuple[SetExpr, ...]) -> None:
        self.parts = tuple(parts)
        if not self.parts:
            raise DomainError("union of no set expressions")

    def evaluate(self, env: Environment) -> Domain:
        domains = [part.evaluate(env) for part in self.parts]
        if len(domains) == 1:
            return domains[0]
        return UnionDomain(domains)

    def free_variables(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for part in self.parts:
            result |= part.free_variables()
        return result

    def substitute(self, name: str, replacement: Expr) -> SetExpr:
        return SetUnion(tuple(part.substitute(name, replacement) for part in self.parts))

    def _key(self) -> Tuple[Any, ...]:
        return (self.parts,)

    def __repr__(self) -> str:
        return " ∪ ".join(repr(part) for part in self.parts)


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def const(value: Value) -> Const:
    """Shorthand for :class:`Const`."""
    return Const(value)


def var(name: str) -> Var:
    """Shorthand for :class:`Var`."""
    return Var(name)


def as_expr(value: Any) -> Expr:
    """Coerce a Python value, name, or Expr into an :class:`Expr`.

    Ints and strings become constants — except that by convention a string
    that is a lower-case identifier becomes a variable reference.  Use
    explicit :func:`const`/:func:`var` when the convention is wrong.
    """
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool) or isinstance(value, int):
        return Const(value)
    if isinstance(value, str):
        if value.isidentifier() and value == value.lower():
            return Var(value)
        return Const(value)
    if isinstance(value, tuple):
        return Const(value)
    raise EvaluationError(f"cannot coerce {value!r} to an expression")

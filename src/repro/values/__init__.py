"""Value domain and expression substrate (paper §1.1 items 1–4).

This package provides:

* :mod:`repro.values.environment` — immutable variable environments ρ;
* :mod:`repro.values.domains` — semantic value sets (``NAT``, finite sets,
  ranges) with membership and bounded enumeration;
* :mod:`repro.values.expressions` — the expression language used in output
  prefixes ``c!e``, subscripts ``q[e]``/``col[e]``, and set expressions
  ``M`` of input prefixes ``c?x:M``.
"""

from repro.values.domains import (
    Domain,
    FiniteDomain,
    NaturalsDomain,
    IntegersDomain,
    UnionDomain,
    NAT,
    INT,
)
from repro.values.environment import Environment
from repro.values.expressions import (
    Expr,
    Const,
    Var,
    BinOp,
    UnaryOp,
    FuncCall,
    SetExpr,
    SetLiteral,
    RangeSet,
    NamedSet,
    SetUnion,
    NatSet,
    const,
    var,
)

__all__ = [
    "Domain",
    "FiniteDomain",
    "NaturalsDomain",
    "IntegersDomain",
    "UnionDomain",
    "NAT",
    "INT",
    "Environment",
    "Expr",
    "Const",
    "Var",
    "BinOp",
    "UnaryOp",
    "FuncCall",
    "SetExpr",
    "SetLiteral",
    "RangeSet",
    "NamedSet",
    "SetUnion",
    "NatSet",
    "const",
    "var",
]

"""Immutable environments ρ (paper §3.2).

An environment maps names to values.  In the paper an environment ascribes
meanings to *variables* (message values), *process names* (prefix closures),
and — when extended with a channel history ``ch(s)`` — *channel names*
(sequences of messages).  One immutable class serves all three uses; the
packages that need a particular kind of binding document which names they
expect to find.

Environments are persistent: :meth:`Environment.bind` returns a new
environment sharing structure with the old one, so proof search and
fixed-point iteration can freely extend environments without copying.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from repro.errors import UnboundVariableError


class Environment:
    """A persistent mapping from names to arbitrary values.

    The empty environment is ``Environment()``; bindings are added with
    :meth:`bind` (one name) or :meth:`bind_all` (many), each returning a
    *new* environment.  Lookup of an unbound name raises
    :class:`~repro.errors.UnboundVariableError`.
    """

    __slots__ = ("_bindings", "_parent")

    def __init__(
        self,
        bindings: Optional[Mapping[str, Any]] = None,
        _parent: Optional["Environment"] = None,
    ) -> None:
        self._bindings: Dict[str, Any] = dict(bindings) if bindings else {}
        self._parent = _parent

    # -- construction ------------------------------------------------------

    def bind(self, name: str, value: Any) -> "Environment":
        """Return a new environment in which ``name`` maps to ``value``.

        Shadows any earlier binding of the same name, exactly like the
        paper's ρ[v/x] notation.
        """
        return Environment({name: value}, _parent=self)

    def bind_all(self, bindings: Mapping[str, Any]) -> "Environment":
        """Return a new environment with every binding of ``bindings`` added."""
        if not bindings:
            return self
        return Environment(dict(bindings), _parent=self)

    # -- lookup ------------------------------------------------------------

    def lookup(self, name: str, kind: str = "variable") -> Any:
        """Return the value bound to ``name``.

        ``kind`` only affects the error message (e.g. ``"process name"``).
        """
        env: Optional[Environment] = self
        while env is not None:
            if name in env._bindings:
                return env._bindings[name]
            env = env._parent
        raise UnboundVariableError(name, kind)

    def get(self, name: str, default: Any = None) -> Any:
        """Return the value bound to ``name`` or ``default`` if unbound."""
        try:
            return self.lookup(name)
        except UnboundVariableError:
            return default

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        env: Optional[Environment] = self
        while env is not None:
            if name in env._bindings:
                return True
            env = env._parent
        return False

    def names(self) -> Tuple[str, ...]:
        """All bound names, innermost shadowing outermost, in sorted order."""
        seen: Dict[str, None] = {}
        env: Optional[Environment] = self
        while env is not None:
            for key in env._bindings:
                seen.setdefault(key, None)
            env = env._parent
        return tuple(sorted(seen))

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def flatten(self) -> Dict[str, Any]:
        """A plain dict snapshot of all visible bindings."""
        return {name: self.lookup(name) for name in self.names()}

    def __repr__(self) -> str:
        items = ", ".join(f"{k}={v!r}" for k, v in sorted(self.flatten().items()))
        return f"Environment({items})"


#: The empty environment, shared since environments are immutable.
EMPTY = Environment()

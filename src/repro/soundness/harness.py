"""Per-rule empirical soundness experiments (paper §3.4 as experiment E8).

For every inference rule we repeatedly generate random instances, evaluate
the rule's premises *semantically* in the bounded trace model, and —
whenever all premises hold — evaluate the conclusion the same way.  §3.4
proves each rule valid, so the violation count must be **zero**; the
harness also reports how often premises actually held, guarding against
vacuity.

The experiment deliberately goes through the *model*, not the proof
checker: it tests the theorems of §3.4, not the plumbing of §2.1.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional

from repro.assertions.ast import Formula, Implies, LogicalAnd
from repro.assertions.substitution import (
    blank_channels,
    channels_mentioned,
    expr_to_term,
    prefix_channel,
)
from repro.process.analysis import channel_names
from repro.process.ast import (
    STOP,
    Chan,
    Choice,
    Input,
    Output,
    Parallel,
    Process,
)
from repro.process.channels import ChannelExpr, ChannelList
from repro.process.definitions import NO_DEFINITIONS
from repro.process.parser import parse_definitions
from repro.proof.oracle import Oracle, OracleConfig
from repro.sat.checker import SatChecker
from repro.semantics.config import SemanticsConfig
from repro.semantics.fixpoint import ApproximationChain
from repro.soundness.generators import AssertionGenerator, ProcessGenerator
from repro.values.environment import Environment
from repro.values.expressions import Const, SetLiteral


class RuleExperimentResult(NamedTuple):
    """Outcome of one rule's soundness experiment."""

    rule: str
    trials: int
    premises_held: int
    violations: int
    example_violation: Optional[str]

    @property
    def sound(self) -> bool:
        return self.violations == 0

    def summary(self) -> str:
        status = "OK " if self.sound else "FAIL"
        return (
            f"[{status}] {self.rule:<12} trials={self.trials:<5} "
            f"premises-held={self.premises_held:<5} violations={self.violations}"
        )


class _Experiment:
    """Shared machinery: a checker, generators, and counters."""

    def __init__(self, seed: int, trials: int, depth: int = 4) -> None:
        self.trials = trials
        self.config = SemanticsConfig(depth=depth, sample=2)
        self.checker = SatChecker(NO_DEFINITIONS, Environment(), self.config)
        self.oracle = Oracle(
            Environment(), OracleConfig(value_pool=(0, 1), max_history_length=3)
        )
        self.processes = ProcessGenerator(seed=seed, max_depth=3)
        self.assertions = AssertionGenerator(seed=seed + 1)

    def sat(self, process: Process, formula: Formula) -> bool:
        return self.checker.check(process, formula).holds

    def pure(self, formula: Formula) -> bool:
        try:
            return self.oracle.holds(formula).ok
        except Exception:
            return False


def _run(
    rule: str,
    trials: int,
    seed: int,
    instance: Callable[[_Experiment], Optional[tuple]],
) -> RuleExperimentResult:
    """Drive one experiment: ``instance`` returns ``None`` when premises do
    not hold, else ``(conclusion_process, conclusion_formula, label)``."""
    exp = _Experiment(seed, trials)
    premises_held = 0
    violations = 0
    example = None
    for _ in range(trials):
        outcome = instance(exp)
        if outcome is None:
            continue
        premises_held += 1
        process, formula, label = outcome
        if not exp.sat(process, formula):
            violations += 1
            if example is None:
                example = label
    return RuleExperimentResult(rule, trials, premises_held, violations, example)


# ---------------------------------------------------------------------------
# One experiment per rule.
# ---------------------------------------------------------------------------


def _triviality(exp: _Experiment):
    formula = exp.assertions.formula()
    if not exp.pure(formula):
        return None
    process = exp.processes.process()
    return process, formula, f"{process!r} sat {formula!r}"


def _consequence(exp: _Experiment):
    process = exp.processes.process()
    r = exp.assertions.formula()
    s = exp.assertions.formula()
    if not exp.sat(process, r):
        return None
    if not exp.pure(Implies(r, s)):
        return None
    return process, s, f"{process!r} sat {s!r}"


def _conjunction(exp: _Experiment):
    process = exp.processes.process()
    r = exp.assertions.formula()
    s = exp.assertions.formula()
    if not (exp.sat(process, r) and exp.sat(process, s)):
        return None
    return process, LogicalAnd(r, s), f"{process!r} sat conjunction"


def _emptiness(exp: _Experiment):
    formula = exp.assertions.formula()
    if not exp.pure(blank_channels(formula)):
        return None
    return STOP, formula, f"STOP sat {formula!r}"


def _output(exp: _Experiment):
    continuation = exp.processes.process(2)
    channel = ChannelExpr(exp.processes.rng.choice(exp.processes.channels))
    value = exp.processes.rng.choice(exp.processes.values)
    process = Output(channel, Const(value), continuation)
    formula = exp.assertions.formula()
    if not exp.pure(blank_channels(formula)):
        return None
    premise = prefix_channel(formula, channel, expr_to_term(Const(value)))
    if not exp.sat(continuation, premise):
        return None
    return process, formula, f"{process!r} sat {formula!r}"


def _input(exp: _Experiment):
    continuation = exp.processes.process(2)
    channel = ChannelExpr(exp.processes.rng.choice(exp.processes.channels))
    values = exp.processes._value_subset()
    domain = SetLiteral(tuple(Const(v) for v in values))
    process = Input(channel, "x", domain, continuation)
    formula = exp.assertions.formula()
    if not exp.pure(blank_channels(formula)):
        return None
    # Premise: ∀v∈M. P^x_v sat R^c_(v⌢c) — checked per sampled value.
    for value in values:
        instantiated = continuation.substitute("x", Const(value))
        premise = prefix_channel(formula, channel, expr_to_term(Const(value)))
        if not exp.sat(instantiated, premise):
            return None
    return process, formula, f"{process!r} sat {formula!r}"


def _alternative(exp: _Experiment):
    left = exp.processes.process(2)
    right = exp.processes.process(2)
    formula = exp.assertions.formula()
    if not (exp.sat(left, formula) and exp.sat(right, formula)):
        return None
    return Choice(left, right), formula, f"choice sat {formula!r}"


def _parallelism(exp: _Experiment):
    # Components over overlapping alphabets: left {a, wire}, right {wire, b}.
    left_gen = ProcessGenerator(
        seed=exp.processes.rng.randrange(10**6), channels=("a", "wire"), max_depth=3
    )
    right_gen = ProcessGenerator(
        seed=exp.processes.rng.randrange(10**6), channels=("wire", "b"), max_depth=3
    )
    left = left_gen.process()
    right = right_gen.process()
    r = exp.assertions.formula_over(tuple(channel_names(left, None)) or ("a",), 1)
    s = exp.assertions.formula_over(tuple(channel_names(right, None)) or ("b",), 1)
    if not (exp.sat(left, r) and exp.sat(right, s)):
        return None
    process = Parallel(
        left,
        right,
        ChannelList([ChannelExpr("a"), ChannelExpr("wire")]),
        ChannelList([ChannelExpr("wire"), ChannelExpr("b")]),
    )
    return process, LogicalAnd(r, s), f"parallel sat {r!r} & {s!r}"


def _chan(exp: _Experiment):
    body = exp.processes.process()
    hidden = "wire"
    formula = exp.assertions.formula_over(("a", "b"))
    if any(chan.name == hidden for chan in channels_mentioned(formula)):
        return None
    if not exp.sat(body, formula):
        return None
    process = Chan(ChannelList([ChannelExpr(hidden)]), body)
    return process, formula, f"chan {hidden}; … sat {formula!r}"


#: rule name → instance generator
ALL_RULE_EXPERIMENTS: Dict[str, Callable] = {
    "triviality": _triviality,
    "consequence": _consequence,
    "conjunction": _conjunction,
    "emptiness": _emptiness,
    "output": _output,
    "input": _input,
    "alternative": _alternative,
    "parallelism": _parallelism,
    "chan": _chan,
    "recursion": "special-cased",
}


def run_rule_experiment(
    rule: str, trials: int = 200, seed: int = 0
) -> RuleExperimentResult:
    """Run the soundness experiment for one rule."""
    try:
        instance = ALL_RULE_EXPERIMENTS[rule]
    except KeyError:
        raise ValueError(f"unknown rule {rule!r}") from None
    if rule == "recursion":
        # recursion builds its own little definition lists; conclusions are
        # checked inside the instance, so _run's final check re-verifies.
        return _run_recursion(trials, seed)
    return _run(rule, trials, seed, instance)


def _run_recursion(trials: int, seed: int) -> RuleExperimentResult:
    exp = _Experiment(seed, trials)
    premises_held = 0
    violations = 0
    example = None
    from repro.process.ast import Name

    for _ in range(trials):
        rng = exp.processes.rng
        chans = ("a", "b")
        body_src = " -> ".join(
            f"{rng.choice(chans)}!{rng.choice((0, 1))}"
            for _ in range(rng.randint(1, 3))
        )
        defs = parse_definitions(f"p = {body_src} -> p")
        formula = exp.assertions.formula_over(chans)
        if not exp.pure(blank_channels(formula)):
            continue
        # Premise: the body preserves R across every approximation level.
        chain = ApproximationChain(defs, Environment(), exp.config)
        chain.run_until_stable()
        checker = SatChecker(defs, Environment(), exp.config)
        from repro.assertions.eval import evaluate_formula
        from repro.errors import EvaluationError
        from repro.traces.histories import ch

        premise_ok = True
        for level_index in range(chain.levels_computed()):
            closure = chain.level(level_index)["p"]
            for trace in closure:
                try:
                    if not evaluate_formula(formula, Environment(), ch(trace)):
                        premise_ok = False
                        break
                except EvaluationError:
                    premise_ok = False
                    break
            if not premise_ok:
                break
        if not premise_ok:
            continue
        premises_held += 1
        if not checker.check(Name("p"), formula).holds:
            violations += 1
            if example is None:
                example = f"p = {body_src} -> p sat {formula!r}"
    return RuleExperimentResult("recursion", trials, premises_held, violations, example)


def run_all_rule_experiments(
    trials: int = 200, seed: int = 0
) -> List[RuleExperimentResult]:
    """Run every rule's experiment; §3.4 predicts zero violations."""
    return [
        run_rule_experiment(rule, trials, seed) for rule in ALL_RULE_EXPERIMENTS
    ]


class SoundnessRun(NamedTuple):
    """Rule-experiment results together with the trace-trie kernel
    counters the run accumulated — E8 doubles as a stress test of the
    kernel (thousands of small random closures), so its memo hit rates
    are worth recording alongside the violation counts."""

    results: List[RuleExperimentResult]
    kernel_stats: Dict[str, object]

    @property
    def sound(self) -> bool:
        return all(result.sound for result in self.results)


def run_all_with_kernel_stats(trials: int = 200, seed: int = 0) -> SoundnessRun:
    """Like :func:`run_all_rule_experiments`, but reset the kernel
    counters first and return their snapshot with the results."""
    from repro.traces.stats import reset_stats, snapshot

    reset_stats()
    results = run_all_rule_experiments(trials, seed)
    return SoundnessRun(results, snapshot())

"""Seeded random generators for processes and assertions.

The generators produce *closed, finite* process terms (prefixes, choices,
and optionally parallel/chan composites) over a small channel/value
universe, and assertions built from the paper's operators over the same
channels.  They are deterministic given a seed, so soundness experiments
and benchmarks are reproducible.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Tuple

from repro.assertions.ast import (
    Compare,
    Formula,
    Implies,
    Length,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    SeqLit,
    Term,
)
from repro.assertions.builders import chan_, const_
from repro.process.ast import (
    STOP,
    Chan,
    Choice,
    Input,
    Output,
    Parallel,
    Process,
)
from repro.process.channels import ChannelExpr, ChannelList
from repro.values.expressions import Const, SetLiteral


class ProcessGenerator:
    """Random closed process terms."""

    def __init__(
        self,
        seed: int = 0,
        channels: Sequence[str] = ("a", "b", "wire"),
        values: Sequence[object] = (0, 1),
        max_depth: int = 4,
        allow_networks: bool = False,
    ) -> None:
        self.rng = random.Random(seed)
        self.channels = tuple(channels)
        self.values = tuple(values)
        self.max_depth = max_depth
        self.allow_networks = allow_networks

    def process(self, depth: Optional[int] = None) -> Process:
        """One random process term."""
        if depth is None:
            depth = self.max_depth
        if depth <= 0:
            return STOP
        choices = ["stop", "output", "input", "choice"]
        if self.allow_networks and depth >= 2:
            choices += ["chan"]
        kind = self.rng.choice(choices)
        if kind == "stop":
            return STOP
        if kind == "output":
            return Output(
                self._channel(),
                Const(self.rng.choice(self.values)),
                self.process(depth - 1),
            )
        if kind == "input":
            variable = self.rng.choice(("x", "y"))
            domain = SetLiteral(
                tuple(Const(v) for v in self._value_subset())
            )
            return Input(self._channel(), variable, domain, self.process(depth - 1))
        if kind == "choice":
            return Choice(self.process(depth - 1), self.process(depth - 1))
        assert kind == "chan"
        hidden = self.rng.choice(self.channels)
        return Chan(ChannelList([ChannelExpr(hidden)]), self.process(depth - 1))

    def network(self, depth: Optional[int] = None) -> Process:
        """One random *network*: a binary parallel composition of two
        sequential terms, sometimes with a shared channel concealed.

        Networks are where the operational and denotational semantics
        can genuinely disagree (synchronisation + hiding interact), so
        the differential harness generates them explicitly rather than
        waiting for :meth:`process` to roll a ``chan``."""
        if depth is None:
            depth = self.max_depth
        body_depth = max(1, depth - 1)
        network: Process = Parallel(
            self.process(body_depth), self.process(body_depth)
        )
        if self.rng.random() < 0.5:
            hidden = self.rng.choice(self.channels)
            network = Chan(ChannelList([ChannelExpr(hidden)]), network)
        return network

    def _channel(self) -> ChannelExpr:
        return ChannelExpr(self.rng.choice(self.channels))

    def _value_subset(self) -> Tuple[object, ...]:
        count = self.rng.randint(1, len(self.values))
        return tuple(self.rng.sample(self.values, count))


class AssertionGenerator:
    """Random assertions over a channel universe."""

    def __init__(
        self,
        seed: int = 0,
        channels: Sequence[str] = ("a", "b", "wire"),
        values: Sequence[object] = (0, 1),
        max_depth: int = 3,
    ) -> None:
        self.rng = random.Random(seed)
        self.channels = tuple(channels)
        self.values = tuple(values)
        self.max_depth = max_depth

    def formula(self, depth: Optional[int] = None) -> Formula:
        if depth is None:
            depth = self.max_depth
        if depth <= 0:
            return self._comparison()
        kind = self.rng.choice(["cmp", "cmp", "and", "or", "not", "implies"])
        if kind == "cmp":
            return self._comparison()
        if kind == "and":
            return LogicalAnd(self.formula(depth - 1), self.formula(depth - 1))
        if kind == "or":
            return LogicalOr(self.formula(depth - 1), self.formula(depth - 1))
        if kind == "not":
            return LogicalNot(self.formula(depth - 1))
        return Implies(self.formula(depth - 1), self.formula(depth - 1))

    def formula_over(self, channels: Sequence[str], depth: Optional[int] = None) -> Formula:
        """A formula mentioning only the given channels."""
        saved = self.channels
        self.channels = tuple(channels) or ("unused",)
        try:
            return self.formula(depth)
        finally:
            self.channels = saved

    def _comparison(self) -> Formula:
        kind = self.rng.choice(["prefix", "length", "length-const"])
        if kind == "prefix":
            return Compare("<=", self._seq_term(), self._seq_term())
        if kind == "length":
            op = self.rng.choice(["<=", "<", "=", ">="])
            return Compare(op, Length(self._seq_term()), Length(self._seq_term()))
        bound = self.rng.randint(0, 4)
        op = self.rng.choice(["<=", "<", ">="])
        return Compare(op, Length(self._seq_term()), const_(bound))

    def _seq_term(self) -> Term:
        kind = self.rng.choice(["chan", "chan", "chan", "lit"])
        if kind == "chan":
            return chan_(self.rng.choice(self.channels))
        size = self.rng.randint(0, 2)
        return SeqLit(tuple(const_(self.rng.choice(self.values)) for _ in range(size)))

"""Empirical validation of the inference rules (paper §3.4, experiment E8).

§3.4 proves each inference rule valid in the prefix-closure model.  This
package re-verifies those theorems *experimentally*: random processes and
assertions are generated, each rule's premises are evaluated in the
bounded model, and whenever they hold the conclusion is checked too.  A
sound rule yields **zero violations**; the harness also reports how often
the premises actually held, so vacuous runs are visible.
"""

from repro.soundness.generators import AssertionGenerator, ProcessGenerator
from repro.soundness.harness import (
    ALL_RULE_EXPERIMENTS,
    RuleExperimentResult,
    SoundnessRun,
    run_all_rule_experiments,
    run_all_with_kernel_stats,
    run_rule_experiment,
)

__all__ = [
    "ProcessGenerator",
    "AssertionGenerator",
    "RuleExperimentResult",
    "SoundnessRun",
    "run_rule_experiment",
    "run_all_rule_experiments",
    "run_all_with_kernel_stats",
    "ALL_RULE_EXPERIMENTS",
]

"""Dining philosophers — the §4 deadlock, made concrete.

The paper's conclusion laments that its proof system "cannot prove (or
even express) the absence of deadlock".  This module supplies the classic
witness: ``n`` philosophers and ``n`` forks, each philosopher grabbing
the left fork then the right.  A channel connects exactly one philosopher
to one fork (a communication on a channel involves *every* process whose
alphabet contains it, so fork access must be point-to-point)::

    phil[i] = grab[i]!i -> reach[i]!i -> eat[i]!i
              -> drop[i]!i -> release[i]!i -> phil[i]
    fork[i] = grab[i]?j:M -> drop[i]?k:{j} -> fork[i]
            | reach[(i-1) mod n]?j:M -> release[(i-1) mod n]?k:{j} -> fork[i]
    table   = phil[0] || … || fork[n-1]

``grab[i]``/``drop[i]`` join philosopher i with their left fork i;
``reach[i]``/``release[i]`` join philosopher i with their right fork
(i+1) mod n.

Every fork's safety invariant is provable with the §2.1 rules — and the
system still deadlocks when every philosopher holds their left fork.  The
partial-correctness theory is satisfied; the operational explorer finds
the deadlock the theory cannot see (experiment E9's constructive half).
"""

from __future__ import annotations

from typing import Dict, List

from repro.assertions.ast import Formula
from repro.assertions.parser import parse_assertion
from repro.operational.explorer import Explorer
from repro.operational.step import OperationalSemantics
from repro.process.ast import Name
from repro.process.definitions import DefinitionList
from repro.process.parser import parse_definitions
from repro.sat.checker import SatChecker, SatResult
from repro.semantics.config import SemanticsConfig
from repro.traces.events import Trace
from repro.values.environment import Environment

CHANNELS = frozenset({"grab", "reach", "drop", "release", "eat"})


def source(seats: int) -> str:
    """The definition text for ``seats`` philosophers."""
    if seats < 2:
        raise ValueError("the table needs at least two seats")
    components = [f"phil[{i}]" for i in range(seats)] + [
        f"fork[{i}]" for i in range(seats)
    ]
    n = seats
    m = f"{{0..{n - 1}}}"
    return (
        f"phil[i:{m}] = grab[i]!i -> reach[i]!i -> eat[i]!i ->"
        f" drop[i]!i -> release[i]!i -> phil[i];\n"
        f"fork[i:{m}] = grab[i]?j:{m} -> drop[i]?k:{{j}} -> fork[i]"
        f" | reach[(i+{n - 1}) mod {n}]?j:{m} ->"
        f" release[(i+{n - 1}) mod {n}]?k:{{j}} -> fork[i];\n"
        f"table = {' || '.join(components)}"
    )


def definitions(seats: int = 3) -> DefinitionList:
    return parse_definitions(source(seats))


def environment() -> Environment:
    return Environment()


def fork_safety_spec(fork_index: int) -> Formula:
    """Fork ``i`` is never grabbed while held:
    ``#drop[i] ≤ #grab[i] ≤ #drop[i]+1`` (and likewise for the right-hand
    pair) — the partial-correctness half of mutual exclusion."""
    i = fork_index
    return parse_assertion(
        f"#drop[{i}] <= #grab[{i}] & #grab[{i}] <= #drop[{i}] + 1"
        f" & #release[{i}] <= #reach[{i}]"
        f" & #reach[{i}] <= #release[{i}] + 1",
        CHANNELS,
    )


def semantics(seats: int = 3) -> OperationalSemantics:
    return OperationalSemantics(definitions(seats), environment(), sample=seats)


def check_safety(seats: int = 3, depth: int = 4) -> Dict[str, SatResult]:
    """The partial-correctness story: every fork invariant holds."""
    checker = SatChecker(
        definitions(seats),
        environment(),
        SemanticsConfig(depth=depth, sample=seats),
        engine="operational",
    )
    return {
        f"fork-{i}": checker.check(Name("table"), fork_safety_spec(i))
        for i in range(seats)
    }


def find_deadlocks(seats: int = 3, depth: int = None, max_states: int = 500_000) -> List[Trace]:
    """The total-correctness story the paper cannot tell: the all-pick-left
    deadlock, reached after exactly ``seats`` visible events."""
    if depth is None:
        depth = seats
    explorer = Explorer(semantics(seats), max_states=max_states)
    return explorer.find_deadlocks(Name("table"), depth)


def fork_invariant(seats: int) -> Formula:
    """The fork-array invariant, parametric in the fork index ``i``.

    The right-hand channel is written ``(i+n-1) mod n`` with the same
    literal spelling as the definition, so the proof rules' structural
    channel matching lines up.
    """
    n = seats
    right = f"(i+{n - 1}) mod {n}"
    return parse_assertion(
        f"#drop[i] <= #grab[i] & #grab[i] <= #drop[i] + 1"
        f" & #release[{right}] <= #reach[{right}]"
        f" & #reach[{right}] <= #release[{right}] + 1",
        CHANNELS,
    )


def prove_fork_safety(seats: int = 2):
    """Prove the fork lemma ``∀i. fork[i] sat …`` with the §2.1 rules —
    the partial-correctness half that *is* expressible in the paper's
    system (the deadlock half is not)."""
    from repro.proof.checker import ProofChecker
    from repro.proof.oracle import Oracle, OracleConfig
    from repro.proof.tactics import SatProver

    defs = definitions(seats)
    pool = tuple(range(seats))
    oracle = Oracle(
        environment(), OracleConfig(value_pool=pool, max_history_length=2)
    )
    prover = SatProver(defs, oracle, {"fork": ("i", fork_invariant(seats))})
    proof = prover.prove_name("fork")
    return ProofChecker(defs, oracle).check(proof)


def classic_deadlock_trace(seats: int = 3) -> Trace:
    """The canonical witness: philosopher i grabs left fork i, for every i."""
    from repro.traces.events import Channel, Event

    return tuple(Event(Channel("grab", i), i) for i in range(seats))

"""The paper's example systems, packaged with specifications and proofs.

* :mod:`repro.systems.copier`     — the endless copier and the two-stage
  copying network (§1.3 examples 1, §2.1 worked examples);
* :mod:`repro.systems.protocol`   — the sender/receiver retransmission
  protocol (§1.3 examples 2–4, §2.2, Table 1);
* :mod:`repro.systems.multiplier` — the matrix–vector multiplier network
  (§1.3 example 5, §2 item 3's invariant);
* :mod:`repro.systems.buffer` — an n-place buffer chain with
  compositional order/capacity proofs (beyond the paper's examples, same
  proof technique);
* :mod:`repro.systems.philosophers` — dining philosophers: provable
  partial correctness, detectable deadlock (the §4 gap, exercised);
* :mod:`repro.systems.register` — a storage register as a process:
  integrity provable, freshness *inexpressible* in the assertion
  language (a boundary the paper does not discuss).

Each module exports its definitions, environment, specification formulas,
invariant annotations for the proof search, and helpers that model-check
and prove the claims.
"""

from repro.systems import (
    buffer,
    copier,
    multiplier,
    philosophers,
    protocol,
    register,
)

__all__ = [
    "copier",
    "protocol",
    "multiplier",
    "buffer",
    "philosophers",
    "register",
]

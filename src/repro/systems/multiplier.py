"""The matrix–vector multiplier network (paper §1.3 example 5).

Definitions::

    mult[i:{1..3}] = row[i]?x:NAT -> col[i-1]?y:NAT
                     -> col[i]!(v[i]*x + y) -> mult[i]
    zeroes  = col[0]!0 -> zeroes
    last    = col[3]?y:NAT -> output!y -> last
    network = zeroes || mult[1] || mult[2] || mult[3] || last
    multiplier = chan col[0..3]; network

The network inputs successive rows of a matrix on ``row[1..3]`` and emits
on ``output`` the scalar product of each row with the fixed vector
``v[1..3]``.  The paper's §2 item 3 invariant::

    multiplier sat ∀i:NAT. 1 ≤ i ∧ i ≤ #output
                   ⇒ output_i = Σ_{j=1..3} v[j] × row[j]_i

is reproduced by bounded model checking over the operational explorer
(the synchronised column values are *computed*, so the receptive
operational engine is the right tool — see
:mod:`repro.operational.step`).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.assertions.ast import Formula
from repro.assertions.parser import parse_assertion
from repro.process.ast import Name
from repro.process.definitions import DefinitionList
from repro.process.parser import parse_definitions
from repro.sat.checker import SatChecker, SatResult
from repro.semantics.config import SemanticsConfig
from repro.traces.prefix_closure import FiniteClosure
from repro.values.environment import Environment

SOURCE = """
mult[i:{1..3}] = row[i]?x:NAT -> col[i-1]?y:NAT -> col[i]!(v[i]*x + y) -> mult[i];
zeroes = col[0]!0 -> zeroes;
last = col[3]?y:NAT -> output!y -> last;
network = zeroes || mult[1] || mult[2] || mult[3] || last;
multiplier = chan col[0..3]; network
"""

CHANNELS = frozenset({"row", "col", "output"})

#: The paper's fixed vector is abstract; any v[1..3] works.  Index 0 is
#: unused padding so that v[i] reads naturally.
DEFAULT_VECTOR: Sequence[int] = (0, 2, 3, 5)


def definitions() -> DefinitionList:
    return parse_definitions(SOURCE)


def environment(vector: Sequence[int] = DEFAULT_VECTOR) -> Environment:
    """Binds the fixed vector ``v`` as a host function."""
    values = tuple(vector)

    def v(i: int) -> int:
        return values[i]

    return Environment().bind("v", v)


def specification() -> Formula:
    """§2 item 3: every output is the scalar product of the corresponding
    row inputs with v."""
    return parse_assertion(
        "forall i : NAT . 1 <= i & i <= #output =>"
        " output@i = (sum j : 1..3 . v(j) * row[j]@i)",
        CHANNELS,
    )


def progress_specification() -> Formula:
    """A sanity bound: outputs never outrun the slowest row stream."""
    return parse_assertion(
        "#output <= #row[1] & #output <= #row[2] & #output <= #row[3]",
        CHANNELS,
    )


def checker(
    depth: int = 4,
    sample: int = 2,
    vector: Sequence[int] = DEFAULT_VECTOR,
) -> SatChecker:
    return SatChecker(
        definitions(),
        environment(vector),
        SemanticsConfig(depth=depth, sample=sample),
        engine="operational",
    )


def check_all(
    depth: int = 4, sample: int = 2, vector: Sequence[int] = DEFAULT_VECTOR
) -> Dict[str, SatResult]:
    """Model-check the multiplier's invariants."""
    sat = checker(depth, sample, vector)
    return {
        "scalar-product": sat.check(Name("multiplier"), specification()),
        "progress": sat.check(Name("multiplier"), progress_specification()),
    }


def traces(
    depth: int = 4, sample: int = 2, vector: Sequence[int] = DEFAULT_VECTOR
) -> FiniteClosure:
    """The multiplier's visible traces up to ``depth``."""
    return checker(depth, sample, vector).traces_of(Name("multiplier"))


# ---------------------------------------------------------------------------
# The compositional proof (the paper states the invariant; we prove it).
# ---------------------------------------------------------------------------


def cell_invariant() -> "Formula":
    """The per-cell invariant of ``mult[i]``: every column output so far is
    this cell's contribution added to the partial sum it received, and the
    cell never runs ahead of its inputs."""
    return parse_assertion(
        "(forall k : NAT . 1 <= k & k <= #col[i] =>"
        "   col[i]@k = v(i) * row[i]@k + col[i-1]@k)"
        " & #col[i] <= #row[i] & #col[i] <= #col[i-1]",
        CHANNELS,
    )


def zeroes_invariant() -> "Formula":
    """``zeroes`` only ever emits 0 on ``col[0]``."""
    return parse_assertion(
        "forall k : NAT . 1 <= k & k <= #col[0] => col[0]@k = 0", CHANNELS
    )


def last_invariant() -> "Formula":
    """``last`` copies ``col[3]`` to ``output``."""
    return parse_assertion(
        "(forall k : NAT . 1 <= k & k <= #output => output@k = col[3]@k)"
        " & #output <= #col[3]",
        CHANNELS,
    )


def invariants() -> dict:
    """Invariant annotations for the proof search (all five components,
    the visible network, and the hidden multiplier)."""
    spec = specification()
    return {
        "mult": ("i", cell_invariant()),
        "zeroes": zeroes_invariant(),
        "last": last_invariant(),
        "network": spec,
        "multiplier": spec,
    }


def prove_scalar_product(
    vector: Sequence[int] = DEFAULT_VECTOR, random_trials: int = 1500
):
    """Prove the §2 scalar-product invariant with the §2.1 rules.

    The paper *states* ``multiplier sat …`` (§2 item 3) without proof;
    this derivation supplies one: the recursion rule gives each component
    its invariant, the parallelism rule conjoins the five, consequence
    collapses the chain ``output_k = col3_k = v₃·row3_k + col2_k = … =
    Σ v_j·row j_k``, and the chan rule conceals the columns.  The collapse
    implications quantify over eight channels, so their oracle discharges
    are randomized (recorded on the report, as always).
    """
    from repro.proof.checker import ProofChecker
    from repro.proof.oracle import Oracle, OracleConfig
    from repro.proof.tactics import SatProver

    defs = definitions()
    env = environment(vector)
    oracle = Oracle(
        env,
        OracleConfig(
            value_pool=(0, 1),
            max_history_length=2,
            random_trials=random_trials,
        ),
    )
    prover = SatProver(defs, oracle, invariants())
    proof = prover.prove_name("multiplier")
    return ProofChecker(defs, oracle).check(proof)

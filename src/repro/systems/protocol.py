"""The retransmission protocol (paper §1.3 examples 2–4, §2.2, Table 1).

Definitions (Δ1, Δ2, Δ3 of §2.2)::

    sender   = input?y:M -> q[y]
    q[x:M]   = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])
    receiver = wire?z:M -> (wire!ACK -> output!z -> receiver
                            | wire!NACK -> receiver)
    protocol = chan wire; (sender || receiver)

Theorems reproduced:

* **Table 1 / §2.2(1)** — ``Δ1 ⊢ sender sat f(wire) ≤ input`` (together
  with the stronger lemma ``∀x∈M. q[x] sat f(wire) ≤ x⌢input``), both via
  the automated tactic and via :func:`table1_proof`, an explicit
  step-by-step construction following the paper's numbered lines;
* **§2.2(2)** — ``Δ1, Δ2 ⊢ receiver sat output ≤ f(wire)`` (the paper
  leaves this as an exercise; we do it);
* **§2.2(3)** — ``Δ1, Δ2, Δ3 ⊢ protocol sat output ≤ input`` via
  parallelism, consequence (transitivity of ≤), and the chan rule.

``f`` is the cancellation function of §2.2
(:func:`repro.assertions.sequences.cancel_protocol`).
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.assertions.ast import Formula, Implies, VarTerm
from repro.assertions.parser import parse_assertion
from repro.assertions.sequences import cancel_protocol
from repro.assertions.substitution import blank_channels, prefix_channel
from repro.process.ast import Input, Name, Output
from repro.process.definitions import DefinitionList
from repro.process.parser import parse_definitions
from repro.proof.checker import CheckReport, ProofChecker
from repro.proof.judgments import Sat
from repro.proof.oracle import Oracle, OracleConfig
from repro.proof.proof import ProofNode
from repro.proof.rules import (
    alternative,
    assume,
    consequence,
    forall_sat_elim,
    generalize,
    input_rule,
    oracle_leaf,
    output_rule,
    recursion,
    recursion_goal_with_defs,
)
from repro.proof.tactics import SatProver
from repro.sat.checker import SatChecker, SatResult
from repro.semantics.config import SemanticsConfig
from repro.values.domains import FiniteDomain
from repro.values.environment import Environment

SOURCE = """
sender = input?y:M -> q[y];
q[x:M] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x]);
receiver = wire?z:M -> (wire!ACK -> output!z -> receiver
                        | wire!NACK -> receiver);
protocol = chan wire; (sender || receiver)
"""

CHANNELS = frozenset({"input", "wire", "output"})

#: The default message alphabet M (any finite set disjoint from the
#: acknowledgement signals works).
DEFAULT_MESSAGES = frozenset({0, 1})


def definitions() -> DefinitionList:
    return parse_definitions(SOURCE)


def environment(messages=DEFAULT_MESSAGES) -> Environment:
    """Binds the message type ``M`` and the cancellation function ``f``."""
    return (
        Environment()
        .bind("M", FiniteDomain(messages))
        .bind("f", cancel_protocol)
    )


def specifications() -> Mapping[str, Formula]:
    return {
        "sender": parse_assertion("f(wire) <= input", CHANNELS),
        "q": parse_assertion("f(wire) <= x ^ input", CHANNELS),
        "receiver": parse_assertion("output <= f(wire)", CHANNELS),
        "protocol": parse_assertion("output <= input", CHANNELS),
    }


def invariants() -> Dict[str, object]:
    specs = specifications()
    return {
        "sender": specs["sender"],
        "q": ("x", specs["q"]),
        "receiver": specs["receiver"],
        "protocol": specs["protocol"],
    }


def oracle(messages=DEFAULT_MESSAGES) -> Oracle:
    pool = tuple(sorted(messages, key=repr)) + ("ACK", "NACK")
    return Oracle(environment(messages), OracleConfig(value_pool=pool))


def prover(messages=DEFAULT_MESSAGES) -> SatProver:
    return SatProver(definitions(), oracle(messages), invariants())


def prove_all(messages=DEFAULT_MESSAGES) -> Dict[str, CheckReport]:
    """Machine-check §2.2(1)–(3) via the automated tactic."""
    sat_prover = prover(messages)
    checker = ProofChecker(definitions(), sat_prover.oracle)
    reports: Dict[str, CheckReport] = {}
    for name in ("sender", "q", "receiver", "protocol"):
        proof = sat_prover.prove_name(name)
        reports[name] = checker.check(proof)
    return reports


def check_all(
    depth: int = 5, sample: int = 3, messages=DEFAULT_MESSAGES
) -> Dict[str, SatResult]:
    """Bounded model checking of the same claims."""
    checker = SatChecker(
        definitions(),
        environment(messages),
        SemanticsConfig(depth=depth, sample=sample),
    )
    specs = specifications()
    results = {
        "sender": checker.check(Name("sender"), specs["sender"]),
        "receiver": checker.check(Name("receiver"), specs["receiver"]),
        "protocol": checker.check(Name("protocol"), specs["protocol"]),
    }
    from repro.process.ast import ArrayRef
    from repro.values.expressions import Const

    # Named so governed runs persist ``forall:…:q:x@instance{i}`` receipts
    # and a re-invocation resumes from the first unverified message.
    results["q"] = checker.check_forall(
        "x",
        FiniteDomain(messages),
        lambda v: ArrayRef("q", Const(v)),
        specs["q"],
        name="q",
    )
    return results


# ---------------------------------------------------------------------------
# Table 1, step by step.
# ---------------------------------------------------------------------------


def table1_proof(messages=DEFAULT_MESSAGES) -> ProofNode:
    """The proof displayed in Table 1, constructed rule by rule.

    The paper proves the *second auxiliary inference* of the recursion
    rule: under the hypothetical assumptions

    * (1) ``sender sat f(wire) ≤ input``                       (assumption)
    * (2) ``∀x∈M. q[x] sat f(wire) ≤ x⌢input``                 (assumption)

    it derives that both equation bodies satisfy their invariants, and the
    recursion rule then concludes ``sender sat f(wire) ≤ input``.  The
    numbered comments below cite the corresponding Table 1 lines.
    """
    defs = definitions()
    specs = specifications()
    r_sender = specs["sender"]  # f(wire) ≤ input
    s_q = specs["q"]  # f(wire) ≤ x ⌢ input
    q_def = defs.lookup_array("q")
    sender_def = defs.lookup_process("sender")
    domain_m = q_def.domain

    hyp_sender = Sat(Name("sender"), r_sender)  # line (1)
    hyp_q = recursion_goal_with_defs("q", ("x", s_q), defs)  # line (2)

    # ---- sender's body: (input?y:M → q[y]) sat f(wire) ≤ input ----------
    sender_body = sender_def.body
    assert isinstance(sender_body, Input)
    # line (3): f(⟨⟩) ≤ ⟨⟩ — "(def f)"
    sender_empty = oracle_leaf(blank_channels(r_sender))
    # line (5): ∀-elim of (2) at the fresh variable v
    q_at_v = forall_sat_elim(assume(hyp_q), VarTerm("v"))
    # line (4): the input rule needs ∀v∈M. q[v] sat f(wire) ≤ v⌢input
    sender_forall = generalize("v", sender_body.domain, q_at_v)
    sender_body_proof = input_rule(
        sender_body, r_sender, sender_empty, sender_forall
    )  # line (4), "input (2),(3)"

    # ---- q's body: (wire!x → (…ACK… | …NACK…)) sat f(wire) ≤ x⌢input ----
    q_body = q_def.body
    assert isinstance(q_body, Output)
    # After the output rule, the goal becomes S1 = S^wire_(x⌢wire):
    s1 = prefix_channel(s_q, q_body.channel, VarTerm("x"))
    choice = q_body.continuation

    ack_branch, nack_branch = choice.left, choice.right  # type: ignore[attr-defined]

    # ACK branch — lines (8)–(11), (15):
    #   (8)+(9) "(def f)": f(wire) ≤ input ⇒ f(x⌢v⌢wire) ≤ x⌢input, v∈{ACK}
    s1_ack = prefix_channel(s1, ack_branch.channel, VarTerm("v"))
    ack_fact = oracle_leaf(Implies(r_sender, s1_ack))
    #   (10) consequence: sender sat f(x⌢v⌢wire) ≤ x⌢input
    ack_sender = consequence(assume(hyp_sender), ack_fact)
    #   (11) ∀-introduction over v∈{ACK}
    ack_forall = generalize("v", ack_branch.domain, ack_sender)
    #   (15) input rule (with (14) "(def f)" as the emptiness premise)
    ack_empty = oracle_leaf(blank_channels(s1))  # line (14)
    ack_proof = input_rule(ack_branch, s1, ack_empty, ack_forall)

    # NACK branch — lines (12)–(13), (16):
    #   (5)-(7) instantiate assumption (2) at the eigenvariable x
    q_at_x = forall_sat_elim(assume(hyp_q), VarTerm("x"))  # line (7)
    #   (12) "(def f)": f(wire) ≤ x⌢input ⇒ f(x⌢v⌢wire) ≤ x⌢input, v∈{NACK}
    s1_nack = prefix_channel(s1, nack_branch.channel, VarTerm("v"))
    nack_fact = oracle_leaf(Implies(s_q, s1_nack))
    nack_q = consequence(q_at_x, nack_fact)  # line (12), consequence
    nack_forall = generalize("v", nack_branch.domain, nack_q)  # line (13)
    nack_empty = oracle_leaf(blank_channels(s1))
    nack_proof = input_rule(nack_branch, s1, nack_empty, nack_forall)  # line (16)

    # line (17): alternative rule combines the branches
    choice_proof = alternative(ack_proof, nack_proof)

    # line (19): output rule, with (18) "(def f)" as the emptiness premise
    q_output_empty = oracle_leaf(blank_channels(s_q))  # line (18)
    q_body_proof = output_rule(q_body, s_q, q_output_empty, choice_proof)

    # lines (20)–(21): generalise over x∈M
    q_body_forall = generalize("x", domain_m, q_body_proof)

    # Assemble the recursion rule (§2.1 rule 10, list-of-equations form).
    empty_sender = oracle_leaf(blank_channels(r_sender))
    from repro.assertions.ast import ForAll

    empty_q = oracle_leaf(ForAll("x", domain_m, blank_channels(s_q)))
    return recursion(
        defs,
        {"sender": r_sender, "q": ("x", s_q)},
        {"sender": empty_sender, "q": empty_q},
        {"sender": sender_body_proof, "q": q_body_forall},
        goal_name="sender",
    )


def check_table1_proof(messages=DEFAULT_MESSAGES) -> CheckReport:
    """Build and validate the explicit Table 1 proof."""
    proof = table1_proof(messages)
    checker = ProofChecker(definitions(), oracle(messages))
    return checker.check(proof)

"""A storage register as a process — state without variables.

The paper's language deliberately "does not include local variables [or]
assignments" (§0); mutable state is modelled the CSP way, as a process
remembering a value through its recursion parameter::

    reg[v:M] = get!v -> reg[v] | set?w:M -> reg[w]
    register = reg[d]          -- d the initial value

Two specification observations, both reproduced here:

* **Provable**: every value ever read was the initial value or some value
  previously written::

      ∀i. 1 ≤ i ≤ #get ⇒ (get_i = d ∨ ∃j. 1 ≤ j ≤ #set ∧ get_i = set_j)

  This goes through the §2.1 recursion rule with the parametric invariant
  ``∀i ≤ #get. get_i = v ∨ ∃j ≤ #set. get_i = set_j``.

* **Not even expressible**: "every read returns the *most recent* write".
  Assertions see only the per-channel sequences ``ch(s)(get)`` and
  ``ch(s)(set)`` — the *interleaving* of reads and writes is lost, so
  freshness cannot be stated, let alone proved.
  :func:`freshness_is_inexpressible_witnesses` exhibits two traces with
  identical channel histories, one fresh and one stale: no assertion can
  separate them.  (This is a genuine boundary of the paper's assertion
  language, distinct from the §4 deadlock limitation.)
"""

from __future__ import annotations

from typing import Tuple

from repro.assertions.ast import Formula
from repro.assertions.parser import parse_assertion
from repro.process.ast import ArrayRef
from repro.process.definitions import DefinitionList
from repro.process.parser import parse_definitions
from repro.proof.checker import CheckReport, ProofChecker
from repro.proof.oracle import Oracle, OracleConfig
from repro.proof.tactics import SatProver
from repro.sat.checker import SatChecker, SatResult
from repro.semantics.config import SemanticsConfig
from repro.traces.events import Trace, trace
from repro.values.domains import FiniteDomain
from repro.values.environment import Environment

SOURCE = """
reg[v:M] = get!v -> reg[v] | set?w:M -> reg[w]
"""

CHANNELS = frozenset({"get", "set"})

DEFAULT_VALUES = frozenset({0, 1})


def definitions() -> DefinitionList:
    return parse_definitions(SOURCE)


def environment(values=DEFAULT_VALUES) -> Environment:
    return Environment().bind("M", FiniteDomain(values))


def integrity_invariant() -> Formula:
    """The parametric invariant of ``reg[v]``: every value read is ``v``
    or some previously written value."""
    return parse_assertion(
        "forall i : NAT . 1 <= i & i <= #get =>"
        " (get@i = v or (exists j : NAT . 1 <= j & j <= #set & get@i = set@j))",
        CHANNELS,
    )


def integrity_spec(initial: int) -> Formula:
    """The instance for a register initialised to ``initial``."""
    from repro.assertions.substitution import substitute_variable
    from repro.assertions.builders import const_

    return substitute_variable(integrity_invariant(), "v", const_(initial))


def oracle(values=DEFAULT_VALUES) -> Oracle:
    return Oracle(
        environment(values),
        OracleConfig(value_pool=tuple(sorted(values)), max_history_length=3),
    )


def prove_integrity(values=DEFAULT_VALUES) -> CheckReport:
    """Prove ``∀v∈M. reg[v] sat integrity`` with the §2.1 rules."""
    defs = definitions()
    prover = SatProver(defs, oracle(values), {"reg": ("v", integrity_invariant())})
    proof = prover.prove_name("reg")
    return ProofChecker(defs, prover.oracle).check(proof)


def check_integrity(
    initial: int = 0, depth: int = 5, sample: int = 2, values=DEFAULT_VALUES
) -> SatResult:
    """Bounded model checking of the integrity spec for one instance."""
    from repro.values.expressions import Const

    checker = SatChecker(
        definitions(), environment(values), SemanticsConfig(depth, sample)
    )
    return checker.check(ArrayRef("reg", Const(initial)), integrity_spec(initial))


def freshness_is_inexpressible_witnesses() -> Tuple[Trace, Trace]:
    """Two register traces with *identical channel histories*:

    * fresh:  ``set.1, get.1, set.0, get.0``  — every read is up to date;
    * stale:  ``set.1, set.0, get.1, get.0``  — impossible for a real
      register (reads 1 after 0 was written), yet
      ``ch`` maps both to ``get ↦ ⟨1,0⟩, set ↦ ⟨1,0⟩``.

    Any assertion R has the same truth value on both (assertions only see
    ``ch(s)``), so "reads return the latest write" cannot be expressed.
    The stale trace is *not* a trace of ``reg`` — the semantics knows the
    difference — but the assertion language cannot say so.
    """
    fresh = trace(("set", 1), ("get", 1), ("set", 0), ("get", 0))
    stale = trace(("set", 1), ("set", 0), ("get", 1), ("get", 0))
    return fresh, stale

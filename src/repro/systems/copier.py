"""The endless copier (paper §1.3 example 1 and the §2 worked claims).

Definitions::

    copier   = input?x:NAT -> wire!x -> copier
    recopier = wire?y:NAT -> output!y -> recopier
    network  = chan wire; (copier || recopier)

Paper claims reproduced here:

* ``copier sat wire ≤ input``            (§2)
* ``recopier sat output ≤ wire``         (§2)
* ``copier sat #input ≤ #wire + 1``      (§2 item 2)
* ``(copier ‖ recopier) sat output ≤ input``   (§2.1 rule 8 example)
* ``(chan wire; copier ‖ recopier) sat output ≤ input`` (rule 9 example)
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.assertions.ast import Formula
from repro.assertions.parser import parse_assertion
from repro.process.ast import Name
from repro.process.definitions import DefinitionList
from repro.process.parser import parse_definitions
from repro.proof.checker import CheckReport, ProofChecker
from repro.proof.oracle import Oracle, OracleConfig
from repro.proof.tactics import SatProver
from repro.sat.checker import SatChecker, SatResult
from repro.semantics.config import SemanticsConfig
from repro.values.environment import Environment

SOURCE = """
copier = input?x:NAT -> wire!x -> copier;
recopier = wire?y:NAT -> output!y -> recopier;
network = chan wire; (copier || recopier)
"""

CHANNELS = frozenset({"input", "wire", "output"})


def definitions() -> DefinitionList:
    """The three equations above, parsed."""
    return parse_definitions(SOURCE)


def environment() -> Environment:
    """The copier needs no global bindings."""
    return Environment()


def specifications() -> Mapping[str, Formula]:
    """The paper's claims, keyed by a readable label."""
    return {
        "copier": parse_assertion("wire <= input", CHANNELS),
        "recopier": parse_assertion("output <= wire", CHANNELS),
        "network": parse_assertion("output <= input", CHANNELS),
        "copier-length": parse_assertion("#input <= #wire + 1", CHANNELS),
    }


def invariants() -> Dict[str, Formula]:
    """Invariant annotations driving the proof search."""
    specs = specifications()
    return {
        "copier": specs["copier"],
        "recopier": specs["recopier"],
        "network": specs["network"],
    }


def oracle() -> Oracle:
    return Oracle(environment(), OracleConfig(value_pool=(0, 1, 2)))


def prover() -> SatProver:
    return SatProver(definitions(), oracle(), invariants())


def prove_all() -> Dict[str, CheckReport]:
    """Machine-check every §2 claim about the copier system."""
    defs = definitions()
    sat_prover = prover()
    checker = ProofChecker(defs, sat_prover.oracle)
    reports: Dict[str, CheckReport] = {}
    for name in ("copier", "recopier", "network"):
        proof = sat_prover.prove_name(name)
        reports[name] = checker.check(proof)
    # #input ≤ #wire + 1 is a different invariant of the same process; it
    # needs its own recursion instance.
    length_prover = SatProver(
        defs, sat_prover.oracle, {"copier": specifications()["copier-length"]}
    )
    proof = length_prover.prove_name("copier")
    reports["copier-length"] = checker.check(proof)
    return reports


def check_all(depth: int = 6, sample: int = 2) -> Dict[str, SatResult]:
    """Bounded model checking of the same claims (falsification oracle)."""
    checker = SatChecker(
        definitions(), environment(), SemanticsConfig(depth=depth, sample=sample)
    )
    specs = specifications()
    return {
        "copier": checker.check(Name("copier"), specs["copier"]),
        "recopier": checker.check(Name("recopier"), specs["recopier"]),
        "network": checker.check(Name("network"), specs["network"]),
        "copier-length": checker.check(Name("copier"), specs["copier-length"]),
    }

"""An n-place FIFO buffer as a chain of copier cells.

The paper's intro motivates networks built from simple cells; the
canonical CSP example is the buffer chain: ``n`` one-place copiers
composed head-to-tail, internal links concealed::

    cell[i:{1..n}] = link[i-1]?x:NAT -> link[i]!x -> cell[i]
    buffer         = chan link[1..n-1]; (cell[1] || … || cell[n])

``link[0]`` is the buffer's input, ``link[n]`` its output.  Two theorems
characterise it:

* **order**:    ``link[n] ≤ link[0]``        (outputs are a prefix of inputs)
* **capacity**: ``#link[0] ≤ #link[n] + n``  (at most n messages in flight)

Both are proved compositionally from the per-cell invariant
``link[i] ≤ link[i-1] & #link[i-1] ≤ #link[i] + 1`` via the parallelism
and consequence rules — the same §2.1 argument as the two-stage copier,
scaled to arbitrary n.
"""

from __future__ import annotations

from typing import Dict

from repro.assertions.ast import Formula
from repro.assertions.parser import parse_assertion
from repro.process.ast import Name
from repro.process.definitions import DefinitionList
from repro.process.parser import parse_definitions
from repro.proof.checker import CheckReport, ProofChecker
from repro.proof.oracle import Oracle, OracleConfig
from repro.proof.tactics import SatProver
from repro.sat.checker import SatChecker, SatResult
from repro.semantics.config import SemanticsConfig
from repro.values.environment import Environment

CHANNELS = frozenset({"link"})


def source(places: int) -> str:
    """The definition text for an ``places``-cell buffer."""
    if places < 1:
        raise ValueError("a buffer needs at least one cell")
    chain = " || ".join(f"cell[{i}]" for i in range(1, places + 1))
    if places == 1:
        hiding = ""  # no internal links to conceal
        network = chain
    else:
        hiding = f"chan link[1..{places - 1}]; "
        network = f"({chain})"
    return (
        f"cell[i:{{1..{places}}}] = link[i-1]?x:NAT -> link[i]!x -> cell[i];\n"
        f"buffer = {hiding}{network}"
    )


def definitions(places: int = 3) -> DefinitionList:
    return parse_definitions(source(places))


def environment() -> Environment:
    return Environment()


def order_spec(places: int) -> Formula:
    """``link[n] ≤ link[0]``."""
    return parse_assertion(f"link[{places}] <= link[0]", CHANNELS)


def capacity_spec(places: int) -> Formula:
    """``#link[0] ≤ #link[n] + n``."""
    return parse_assertion(f"#link[0] <= #link[{places}] + {places}", CHANNELS)


def buffer_spec(places: int) -> Formula:
    from repro.assertions.builders import and_

    return and_(order_spec(places), capacity_spec(places))


def cell_invariant() -> Formula:
    """The per-cell invariant, parametric in the cell index ``i``."""
    return parse_assertion(
        "link[i] <= link[i-1] & #link[i-1] <= #link[i] + 1", CHANNELS
    )


def invariants(places: int) -> Dict[str, object]:
    return {
        "cell": ("i", cell_invariant()),
        "buffer": buffer_spec(places),
    }


def oracle() -> Oracle:
    return Oracle(environment(), OracleConfig(value_pool=(0, 1)))


def prove(places: int = 2) -> CheckReport:
    """Prove order + capacity for an ``places``-cell buffer."""
    defs = definitions(places)
    prover = SatProver(defs, oracle(), invariants(places))
    proof = prover.prove_name("buffer")
    return ProofChecker(defs, prover.oracle).check(proof)


def check(places: int = 3, depth: int = 5, sample: int = 2) -> Dict[str, SatResult]:
    """Model-check order + capacity on bounded traces."""
    checker = SatChecker(
        definitions(places),
        environment(),
        SemanticsConfig(depth=depth, sample=sample),
    )
    return {
        "order": checker.check(Name("buffer"), order_spec(places)),
        "capacity": checker.check(Name("buffer"), capacity_spec(places)),
    }

"""Reusable specification patterns.

The paper's examples keep re-stating a handful of shapes — "output copies
input", "never more than n ahead", "every element satisfies…".  This
module packages them as formula builders over channel names, so system
specs read as intent:

>>> from repro.assertions.patterns import copies, bounded_lag
>>> spec = copies("input", "output")        # output ≤ input
>>> lag  = bounded_lag("input", "wire", 1)  # copier's pipeline bound

All builders accept a channel name (optionally with a subscript via
``chan_``-style tuples) and return plain
:class:`~repro.assertions.ast.Formula` values usable with the checker and
the prover alike.
"""

from __future__ import annotations

from typing import Any, Sequence, Union

from repro.assertions.ast import Formula, Term
from repro.assertions.builders import (
    and_,
    at_,
    chan_,
    const_,
    eq_,
    forall_,
    implies_,
    le_,
    len_,
    or_,
    plus_,
    var_,
)
from repro.values.expressions import NatSet

ChannelLike = Union[str, Term]


def _chan(ref: ChannelLike) -> Term:
    if isinstance(ref, Term):
        return ref
    if isinstance(ref, tuple):
        name, index = ref
        return chan_(name, index)
    return chan_(ref)


def copies(source: ChannelLike, sink: ChannelLike) -> Formula:
    """``sink ≤ source`` — the sink relays a prefix of the source
    (the copier/protocol specification shape)."""
    return le_(_chan(sink), _chan(source))


def bounded_lag(source: ChannelLike, sink: ChannelLike, lag: int) -> Formula:
    """``#sink ≤ #source ∧ #source ≤ #sink + lag`` — the sink never gets
    ahead, the source never more than ``lag`` ahead (buffer capacity)."""
    src, snk = _chan(source), _chan(sink)
    return and_(
        le_(len_(snk), len_(src)),
        le_(len_(src), plus_(len_(snk), lag)),
    )


def guarded_forall(index: str, sequence: Term, body: Formula) -> Formula:
    """``∀i:NAT. 1 ≤ i ∧ i ≤ #sequence ⇒ body`` — the paper's guarded
    quantification idiom (§2 item 3)."""
    i = var_(index)
    guard = and_(le_(const_(1), i), le_(i, len_(sequence)))
    return forall_(index, NatSet(), implies_(guard, body))


def pointwise_equal(left: ChannelLike, right: ChannelLike, index: str = "i") -> Formula:
    """``∀i ≤ #left. left_i = right_i`` — element-wise agreement up to the
    shorter-is-left length."""
    l, r = _chan(left), _chan(right)
    return guarded_forall(index, l, eq_(at_(l, var_(index)), at_(r, var_(index))))


def values_in(channel: ChannelLike, values: Sequence[Any], index: str = "i") -> Formula:
    """``∀i ≤ #c. c_i ∈ {values…}`` — an alphabet/type invariant."""
    if not values:
        raise ValueError("values_in needs at least one permitted value")
    c = _chan(channel)
    element = at_(c, var_(index))
    membership = eq_(element, const_(values[0]))
    for value in values[1:]:
        membership = or_(membership, eq_(element, const_(value)))
    return guarded_forall(index, c, membership)


def monotone(channel: ChannelLike, index: str = "i") -> Formula:
    """``∀i. i+1 ≤ #c ⇒ c_i ≤ c_{i+1}`` — non-decreasing message values."""
    c = _chan(channel)
    i = var_(index)
    guard = and_(le_(const_(1), i), le_(plus_(i, 1), len_(c)))
    body = le_(at_(c, i), at_(c, plus_(i, 1)))
    return forall_(index, NatSet(), implies_(guard, body))


def relays_through(
    source: ChannelLike,
    middle: ChannelLike,
    sink: ChannelLike,
) -> Formula:
    """``sink ≤ middle ∧ middle ≤ source`` — a two-stage pipeline's
    componentwise spec, whose conjunction yields ``sink ≤ source`` by
    transitivity (the §2.1 parallelism example)."""
    return and_(copies(middle, sink), copies(source, middle))

"""The substitution operators used by the inference rules (§2.1, §3.4).

* ``R_<>``               — :func:`blank_channels`: every channel name
  replaced by the empty sequence (emptiness/output/input rules);
* ``R^c_{e⌢c}``          — :func:`prefix_channel`: every occurrence of
  channel ``c`` replaced by ``e⌢c`` (output/input rules);
* ``R^x_e``              — :func:`substitute_variable`: capture-avoiding
  substitution of a term for a free variable (input rule, ∀-elimination);
* :func:`channels_mentioned` — the free channel names of an assertion
  (side conditions of the parallel and chan rules);
* :func:`formula_free_variables` — free value variables.

All functions are purely structural: they implement exactly the syntactic
operations the paper's rules are stated with, and lemmas (a)–(d) of §3.4
relating them to evaluation are re-verified by the property tests.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Set, Union

from repro.assertions.ast import (
    Apply,
    Arith,
    BoolLit,
    ChannelTrace,
    Compare,
    Concat,
    Cons,
    ConstTerm,
    Exists,
    ForAll,
    Formula,
    Implies,
    Index,
    Length,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    SeqLit,
    Sum,
    Term,
    VarTerm,
)
from repro.errors import SubstitutionError
from repro.process.channels import ChannelExpr
from repro.values.expressions import BinOp, Const, Expr, FuncCall, UnaryOp, Var

Node = Union[Term, Formula]

_fresh_counter = itertools.count()


# ---------------------------------------------------------------------------
# Term ↔ value-expression conversion (for channel subscripts)
# ---------------------------------------------------------------------------


def term_to_expr(term: Term) -> Expr:
    """Convert a numeric term to a value expression, so that substitution
    can reach channel subscripts like ``col[i]``.  Sequence-valued terms
    have no expression counterpart and are rejected."""
    if isinstance(term, ConstTerm):
        return Const(term.value)
    if isinstance(term, VarTerm):
        return Var(term.name)
    if isinstance(term, Arith):
        return BinOp(term.op, term_to_expr(term.left), term_to_expr(term.right))
    if isinstance(term, Apply):
        return FuncCall(term.name, tuple(term_to_expr(a) for a in term.args))
    raise SubstitutionError(
        f"term {term!r} cannot appear in a channel subscript"
    )


def expr_to_term(expr: Expr) -> Term:
    """The inverse direction, used when a process expression (e.g. the
    message of ``c!e``) must enter an assertion."""
    if isinstance(expr, Const):
        return ConstTerm(expr.value)
    if isinstance(expr, Var):
        return VarTerm(expr.name)
    if isinstance(expr, BinOp):
        return Arith(expr.op, expr_to_term(expr.left), expr_to_term(expr.right))
    if isinstance(expr, UnaryOp):
        return Arith("-", ConstTerm(0), expr_to_term(expr.operand))
    if isinstance(expr, FuncCall):
        return Apply(expr.name, tuple(expr_to_term(a) for a in expr.args))
    raise SubstitutionError(f"expression {expr!r} has no term counterpart")


# ---------------------------------------------------------------------------
# Free variables
# ---------------------------------------------------------------------------


def formula_free_variables(node: Node) -> FrozenSet[str]:
    """Free value variables of a term or formula (channel names are not
    variables; quantifiers and Σ bind)."""
    out: Set[str] = set()
    _free_vars(node, frozenset(), out)
    return frozenset(out)


def _free_vars(node: Node, bound: FrozenSet[str], out: Set[str]) -> None:
    if isinstance(node, VarTerm):
        if node.name not in bound:
            out.add(node.name)
    elif isinstance(node, ChannelTrace):
        out.update(node.channel.free_variables() - bound)
    elif isinstance(node, (ConstTerm, BoolLit)):
        pass
    elif isinstance(node, SeqLit):
        for element in node.elements:
            _free_vars(element, bound, out)
    elif isinstance(node, Cons):
        _free_vars(node.head, bound, out)
        _free_vars(node.tail, bound, out)
    elif isinstance(node, (Concat, Arith)):
        _free_vars(node.left, bound, out)
        _free_vars(node.right, bound, out)
    elif isinstance(node, Length):
        _free_vars(node.sequence, bound, out)
    elif isinstance(node, Index):
        _free_vars(node.sequence, bound, out)
        _free_vars(node.index, bound, out)
    elif isinstance(node, Apply):
        for arg in node.args:
            _free_vars(arg, bound, out)
    elif isinstance(node, Sum):
        _free_vars(node.low, bound, out)
        _free_vars(node.high, bound, out)
        _free_vars(node.body, bound | {node.variable}, out)
    elif isinstance(node, Compare):
        _free_vars(node.left, bound, out)
        _free_vars(node.right, bound, out)
    elif isinstance(node, (LogicalAnd, LogicalOr)):
        _free_vars(node.left, bound, out)
        _free_vars(node.right, bound, out)
    elif isinstance(node, LogicalNot):
        _free_vars(node.operand, bound, out)
    elif isinstance(node, Implies):
        _free_vars(node.antecedent, bound, out)
        _free_vars(node.consequent, bound, out)
    elif isinstance(node, (ForAll, Exists)):
        out.update(node.domain.free_variables() - bound)
        _free_vars(node.body, bound | {node.variable}, out)
    else:
        raise SubstitutionError(f"unknown node {node!r}")


# ---------------------------------------------------------------------------
# Channel occurrence
# ---------------------------------------------------------------------------


def channels_mentioned(node: Node) -> FrozenSet[ChannelExpr]:
    """All channel references occurring free in the assertion."""
    out: Set[ChannelExpr] = set()
    _walk_channels(node, out)
    return frozenset(out)


def _walk_channels(node: Node, out: Set[ChannelExpr]) -> None:
    if isinstance(node, ChannelTrace):
        out.add(node.channel)
    elif isinstance(node, (ConstTerm, VarTerm, BoolLit)):
        pass
    elif isinstance(node, SeqLit):
        for element in node.elements:
            _walk_channels(element, out)
    elif isinstance(node, Cons):
        _walk_channels(node.head, out)
        _walk_channels(node.tail, out)
    elif isinstance(node, (Concat, Arith, LogicalAnd, LogicalOr)):
        _walk_channels(node.left, out)
        _walk_channels(node.right, out)
    elif isinstance(node, Length):
        _walk_channels(node.sequence, out)
    elif isinstance(node, Index):
        _walk_channels(node.sequence, out)
        _walk_channels(node.index, out)
    elif isinstance(node, Apply):
        for arg in node.args:
            _walk_channels(arg, out)
    elif isinstance(node, Sum):
        _walk_channels(node.low, out)
        _walk_channels(node.high, out)
        _walk_channels(node.body, out)
    elif isinstance(node, Compare):
        _walk_channels(node.left, out)
        _walk_channels(node.right, out)
    elif isinstance(node, LogicalNot):
        _walk_channels(node.operand, out)
    elif isinstance(node, Implies):
        _walk_channels(node.antecedent, out)
        _walk_channels(node.consequent, out)
    elif isinstance(node, (ForAll, Exists)):
        _walk_channels(node.body, out)
    else:
        raise SubstitutionError(f"unknown node {node!r}")


def mentions_channel_name(node: Node, name: str) -> bool:
    """True if any channel reference with the given *name* occurs
    (subscripts disregarded — the chan rule conceals whole names)."""
    return any(chan.name == name for chan in channels_mentioned(node))


# ---------------------------------------------------------------------------
# The generic structural transformer
# ---------------------------------------------------------------------------


def _map_node(node: Node, on_term, bound: FrozenSet[str]) -> Node:
    """Rebuild ``node`` bottom-up; ``on_term(term, bound)`` may replace any
    term after its children were rebuilt (return the term unchanged to keep
    it)."""
    if isinstance(node, Term):
        rebuilt = _map_term_children(node, on_term, bound)
        return on_term(rebuilt, bound)
    if isinstance(node, BoolLit):
        return node
    if isinstance(node, Compare):
        return Compare(
            node.op,
            _map_node(node.left, on_term, bound),
            _map_node(node.right, on_term, bound),
        )
    if isinstance(node, LogicalAnd):
        return LogicalAnd(
            _map_node(node.left, on_term, bound),
            _map_node(node.right, on_term, bound),
        )
    if isinstance(node, LogicalOr):
        return LogicalOr(
            _map_node(node.left, on_term, bound),
            _map_node(node.right, on_term, bound),
        )
    if isinstance(node, LogicalNot):
        return LogicalNot(_map_node(node.operand, on_term, bound))
    if isinstance(node, Implies):
        return Implies(
            _map_node(node.antecedent, on_term, bound),
            _map_node(node.consequent, on_term, bound),
        )
    if isinstance(node, ForAll):
        return ForAll(
            node.variable,
            node.domain,
            _map_node(node.body, on_term, bound | {node.variable}),
        )
    if isinstance(node, Exists):
        return Exists(
            node.variable,
            node.domain,
            _map_node(node.body, on_term, bound | {node.variable}),
        )
    raise SubstitutionError(f"unknown node {node!r}")


def _map_term_children(term: Term, on_term, bound: FrozenSet[str]) -> Term:
    recurse = lambda t: on_term(_map_term_children(t, on_term, bound), bound)
    if isinstance(term, (ConstTerm, VarTerm, ChannelTrace)):
        return term
    if isinstance(term, SeqLit):
        return SeqLit(tuple(recurse(e) for e in term.elements))
    if isinstance(term, Cons):
        return Cons(recurse(term.head), recurse(term.tail))
    if isinstance(term, Concat):
        return Concat(recurse(term.left), recurse(term.right))
    if isinstance(term, Length):
        return Length(recurse(term.sequence))
    if isinstance(term, Index):
        return Index(recurse(term.sequence), recurse(term.index))
    if isinstance(term, Arith):
        return Arith(term.op, recurse(term.left), recurse(term.right))
    if isinstance(term, Apply):
        return Apply(term.name, tuple(recurse(a) for a in term.args))
    if isinstance(term, Sum):
        inner_bound = bound | {term.variable}
        inner = lambda t: on_term(
            _map_term_children(t, on_term, inner_bound), inner_bound
        )
        return Sum(
            term.variable, recurse(term.low), recurse(term.high), inner(term.body)
        )
    raise SubstitutionError(f"unknown term {term!r}")


# ---------------------------------------------------------------------------
# The three substitutions
# ---------------------------------------------------------------------------


def blank_channels(node: Node) -> Node:
    """``R_<>`` — every channel name replaced by ⟨⟩ (emptiness rule)."""

    def on_term(term: Term, bound: FrozenSet[str]) -> Term:
        if isinstance(term, ChannelTrace):
            return SeqLit(())
        return term

    return _map_node(node, on_term, frozenset())


def prefix_channel(node: Node, channel: ChannelExpr, message: Term) -> Node:
    """``R^c_{e⌢c}`` — every occurrence of channel ``c`` replaced by
    ``e⌢c`` (output/input rules).  Matching is structural on the channel
    reference (name and subscript expression)."""

    def on_term(term: Term, bound: FrozenSet[str]) -> Term:
        if isinstance(term, ChannelTrace) and term.channel == channel:
            return Cons(message, term)
        return term

    return _map_node(node, on_term, frozenset())


def substitute_variable(node: Node, name: str, replacement: Term) -> Node:
    """``R^x_e`` — capture-avoiding substitution of a term for the free
    variable ``x``.  Reaches channel subscripts (``col[i]``), where the
    replacement must be a numeric term; quantifier and Σ binders shadow the
    substituted variable and are α-renamed when they would capture a free
    variable of the replacement."""
    return _subst(node, name, replacement, formula_free_variables(replacement))


def _subst(node: Node, name: str, repl: Term, repl_vars: FrozenSet[str]) -> Node:
    if isinstance(node, VarTerm):
        return repl if node.name == name else node
    if isinstance(node, ChannelTrace):
        if name in node.channel.free_variables():
            return ChannelTrace(node.channel.substitute(name, term_to_expr(repl)))
        return node
    if isinstance(node, (ConstTerm, BoolLit)):
        return node
    if isinstance(node, SeqLit):
        return SeqLit(tuple(_subst(e, name, repl, repl_vars) for e in node.elements))
    if isinstance(node, Cons):
        return Cons(
            _subst(node.head, name, repl, repl_vars),
            _subst(node.tail, name, repl, repl_vars),
        )
    if isinstance(node, Concat):
        return Concat(
            _subst(node.left, name, repl, repl_vars),
            _subst(node.right, name, repl, repl_vars),
        )
    if isinstance(node, Length):
        return Length(_subst(node.sequence, name, repl, repl_vars))
    if isinstance(node, Index):
        return Index(
            _subst(node.sequence, name, repl, repl_vars),
            _subst(node.index, name, repl, repl_vars),
        )
    if isinstance(node, Arith):
        return Arith(
            node.op,
            _subst(node.left, name, repl, repl_vars),
            _subst(node.right, name, repl, repl_vars),
        )
    if isinstance(node, Apply):
        return Apply(
            node.name, tuple(_subst(a, name, repl, repl_vars) for a in node.args)
        )
    if isinstance(node, Sum):
        low = _subst(node.low, name, repl, repl_vars)
        high = _subst(node.high, name, repl, repl_vars)
        if node.variable == name:
            return Sum(node.variable, low, high, node.body)
        if node.variable in repl_vars:
            fresh = _fresh_name(node.variable, repl_vars | {name})
            body = _subst(node.body, node.variable, VarTerm(fresh), frozenset({fresh}))
            return Sum(fresh, low, high, _subst(body, name, repl, repl_vars))
        return Sum(node.variable, low, high, _subst(node.body, name, repl, repl_vars))
    if isinstance(node, Compare):
        return Compare(
            node.op,
            _subst(node.left, name, repl, repl_vars),
            _subst(node.right, name, repl, repl_vars),
        )
    if isinstance(node, LogicalAnd):
        return LogicalAnd(
            _subst(node.left, name, repl, repl_vars),
            _subst(node.right, name, repl, repl_vars),
        )
    if isinstance(node, LogicalOr):
        return LogicalOr(
            _subst(node.left, name, repl, repl_vars),
            _subst(node.right, name, repl, repl_vars),
        )
    if isinstance(node, LogicalNot):
        return LogicalNot(_subst(node.operand, name, repl, repl_vars))
    if isinstance(node, Implies):
        return Implies(
            _subst(node.antecedent, name, repl, repl_vars),
            _subst(node.consequent, name, repl, repl_vars),
        )
    if isinstance(node, (ForAll, Exists)):
        ctor = ForAll if isinstance(node, ForAll) else Exists
        domain = node.domain.substitute(name, term_to_expr_or_none(repl, node, name))
        if node.variable == name:
            return ctor(node.variable, domain, node.body)
        if node.variable in repl_vars:
            fresh = _fresh_name(node.variable, repl_vars | {name})
            body = _subst(node.body, node.variable, VarTerm(fresh), frozenset({fresh}))
            return ctor(fresh, domain, _subst(body, name, repl, repl_vars))
        return ctor(node.variable, domain, _subst(node.body, name, repl, repl_vars))
    raise SubstitutionError(f"unknown node {node!r}")


def term_to_expr_or_none(repl: Term, node: Node, name: str) -> Expr:
    """Convert the replacement for use inside a set expression; if the set
    expression does not actually mention the variable, the conversion is
    irrelevant and a placeholder variable suffices."""
    if isinstance(node, (ForAll, Exists)) and name not in node.domain.free_variables():
        return Var(name)  # substitution is a no-op inside this domain
    return term_to_expr(repl)


def _fresh_name(base: str, avoid: FrozenSet[str]) -> str:
    candidate = f"{base}_"
    while candidate in avoid:
        candidate = f"{base}_{next(_fresh_counter)}"
    return candidate

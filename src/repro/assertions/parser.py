"""Parser for the assertion notation (§2), sharing the process lexer.

Concrete grammar::

    formula  := 'forall' IDENT ':' setexpr '.' formula
              | 'exists' IDENT ':' setexpr '.' formula
              | implication
    implication := disjunct ('=>' formula)?                -- right assoc
    disjunct := conjunct ('or' conjunct)*
    conjunct := negation ('&' negation)*
    negation := 'not' negation | 'true' | 'false'
              | '(' formula ')' | comparison
    comparison := term relop term
    relop    := '<=' | '<' | '=' | '!=' | '>' | '>='

    term     := concat
    concat   := cons ('++' cons)*
    cons     := additive ('^' cons)?                        -- right assoc
    additive := multiplic (('+'|'-') multiplic)*
    multiplic:= prefixed (('*'|'div'|'mod') prefixed)*
    prefixed := '#' prefixed | indexed
    indexed  := primary ('@' primary)*                      -- s@i is s_i
    primary  := INT | STRING | '<>' | '<' term (',' term)* '>'
              | 'sum' IDENT ':' term '..' term '.' cons
              | IDENT | IDENT '[' term ']' | IDENT '(' args ')'
              | '(' term ')'

Identifier resolution: the caller supplies the set of *channel names* in
scope (usually :func:`repro.process.analysis.channel_names` of the process
under consideration).  A name in that set is a :class:`ChannelTrace`;
otherwise a subscripted/called name is a host-function application, an
upper-cased name is a constant (``ACK``), and anything else is a variable.
Unicode paper spellings (∀, ∃, ∧, ∨, ¬, ⇒, ≤, ⟨⟩, ⌢) are accepted.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List

from repro.assertions.ast import (
    Apply,
    Arith,
    BoolLit,
    ChannelTrace,
    Compare,
    Concat,
    Cons,
    ConstTerm,
    Exists,
    ForAll,
    Formula,
    Implies,
    Index,
    Length,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    SeqLit,
    Sum,
    Term,
    VarTerm,
)
from repro.assertions.substitution import term_to_expr
from repro.errors import ParseError
from repro.process.channels import ChannelExpr
from repro.process.lexer import TokenStream
from repro.process.parser import _parse_setexpr

_RELOPS = ("<=", "<", "=", "!=", ">", ">=")
_KEYWORDS = {"forall", "exists", "true", "false", "not", "or", "sum", "div", "mod"}


def parse_assertion(text: str, channels: Iterable[str] = ()) -> Formula:
    """Parse an assertion; ``channels`` names resolve to channel traces."""
    stream = TokenStream(text)
    parser = _AssertionParser(stream, frozenset(channels))
    formula = parser.formula()
    stream.expect_eof()
    return formula


class _AssertionParser:
    def __init__(self, stream: TokenStream, channels: FrozenSet[str]) -> None:
        self.stream = stream
        self.channels = channels

    # -- formulas ---------------------------------------------------------

    def formula(self) -> Formula:
        if self.stream.at_ident("forall", "exists"):
            keyword = self.stream.advance().text
            variable = self.stream.expect_ident().text
            self.stream.expect_symbol(":")
            domain = _parse_setexpr(self.stream)
            self.stream.expect_symbol(".")
            body = self.formula()
            ctor = ForAll if keyword == "forall" else Exists
            return ctor(variable, domain, body)
        return self.implication()

    def implication(self) -> Formula:
        left = self.disjunct()
        if self.stream.accept_symbol("=>"):
            return Implies(left, self.formula())
        return left

    def disjunct(self) -> Formula:
        left = self.conjunct()
        while self.stream.accept_ident("or"):
            left = LogicalOr(left, self.conjunct())
        return left

    def conjunct(self) -> Formula:
        left = self.negation()
        while self.stream.accept_symbol("&"):
            left = LogicalAnd(left, self.negation())
        return left

    def negation(self) -> Formula:
        if self.stream.accept_ident("not"):
            return LogicalNot(self.negation())
        if self.stream.accept_ident("true"):
            return BoolLit(True)
        if self.stream.accept_ident("false"):
            return BoolLit(False)
        if self.stream.at_ident("forall", "exists"):
            return self.formula()
        if self.stream.at_symbol("("):
            # Either a parenthesised formula or a parenthesised term that
            # starts a comparison; backtrack on failure.
            saved = self.stream.index
            self.stream.advance()
            try:
                inner = self.formula()
                self.stream.expect_symbol(")")
            except ParseError:
                self.stream.index = saved
            else:
                if not self._at_relop_or_term_op():
                    return inner
                self.stream.index = saved
        return self.comparison()

    def _at_relop_or_term_op(self) -> bool:
        token = self.stream.current
        if token.kind == "symbol" and token.text in _RELOPS:
            return True
        return token.kind == "symbol" and token.text in (
            "++",
            "^",
            "+",
            "-",
            "*",
            "@",
        )

    def comparison(self) -> Formula:
        left = self.term()
        token = self.stream.current
        if token.kind != "symbol" or token.text not in _RELOPS:
            self.stream.fail(
                f"expected a comparison operator, found {token.text or 'end of input'!r}"
            )
        op = self.stream.advance().text
        right = self.term()
        return Compare(op, left, right)

    # -- terms -----------------------------------------------------------

    def term(self) -> Term:
        return self.concat()

    def concat(self) -> Term:
        left = self.cons()
        while self.stream.accept_symbol("++"):
            left = Concat(left, self.cons())
        return left

    def cons(self) -> Term:
        left = self.additive()
        if self.stream.accept_symbol("^"):
            return Cons(left, self.cons())
        return left

    def additive(self) -> Term:
        left = self.multiplicative()
        while self.stream.at_symbol("+", "-"):
            op = self.stream.advance().text
            left = Arith(op, left, self.multiplicative())
        return left

    def multiplicative(self) -> Term:
        left = self.prefixed()
        while self.stream.at_symbol("*") or self.stream.at_ident("div", "mod"):
            op = self.stream.advance().text
            left = Arith(op, left, self.prefixed())
        return left

    def prefixed(self) -> Term:
        if self.stream.accept_symbol("#"):
            return Length(self.prefixed())
        return self.indexed()

    def indexed(self) -> Term:
        left = self.primary()
        while self.stream.accept_symbol("@"):
            left = Index(left, self.primary())
        return left

    def primary(self) -> Term:
        token = self.stream.current
        if token.kind == "int":
            self.stream.advance()
            return ConstTerm(int(token.text))
        if token.kind == "string":
            self.stream.advance()
            return ConstTerm(token.text)
        if self.stream.accept_symbol("<>"):
            return SeqLit(())
        if self.stream.accept_symbol("<"):
            elements: List[Term] = [self.term()]
            while self.stream.accept_symbol(","):
                elements.append(self.term())
            self.stream.expect_symbol(">")
            return SeqLit(tuple(elements))
        if self.stream.accept_symbol("("):
            inner = self.term()
            self.stream.expect_symbol(")")
            return inner
        if self.stream.at_ident("sum"):
            self.stream.advance()
            variable = self.stream.expect_ident().text
            self.stream.expect_symbol(":")
            low = self.additive()
            self.stream.expect_symbol("..")
            high = self.additive()
            self.stream.expect_symbol(".")
            body = self.cons()
            return Sum(variable, low, high, body)
        if token.kind == "ident":
            name = self.stream.advance().text
            if name in _KEYWORDS:
                self.stream.fail(f"{name!r} cannot start a term")
            if self.stream.accept_symbol("["):
                subscript = self.term()
                self.stream.expect_symbol("]")
                if name in self.channels:
                    return ChannelTrace(ChannelExpr(name, term_to_expr(subscript)))
                return Apply(name, (subscript,))
            if self.stream.accept_symbol("("):
                args: List[Term] = []
                if not self.stream.at_symbol(")"):
                    args.append(self.term())
                    while self.stream.accept_symbol(","):
                        args.append(self.term())
                self.stream.expect_symbol(")")
                return Apply(name, tuple(args))
            if name in self.channels:
                return ChannelTrace(ChannelExpr(name))
            if name[0].isupper():
                return ConstTerm(name)
            return VarTerm(name)
        self.stream.fail(f"expected a term, found {token.text or 'end of input'!r}")
        raise AssertionError("unreachable")

"""Terms and formulas of the assertion language (paper §2).

**Terms** denote message values, numbers, or sequences:

=====================  =======================================
paper                  here
=====================  =======================================
``3``, ``ACK``         :class:`ConstTerm`
``x`` (variable)       :class:`VarTerm`
``wire``, ``col[i]``   :class:`ChannelTrace` (a free channel
                       name: the history of that channel)
``⟨⟩``, ``⟨3, 4⟩``     :class:`SeqLit`
``x⌢s``                :class:`Cons`
``s ++ t``             :class:`Concat`
``#s``                 :class:`Length`
``s_i``                :class:`Index` (1-based, §2 item 3)
``f(wire)``            :class:`Apply` (host function)
``Σ_{j=lo}^{hi} e``    :class:`Sum`
arithmetic             :class:`Arith`
=====================  =======================================

**Formulas** combine terms:

* :class:`Compare` — ``s ≤ t`` is the *prefix order* when both sides are
  sequences and the numeric order when both are numbers, matching the
  paper's overloaded ``≤``; also ``=``, ``≠``, ``<``, ``>``, ``≥``;
* :class:`LogicalAnd` / :class:`LogicalOr` / :class:`LogicalNot` /
  :class:`Implies`;
* :class:`ForAll` / :class:`Exists` over a set expression (bounded
  enumeration during model checking, exact during proof);
* :class:`BoolLit`.

All nodes are immutable, structurally comparable, and hashable — proofs
manipulate them as data.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.process.channels import ChannelExpr
from repro.values.expressions import SetExpr


class _Node:
    """Shared value-object behaviour for terms and formulas."""

    __slots__ = ()

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))  # type: ignore[attr-defined]

    def _key(self) -> Tuple[Any, ...]:
        raise NotImplementedError

    def __repr__(self) -> str:
        from repro.assertions.pretty import pretty_assertion_node

        return pretty_assertion_node(self)


class Term(_Node):
    """Abstract term."""

    __slots__ = ()


class Formula(_Node):
    """Abstract formula."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class ConstTerm(Term):
    """A literal message value or number (sequences use :class:`SeqLit`)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def _key(self) -> Tuple[Any, ...]:
        return (self.value,)


class VarTerm(Term):
    """A value variable shared with the process (e.g. the ``x`` of
    ``q[x:M]`` in Table 1's invariant ``f(wire) ≤ x⌢input``)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def _key(self) -> Tuple[Any, ...]:
        return (self.name,)


class ChannelTrace(Term):
    """A free channel name: denotes ``ch(s)(c)``, the sequence of messages
    communicated on the channel so far (§2, §3.3)."""

    __slots__ = ("channel",)

    def __init__(self, channel: ChannelExpr) -> None:
        self.channel = channel

    @property
    def name(self) -> str:
        return self.channel.name

    def _key(self) -> Tuple[Any, ...]:
        return (self.channel,)


class SeqLit(Term):
    """An explicit sequence ``⟨e₁, …, eₙ⟩``; ``SeqLit(())`` is ⟨⟩."""

    __slots__ = ("elements",)

    def __init__(self, elements: Tuple[Term, ...] = ()) -> None:
        self.elements = tuple(elements)

    def _key(self) -> Tuple[Any, ...]:
        return (self.elements,)


class Cons(Term):
    """``x⌢s`` — the sequence whose first message is ``x`` and whose
    remainder is ``s`` (§2 item 1)."""

    __slots__ = ("head", "tail")

    def __init__(self, head: Term, tail: Term) -> None:
        self.head = head
        self.tail = tail

    def _key(self) -> Tuple[Any, ...]:
        return (self.head, self.tail)


class Concat(Term):
    """``s ++ t`` — sequence concatenation (the paper writes ``st``)."""

    __slots__ = ("left", "right")

    def __init__(self, left: Term, right: Term) -> None:
        self.left = left
        self.right = right

    def _key(self) -> Tuple[Any, ...]:
        return (self.left, self.right)


class Length(Term):
    """``#s`` — the length of a sequence (§2 item 2)."""

    __slots__ = ("sequence",)

    def __init__(self, sequence: Term) -> None:
        self.sequence = sequence

    def _key(self) -> Tuple[Any, ...]:
        return (self.sequence,)


class Index(Term):
    """``s_i`` — the i-th message of ``s``, 1-based (§2 item 3)."""

    __slots__ = ("sequence", "index")

    def __init__(self, sequence: Term, index: Term) -> None:
        self.sequence = sequence
        self.index = index

    def _key(self) -> Tuple[Any, ...]:
        return (self.sequence, self.index)


class Arith(Term):
    """Arithmetic on numbers: ``#wire + 1``."""

    __slots__ = ("op", "left", "right")

    OPS = ("+", "-", "*", "div", "mod")

    def __init__(self, op: str, left: Term, right: Term) -> None:
        if op not in self.OPS:
            raise ValueError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def _key(self) -> Tuple[Any, ...]:
        return (self.op, self.left, self.right)


class Apply(Term):
    """``f(t₁, …)`` — application of a host function bound in the
    environment, e.g. the cancellation function ``f`` of §2.2."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Tuple[Term, ...]) -> None:
        self.name = name
        self.args = tuple(args)

    def _key(self) -> Tuple[Any, ...]:
        return (self.name, self.args)


class Sum(Term):
    """``Σ_{var=lo}^{hi} body`` — the finite sum used by the multiplier
    invariant (§2 item 3's example).  ``var`` is bound in ``body``."""

    __slots__ = ("variable", "low", "high", "body")

    def __init__(self, variable: str, low: Term, high: Term, body: Term) -> None:
        self.variable = variable
        self.low = low
        self.high = high
        self.body = body

    def _key(self) -> Tuple[Any, ...]:
        return (self.variable, self.low, self.high, self.body)


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


class BoolLit(Formula):
    """``true`` / ``false``."""

    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        self.value = bool(value)

    def _key(self) -> Tuple[Any, ...]:
        return (self.value,)


class Compare(Formula):
    """``t ⋈ u`` for ⋈ ∈ {≤, <, =, ≠, >, ≥}.

    ``≤`` (and ``<``) are overloaded exactly as in the paper: on two
    sequences they are the (strict) *prefix order* ``s ≤ t ⇔ ∃u. s++u = t``;
    on two numbers, the numeric order.
    """

    __slots__ = ("op", "left", "right")

    OPS = ("<=", "<", "=", "!=", ">", ">=")

    def __init__(self, op: str, left: Term, right: Term) -> None:
        if op not in self.OPS:
            raise ValueError(f"unknown comparison {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def _key(self) -> Tuple[Any, ...]:
        return (self.op, self.left, self.right)


class LogicalAnd(Formula):
    """``R & S``."""

    __slots__ = ("left", "right")

    def __init__(self, left: Formula, right: Formula) -> None:
        self.left = left
        self.right = right

    def _key(self) -> Tuple[Any, ...]:
        return (self.left, self.right)


class LogicalOr(Formula):
    """``R or S``."""

    __slots__ = ("left", "right")

    def __init__(self, left: Formula, right: Formula) -> None:
        self.left = left
        self.right = right

    def _key(self) -> Tuple[Any, ...]:
        return (self.left, self.right)


class LogicalNot(Formula):
    """``not R``."""

    __slots__ = ("operand",)

    def __init__(self, operand: Formula) -> None:
        self.operand = operand

    def _key(self) -> Tuple[Any, ...]:
        return (self.operand,)


class Implies(Formula):
    """``R ⇒ S``."""

    __slots__ = ("antecedent", "consequent")

    def __init__(self, antecedent: Formula, consequent: Formula) -> None:
        self.antecedent = antecedent
        self.consequent = consequent

    def _key(self) -> Tuple[Any, ...]:
        return (self.antecedent, self.consequent)


class ForAll(Formula):
    """``∀ var ∈ M. R`` — ``var`` is bound in ``R``; ``M`` is a set
    expression (§3.3 gives its semantics)."""

    __slots__ = ("variable", "domain", "body")

    def __init__(self, variable: str, domain: SetExpr, body: Formula) -> None:
        self.variable = variable
        self.domain = domain
        self.body = body

    def _key(self) -> Tuple[Any, ...]:
        return (self.variable, self.domain, self.body)


class Exists(Formula):
    """``∃ var ∈ M. R``."""

    __slots__ = ("variable", "domain", "body")

    def __init__(self, variable: str, domain: SetExpr, body: Formula) -> None:
        self.variable = variable
        self.domain = domain
        self.body = body

    def _key(self) -> Tuple[Any, ...]:
        return (self.variable, self.domain, self.body)

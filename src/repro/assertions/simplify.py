"""Syntactic simplification of assertion formulas.

A conservative rewriter: constant folding on ground terms (sequence
literals, arithmetic on constants, ``#⟨…⟩``, indexing into literals) and
the propositional identities (units, absorbers, double negation,
idempotence).  The result is logically equivalent to the input under
every environment and channel history — the property tests check exactly
that — so the oracle may use ``simplify(R) == true`` as a free discharge
(many ``R_<>`` side conditions fold to ``true`` outright: blanking the
channels of ``wire ≤ input`` leaves ``⟨⟩ ≤ ⟨⟩``).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.assertions.ast import (
    Apply,
    Arith,
    BoolLit,
    ChannelTrace,
    Compare,
    Concat,
    Cons,
    ConstTerm,
    Exists,
    ForAll,
    Formula,
    Implies,
    Index,
    Length,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    SeqLit,
    Sum,
    Term,
    VarTerm,
)
from repro.assertions.sequences import is_seq_prefix, is_strict_seq_prefix

TRUE = BoolLit(True)
FALSE = BoolLit(False)


def _ground_value(term: Term) -> Optional[Any]:
    """The constant value of a ground term, or ``None``.

    (``None`` is never a legal message value in the library, so it is a
    safe sentinel.)"""
    if isinstance(term, ConstTerm):
        return term.value
    if isinstance(term, SeqLit):
        values = []
        for element in term.elements:
            value = _ground_value(element)
            if value is None:
                return None
            values.append(value)
        return tuple(values)
    return None


def _from_value(value: Any) -> Term:
    if isinstance(value, tuple):
        return SeqLit(tuple(_from_value(v) for v in value))
    return ConstTerm(value)


def simplify_term(term: Term) -> Term:
    """Bottom-up constant folding on a term."""
    if isinstance(term, (ConstTerm, VarTerm, ChannelTrace)):
        return term
    if isinstance(term, SeqLit):
        return SeqLit(tuple(simplify_term(e) for e in term.elements))
    if isinstance(term, Cons):
        head = simplify_term(term.head)
        tail = simplify_term(term.tail)
        if isinstance(tail, SeqLit):
            return SeqLit((head,) + tail.elements)
        return Cons(head, tail)
    if isinstance(term, Concat):
        left = simplify_term(term.left)
        right = simplify_term(term.right)
        if isinstance(left, SeqLit) and isinstance(right, SeqLit):
            return SeqLit(left.elements + right.elements)
        if isinstance(left, SeqLit) and not left.elements:
            return right
        if isinstance(right, SeqLit) and not right.elements:
            return left
        return Concat(left, right)
    if isinstance(term, Length):
        sequence = simplify_term(term.sequence)
        if isinstance(sequence, SeqLit):
            return ConstTerm(len(sequence.elements))
        return Length(sequence)
    if isinstance(term, Index):
        sequence = simplify_term(term.sequence)
        index = simplify_term(term.index)
        if isinstance(sequence, SeqLit):
            i = _ground_value(index)
            if isinstance(i, int) and 1 <= i <= len(sequence.elements):
                return sequence.elements[i - 1]
        return Index(sequence, index)
    if isinstance(term, Arith):
        left = simplify_term(term.left)
        right = simplify_term(term.right)
        lv, rv = _ground_value(left), _ground_value(right)
        if (
            isinstance(lv, int)
            and isinstance(rv, int)
            and not isinstance(lv, bool)
            and not isinstance(rv, bool)
        ):
            if term.op == "+":
                return ConstTerm(lv + rv)
            if term.op == "-":
                return ConstTerm(lv - rv)
            if term.op == "*":
                return ConstTerm(lv * rv)
            if rv != 0:
                return ConstTerm(lv // rv if term.op == "div" else lv % rv)
        return Arith(term.op, left, right)
    if isinstance(term, Apply):
        return Apply(term.name, tuple(simplify_term(a) for a in term.args))
    if isinstance(term, Sum):
        low = simplify_term(term.low)
        high = simplify_term(term.high)
        body = simplify_term(term.body)
        lv, hv = _ground_value(low), _ground_value(high)
        if isinstance(lv, int) and isinstance(hv, int) and hv < lv:
            return ConstTerm(0)  # empty sum
        return Sum(term.variable, low, high, body)
    raise TypeError(f"unknown term {term!r}")


def simplify(formula: Formula) -> Formula:
    """Bottom-up simplification of a formula; equivalence-preserving."""
    if isinstance(formula, BoolLit):
        return formula
    if isinstance(formula, Compare):
        return _simplify_compare(formula)
    if isinstance(formula, LogicalAnd):
        left = simplify(formula.left)
        right = simplify(formula.right)
        if left == FALSE or right == FALSE:
            return FALSE
        if left == TRUE:
            return right
        if right == TRUE:
            return left
        if left == right:
            return left
        return LogicalAnd(left, right)
    if isinstance(formula, LogicalOr):
        left = simplify(formula.left)
        right = simplify(formula.right)
        if left == TRUE or right == TRUE:
            return TRUE
        if left == FALSE:
            return right
        if right == FALSE:
            return left
        if left == right:
            return left
        return LogicalOr(left, right)
    if isinstance(formula, LogicalNot):
        operand = simplify(formula.operand)
        if operand == TRUE:
            return FALSE
        if operand == FALSE:
            return TRUE
        if isinstance(operand, LogicalNot):
            return operand.operand
        return LogicalNot(operand)
    if isinstance(formula, Implies):
        antecedent = simplify(formula.antecedent)
        consequent = simplify(formula.consequent)
        if antecedent == FALSE or consequent == TRUE:
            return TRUE
        if antecedent == TRUE:
            return consequent
        if antecedent == consequent:
            return TRUE
        return Implies(antecedent, consequent)
    if isinstance(formula, ForAll):
        body = simplify(formula.body)
        if body == TRUE:
            return TRUE  # ∀x∈M. true — true even for empty M
        return ForAll(formula.variable, formula.domain, body)
    if isinstance(formula, Exists):
        body = simplify(formula.body)
        if body == FALSE:
            return FALSE
        return Exists(formula.variable, formula.domain, body)
    raise TypeError(f"unknown formula {formula!r}")


def _simplify_compare(formula: Compare) -> Formula:
    left = simplify_term(formula.left)
    right = simplify_term(formula.right)
    lv, rv = _ground_value(left), _ground_value(right)
    if lv is not None and rv is not None:
        verdict = _decide(formula.op, lv, rv)
        if verdict is not None:
            return BoolLit(verdict)
    # ⟨⟩ is a prefix of every sequence (§3.1: {⟨⟩} ⊆ P).
    if (
        formula.op == "<="
        and isinstance(left, SeqLit)
        and not left.elements
        and _is_seq_typed(right)
        and _is_total(right)
    ):
        return TRUE
    if (
        formula.op == ">="
        and isinstance(right, SeqLit)
        and not right.elements
        and _is_seq_typed(left)
        and _is_total(left)
    ):
        return TRUE
    # Reflexive comparisons on identical terms — only when the term cannot
    # fail to evaluate (indexing, host functions, and div/mod may raise,
    # and an erroring assertion is *not* invariantly true).  Order
    # comparisons additionally need the term to be number- or
    # sequence-typed (a string variable would make ``x ≤ x`` ill-typed).
    if left == right and _is_total(left):
        if formula.op == "=":
            return TRUE
        if formula.op == "!=":
            return FALSE
        if _is_orderable(left):
            if formula.op in ("<=", ">="):
                return TRUE
            return FALSE  # "<" or ">"
    return Compare(formula.op, left, right)


def _shape(term: Term):
    """A conservative type-and-totality analysis.

    Returns ``'int'`` or ``'seq'`` when the term is guaranteed to evaluate
    *without raising* to a value of that type, ``'other'``/``'unknown'``
    for other guaranteed-total values (strings, booleans, variables), and
    ``None`` when evaluation might raise.  Variables count as total
    (``P sat R`` ranges them over message values) but of unknown type.
    """
    if isinstance(term, ConstTerm):
        value = term.value
        if isinstance(value, bool):
            return "other"
        if isinstance(value, int):
            return "int"
        if isinstance(value, tuple):
            return "seq"
        return "other"
    if isinstance(term, VarTerm):
        return "unknown"
    if isinstance(term, ChannelTrace):
        return "seq"
    if isinstance(term, SeqLit):
        if all(_shape(e) is not None for e in term.elements):
            return "seq"
        return None
    if isinstance(term, Cons):
        if _shape(term.head) is not None and _shape(term.tail) == "seq":
            return "seq"
        return None
    if isinstance(term, Concat):
        if _shape(term.left) == "seq" and _shape(term.right) == "seq":
            return "seq"
        return None
    if isinstance(term, Length):
        return "int" if _shape(term.sequence) == "seq" else None
    if isinstance(term, Arith):
        if (
            term.op in ("+", "-", "*")
            and _shape(term.left) == "int"
            and _shape(term.right) == "int"
        ):
            return "int"
        return None
    # Index may go out of range; Apply may raise; Sum may contain either.
    return None


def _is_total(term: Term) -> bool:
    """True when evaluating the term can never raise."""
    return _shape(term) is not None


def _is_seq_typed(term: Term) -> bool:
    return _shape(term) == "seq"


def _is_orderable(term: Term) -> bool:
    """True when the term is guaranteed to evaluate to a number or a
    sequence (the types the overloaded comparison accepts)."""
    return _shape(term) in ("int", "seq")


def _decide(op: str, lv: Any, rv: Any) -> Optional[bool]:
    if op == "=":
        return lv == rv
    if op == "!=":
        return lv != rv
    both_seq = isinstance(lv, tuple) and isinstance(rv, tuple)
    both_num = (
        isinstance(lv, int)
        and isinstance(rv, int)
        and not isinstance(lv, bool)
        and not isinstance(rv, bool)
    )
    if both_seq:
        if op == "<=":
            return is_seq_prefix(lv, rv)
        if op == "<":
            return is_strict_seq_prefix(lv, rv)
        if op == ">=":
            return is_seq_prefix(rv, lv)
        return is_strict_seq_prefix(rv, lv)
    if both_num:
        if op == "<=":
            return lv <= rv
        if op == "<":
            return lv < rv
        if op == ">=":
            return lv >= rv
        return lv > rv
    return None  # ill-typed when ground: leave for evaluation to reject

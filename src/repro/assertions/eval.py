"""Evaluation of assertions under ``ρ + ch(s)`` (paper §3.3).

``evaluate_formula(R, env, history)`` computes the truth of ``R`` in the
environment ``ρ`` extended so that channel names denote the sequences
``ch(s)`` ascribes to them — the exact construction of §3.3.

Connectives short-circuit, so guarded formulas like
``1 ≤ i & i ≤ #output ⇒ output_i = …`` never evaluate the guarded part
out of range.  Quantifiers over infinite sets enumerate a bounded sample
(``config.quant_bound``); this is the bounded-model-checking reading —
complete for refutation on the enumerated values, and irrelevant to the
proof system, which treats quantifiers symbolically.
"""

from __future__ import annotations

from typing import Any

from repro.assertions.ast import (
    Apply,
    Arith,
    BoolLit,
    ChannelTrace,
    Compare,
    Concat,
    Cons,
    ConstTerm,
    Exists,
    ForAll,
    Formula,
    Implies,
    Index,
    Length,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    SeqLit,
    Sum,
    Term,
    VarTerm,
)
from repro.assertions.sequences import is_seq_prefix, is_strict_seq_prefix, seq_index
from repro.errors import EvaluationError
from repro.traces.histories import ChannelHistory
from repro.values.environment import Environment


class EvalConfig:
    """Bounds for assertion evaluation."""

    __slots__ = ("quant_bound",)

    def __init__(self, quant_bound: int = 32) -> None:
        if quant_bound < 1:
            raise ValueError("quant_bound must be positive")
        self.quant_bound = quant_bound

    def __repr__(self) -> str:
        return f"EvalConfig(quant_bound={self.quant_bound})"


DEFAULT_EVAL_CONFIG = EvalConfig()


def evaluate_term(
    term: Term,
    env: Environment,
    history: ChannelHistory,
    config: EvalConfig = DEFAULT_EVAL_CONFIG,
) -> Any:
    """The value of a term: a number, a message value, or a tuple
    (sequence)."""
    if isinstance(term, ConstTerm):
        return term.value
    if isinstance(term, VarTerm):
        return env.lookup(term.name)
    if isinstance(term, ChannelTrace):
        return history(term.channel.evaluate(env))
    if isinstance(term, SeqLit):
        return tuple(evaluate_term(e, env, history, config) for e in term.elements)
    if isinstance(term, Cons):
        head = evaluate_term(term.head, env, history, config)
        tail = evaluate_term(term.tail, env, history, config)
        _require_seq(tail, "⌢ (cons)")
        return (head,) + tail
    if isinstance(term, Concat):
        left = evaluate_term(term.left, env, history, config)
        right = evaluate_term(term.right, env, history, config)
        _require_seq(left, "++")
        _require_seq(right, "++")
        return left + right
    if isinstance(term, Length):
        seq = evaluate_term(term.sequence, env, history, config)
        _require_seq(seq, "#")
        return len(seq)
    if isinstance(term, Index):
        seq = evaluate_term(term.sequence, env, history, config)
        _require_seq(seq, "indexing")
        index = evaluate_term(term.index, env, history, config)
        _require_int(index, "index")
        try:
            return seq_index(seq, index)
        except IndexError as exc:
            raise EvaluationError(str(exc)) from exc
    if isinstance(term, Arith):
        left = evaluate_term(term.left, env, history, config)
        right = evaluate_term(term.right, env, history, config)
        _require_int(left, term.op)
        _require_int(right, term.op)
        if term.op == "+":
            return left + right
        if term.op == "-":
            return left - right
        if term.op == "*":
            return left * right
        if right == 0:
            raise EvaluationError(f"division by zero in {term.op}")
        return left // right if term.op == "div" else left % right
    if isinstance(term, Apply):
        func = env.lookup(term.name, kind="function")
        if not callable(func):
            raise EvaluationError(f"{term.name!r} is not bound to a function")
        args = [evaluate_term(a, env, history, config) for a in term.args]
        try:
            return func(*args)
        except EvaluationError:
            raise
        except Exception as exc:
            raise EvaluationError(f"{term.name}(...) raised {exc!r}") from exc
    if isinstance(term, Sum):
        low = evaluate_term(term.low, env, history, config)
        high = evaluate_term(term.high, env, history, config)
        _require_int(low, "Σ lower bound")
        _require_int(high, "Σ upper bound")
        total = 0
        for value in range(low, high + 1):
            summand = evaluate_term(
                term.body, env.bind(term.variable, value), history, config
            )
            _require_int(summand, "Σ body")
            total += summand
        return total
    raise EvaluationError(f"unknown term {term!r}")


def evaluate_formula(
    formula: Formula,
    env: Environment,
    history: ChannelHistory,
    config: EvalConfig = DEFAULT_EVAL_CONFIG,
) -> bool:
    """The truth of a formula under ``ρ + ch(s)``."""
    if isinstance(formula, BoolLit):
        return formula.value
    if isinstance(formula, Compare):
        return _compare(formula, env, history, config)
    if isinstance(formula, LogicalAnd):
        return evaluate_formula(formula.left, env, history, config) and evaluate_formula(
            formula.right, env, history, config
        )
    if isinstance(formula, LogicalOr):
        return evaluate_formula(formula.left, env, history, config) or evaluate_formula(
            formula.right, env, history, config
        )
    if isinstance(formula, LogicalNot):
        return not evaluate_formula(formula.operand, env, history, config)
    if isinstance(formula, Implies):
        if not evaluate_formula(formula.antecedent, env, history, config):
            return True
        return evaluate_formula(formula.consequent, env, history, config)
    if isinstance(formula, ForAll):
        domain = formula.domain.evaluate(env)
        return all(
            evaluate_formula(
                formula.body, env.bind(formula.variable, value), history, config
            )
            for value in domain.enumerate(config.quant_bound)
        )
    if isinstance(formula, Exists):
        domain = formula.domain.evaluate(env)
        return any(
            evaluate_formula(
                formula.body, env.bind(formula.variable, value), history, config
            )
            for value in domain.enumerate(config.quant_bound)
        )
    raise EvaluationError(f"unknown formula {formula!r}")


def _compare(formula: Compare, env, history, config) -> bool:
    left = evaluate_term(formula.left, env, history, config)
    right = evaluate_term(formula.right, env, history, config)
    op = formula.op
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    both_seq = isinstance(left, tuple) and isinstance(right, tuple)
    both_num = _is_int(left) and _is_int(right)
    if both_seq:
        # The paper's overloaded ≤: the prefix order on sequences.
        if op == "<=":
            return is_seq_prefix(left, right)
        if op == "<":
            return is_strict_seq_prefix(left, right)
        if op == ">=":
            return is_seq_prefix(right, left)
        return is_strict_seq_prefix(right, left)
    if both_num:
        if op == "<=":
            return left <= right
        if op == "<":
            return left < right
        if op == ">=":
            return left >= right
        return left > right
    raise EvaluationError(
        f"cannot compare {left!r} {op} {right!r}: operands must be two "
        f"sequences or two numbers"
    )


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _require_seq(value: Any, op: str) -> None:
    if not isinstance(value, tuple):
        raise EvaluationError(f"{op} applied to non-sequence {value!r}")


def _require_int(value: Any, op: str) -> None:
    if not _is_int(value):
        raise EvaluationError(f"{op} applied to non-number {value!r}")

"""The assertion language of §2 and its semantics (§3.3).

An assertion is a predicate whose free *channel names* stand for the
sequence of values communicated along that channel so far.  This package
provides:

* :mod:`repro.assertions.ast`          — terms (sequences, numbers) and
  formulas (comparisons, connectives, bounded quantifiers, Σ);
* :mod:`repro.assertions.sequences`    — the sequence operators of §2 and
  the protocol's cancellation function ``f`` (§2.2);
* :mod:`repro.assertions.eval`         — evaluation under ``ρ + ch(s)``;
* :mod:`repro.assertions.substitution` — the substitution operators
  ``R_<>``, ``R^c_{e⌢c}``, ``R^x_e`` used by the inference rules;
* :mod:`repro.assertions.parser`       — parser for a textual notation;
* :mod:`repro.assertions.builders`     — a Python DSL for building
  assertions programmatically.
"""

from repro.assertions.ast import (
    Apply,
    Arith,
    BoolLit,
    ChannelTrace,
    Compare,
    Concat,
    Cons,
    ConstTerm,
    Exists,
    ForAll,
    Formula,
    Index,
    Length,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    Implies,
    SeqLit,
    Sum,
    Term,
    VarTerm,
)
from repro.assertions.builders import (
    EMPTY_SEQ,
    TRUE,
    FALSE,
    and_,
    apply_,
    chan_,
    const_,
    exists_,
    forall_,
    implies_,
    not_,
    or_,
    seq_,
    var_,
)
from repro.assertions.eval import EvalConfig, evaluate_formula, evaluate_term
from repro.assertions.parser import parse_assertion
from repro.assertions.simplify import simplify, simplify_term
from repro.assertions import patterns
from repro.assertions.sequences import cancel_protocol, is_seq_prefix
from repro.assertions.substitution import (
    blank_channels,
    channels_mentioned,
    formula_free_variables,
    prefix_channel,
    substitute_variable,
)

__all__ = [
    "Term",
    "Formula",
    "ConstTerm",
    "VarTerm",
    "ChannelTrace",
    "SeqLit",
    "Cons",
    "Concat",
    "Length",
    "Index",
    "Arith",
    "Apply",
    "Sum",
    "BoolLit",
    "Compare",
    "LogicalAnd",
    "LogicalOr",
    "LogicalNot",
    "Implies",
    "ForAll",
    "Exists",
    "parse_assertion",
    "evaluate_formula",
    "evaluate_term",
    "EvalConfig",
    "substitute_variable",
    "blank_channels",
    "prefix_channel",
    "channels_mentioned",
    "formula_free_variables",
    "cancel_protocol",
    "is_seq_prefix",
    "chan_",
    "var_",
    "const_",
    "seq_",
    "apply_",
    "and_",
    "or_",
    "not_",
    "implies_",
    "forall_",
    "exists_",
    "TRUE",
    "FALSE",
    "EMPTY_SEQ",
    "simplify",
    "simplify_term",
    "patterns",
]

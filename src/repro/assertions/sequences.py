"""Sequence operators of §2 and the protocol cancellation function (§2.2).

Sequences of messages are plain Python tuples throughout the library.
"""

from __future__ import annotations

from typing import Any, Tuple

Seq = Tuple[Any, ...]


def is_seq_prefix(s: Seq, t: Seq) -> bool:
    """The prefix order ``s ≤ t ⇔ ∃u. s ++ u = t`` (§2)."""
    return len(s) <= len(t) and t[: len(s)] == s


def is_strict_seq_prefix(s: Seq, t: Seq) -> bool:
    """``s < t``: a proper prefix."""
    return len(s) < len(t) and t[: len(s)] == s


def seq_index(s: Seq, i: int) -> Any:
    """``s_i`` — 1-based indexing, defined for ``i ∈ {1, …, #s}`` (§2 item 3)."""
    if not 1 <= i <= len(s):
        raise IndexError(f"index {i} outside 1..{len(s)}")
    return s[i - 1]


ACK = "ACK"
NACK = "NACK"


def cancel_protocol(s: Seq, ack: Any = ACK, nack: Any = NACK) -> Seq:
    """The function ``f`` of §2.2: from a wire history over
    ``M ∪ {ACK, NACK}``, recover the sequence of successfully delivered
    messages.

    ``f(s)`` is obtained from ``s`` by cancelling all occurrences of ACK
    and all consecutive pairs ``⟨x, NACK⟩``.  The paper's defining laws::

        f(⟨⟩) = ⟨⟩
        f(⟨x⟩) = ⟨x⟩                      for x ∈ M
        f(x ⌢ ⟨ACK⟩ ⌢ s) = x ⌢ f(s)
        f(x ⌢ ⟨NACK⟩ ⌢ s) = f(s)

    are verified by the property tests.  A NACK with no preceding message
    (which a well-formed protocol run never produces) is simply cancelled.
    """
    result = []
    i = 0
    n = len(s)
    while i < n:
        current = s[i]
        if current == ack:
            i += 1
        elif current == nack:
            i += 1
        elif i + 1 < n and s[i + 1] == nack:
            i += 2
        else:
            result.append(current)
            i += 1
    return tuple(result)

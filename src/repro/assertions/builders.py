"""A small Python DSL for building assertions programmatically.

>>> from repro.assertions.builders import chan_, le_
>>> spec = le_(chan_("wire"), chan_("input"))   # wire ≤ input
"""

from __future__ import annotations

from typing import Any, Optional

from repro.assertions.ast import (
    Apply,
    Arith,
    BoolLit,
    ChannelTrace,
    Compare,
    Concat,
    Cons,
    ConstTerm,
    Exists,
    ForAll,
    Formula,
    Implies,
    Index,
    Length,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    SeqLit,
    Sum,
    Term,
    VarTerm,
)
from repro.process.channels import ChannelExpr
from repro.values.expressions import Expr, SetExpr, as_expr

TRUE = BoolLit(True)
FALSE = BoolLit(False)
EMPTY_SEQ = SeqLit(())


def _term(value: Any) -> Term:
    """Coerce a Python value into a term: ints/strings become constants,
    tuples become sequence literals, terms pass through."""
    if isinstance(value, Term):
        return value
    if isinstance(value, tuple):
        return SeqLit(tuple(_term(v) for v in value))
    return ConstTerm(value)


def chan_(name: str, index: Optional[Any] = None) -> ChannelTrace:
    """The history of channel ``name`` (optionally subscripted)."""
    idx: Optional[Expr] = None if index is None else as_expr(index)
    return ChannelTrace(ChannelExpr(name, idx))


def var_(name: str) -> VarTerm:
    return VarTerm(name)


def const_(value: Any) -> ConstTerm:
    return ConstTerm(value)


def seq_(*elements: Any) -> SeqLit:
    return SeqLit(tuple(_term(e) for e in elements))


def cons_(head: Any, tail: Any) -> Cons:
    return Cons(_term(head), _term(tail))


def cat_(left: Any, right: Any) -> Concat:
    return Concat(_term(left), _term(right))


def len_(sequence: Any) -> Length:
    return Length(_term(sequence))


def at_(sequence: Any, index: Any) -> Index:
    """``s_i`` — 1-based indexing."""
    return Index(_term(sequence), _term(index))


def plus_(left: Any, right: Any) -> Arith:
    return Arith("+", _term(left), _term(right))


def minus_(left: Any, right: Any) -> Arith:
    return Arith("-", _term(left), _term(right))


def times_(left: Any, right: Any) -> Arith:
    return Arith("*", _term(left), _term(right))


def apply_(name: str, *args: Any) -> Apply:
    return Apply(name, tuple(_term(a) for a in args))


def sum_(variable: str, low: Any, high: Any, body: Any) -> Sum:
    return Sum(variable, _term(low), _term(high), _term(body))


def le_(left: Any, right: Any) -> Compare:
    """``l ≤ r`` — prefix order on sequences, numeric order on numbers."""
    return Compare("<=", _term(left), _term(right))


def lt_(left: Any, right: Any) -> Compare:
    return Compare("<", _term(left), _term(right))


def eq_(left: Any, right: Any) -> Compare:
    return Compare("=", _term(left), _term(right))


def ne_(left: Any, right: Any) -> Compare:
    return Compare("!=", _term(left), _term(right))


def ge_(left: Any, right: Any) -> Compare:
    return Compare(">=", _term(left), _term(right))


def and_(first: Formula, *rest: Formula) -> Formula:
    result = first
    for formula in rest:
        result = LogicalAnd(result, formula)
    return result


def or_(first: Formula, *rest: Formula) -> Formula:
    result = first
    for formula in rest:
        result = LogicalOr(result, formula)
    return result


def not_(operand: Formula) -> LogicalNot:
    return LogicalNot(operand)


def implies_(antecedent: Formula, consequent: Formula) -> Implies:
    return Implies(antecedent, consequent)


def forall_(variable: str, domain: SetExpr, body: Formula) -> ForAll:
    return ForAll(variable, domain, body)


def exists_(variable: str, domain: SetExpr, body: Formula) -> Exists:
    return Exists(variable, domain, body)

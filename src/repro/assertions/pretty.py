"""Pretty-printer for assertions — inverse of
:func:`repro.assertions.parser.parse_assertion`.

Precedence ladder, loosest to tightest::

    forall/exists . …   =>   or   &   not   (comparisons)
    ++   ^ (right)   + -   * div mod   - # (prefix)   @   atoms
"""

from __future__ import annotations

from repro.assertions.ast import (
    Apply,
    Arith,
    BoolLit,
    ChannelTrace,
    Compare,
    Concat,
    Cons,
    ConstTerm,
    Exists,
    ForAll,
    Formula,
    Implies,
    Index,
    Length,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    SeqLit,
    Sum,
    Term,
    VarTerm,
)
from repro.process.pretty import pretty_expr, pretty_setexpr

# Formula precedence levels.
_QUANT, _IMPL, _OR, _AND, _NOT, _CMP = range(6)
# Term precedence levels.
_CAT, _CONS, _ADD, _MUL, _UNARY, _AT = range(6)


def pretty_assertion(formula: Formula) -> str:
    """Render a formula in the ASCII assertion notation."""
    return _formula(formula, _QUANT)


def pretty_term(term: Term) -> str:
    """Render a term."""
    return _term(term, _CAT)


def pretty_assertion_node(node) -> str:
    """Render either kind of node (used by ``__repr__``)."""
    if isinstance(node, Formula):
        return pretty_assertion(node)
    return pretty_term(node)


def _wrap(text: str, context: int, level: int) -> str:
    return f"({text})" if level < context else text


def _formula(node: Formula, context: int) -> str:
    if isinstance(node, BoolLit):
        return "true" if node.value else "false"
    if isinstance(node, Compare):
        text = f"{_term(node.left, _CAT)} {node.op} {_term(node.right, _CAT)}"
        return _wrap(text, context, _CMP)
    if isinstance(node, LogicalAnd):
        text = f"{_formula(node.left, _AND)} & {_formula(node.right, _AND + 1)}"
        return _wrap(text, context, _AND)
    if isinstance(node, LogicalOr):
        text = f"{_formula(node.left, _OR)} or {_formula(node.right, _OR + 1)}"
        return _wrap(text, context, _OR)
    if isinstance(node, LogicalNot):
        return _wrap(f"not {_formula(node.operand, _NOT)}", context, _NOT)
    if isinstance(node, Implies):
        text = (
            f"{_formula(node.antecedent, _IMPL + 1)} => "
            f"{_formula(node.consequent, _IMPL)}"
        )
        return _wrap(text, context, _IMPL)
    if isinstance(node, (ForAll, Exists)):
        keyword = "forall" if isinstance(node, ForAll) else "exists"
        text = (
            f"{keyword} {node.variable} : {pretty_setexpr(node.domain)} . "
            f"{_formula(node.body, _QUANT)}"
        )
        return _wrap(text, context, _QUANT)
    raise TypeError(f"unknown formula {node!r}")


def _term(node: Term, context: int) -> str:
    if isinstance(node, ConstTerm):
        value = node.value
        if isinstance(value, bool):
            return repr(value)
        if isinstance(value, int):
            return str(value) if value >= 0 else f"(0 - {-value})"
        if isinstance(value, str):
            if value.isidentifier() and value[0].isupper():
                return value
            return f'"{value}"'
        if isinstance(value, tuple):
            if not value:
                return "<>"
            inner = ", ".join(_term(ConstTerm(v), _CAT) for v in value)
            return f"<{inner}>"
        return repr(value)
    if isinstance(node, VarTerm):
        return node.name
    if isinstance(node, ChannelTrace):
        chan = node.channel
        if chan.index is None:
            return chan.name
        return f"{chan.name}[{pretty_expr(chan.index)}]"
    if isinstance(node, SeqLit):
        if not node.elements:
            return "<>"
        inner = ", ".join(_term(e, _CAT) for e in node.elements)
        return f"<{inner}>"
    if isinstance(node, Cons):
        # right-associative: a ^ b ^ s
        text = f"{_term(node.head, _ADD)} ^ {_term(node.tail, _CONS)}"
        return _wrap(text, context, _CONS)
    if isinstance(node, Concat):
        text = f"{_term(node.left, _CAT)} ++ {_term(node.right, _CAT + 1)}"
        return _wrap(text, context, _CAT)
    if isinstance(node, Length):
        return _wrap(f"#{_term(node.sequence, _UNARY)}", context, _UNARY)
    if isinstance(node, Index):
        # '@' parses left-associatively; parenthesise a right child Index.
        text = f"{_term(node.sequence, _AT)}@{_term(node.index, _AT + 1)}"
        return _wrap(text, context, _AT)
    if isinstance(node, Arith):
        if node.op in ("+", "-"):
            text = f"{_term(node.left, _ADD)} {node.op} {_term(node.right, _ADD + 1)}"
            return _wrap(text, context, _ADD)
        text = f"{_term(node.left, _MUL)} {node.op} {_term(node.right, _MUL + 1)}"
        return _wrap(text, context, _MUL)
    if isinstance(node, Apply):
        inner = ", ".join(_term(a, _CAT) for a in node.args)
        return f"{node.name}({inner})"
    if isinstance(node, Sum):
        return (
            f"(sum {node.variable} : {_term(node.low, _ADD)} .. "
            f"{_term(node.high, _ADD)} . {_term(node.body, _CONS)})"
        )
    raise TypeError(f"unknown term {node!r}")

"""Command-line interface: ``python -m repro <command> …``.

Work with process definition files written in the paper's notation::

    $ cat copier.csp
    copier   = input?x:NAT -> wire!x -> copier;
    recopier = wire?y:NAT -> output!y -> recopier;
    network  = chan wire; (copier || recopier)

    $ python -m repro traces copier.csp --process network --depth 4
    $ python -m repro check copier.csp --process network --spec "output <= input"
    $ python -m repro prove copier.csp --goal network \
          --invariant "copier=wire <= input" \
          --invariant "recopier=output <= wire" \
          --invariant "network=output <= input"
    $ python -m repro simulate copier.csp --process network --steps 10
    $ python -m repro deadlocks copier.csp --process network --depth 3
    $ python -m repro stats copier.csp --process network --depth 6

Named message sets are declared with ``--set M=0,1``; the protocol's
cancellation function is available as ``--with-cancel f``.

``traces``/``check``/``stats`` run on the dependency-graph denotation
engine: ``--jobs N`` solves independent fixpoint components on worker
threads (or worker *processes* with ``--parallel processes``, each
solving into a private arena whose results are spliced back into the
canonical store), and solved closures are snapshotted under
``~/.cache/repro`` (override with ``--cache-dir``, disable with
``--no-cache``) so repeated invocations on the same system warm-start.
``--engine operational`` warm-starts too: the explorer persists its BFS
frontier per completed level (``frontier:{name}@level{k}`` slots in the
same snapshot file), so a second run resumes from the deepest sound
frontier instead of the initial state — ``repro stats`` reports the
reuse as ``frontier_reused``.
``check`` accepts ``--spec`` repeatedly: all assertions are checked
against one warm solved system, verdicts printed in order, and the exit
code is the first failing assertion's.  ``stats --explain-plan`` prints
the engine's SCC schedule and per-level delta/cache account.

Long-running commands accept resource budgets — ``--deadline SECONDS``,
``--max-nodes N`` (freshly interned trie nodes), ``--max-states N``
(explorer configurations).  A command whose budget runs out prints the
sound *partial* result ("verified to depth k") and exits with the budget
exit code (4) instead of dying mid-computation.  Every failure class
maps to its own exit code (parse 2, semantics 3, budget 4, operational
5, proof 6, other 7, overloaded 8, server 9); ``--debug`` re-raises the
underlying exception with its full traceback.

``repro serve --socket PATH --jobs N`` runs a crash-tolerant daemon:
worker processes keep kernels warm across queries, crashed or hung
workers are respawned and their in-flight requests transparently
retried, and a bounded queue sheds excess load explicitly.  Point
``check``/``traces`` at it with ``--server PATH`` — verdict text and
exit codes are identical to a local run, just without the cold start.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.assertions.parser import parse_assertion
from repro.assertions.sequences import cancel_protocol
from repro.errors import (
    EXIT_BUDGET,
    BudgetExceeded,
    ReproError,
    exit_code_for,
)
from repro.process.analysis import channel_names
from repro.process.ast import Name
from repro.process.parser import parse_definitions
from repro.process.pretty import pretty_definitions
from repro.runtime.governor import Budget, Governor, activate
from repro.runtime import governor as _governor
from repro.values.domains import FiniteDomain
from repro.values.environment import Environment


def _parse_value(text: str):
    text = text.strip()
    if text.lstrip("-").isdigit():
        return int(text)
    return text


def environment_from_options(
    sets: Sequence[str], with_cancel: Optional[str] = None
) -> Environment:
    """The value environment for ``--set``/``--with-cancel`` bindings —
    shared with :mod:`repro.server.worker`, which replays a client's
    options server-side so both sides bind identically."""
    env = Environment()
    for binding in sets or []:
        name, sep, values = binding.partition("=")
        if not sep:
            raise SystemExit(f"--set expects NAME=v1,v2,…  got {binding!r}")
        env = env.bind(
            name.strip(), FiniteDomain(_parse_value(v) for v in values.split(","))
        )
    if with_cancel:
        env = env.bind(with_cancel, cancel_protocol)
    return env


def _build_env(args: argparse.Namespace) -> Environment:
    return environment_from_options(args.set or [], args.with_cancel)


def _open_cache(args: argparse.Namespace, defs, config):
    """A snapshot cache for this (definitions, config, bindings) situation,
    or ``None`` when caching is off.

    Under a budget governor the cache runs in **checkpoint-only** mode:
    it serves and records nothing but ``fix:{name}@level{k}`` slots —
    the per-completed-depth closures of the governed deepening schedule.
    Each such slot is deterministic given the definitions and config
    (never depends on where a budget tripped), so a tripped run resumes
    from its own checkpoints on the next invocation while "how far did
    the budget reach" stays invocation-deterministic; the general slot
    vocabulary stays reserved for ungoverned runs.
    """
    if getattr(args, "no_cache", False):
        return None
    from repro.traces.snapshot import SnapshotCache, cache_key

    directory = (
        Path(args.cache_dir)
        if getattr(args, "cache_dir", None)
        else Path.home() / ".cache" / "repro"
    )
    extra = {
        "sets": sorted(args.set or []),
        "with_cancel": args.with_cancel,
    }
    return SnapshotCache(
        directory,
        cache_key(defs, config, extra),
        checkpoint_only=_governor.current() is not None,
    )


def _build_governor(args: argparse.Namespace) -> Optional[Governor]:
    """A governor for the budget flags, or ``None`` when none were given."""
    deadline = getattr(args, "deadline", None)
    max_nodes = getattr(args, "max_nodes", None)
    max_states = getattr(args, "max_states", None)
    if deadline is None and max_nodes is None and max_states is None:
        return None
    return Budget(
        deadline=deadline, max_nodes=max_nodes, max_states=max_states
    ).start()


def _load(args: argparse.Namespace):
    with open(args.file, "r", encoding="utf-8") as handle:
        source = handle.read()
    return parse_definitions(source)


def _target(args: argparse.Namespace, defs) -> Name:
    name = args.process
    if name is None:
        name = list(defs)[-1].name  # the last equation, e.g. the network
    if name not in defs:
        raise SystemExit(f"no process named {name!r}; defined: {sorted(defs.names())}")
    return Name(name)


def _print_traces(closure) -> None:
    for trace in closure:
        inner = ", ".join(repr(e) for e in trace)
        print(f"  ⟨{inner}⟩")


def cmd_parse(args: argparse.Namespace) -> int:
    defs = _load(args)
    print(pretty_definitions(defs))
    return 0


def _emit(stdout: str, stderr: str, code: int) -> int:
    """Print a rendered ``(stdout, stderr, exit_code)`` outcome."""
    if stdout:
        print(stdout)
    if stderr:
        print(stderr, file=sys.stderr)
    return code


def _remote(args: argparse.Namespace, op: str) -> int:
    """Route a ``check``/``traces`` invocation to a ``repro serve``
    daemon.  The file is still parsed locally (syntax errors stay local
    and fast); the AST travels serialised, and the response carries the
    exact stdout/stderr a local run would have printed."""
    from repro.server.client import ServerClient

    defs = _load(args)
    deadline = getattr(args, "deadline", None)
    max_nodes = getattr(args, "max_nodes", None)
    max_states = getattr(args, "max_states", None)
    budget = None
    if deadline is not None or max_nodes is not None or max_states is not None:
        budget = Budget(
            deadline=deadline, max_nodes=max_nodes, max_states=max_states
        )
    kwargs = dict(
        process=args.process,
        depth=args.depth,
        sample=args.sample,
        sets=args.set or [],
        with_cancel=args.with_cancel,
        engine=args.engine,
        jobs=args.jobs,
        parallel=args.parallel,
        budget=budget,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
    )
    with ServerClient(args.server) as client:
        if op == "check":
            response = client.check(defs, args.spec, **kwargs)
        else:
            response = client.traces(defs, **kwargs)
    return _emit(
        response.get("stdout") or "",
        response.get("stderr") or "",
        int(response.get("exit_code", 0)),
    )


def cmd_traces(args: argparse.Namespace) -> int:
    if getattr(args, "server", None):
        return _remote(args, "traces")
    from repro.report import traces_outcome
    from repro.sat.checker import SatChecker
    from repro.semantics.config import SemanticsConfig

    defs = _load(args)
    env = _build_env(args)
    config = SemanticsConfig(depth=args.depth, sample=args.sample)
    cache = _open_cache(args, defs, config)
    checker = SatChecker(
        defs,
        env,
        config,
        engine=args.engine,
        jobs=args.jobs,
        parallel=args.parallel,
        cache=cache,
    )
    result = checker.traces_partial(_target(args, defs))
    if cache is not None:
        cache.save()
    return _emit(*traces_outcome(result, args.depth, args.engine))


def cmd_check(args: argparse.Namespace) -> int:
    if getattr(args, "server", None):
        return _remote(args, "check")
    from repro.report import check_outcome
    from repro.sat.checker import SatChecker
    from repro.semantics.config import SemanticsConfig

    defs = _load(args)
    env = _build_env(args)
    config = SemanticsConfig(depth=args.depth, sample=args.sample)
    cache = _open_cache(args, defs, config)
    checker = SatChecker(
        defs,
        env,
        config,
        engine=args.engine,
        jobs=args.jobs,
        parallel=args.parallel,
        cache=cache,
    )
    target = _target(args, defs)
    # A repeated --spec is a batch: every assertion runs against the
    # same warm solved system, and the rendering rules (newline-joined
    # non-empty outputs, first non-zero exit code, a budget trip ends
    # the batch) mirror repro.server.worker.run_query exactly so local
    # and remote invocations stay byte-identical.
    outcomes = []
    try:
        for spec in args.spec:
            try:
                result = checker.check(target, spec)
            except BudgetExceeded as exc:
                outcomes.append(check_outcome(target.name, spec, trip=exc))
                break
            outcomes.append(
                check_outcome(target.name, spec, result=result, depth=args.depth)
            )
    finally:
        if cache is not None:
            cache.save()
    stdout = "\n".join(out for out, _, _ in outcomes if out)
    stderr = "\n".join(err for _, err, _ in outcomes if err)
    code = next((c for _, _, c in outcomes if c), 0)
    return _emit(stdout, stderr, code)


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.report import render_partial
    from repro.sat.checker import SatChecker
    from repro.semantics.config import SemanticsConfig
    from repro.traces.stats import format_stats, reset_stats

    defs = _load(args)
    env = _build_env(args)
    reset_stats()
    config = SemanticsConfig(depth=args.depth, sample=args.sample)
    cache = _open_cache(args, defs, config)
    checker = SatChecker(
        defs,
        env,
        config,
        engine=args.engine,
        jobs=args.jobs,
        parallel=args.parallel,
        cache=cache,
    )
    target = _target(args, defs)
    code = 0
    try:
        if args.explain_plan:
            from repro.semantics.engine import DenotationEngine

            engine = DenotationEngine(
                defs,
                env,
                config,
                jobs=args.jobs,
                parallel=args.parallel,
                cache=cache,
            )
            print(engine.explain())
        elif args.spec:
            result = checker.check(target, args.spec)
            verdict = "HOLDS" if result.holds else "VIOLATED"
            print(
                f"{verdict}: {target.name} sat {args.spec}  "
                f"({result.traces_checked} traces, depth ≤ {args.depth})"
            )
        else:
            closure = checker.traces_of(target)
            print(
                f"{target.name}: {len(closure)} traces in {closure.node_count()} "
                f"trie nodes (depth ≤ {args.depth}, engine {args.engine})"
            )
    except BudgetExceeded as exc:
        print(render_partial(exc), file=sys.stderr)
        code = EXIT_BUDGET
    finally:
        if cache is not None:
            cache.save()
    if cache is not None:
        # All branches report the cache account — the operational side's
        # frontier slots hit/miss through the same counters.
        print(
            f"snapshot cache: {cache.hits} hits, {cache.misses} "
            f"misses{' (rebuilt: stale/corrupt)' if cache.rebuilt else ''}"
        )
    print()
    print(format_stats())
    governor = _governor.current()
    if governor is not None:
        print()
        print(governor.summary())
    return code


def cmd_prove(args: argparse.Namespace) -> int:
    from repro.proof.checker import ProofChecker
    from repro.proof.oracle import Oracle, OracleConfig
    from repro.proof.tactics import SatProver

    defs = _load(args)
    env = _build_env(args)
    all_channels = set()
    for definition in defs:
        all_channels |= channel_names(Name(definition.name), defs)

    invariants = {}
    for spec in args.invariant or []:
        head, _, formula_text = spec.partition("=")
        if not _:
            raise SystemExit(f"--invariant expects NAME=FORMULA, got {spec!r}")
        head = head.strip()
        formula = parse_assertion(formula_text.strip(), all_channels)
        if ":" in head:
            name, _, param = head.partition(":")
            invariants[name.strip()] = (param.strip(), formula)
        else:
            definition = defs.lookup(head)
            if definition.is_array:
                invariants[head] = (definition.parameter, formula)
            else:
                invariants[head] = formula

    pool = [0, 1, "ACK", "NACK"]
    oracle = Oracle(env, OracleConfig(value_pool=tuple(pool)))
    prover = SatProver(defs, oracle, invariants)
    goal = args.goal or list(defs)[-1].name
    try:
        proof = prover.prove_name(goal)
        report = ProofChecker(defs, oracle).check(proof)
    except BudgetExceeded:
        raise
    except ReproError as exc:
        print(f"PROOF FAILED: {exc}")
        return 1
    print(report.summary())
    if args.show_proof:
        print()
        print(proof.pretty())
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.operational.scheduler import RandomScheduler, simulate
    from repro.operational.step import OperationalSemantics

    defs = _load(args)
    env = _build_env(args)
    semantics = OperationalSemantics(defs, env, sample=args.sample)
    run = simulate(
        _target(args, defs),
        semantics,
        max_steps=args.steps,
        scheduler=RandomScheduler(seed=args.seed),
    )
    for event in run.full_history:
        print("  τ (internal)" if event is None else f"  {event!r}")
    if run.deadlocked:
        print("DEADLOCK: no transition available")
        return 1
    return 0


def cmd_deadlocks(args: argparse.Namespace) -> int:
    from repro.operational.explorer import Explorer
    from repro.operational.step import OperationalSemantics
    from repro.report import render_partial

    defs = _load(args)
    env = _build_env(args)
    semantics = OperationalSemantics(defs, env, sample=args.sample)
    try:
        report = Explorer(semantics).deadlock_report(_target(args, defs), args.depth)
    except BudgetExceeded as exc:
        checkpoint = exc.checkpoint
        payload = (
            checkpoint.payload
            if checkpoint is not None and isinstance(checkpoint.payload, dict)
            else {}
        )
        found = tuple(payload.get("deadlocks") or ())
        print(
            f"PARTIAL: search stopped early with {len(found)} deadlocking "
            f"trace(s) found so far:"
        )
        _print_traces(found)
        print(render_partial(exc), file=sys.stderr)
        return EXIT_BUDGET
    if not report.deadlocks:
        print(
            f"no deadlock reachable within {args.depth} visible events "
            f"({report.states_touched} states touched)"
        )
        return 0
    print(
        f"{len(report.deadlocks)} deadlocking trace(s) "
        f"({report.states_touched} states touched):"
    )
    _print_traces(report.deadlocks)
    return 1


def cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.server.supervisor import Supervisor

    supervisor = Supervisor(
        args.socket,
        jobs=args.jobs,
        parallel=args.parallel,
        queue_limit=args.queue_limit,
        request_timeout=args.request_timeout,
        grace=args.grace,
        max_attempts=args.max_attempts,
        max_requests=args.max_requests,
        inject=args.inject,
    )

    def _terminate(signum, frame):
        supervisor.request_stop()

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)
    print(
        f"repro serve: {args.jobs} worker(s) on {args.socket}",
        file=sys.stderr,
    )
    supervisor.serve_forever()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CSP partial-correctness toolkit (Zhou & Hoare 1981)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def debug_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--debug",
            action="store_true",
            help="re-raise errors with full tracebacks instead of one-line "
            "stderr summaries",
        )

    def budget_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--deadline",
            type=float,
            metavar="SECONDS",
            help="wall-clock budget; exceeded → partial result, exit 4",
        )
        p.add_argument(
            "--max-nodes",
            type=int,
            metavar="N",
            help="budget of freshly interned trie nodes",
        )
        p.add_argument(
            "--max-states",
            type=int,
            metavar="N",
            help="budget of explored operational configurations",
        )

    def common(p: argparse.ArgumentParser, engine: bool = False) -> None:
        p.add_argument("file", help="definitions file in the paper's notation")
        p.add_argument("--process", help="process name (default: last equation)")
        p.add_argument("--depth", type=int, default=5, help="trace depth bound")
        p.add_argument("--sample", type=int, default=2, help="values per infinite set")
        p.add_argument(
            "--set",
            action="append",
            metavar="NAME=v1,v2",
            help="bind a named message set (repeatable)",
        )
        p.add_argument(
            "--with-cancel",
            metavar="NAME",
            help="bind the §2.2 cancellation function under this name",
        )
        if engine:
            p.add_argument(
                "--engine",
                choices=("denotational", "operational"),
                default="denotational",
            )
            p.add_argument(
                "--jobs",
                type=int,
                default=1,
                metavar="N",
                help="workers for independent fixpoint components",
            )
            p.add_argument(
                "--parallel",
                choices=("threads", "processes"),
                default="threads",
                help="worker flavour for --jobs: threads share the "
                "canonical arena; processes solve into private arenas "
                "whose packed segments are spliced back (default threads)",
            )
            p.add_argument(
                "--cache-dir",
                metavar="DIR",
                help="snapshot cache directory (default: ~/.cache/repro)",
            )
            p.add_argument(
                "--no-cache",
                action="store_true",
                help="neither read nor write the snapshot cache",
            )
        budget_flags(p)
        debug_flag(p)

    p = sub.add_parser("parse", help="parse and pretty-print definitions")
    p.add_argument("file")
    debug_flag(p)
    p.set_defaults(func=cmd_parse)

    def server_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--server",
            metavar="SOCKET",
            help="route the query to a repro serve daemon at this unix "
            "socket instead of computing locally",
        )

    p = sub.add_parser("traces", help="enumerate bounded traces")
    common(p, engine=True)
    server_flag(p)
    p.set_defaults(func=cmd_traces)

    p = sub.add_parser("check", help="model-check P sat R")
    common(p, engine=True)
    server_flag(p)
    p.add_argument(
        "--spec",
        action="append",
        required=True,
        help='assertion, e.g. "wire <= input" (repeatable: all '
        "assertions are checked against one warm solved system)",
    )
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "stats",
        help="run a traces/check workload and report trace-trie kernel "
        "counters (interner size, memo hit rates)",
    )
    common(p, engine=True)
    p.add_argument(
        "--spec",
        help="optionally check this assertion instead of only denoting",
    )
    p.add_argument(
        "--explain-plan",
        action="store_true",
        help="print the engine's SCC condensation, topological ranks, and "
        "per-level delta-skip / cache-hit account instead of denoting",
    )
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("prove", help="prove P sat R with the §2.1 rules")
    common(p)
    p.add_argument(
        "--invariant",
        action="append",
        metavar="NAME=FORMULA",
        help="invariant annotation (repeatable; arrays: NAME:param=FORMULA)",
    )
    p.add_argument("--goal", help="name to prove (default: last equation)")
    p.add_argument("--show-proof", action="store_true", help="print the derivation")
    p.set_defaults(func=cmd_prove)

    p = sub.add_parser("simulate", help="run one scheduled execution")
    common(p)
    p.add_argument("--steps", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("deadlocks", help="search for reachable deadlocks")
    common(p)
    p.set_defaults(func=cmd_deadlocks)

    p = sub.add_parser(
        "serve",
        help="run a crash-tolerant verification daemon on a unix socket",
    )
    p.add_argument(
        "--socket", required=True, metavar="PATH", help="unix socket path"
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="worker processes, each holding a warm kernel (default 2)",
    )
    p.add_argument(
        "--parallel",
        choices=("threads", "processes"),
        default="threads",
        help="default engine worker flavour inside each serve worker "
        "for requests that do not name one (default threads)",
    )
    p.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        metavar="N",
        help="requests allowed to wait for a worker before the daemon "
        "sheds load with OVERLOADED / exit code 8 (default 16)",
    )
    p.add_argument(
        "--request-timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="deadline for requests that carry no --deadline of their own",
    )
    p.add_argument(
        "--grace",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="slack past a request's deadline before its worker is "
        "presumed hung and SIGKILLed",
    )
    p.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="dispatch attempts per request across worker crashes",
    )
    p.add_argument(
        "--max-requests",
        type=int,
        metavar="N",
        help="recycle a worker after serving this many requests",
    )
    p.add_argument("--inject", help=argparse.SUPPRESS)
    debug_flag(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "reproduce", help="run the paper-reproduction battery (E1–E10)"
    )
    p.add_argument("--quick", action="store_true", help="small bounds, seconds")
    budget_flags(p)
    debug_flag(p)
    p.set_defaults(func=cmd_reproduce)

    return parser


def cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.report import render_report, run_experiments

    outcomes = run_experiments(quick=args.quick)
    print(render_report(outcomes, quick=args.quick))
    if any(o.partial for o in outcomes):
        return EXIT_BUDGET
    return 0 if all(o.ok for o in outcomes) else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.report import render_partial

    parser = build_parser()
    args = parser.parse_args(argv)
    debug = getattr(args, "debug", False)
    governor = _build_governor(args)
    try:
        with activate(governor):
            return args.func(args)
    except BudgetExceeded as exc:
        # Backstop for trips that escape a command's own partial-result
        # rendering (e.g. prove, simulate).
        if debug:
            raise
        print(render_partial(exc), file=sys.stderr)
        return EXIT_BUDGET
    except (ReproError, OSError) as exc:
        if debug:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":
    sys.exit(main())

"""Trace algebra substrate (paper §3.1 and §3.3).

A process denotes a *prefix-closed* set of traces over the alphabet of
communications ``c.m``.  This package provides:

* :mod:`repro.traces.events` — channels, communications, traces;
* :mod:`repro.traces.trie` — the hash-consed trace-trie kernel, a
  struct-of-arrays :class:`~repro.traces.trie.Arena` of integer node ids
  with :class:`~repro.traces.trie.ClosureNode` views: interned, shared
  subtrees, pointer-equality semantics;
* :mod:`repro.traces.prefix_closure` — finite prefix-closed trace sets,
  a thin view over a trie root;
* :mod:`repro.traces.operations` — the paper's operators ``a → P``,
  ``P \\ C`` (hiding), ``P ⇑ C`` (padding), and ``P ‖ Q`` (parallel),
  as memoised recursive node functions;
* :mod:`repro.traces._reference` — the flat-set reference operators the
  kernel is property-tested against;
* :mod:`repro.traces.stats` — interner / memo-table observability
  counters (surfaced by ``repro stats``);
* :mod:`repro.traces.histories` — the channel-history map ``ch(s)``.
"""

from repro.traces.events import (
    Channel,
    Event,
    Trace,
    EMPTY_TRACE,
    channel,
    event,
    trace,
    trace_channels,
    restrict,
    project,
)
from repro.traces.histories import ChannelHistory, ch
from repro.traces.operations import (
    after_event,
    hide,
    interleavings,
    intersection,
    pad,
    parallel,
    prefix,
    truncate,
    union,
)
from repro.traces.prefix_closure import FiniteClosure, STOP_CLOSURE
from repro.traces.stats import format_stats, reset_stats, snapshot
from repro.traces.trie import (
    Arena,
    ClosureNode,
    EMPTY_NODE,
    arena_info,
    clear_interner,
    interner_size,
)

__all__ = [
    "Channel",
    "Event",
    "Trace",
    "EMPTY_TRACE",
    "channel",
    "event",
    "trace",
    "trace_channels",
    "restrict",
    "project",
    "ChannelHistory",
    "ch",
    "FiniteClosure",
    "STOP_CLOSURE",
    "prefix",
    "after_event",
    "hide",
    "pad",
    "parallel",
    "union",
    "intersection",
    "truncate",
    "interleavings",
    "Arena",
    "ClosureNode",
    "EMPTY_NODE",
    "arena_info",
    "clear_interner",
    "interner_size",
    "format_stats",
    "reset_stats",
    "snapshot",
]

"""Trace algebra substrate (paper §3.1 and §3.3).

A process denotes a *prefix-closed* set of traces over the alphabet of
communications ``c.m``.  This package provides:

* :mod:`repro.traces.events` — channels, communications, traces;
* :mod:`repro.traces.prefix_closure` — finite prefix-closed trace sets;
* :mod:`repro.traces.operations` — the paper's operators ``a → P``,
  ``P \\ C`` (hiding), ``P ⇑ C`` (padding), and ``P ‖ Q`` (parallel);
* :mod:`repro.traces.histories` — the channel-history map ``ch(s)``.
"""

from repro.traces.events import (
    Channel,
    Event,
    Trace,
    EMPTY_TRACE,
    channel,
    event,
    trace,
    trace_channels,
    restrict,
    project,
)
from repro.traces.histories import ChannelHistory, ch
from repro.traces.operations import (
    after_event,
    hide,
    interleavings,
    pad,
    parallel,
    prefix,
)
from repro.traces.prefix_closure import FiniteClosure, STOP_CLOSURE

__all__ = [
    "Channel",
    "Event",
    "Trace",
    "EMPTY_TRACE",
    "channel",
    "event",
    "trace",
    "trace_channels",
    "restrict",
    "project",
    "ChannelHistory",
    "ch",
    "FiniteClosure",
    "STOP_CLOSURE",
    "prefix",
    "after_event",
    "hide",
    "pad",
    "parallel",
    "interleavings",
]

"""The channel-history map ``ch(s)`` (paper §3.3).

``ch(s)`` maps every channel name onto the sequence of messages whose
communication along that channel is recorded in the trace ``s``.  The
paper's worked example::

    s = ⟨input.27, wire.27, input.0, wire.0, input.3⟩
    ch(s)(input) = ⟨27, 0, 3⟩
    ch(s)(wire)  = ⟨27, 0⟩
    ch(s)(c)     = ⟨⟩   for any other channel c

Assertions are evaluated in the environment ``ρ + ch(s)``, where channel
names take the values ``ch(s)`` ascribes to them; :class:`ChannelHistory`
is that extension's channel part.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterator, Mapping, Tuple

from repro.traces.events import Channel, Trace

Message = Any
MessageSeq = Tuple[Message, ...]


class ChannelHistory:
    """An immutable total map from channels to message sequences.

    Channels never recorded map to the empty sequence ⟨⟩, exactly as in the
    paper (``ch(s)(c) = ⟨⟩`` for unused ``c``).
    """

    __slots__ = ("_sequences",)

    def __init__(self, sequences: Mapping[Channel, MessageSeq] = ()) -> None:
        cleaned: Dict[Channel, MessageSeq] = {}
        for chan, seq in dict(sequences).items():
            seq = tuple(seq)
            if seq:
                cleaned[chan] = seq
        self._sequences = cleaned

    def __call__(self, chan: Channel) -> MessageSeq:
        """``ch(s)(c)`` — total lookup, defaulting to ⟨⟩."""
        return self._sequences.get(chan, ())

    def get(self, chan: Channel) -> MessageSeq:
        return self(chan)

    def channels(self) -> FrozenSet[Channel]:
        """Channels with non-empty history."""
        return frozenset(self._sequences)

    def items(self) -> Iterator[Tuple[Channel, MessageSeq]]:
        return iter(sorted(self._sequences.items(), key=lambda kv: kv[0].sort_key()))

    def total_length(self) -> int:
        """Number of communications recorded across all channels."""
        return sum(len(seq) for seq in self._sequences.values())

    def with_prefixed(self, chan: Channel, message: Message) -> "ChannelHistory":
        """The history with ``message`` *prefixed* to channel ``chan`` —
        the update ``ch(c.m⌢s) = ch(s)[(m⌢ch(s)(c))/c]`` of §3.3."""
        updated = dict(self._sequences)
        updated[chan] = (message,) + self(chan)
        return ChannelHistory(updated)

    def with_appended(self, chan: Channel, message: Message) -> "ChannelHistory":
        """The history with ``message`` *appended* to channel ``chan`` —
        ``ch(s⌢c.m) = ch(s)[(ch(s)(c)⌢m)/c]``, the left-to-right reading
        of the §3.3 update.  This is the incremental step the trie-walking
        sat checker threads down each edge, so the history of a shared
        prefix is computed once instead of once per extending trace."""
        updated = dict(self._sequences)
        updated[chan] = self(chan) + (message,)
        # Invariants hold (all values are non-empty tuples): skip the
        # constructor's re-normalisation on this hot path.
        result = ChannelHistory.__new__(ChannelHistory)
        result._sequences = updated
        return result

    def restrict_away(self, channels: FrozenSet[Channel]) -> "ChannelHistory":
        """Histories with the given channels' records removed — mirrors
        ``ch(s \\ C)`` (lemma (d) of §3.4)."""
        return ChannelHistory(
            {c: seq for c, seq in self._sequences.items() if c not in channels}
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ChannelHistory) and self._sequences == other._sequences

    def __hash__(self) -> int:
        return hash(frozenset(self._sequences.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{chan!r}: {seq!r}" for chan, seq in self.items())
        return f"ChannelHistory({{{inner}}})"


def ch(s: Trace) -> ChannelHistory:
    """Compute ``ch(s)`` by a single left-to-right pass.

    Equivalent to the paper's right recursion
    ``ch(c.m⌢s) = ch(s)[(m⌢ch(s)(c))/c]`` — prefixing while recursing from
    the right is the same as appending while scanning from the left.
    """
    sequences: Dict[Channel, list] = {}
    for e in s:
        sequences.setdefault(e.channel, []).append(e.message)
    return ChannelHistory({chan: tuple(seq) for chan, seq in sequences.items()})

"""Observability counters for the trace-trie kernel.

Every hash-consed node construction and every per-operator memo table in
:mod:`repro.traces.trie` and :mod:`repro.traces.operations` reports into
the process-wide :class:`KernelStats` singleton.  The counters answer the
questions every later performance PR needs answered first:

* how large is the arena (distinct subtrees alive, flat segment bytes)?
* how often does hash-consing pay (packed-key interner hits vs. fresh
  nodes appended)?
* which operator memo tables are hot, and what are their hit rates?

``repro stats`` (the CLI subcommand) prints :func:`format_stats` after a
denotation or sat-check run; benchmarks snapshot/reset around timed
sections so numbers are attributable to one workload.
"""

from __future__ import annotations

from typing import Dict


class MemoStats:
    """Hit/miss counters for one operator's memo table."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
        }


class KernelStats:
    """Process-wide kernel counters (one instance: :data:`KERNEL_STATS`)."""

    __slots__ = (
        "interner_hits",
        "interner_misses",
        "memos",
        "delta_queries",
        "delta_capped",
        "frontier_nodes",
        "spliced_ids",
        "spliced_bytes",
        "remap_entries",
        "frontier_saved",
        "frontier_reused",
        "forall_resumed",
    )

    def __init__(self) -> None:
        self.interner_hits = 0
        self.interner_misses = 0
        self.memos: Dict[str, MemoStats] = {}
        #: Delta-frontier walks performed (``delta_depth``/``delta_nodes``).
        self.delta_queries = 0
        #: Walks abandoned at :data:`repro.traces.trie.DELTA_WALK_CAP` —
        #: each one degraded a potential skip to a full re-denotation.
        self.delta_capped = 0
        #: Fresh subtrees enumerated across all frontier walks.
        self.frontier_nodes = 0
        #: Node ids admitted through :meth:`Arena.append_rows` — segments
        #: spliced wholesale from a snapshot, a worker process, or a
        #: shared solved-system payload (never row-by-row interning).
        self.spliced_ids = 0
        #: Raw segment bytes those splices appended (edge tables, spans,
        #: counts, heights) — the cross-process shared-memory traffic.
        self.spliced_bytes = 0
        #: Non-trivial id remappings performed by
        #: :func:`repro.traces.trie.reintern` — the total size of the
        #: foreign-id → canonical-id tables built when closures cross
        #: kernel states.
        self.remap_entries = 0
        #: Explorer frontier levels persisted to checkpoint slots.
        self.frontier_saved = 0
        #: Warm restarts: explorer runs seeded from a persisted frontier
        #: instead of the initial state.
        self.frontier_reused = 0
        #: ``check_forall`` instances skipped because a
        #: ``forall:{name}@instance{i}`` slot recorded them as verified.
        self.forall_resumed = 0

    # -- recording ---------------------------------------------------------

    def memo(self, operator: str) -> MemoStats:
        """The counters for ``operator``, created on first use."""
        try:
            return self.memos[operator]
        except KeyError:
            stats = self.memos[operator] = MemoStats()
            return stats

    # -- reporting ---------------------------------------------------------

    def interner_size(self) -> int:
        """Distinct subtrees currently interned."""
        from repro.traces.trie import interner_size

        return interner_size()

    def arena_info(self) -> Dict[str, int]:
        """The current kernel state's arena account (see
        :func:`repro.traces.trie.arena_info`)."""
        from repro.traces.trie import arena_info

        return arena_info()

    def snapshot(self) -> Dict[str, object]:
        """All counters as a JSON-friendly dict."""
        lookups = self.interner_hits + self.interner_misses
        return {
            "interner": {
                "size": self.interner_size(),
                "hits": self.interner_hits,
                "misses": self.interner_misses,
                "hit_rate": round(self.interner_hits / lookups, 4) if lookups else 0.0,
            },
            "arena": dict(self.arena_info()),
            "memos": {
                name: stats.as_dict() for name, stats in sorted(self.memos.items())
            },
            "delta": {
                "queries": self.delta_queries,
                "capped": self.delta_capped,
                "frontier_nodes": self.frontier_nodes,
            },
            "spliced": {
                "ids": self.spliced_ids,
                "bytes": self.spliced_bytes,
                "remap_entries": self.remap_entries,
            },
            "frontiers": {
                "saved": self.frontier_saved,
                "reused": self.frontier_reused,
                "forall_resumed": self.forall_resumed,
            },
        }

    def reset(self) -> None:
        """Zero every counter (the interner itself is cleared separately by
        :func:`repro.traces.trie.clear_interner`)."""
        self.interner_hits = 0
        self.interner_misses = 0
        self.memos.clear()
        self.delta_queries = 0
        self.delta_capped = 0
        self.frontier_nodes = 0
        self.spliced_ids = 0
        self.spliced_bytes = 0
        self.remap_entries = 0
        self.frontier_saved = 0
        self.frontier_reused = 0
        self.forall_resumed = 0


#: The process-wide counter registry.
KERNEL_STATS = KernelStats()


def reset_stats() -> None:
    """Zero all kernel counters."""
    KERNEL_STATS.reset()


def snapshot() -> Dict[str, object]:
    """Current counters as a JSON-friendly dict."""
    return KERNEL_STATS.snapshot()


def format_stats() -> str:
    """Human-readable counter report (the body of ``repro stats``)."""
    snap = KERNEL_STATS.snapshot()
    interner = snap["interner"]
    arena = snap["arena"]
    lines = [
        "trace-trie kernel statistics",
        f"  interner: {interner['size']} nodes alive, "
        f"{interner['hits']} packed-key hits / {interner['misses']} misses "
        f"(hit rate {interner['hit_rate']:.1%})",
        f"  arena: {arena['nodes']} nodes, {arena['edges']} edges in "
        f"{arena['segment_bytes']} segment bytes; id tables: "
        f"{arena['events']} events, {arena['channels']} channels; "
        f"{arena['views']} views materialised",
    ]
    memos = snap["memos"]
    if memos:
        lines.append("  memo tables:")
        width = max(len(name) for name in memos)
        for name, stats in memos.items():
            lines.append(
                f"    {name:<{width}}  hits={stats['hits']:<8} "
                f"misses={stats['misses']:<8} hit rate {stats['hit_rate']:.1%}"
            )
    else:
        lines.append("  memo tables: (no operator calls recorded)")
    delta = snap["delta"]
    if delta["queries"]:
        lines.append(
            f"  delta frontiers: {delta['queries']} walks, "
            f"{delta['frontier_nodes']} fresh nodes enumerated, "
            f"{delta['capped']} capped"
        )
    spliced = snap["spliced"]
    if spliced["ids"] or spliced["remap_entries"]:
        lines.append(
            f"  spliced segments: {spliced['ids']} ids in "
            f"{spliced['bytes']} bytes appended via bulk splice, "
            f"{spliced['remap_entries']} remap-table entries"
        )
    frontiers = snap["frontiers"]
    if frontiers["saved"] or frontiers["reused"] or frontiers["forall_resumed"]:
        lines.append(
            f"  operational frontiers: frontier_saved={frontiers['saved']} "
            f"frontier_reused={frontiers['reused']} "
            f"forall_resumed={frontiers['forall_resumed']}"
        )
    return "\n".join(lines)

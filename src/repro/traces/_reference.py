"""Reference flat-set implementations of the §3.1 operators.

These are the pre-kernel implementations: every operator enumerates the
flat trace set and rebuilds the result trace by trace.  They are kept —
unchanged in behaviour — as the *oracle* that the hash-consed trie
operators in :mod:`repro.traces.operations` are property-tested against
(``tests/traces/test_trie_equivalence.py``), the same cross-check
discipline the denotational/operational engines already use (E1/E7).
They also serve as the baseline side of ``benchmarks/bench_kernel.py``.

Do not use these in production paths: they are O(traces), where the trie
operators are O(distinct subtrees).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Optional, Set, Tuple

from repro.traces.events import (
    EMPTY_TRACE,
    Channel,
    Event,
    Trace,
    restrict,
)
from repro.traces.prefix_closure import FiniteClosure


def prefix(a: Event, p: FiniteClosure) -> FiniteClosure:
    """``(a → P)`` by per-trace concatenation."""
    traces: Set[Trace] = {EMPTY_TRACE}
    for s in p.traces:
        traces.add((a,) + s)
    return FiniteClosure(frozenset(traces), _trusted=True)


def after_event(p: FiniteClosure, a: Event) -> FiniteClosure:
    """``P after a`` by per-trace slicing."""
    traces = frozenset(s[1:] for s in p.traces if s and s[0] == a)
    return FiniteClosure(traces | {EMPTY_TRACE}, _trusted=True)


def hide(p: FiniteClosure, channels: Iterable[Channel]) -> FiniteClosure:
    """``P \\ C`` by per-trace restriction."""
    hidden = frozenset(channels)
    return FiniteClosure(
        frozenset(restrict(s, hidden) for s in p.traces), _trusted=True
    )


def union(p: FiniteClosure, q: FiniteClosure) -> FiniteClosure:
    """``P ∪ Q`` on the flat sets."""
    return FiniteClosure(p.traces | q.traces, _trusted=True)


def intersection(p: FiniteClosure, q: FiniteClosure) -> FiniteClosure:
    """``P ∩ Q`` on the flat sets."""
    return FiniteClosure(p.traces & q.traces, _trusted=True)


def truncate(p: FiniteClosure, depth: int) -> FiniteClosure:
    """Length filter on the flat set."""
    return FiniteClosure(
        frozenset(s for s in p.traces if len(s) <= depth), _trusted=True
    )


def pad(
    p: FiniteClosure,
    channels: Iterable[Channel],
    pad_events: Iterable[Event],
    depth: int,
) -> FiniteClosure:
    """``P ⇑ C`` by breadth-first state enumeration."""
    pad_set = tuple(sorted(set(pad_events), key=Event.sort_key))
    chan_set = frozenset(channels)
    for e in pad_set:
        if e.channel not in chan_set:
            raise ValueError(f"padding event {e!r} not on a padding channel")

    results: Set[Trace] = set()
    # BFS over (emitted trace, progress inside P).
    queue: Deque[Tuple[Trace, Trace]] = deque([(EMPTY_TRACE, EMPTY_TRACE)])
    seen: Set[Tuple[Trace, Trace]] = {(EMPTY_TRACE, EMPTY_TRACE)}
    while queue:
        emitted, progress = queue.popleft()
        results.add(emitted)
        if len(emitted) >= depth:
            continue
        for a in p.initials_after(progress):
            state = (emitted + (a,), progress + (a,))
            if state not in seen:
                seen.add(state)
                queue.append(state)
        for a in pad_set:
            state = (emitted + (a,), progress)
            if state not in seen:
                seen.add(state)
                queue.append(state)
    return FiniteClosure(frozenset(results), _trusted=True)


def parallel(
    p: FiniteClosure,
    x: Iterable[Channel],
    q: FiniteClosure,
    y: Iterable[Channel],
    depth: Optional[int] = None,
) -> FiniteClosure:
    """``P ‖_{X,Y} Q`` by breadth-first synchronised merge over flat
    projections."""
    x_set = frozenset(x)
    y_set = frozenset(y)
    missing_p = p.channels() - x_set
    if missing_p:
        raise ValueError(f"left process uses channels outside X: {sorted(missing_p)}")
    missing_q = q.channels() - y_set
    if missing_q:
        raise ValueError(f"right process uses channels outside Y: {sorted(missing_q)}")
    shared = x_set & y_set

    if depth is None:
        depth = p.depth() + q.depth()

    results: Set[Trace] = set()
    # BFS over (product trace, P-projection, Q-projection).
    queue: Deque[Tuple[Trace, Trace, Trace]] = deque(
        [(EMPTY_TRACE, EMPTY_TRACE, EMPTY_TRACE)]
    )
    while queue:
        emitted, sp, sq = queue.popleft()
        results.add(emitted)
        if len(emitted) >= depth:
            continue
        p_next = p.initials_after(sp)
        q_next = q.initials_after(sq)
        for a in p_next:
            if a.channel in shared:
                if a in q_next:
                    queue.append((emitted + (a,), sp + (a,), sq + (a,)))
            else:
                queue.append((emitted + (a,), sp + (a,), sq))
        for a in q_next:
            if a.channel not in shared:
                queue.append((emitted + (a,), sp, sq + (a,)))
    return FiniteClosure(frozenset(results), _trusted=True)


def union_all(closures: Iterable[FiniteClosure]) -> FiniteClosure:
    """∪ᵢ Pᵢ on the flat sets."""
    traces: Set[Trace] = {EMPTY_TRACE}
    for c in closures:
        traces |= c.traces
    return FiniteClosure(frozenset(traces), _trusted=True)

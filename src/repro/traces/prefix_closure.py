"""Finite prefix-closed trace sets (paper §3.1).

The paper's model of a process is a *prefix closure*: a set ``P ⊆ A*``
with ``⟨⟩ ∈ P`` and ``st ∈ P ⇒ s ∈ P``.  Real denotations are usually
infinite; :class:`FiniteClosure` holds the finite fragment up to some
depth, which is exactly what the bounded denotational semantics
(:mod:`repro.semantics.denotation`) computes.

A :class:`FiniteClosure` indexes its traces as a trie so that
``initials_after`` — the set of possible next events after a trace — is a
dictionary lookup.  That operation drives both the parallel-composition
operator and the satisfaction checker.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Set, Tuple

from repro.traces.events import EMPTY_TRACE, Channel, Event, Trace, trace_channels


class FiniteClosure:
    """An immutable, finite, prefix-closed set of traces.

    Construct with :meth:`from_traces` (which closes the input under
    prefixes) or the constructor (which *verifies* closure).  All set
    operations from §3.1 that stay finite are provided: union,
    intersection, membership, and the lattice order.
    """

    __slots__ = ("_traces", "_initials", "_channels")

    def __init__(self, traces: Iterable[Trace], _trusted: bool = False) -> None:
        trace_set = frozenset(traces)
        if not _trusted:
            if EMPTY_TRACE not in trace_set:
                raise ValueError("a prefix closure must contain the empty trace")
            for s in trace_set:
                if s and s[:-1] not in trace_set:
                    raise ValueError(f"not prefix-closed: missing prefix of {s!r}")
        self._traces: FrozenSet[Trace] = trace_set
        self._initials: Optional[Dict[Trace, FrozenSet[Event]]] = None
        self._channels: Optional[FrozenSet[Channel]] = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_traces(cls, traces: Iterable[Trace]) -> "FiniteClosure":
        """The prefix closure of an arbitrary finite set of traces."""
        closed: Set[Trace] = {EMPTY_TRACE}
        for s in traces:
            for i in range(1, len(s) + 1):
                closed.add(s[:i])
        return cls(frozenset(closed), _trusted=True)

    @classmethod
    def stop(cls) -> "FiniteClosure":
        """⟦STOP⟧ = {⟨⟩} (§3.2)."""
        return STOP_CLOSURE

    # -- basic queries ---------------------------------------------------

    @property
    def traces(self) -> FrozenSet[Trace]:
        return self._traces

    def __contains__(self, s: object) -> bool:
        return s in self._traces

    def __iter__(self) -> Iterator[Trace]:
        return iter(sorted(self._traces, key=lambda s: (len(s), tuple(e.sort_key() for e in s))))

    def __len__(self) -> int:
        return len(self._traces)

    def depth(self) -> int:
        """Length of the longest trace present."""
        return max((len(s) for s in self._traces), default=0)

    def channels(self) -> FrozenSet[Channel]:
        """All channels occurring in any trace."""
        if self._channels is None:
            chans: Set[Channel] = set()
            for s in self._traces:
                chans |= trace_channels(s)
            self._channels = frozenset(chans)
        return self._channels

    def maximal_traces(self) -> FrozenSet[Trace]:
        """Traces with no extension in the set (the trie's leaves)."""
        return frozenset(
            s for s in self._traces if not self.initials_after(s)
        )

    # -- trie view ---------------------------------------------------------

    def _build_index(self) -> Dict[Trace, FrozenSet[Event]]:
        index: Dict[Trace, Set[Event]] = {s: set() for s in self._traces}
        for s in self._traces:
            if s:
                index[s[:-1]].add(s[-1])
        return {s: frozenset(events) for s, events in index.items()}

    def initials_after(self, s: Trace) -> FrozenSet[Event]:
        """The events ``a`` with ``s ++ ⟨a⟩`` in the set; empty frozenset if
        ``s`` itself is absent."""
        if self._initials is None:
            self._initials = self._build_index()
        return self._initials.get(s, frozenset())

    def initials(self) -> FrozenSet[Event]:
        """Possible first events: ``initials_after(⟨⟩)``."""
        return self.initials_after(EMPTY_TRACE)

    # -- lattice operations (§3.1) -----------------------------------------

    def union(self, other: "FiniteClosure") -> "FiniteClosure":
        """Set union; prefix closures are closed under arbitrary unions."""
        return FiniteClosure(self._traces | other._traces, _trusted=True)

    def intersection(self, other: "FiniteClosure") -> "FiniteClosure":
        """Set intersection; closed under arbitrary intersections."""
        return FiniteClosure(self._traces & other._traces, _trusted=True)

    def issubset(self, other: "FiniteClosure") -> bool:
        """The lattice order ⊆."""
        return self._traces <= other._traces

    def truncate(self, depth: int) -> "FiniteClosure":
        """Only the traces of length ≤ ``depth`` (still prefix-closed)."""
        return FiniteClosure(
            frozenset(s for s in self._traces if len(s) <= depth), _trusted=True
        )

    def is_prefix_closed(self) -> bool:
        """Re-verify the closure invariant (used by property tests)."""
        if EMPTY_TRACE not in self._traces:
            return False
        return all(s[:-1] in self._traces for s in self._traces if s)

    # -- value semantics -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FiniteClosure) and self._traces == other._traces

    def __hash__(self) -> int:
        return hash(self._traces)

    def __repr__(self) -> str:
        n = len(self._traces)
        if n <= 8:
            inner = ", ".join(repr(s) for s in self)
            return f"FiniteClosure({{{inner}}})"
        return f"FiniteClosure(<{n} traces, depth {self.depth()}>)"


#: Shared ⟦STOP⟧ = {⟨⟩}.
STOP_CLOSURE = FiniteClosure(frozenset({EMPTY_TRACE}), _trusted=True)


def closure_union(closures: Iterable[FiniteClosure]) -> FiniteClosure:
    """Union of arbitrarily many closures, e.g. ∪ᵢ aᵢ in the fixpoint
    construction (§3.3)."""
    traces: Set[Trace] = {EMPTY_TRACE}
    for closure in closures:
        traces |= closure.traces
    return FiniteClosure(frozenset(traces), _trusted=True)

"""Finite prefix-closed trace sets (paper §3.1).

The paper's model of a process is a *prefix closure*: a set ``P ⊆ A*``
with ``⟨⟩ ∈ P`` and ``st ∈ P ⇒ s ∈ P``.  Real denotations are usually
infinite; :class:`FiniteClosure` holds the finite fragment up to some
depth, which is exactly what the bounded denotational semantics
(:mod:`repro.semantics.denotation`) computes.

A :class:`FiniteClosure` is a thin view over a hash-consed trace trie
(:mod:`repro.traces.trie`): the closure *is* its root
:class:`~repro.traces.trie.ClosureNode`, prefix closure holds by
construction, equality is pointer equality of roots, and the flat
``frozenset`` of traces is a lazily derived property kept only for
callers that ask for it.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Optional

from repro.runtime.governor import recursion_guard
from repro.traces.events import EMPTY_TRACE, Channel, Event, Trace
from repro.traces.trie import (
    EMPTY_NODE,
    ClosureNode,
    contains_trace,
    descend,
    distinct_nodes,
    intersect_nodes,
    iter_trace_set,
    iter_traces,
    maximal_traces,
    node_channels,
    node_from_traces,
    subset_nodes,
    truncate_node,
    union_nodes,
)


class FiniteClosure:
    """An immutable, finite, prefix-closed set of traces.

    Construct with :meth:`from_traces` (which closes the input under
    prefixes) or the constructor (which *verifies* closure).  All set
    operations from §3.1 that stay finite are provided: union,
    intersection, membership, and the lattice order.  Internally the set
    is an interned trie, so two equal closures share one root node and
    ``==`` is a pointer comparison.
    """

    __slots__ = ("_root", "_traces")

    def __init__(self, traces: Iterable[Trace], _trusted: bool = False) -> None:
        trace_set = frozenset(traces)
        if not _trusted:
            if EMPTY_TRACE not in trace_set:
                raise ValueError("a prefix closure must contain the empty trace")
            for s in trace_set:
                if s and s[:-1] not in trace_set:
                    raise ValueError(f"not prefix-closed: missing prefix of {s!r}")
        self._root: ClosureNode = node_from_traces(trace_set)
        # Cache the flat set only when it matches the trie exactly (a
        # trusted caller passing a non-closed set gets the closure).
        self._traces: Optional[FrozenSet[Trace]] = (
            trace_set if len(trace_set) == self._root.count else None
        )

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_traces(cls, traces: Iterable[Trace]) -> "FiniteClosure":
        """The prefix closure of an arbitrary finite set of traces."""
        return cls.from_node(node_from_traces(traces))

    @classmethod
    def from_node(cls, root: ClosureNode) -> "FiniteClosure":
        """Wrap an interned trie root directly (the operators' fast path)."""
        if root is EMPTY_NODE:
            return STOP_CLOSURE
        closure = cls.__new__(cls)
        closure._root = root
        closure._traces = None
        return closure

    @classmethod
    def stop(cls) -> "FiniteClosure":
        """⟦STOP⟧ = {⟨⟩} (§3.2)."""
        return STOP_CLOSURE

    # -- basic queries ---------------------------------------------------

    @property
    def root(self) -> ClosureNode:
        """The interned trie root — the canonical identity of this set."""
        return self._root

    @property
    def traces(self) -> FrozenSet[Trace]:
        """The flat trace set, derived from the trie on first access."""
        if self._traces is None:
            self._traces = iter_trace_set(self._root)
        return self._traces

    def __contains__(self, s: object) -> bool:
        return isinstance(s, tuple) and contains_trace(self._root, s)

    def __iter__(self) -> Iterator[Trace]:
        return iter_traces(self._root)

    def __len__(self) -> int:
        return self._root.count

    def depth(self) -> int:
        """Length of the longest trace present."""
        return self._root.height

    def node_count(self) -> int:
        """Distinct trie nodes reachable from the root — the storage cost
        after sharing, as opposed to ``len(self)`` traces."""
        return distinct_nodes(self._root)

    def channels(self) -> FrozenSet[Channel]:
        """All channels occurring in any trace."""
        return node_channels(self._root)

    def maximal_traces(self) -> FrozenSet[Trace]:
        """Traces with no extension in the set (the trie's leaves)."""
        return maximal_traces(self._root)

    # -- trie view ---------------------------------------------------------

    def after(self, s: Trace) -> Optional[ClosureNode]:
        """The subtree after ``s`` — ``{t | s⌢t ∈ P}`` — or ``None`` if
        ``s`` is not a trace of the set."""
        return descend(self._root, s)

    def initials_after(self, s: Trace) -> FrozenSet[Event]:
        """The events ``a`` with ``s ++ ⟨a⟩`` in the set; empty frozenset if
        ``s`` itself is absent."""
        node = descend(self._root, s)
        if node is None:
            return frozenset()
        return frozenset(node.children)

    def initials(self) -> FrozenSet[Event]:
        """Possible first events: ``initials_after(⟨⟩)``."""
        return frozenset(self._root.children)

    # -- lattice operations (§3.1) -----------------------------------------

    def union(self, other: "FiniteClosure") -> "FiniteClosure":
        """Set union; prefix closures are closed under arbitrary unions."""
        with recursion_guard("union"):
            return FiniteClosure.from_node(union_nodes(self._root, other._root))

    def intersection(self, other: "FiniteClosure") -> "FiniteClosure":
        """Set intersection; closed under arbitrary intersections."""
        with recursion_guard("intersection"):
            return FiniteClosure.from_node(
                intersect_nodes(self._root, other._root)
            )

    def issubset(self, other: "FiniteClosure") -> bool:
        """The lattice order ⊆."""
        with recursion_guard("subset"):
            return subset_nodes(self._root, other._root)

    def truncate(self, depth: int) -> "FiniteClosure":
        """Only the traces of length ≤ ``depth`` (still prefix-closed)."""
        return FiniteClosure.from_node(truncate_node(self._root, depth))

    def is_prefix_closed(self) -> bool:
        """Closure holds by construction in the trie representation; kept
        (and re-derived from the flat set) for the property tests that
        re-verify the §3.1 theorems against the definition."""
        trace_set = self.traces
        if EMPTY_TRACE not in trace_set:
            return False
        return all(s[:-1] in trace_set for s in trace_set if s)

    # -- value semantics -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FiniteClosure) and self._root is other._root

    def __hash__(self) -> int:
        return hash(self._root)

    def __repr__(self) -> str:
        n = len(self)
        if n <= 8:
            inner = ", ".join(repr(s) for s in self)
            return f"FiniteClosure({{{inner}}})"
        return f"FiniteClosure(<{n} traces, depth {self.depth()}>)"


#: Shared ⟦STOP⟧ = {⟨⟩}.
STOP_CLOSURE = FiniteClosure.__new__(FiniteClosure)
STOP_CLOSURE._root = EMPTY_NODE
STOP_CLOSURE._traces = frozenset({EMPTY_TRACE})


def closure_union(closures: Iterable[FiniteClosure]) -> FiniteClosure:
    """Union of arbitrarily many closures, e.g. ∪ᵢ aᵢ in the fixpoint
    construction (§3.3)."""
    root = EMPTY_NODE
    for closure in closures:
        root = union_nodes(root, closure._root)
    return FiniteClosure.from_node(root)

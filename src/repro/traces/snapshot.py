"""Persisted closure snapshots — warm-starting the kernel across runs.

Hash-consed tries serialise naturally: list the distinct nodes reachable
from a set of roots in post-order, write each node as its (event-index,
child-index) pairs against a deduplicated event table, and record each
root as an index into the node list.  Decoding replays the list through
:func:`~repro.traces.trie.make_node`, so every decoded node is
**re-interned**: a snapshot can never introduce a non-canonical node,
only save the work of building canonical ones.

A snapshot is trusted only as a cache, never as truth:

* it is keyed by a content hash of the definition list, the
  :class:`~repro.semantics.config.SemanticsConfig`, and any extra
  inputs (``--set`` bindings, cancel-protocol flags) — any change to
  the inputs changes the key and orphans the old snapshot;
* the key and a format version are stored *inside* the payload and
  re-checked on load;
* any structural defect — bad JSON, dangling indices, wrong version,
  wrong key — discards the snapshot and rebuilds from scratch
  (``SnapshotCache.rebuilt`` reports that this happened).

Writes are atomic (temp file + ``os.replace``) and failures to persist
are swallowed: a read-only cache directory degrades to cold starts, it
never breaks the run.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro import serialize
from repro.errors import ReproError
from repro.traces.events import Event
from repro.traces.trie import ClosureNode, make_node

FORMAT_VERSION = 1


class SnapshotError(ReproError):
    """The snapshot payload is structurally invalid (internal — callers
    of :class:`SnapshotCache` see a rebuild, not an exception)."""


def encode_roots(roots: Dict[str, ClosureNode]) -> dict:
    """Encode named closure roots as a post-order node list.

    Shared subtrees are written once, preserving the kernel's sharing in
    the file: snapshot size tracks *distinct* nodes, not traces.
    """
    events: List[Event] = []
    event_index: Dict[Event, int] = {}
    nodes: List[List[List[int]]] = []
    node_index: Dict[int, int] = {}

    def event_id(event: Event) -> int:
        idx = event_index.get(event)
        if idx is None:
            idx = event_index[event] = len(events)
            events.append(event)
        return idx

    for root in roots.values():
        if id(root) in node_index:
            continue
        stack: List[Tuple[ClosureNode, bool]] = [(root, False)]
        while stack:
            current, expanded = stack.pop()
            if id(current) in node_index:
                continue
            if expanded:
                node_index[id(current)] = len(nodes)
                nodes.append(
                    [
                        [event_id(event), node_index[id(child)]]
                        for event, child in current.items
                    ]
                )
                continue
            stack.append((current, True))
            for _, child in current.items:
                if id(child) not in node_index:
                    stack.append((child, False))

    return {
        "events": [serialize.encode(e) for e in events],
        "nodes": nodes,
        "roots": {slot: node_index[id(root)] for slot, root in roots.items()},
    }


def decode_roots(data: dict) -> Dict[str, ClosureNode]:
    """Decode :func:`encode_roots` output, re-interning every node.

    Raises :class:`SnapshotError` on any structural defect; never
    returns partially decoded state.
    """
    try:
        events = [serialize.decode(e) for e in data["events"]]
        if not all(isinstance(e, Event) for e in events):
            raise SnapshotError("event table holds a non-event")
        decoded: List[ClosureNode] = []
        for entry in data["nodes"]:
            children = {}
            for event_idx, child_idx in entry:
                if not 0 <= child_idx < len(decoded):
                    raise SnapshotError(
                        f"child index {child_idx} breaks post-order"
                    )
                children[events[event_idx]] = decoded[child_idx]
            decoded.append(make_node(children))
        roots: Dict[str, ClosureNode] = {}
        for slot, idx in data["roots"].items():
            if not isinstance(slot, str) or not 0 <= idx < len(decoded):
                raise SnapshotError(f"bad root entry {slot!r}: {idx!r}")
            roots[slot] = decoded[idx]
        return roots
    except SnapshotError:
        raise
    except (serialize.SerializationError, ReproError) as exc:
        raise SnapshotError(f"undecodable snapshot payload: {exc}") from exc
    except (KeyError, IndexError, TypeError, ValueError, AttributeError) as exc:
        raise SnapshotError(f"malformed snapshot payload: {exc!r}") from exc


def cache_key(definitions: Any, config: Any, extra: Any = None) -> str:
    """Content hash identifying one semantic situation.

    Any input that can change a closure must feed the key: the
    definition list itself, the denotation config (depth, sample,
    hide-depth), and caller-provided extras (environment ``--set``
    bindings, protocol flags).  Hash collisions aside, equal keys imply
    equal denotations — the invariant the cache relies on.
    """
    payload = {
        "version": FORMAT_VERSION,
        "definitions": serialize.encode(definitions),
        "config": [config.depth, config.sample, config.hide_depth],
        "extra": extra,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


#: Budget-aware checkpoint slots: ``fix:{name}@level{k}`` holds the
#: closure of ``name`` completed at depth ``k`` of a governed run's
#: deepening schedule.  Each slot's content is fully determined by the
#: definitions and config (the cache key) and the depth — never by the
#: budget that interrupted the run — so serving these slots keeps
#: governed invocations deterministic.
_CHECKPOINT_SLOT = re.compile(r"fix:.+@level\d+\Z")


def checkpoint_slot(name: str, level: int) -> str:
    """The slot holding ``name``'s closure completed at depth ``level``."""
    return f"fix:{name}@level{level}"


def is_checkpoint_slot(slot: str) -> bool:
    """True for slots in the ``fix:{name}@level{k}`` vocabulary."""
    return _CHECKPOINT_SLOT.match(slot) is not None


class SnapshotCache:
    """One snapshot file: named closure slots for one cache key.

    Slots are free-form strings (``fix:name``, ``traces:...:d5``); the
    engine and sat checker agree on the vocabulary.  ``get`` misses
    rather than raising; ``save`` silently degrades on unwritable
    directories.

    With ``checkpoint_only=True`` (governed runs) the cache serves and
    records **only** ``fix:{name}@level{k}`` checkpoint slots: those are
    per-completed-depth values of the deepening schedule, deterministic
    regardless of where a budget tripped, while the full-depth slot
    vocabulary is reserved for ungoverned runs whose results are always
    complete.
    """

    def __init__(
        self, directory: Path, key: str, checkpoint_only: bool = False
    ) -> None:
        self.directory = Path(directory)
        self.key = key
        self.checkpoint_only = checkpoint_only
        self.path = self.directory / f"snapshot-{key}.json"
        self.hits = 0
        self.misses = 0
        self.loaded = False
        self.rebuilt = False
        self._dirty = False
        self._roots: Dict[str, ClosureNode] = {}
        self._load()

    def _load(self) -> None:
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        try:
            data = json.loads(raw)
            if not isinstance(data, dict):
                raise SnapshotError("payload is not an object")
            if data.get("format") != FORMAT_VERSION:
                raise SnapshotError(f"format {data.get('format')!r}")
            if data.get("key") != self.key:
                raise SnapshotError("key mismatch")
            self._roots = decode_roots(data)
            self.loaded = True
        except (json.JSONDecodeError, SnapshotError, ReproError):
            # Corrupted, stale, or foreign snapshot: rebuild from scratch.
            self._roots = {}
            self.rebuilt = True

    def get(self, slot: str) -> Optional[ClosureNode]:
        if self.checkpoint_only and not is_checkpoint_slot(slot):
            self.misses += 1
            return None
        node = self._roots.get(slot)
        if node is None:
            self.misses += 1
        else:
            self.hits += 1
        return node

    def put(self, slot: str, node: ClosureNode) -> None:
        if self.checkpoint_only and not is_checkpoint_slot(slot):
            return
        if self._roots.get(slot) is not node:
            self._roots[slot] = node
            self._dirty = True

    def __len__(self) -> int:
        return len(self._roots)

    def save(self) -> None:
        """Persist atomically; never raises on filesystem trouble."""
        if not self._dirty:
            return
        data = encode_roots(self._roots)
        data["format"] = FORMAT_VERSION
        data["key"] = self.key
        blob = json.dumps(data, separators=(",", ":"))
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".snapshot-", suffix=".tmp", dir=str(self.directory)
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(blob)
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self._dirty = False

"""Persisted closure snapshots — warm-starting the kernel across runs.

Arena-backed tries serialise naturally: list the distinct node ids
reachable from a set of roots in post-order and dump their segments as
**flat int buffers** — a per-node arity array, parallel
``edge_events``/``edge_children`` edge tables, and the per-node
``counts``/``heights`` metadata (base64-packed via
:func:`repro.serialize.pack_ints`/``pack_ints64``), against a
deduplicated event table.  This mirrors the arena's own
struct-of-arrays layout (ascending arena ids *are* a post-order, since
children are always interned before parents), so encoding is a linear
copy of int spans and never materialises a view object per node.
Decoding re-interns every node — through
:meth:`~repro.traces.trie.Arena.intern` row by row, or, when numpy is
available and every decoded node is fresh, through a vectorised
validation pass and one :meth:`~repro.traces.trie.Arena.append_rows`
splice that registers byte-identical interner keys.  Either way a
snapshot can never introduce a non-canonical node, only save the work
of building canonical ones; stored counts/heights are verified against
the edge tables (the recurrence has a unique solution over a
post-order, so node-local consistency proves them), never trusted.

A snapshot is trusted only as a cache, never as truth:

* it is keyed by a content hash of the definition list, the
  :class:`~repro.semantics.config.SemanticsConfig`, and any extra
  inputs (``--set`` bindings, cancel-protocol flags) — any change to
  the inputs changes the key and orphans the old snapshot;
* the key and a format version are stored *inside* the payload and
  re-checked on load;
* any structural defect — bad JSON, dangling indices, unaligned or
  undecodable packed segments, wrong version, wrong key — discards the
  snapshot and rebuilds from scratch (``SnapshotCache.rebuilt`` reports
  that this happened).

Format 1 (the object-walk node-list layout of earlier releases) is still
*read*: the cache key deliberately hashes :data:`KEY_VERSION`, not the
file format, so a pre-arena snapshot keeps its filename and is loaded
through the retained legacy codec, then rewritten in format
:data:`FORMAT_VERSION` on the next save.

Writes are atomic and *durable* (temp file + ``fsync`` + ``os.replace``)
and failures to persist are swallowed: a read-only cache directory
degrades to cold starts, it never breaks the run.  Three more properties
make the cache safe to share between the ``repro serve`` worker pool and
ordinary CLI invocations:

* **quarantine, not deletion** — a corrupt, torn, or key-mismatched file
  is moved to ``<cache>/quarantine/`` (evidence preserved, never read
  again) and the run rebuilds from scratch;
* **one writer at a time** — ``save`` takes a cross-process ``flock`` on
  a per-key lock file, so two workers never interleave a write;
* **merge before write** — under the lock, ``save`` re-reads the file
  and folds slots another process persisted since we loaded into the
  outgoing payload, so concurrent writers union their slots instead of
  losing the last-but-one update (each slot's content is deterministic
  given the key, so a union is always consistent).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from array import array
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro import serialize
from repro.errors import ReproError
from repro.runtime import faults as _faults
from repro.runtime import governor as _governor
from repro.traces.events import Event
from repro.traces.trie import ClosureNode, current_state, make_node, node_id

try:  # POSIX cross-process advisory locking; absent → single-writer hosts
    import fcntl
except ImportError:  # pragma: no cover - all CI hosts are POSIX
    fcntl = None

try:  # optional accelerator: vectorised validation + bulk decode
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

#: On-disk layout version.  2 = flat arena segments; 1 = legacy
#: nested node list (read-only).
FORMAT_VERSION = 2

#: Cache-*key* schema version, hashed into :func:`cache_key`.  Kept
#: separate from :data:`FORMAT_VERSION` so a pure layout change does not
#: orphan existing snapshot files — bump it only when the *meaning* of a
#: slot's content changes.  Version 2: chan-bearing definition lists are
#: solved at ``hide_depth`` and truncated on export, so ``fix:`` slots
#: for such systems now hold deeper roots than version-1 writers stored.
KEY_VERSION = 2


class SnapshotError(ReproError):
    """The snapshot payload is structurally invalid (internal — callers
    of :class:`SnapshotCache` see a rebuild, not an exception)."""


def encode_roots(roots: Dict[str, ClosureNode]) -> dict:
    """Encode named closure roots as flat post-order arena segments.

    Shared subtrees are written once, preserving the kernel's sharing in
    the file: snapshot size tracks *distinct* nodes, not traces.  The
    encoder exploits two arena invariants:

    * ids are assigned children-first, so the reachable ids sorted
      ascending **are** a valid post-order — no DFS bookkeeping;
    * within a node's span, edges ascend by event id, and file event
      indices are assigned by event-id *rank*, so each emitted edge list
      ascends by file event index too (the decoder's fast path checks,
      then relies on, this).

    With numpy available the reachability sweep and the segment copy are
    vectorised gathers over the arena arrays; the pure-Python path emits
    byte-identical payloads.
    """
    arena = None
    for root in roots.values():
        if root.arena is not None:
            arena = root.arena
            break
    if arena is None:
        arena = current_state().arena
    root_ids = {slot: node_id(root, arena) for slot, root in roots.items()}
    if _np is not None:
        return _encode_bulk(arena, root_ids)
    return _encode_sequential(arena, root_ids)


def _encode_sequential(arena, root_ids: Dict[str, int]) -> dict:
    """Pure-Python encoder (numpy-less hosts); same payload bytes."""
    edge_events = arena.edge_events
    edge_children = arena.edge_children
    edge_start = arena.edge_start
    edge_len = arena.edge_len

    reachable = set()
    stack: List[int] = []
    for rid in root_ids.values():
        if rid not in reachable:
            reachable.add(rid)
            stack.append(rid)
    while stack:
        nid = stack.pop()
        start = edge_start[nid]
        for k in range(start, start + edge_len[nid]):
            child = edge_children[k]
            if child not in reachable:
                reachable.add(child)
                stack.append(child)
    order = sorted(reachable)
    position = {nid: i for i, nid in enumerate(order)}

    used: set = set()
    for nid in order:
        start = edge_start[nid]
        used.update(edge_events[start : start + edge_len[nid]])
    used_eids = sorted(used)
    rank = {eid: i for i, eid in enumerate(used_eids)}

    arity: List[int] = []
    flat_events: List[int] = []
    flat_children: List[int] = []
    for nid in order:
        start = edge_start[nid]
        length = edge_len[nid]
        arity.append(length)
        for k in range(start, start + length):
            flat_events.append(rank[edge_events[k]])
            flat_children.append(position[edge_children[k]])

    return {
        "events": [serialize.encode(arena.events[eid]) for eid in used_eids],
        "arity": serialize.pack_ints(arity),
        "edge_events": serialize.pack_ints(flat_events),
        "edge_children": serialize.pack_ints(flat_children),
        "counts": serialize.pack_ints64([arena.counts[nid] for nid in order]),
        "heights": serialize.pack_ints([arena.heights[nid] for nid in order]),
        "roots": {slot: position[rid] for slot, rid in root_ids.items()},
    }


def _as_i32(values) -> "array":
    """A native ``array('i')`` spliced from a numpy buffer (C-level)."""
    out = array("i")
    out.frombytes(values.astype(_np.int32, copy=False).tobytes())
    return out


def _encode_bulk(arena, root_ids: Dict[str, int]) -> dict:
    """Vectorised encoder: frontier reachability sweep + ragged gather."""
    np = _np
    es = np.frombuffer(arena.edge_start, dtype=np.int32).astype(np.int64)
    el = np.frombuffer(arena.edge_len, dtype=np.int32).astype(np.int64)
    ee = np.frombuffer(arena.edge_events, dtype=np.int32)
    ec = np.frombuffer(arena.edge_children, dtype=np.int32)

    n = arena.node_count()
    seen = np.zeros(n, dtype=bool)
    frontier = np.unique(np.fromiter(root_ids.values(), dtype=np.int64))
    seen[frontier] = True
    mark = np.zeros(n, dtype=bool)  # per-wave dedupe scratch (no sorting)
    while frontier.size:
        lens = el[frontier]
        total = int(lens.sum())
        if not total:
            break
        starts = es[frontier]
        offs = np.zeros(frontier.size, dtype=np.int64)
        np.cumsum(lens[:-1], out=offs[1:])
        idx = np.repeat(starts - offs, lens) + np.arange(total)
        children = ec[idx]
        mark[:] = False
        mark[children[~seen[children]]] = True
        frontier = np.flatnonzero(mark)
        seen[frontier] = True

    order = np.flatnonzero(seen)  # ascending ids = valid post-order
    lens = el[order]
    total = int(lens.sum())
    offs = np.zeros(order.size, dtype=np.int64)
    np.cumsum(lens[:-1], out=offs[1:])
    idx = np.repeat(es[order] - offs, lens) + np.arange(total)
    ev = ee[idx]
    ch = ec[idx]

    used_eids = np.unique(ev)
    rank = np.zeros(int(used_eids[-1]) + 1 if used_eids.size else 1, dtype=np.int32)
    rank[used_eids] = np.arange(used_eids.size, dtype=np.int32)
    position = np.zeros(int(order[-1]) + 1 if order.size else 1, dtype=np.int32)
    position[order] = np.arange(order.size, dtype=np.int32)

    counts = array("q")
    counts.frombytes(
        np.frombuffer(arena.counts, dtype=np.int64)[order].tobytes()
    )
    heights = np.frombuffer(arena.heights, dtype=np.int32)[order]

    return {
        "events": [serialize.encode(arena.events[int(e)]) for e in used_eids],
        "arity": serialize.pack_ints(_as_i32(lens)),
        "edge_events": serialize.pack_ints(_as_i32(rank[ev])),
        "edge_children": serialize.pack_ints(_as_i32(position[ch])),
        "counts": serialize.pack_ints64(counts),
        "heights": serialize.pack_ints(_as_i32(heights)),
        "roots": {
            slot: int(position[rid]) for slot, rid in root_ids.items()
        },
    }


def decode_roots(data: dict) -> Dict[str, ClosureNode]:
    """Decode :func:`encode_roots` output, re-interning every node into
    the current kernel state's arena.

    Raises :class:`SnapshotError` on any structural defect; never
    returns partially decoded state.  Nothing from the file is trusted:
    segments must align, every child index must respect post-order,
    every event index must hit the table, and every node goes back
    through the interner's packed-key gate.
    """
    try:
        events = [serialize.decode(e) for e in data["events"]]
        if not all(isinstance(e, Event) for e in events):
            raise SnapshotError("event table holds a non-event")
        arity = serialize.unpack_ints(data["arity"])
        flat_events = serialize.unpack_ints(data["edge_events"])
        flat_children = serialize.unpack_ints(data["edge_children"])
        if len(flat_events) != len(flat_children):
            raise SnapshotError(
                f"edge segments disagree: {len(flat_events)} events vs "
                f"{len(flat_children)} children"
            )
        if sum(arity) != len(flat_events):
            raise SnapshotError(
                f"arity total {sum(arity)} does not cover "
                f"{len(flat_events)} edges"
            )
        counts = serialize.unpack_ints64(data["counts"])
        heights = serialize.unpack_ints(data["heights"])
        if len(counts) != len(arity) or len(heights) != len(arity):
            raise SnapshotError(
                f"counts/heights segments hold {len(counts)}/{len(heights)} "
                f"entries for {len(arity)} nodes"
            )
        arena = current_state().arena
        eids = [arena.intern_event(e) for e in events]
        ids: Optional[List[int]] = None
        if _np is not None and len(arity) and array("i").itemsize == 4:
            ids = _decode_bulk(
                arena, eids, arity, flat_events, flat_children, counts, heights
            )
        if ids is None:
            ids = _decode_sequential(
                arena, eids, arity, flat_events, flat_children, counts, heights
            )
        # ``ids`` is the remap table of this splice — payload-local
        # post-order index to canonical arena id.
        from repro.traces.stats import KERNEL_STATS

        KERNEL_STATS.remap_entries += len(ids)
        roots: Dict[str, ClosureNode] = {}
        for slot, idx in data["roots"].items():
            if not isinstance(slot, str) or not 0 <= idx < len(ids):
                raise SnapshotError(f"bad root entry {slot!r}: {idx!r}")
            roots[slot] = arena.view(ids[idx])
        return roots
    except SnapshotError:
        raise
    except (serialize.SerializationError, ReproError) as exc:
        raise SnapshotError(f"undecodable snapshot payload: {exc}") from exc
    except (KeyError, IndexError, TypeError, ValueError, AttributeError) as exc:
        raise SnapshotError(f"malformed snapshot payload: {exc!r}") from exc


def _decode_sequential(
    arena, eids, arity, flat_events, flat_children, counts, heights
):
    """Per-node decode through :meth:`Arena.intern` — the path every
    host has, and the fallback whenever the bulk path cannot apply
    (numpy missing, nodes already interned, odd payloads).  The file's
    ``counts``/``heights`` segments are cross-checked against the values
    the interner derives — a node whose stored metadata disagrees with
    its own edge tables rejects the whole payload."""
    n_events = len(eids)
    ids: List[int] = []
    append = ids.append
    intern = arena.intern
    arena_counts = arena.counts
    arena_heights = arena.heights
    pos = 0
    for i, a in enumerate(arity):
        if a < 0:
            raise SnapshotError(f"negative arity {a} at node {i}")
        pairs = []
        for k in range(pos, pos + a):
            ev = flat_events[k]
            child = flat_children[k]
            if not 0 <= ev < n_events:
                raise SnapshotError(f"bad event index {ev} at node {i}")
            if not 0 <= child < i:
                raise SnapshotError(
                    f"child index {child} breaks post-order"
                )
            pairs.append((eids[ev], ids[child]))
        pos += a
        pairs.sort()
        flat: List[int] = []
        for j, (eid, cid) in enumerate(pairs):
            if j and eid == pairs[j - 1][0]:
                raise SnapshotError(
                    f"duplicate event on node {i}: two edges share one "
                    f"event index"
                )
            flat.append(eid)
            flat.append(cid)
        nid = intern(flat)
        if arena_counts[nid] != counts[i] or arena_heights[nid] != heights[i]:
            raise SnapshotError(
                f"counts/heights disagree with edge tables at node {i}"
            )
        append(nid)
    return ids


def _decode_bulk(arena, eids, arity, flat_events, flat_children, counts, heights):
    """Vectorised decode: validate every structural property of the
    payload with numpy, then splice whole segments into the arena via
    :meth:`Arena.append_rows`.

    Validation is *not* weakened — bounds, post-order, per-node event
    sortedness/distinctness, counts/heights consistency, and
    interner-key freshness are all checked before a single byte is
    appended; the packed keys registered are byte-identical to what
    per-node :meth:`Arena.intern` would compute, so the decoded rows are
    canonical by construction.  The ``counts``/``heights`` recurrences
    have exactly one solution over a post-order file, so checking each
    node's stored value against its children's stored values — one
    ``reduceat`` sweep, no fixpoint — proves the segments correct before
    they are spliced in verbatim.  Returns ``None`` (caller falls back
    to the sequential path) whenever the batch cannot be appended
    wholesale: per-node events arrive unsorted, the file repeats a node,
    or any node is already interned (warm arena).
    """
    np = _np
    arity_np = np.frombuffer(arity, dtype=np.int32)
    fe = np.frombuffer(flat_events, dtype=np.int32)
    fc = np.frombuffer(flat_children, dtype=np.int32)
    n_nodes = len(arity_np)
    if arity_np.size and int(arity_np.min()) < 0:
        i = int(np.argmin(arity_np))
        raise SnapshotError(f"negative arity {int(arity_np[i])} at node {i}")
    node_of_edge = np.repeat(np.arange(n_nodes, dtype=np.int64), arity_np)
    n_events = len(eids)
    bad = (fe < 0) | (fe >= n_events)
    if bad.any():
        k = int(np.flatnonzero(bad)[0])
        raise SnapshotError(
            f"bad event index {int(fe[k])} at node {int(node_of_edge[k])}"
        )
    bad = (fc < 0) | (fc >= node_of_edge)
    if bad.any():
        k = int(np.flatnonzero(bad)[0])
        raise SnapshotError(f"child index {int(fc[k])} breaks post-order")

    loc = np.asarray(eids, dtype=np.int64)[fe] if fe.size else fe.astype(np.int64)
    within = node_of_edge[1:] == node_of_edge[:-1]
    step = loc[1:] - loc[:-1]
    if bool(np.any((step < 0) & within)):
        return None  # events unsorted inside a node: sort + re-validate
    dup = (step == 0) & within
    if bool(dup.any()):
        k = int(np.flatnonzero(dup)[0])
        raise SnapshotError(
            f"duplicate event on node {int(node_of_edge[k])}: two edges "
            f"share one event index"
        )

    new_mask = arity_np > 0
    n_new = int(new_mask.sum())
    counts_np = np.frombuffer(counts, dtype=np.int64)
    heights_np = np.frombuffer(heights, dtype=np.int32).astype(np.int64)
    leaf_rows = ~new_mask
    if not (
        bool(np.all(counts_np[leaf_rows] == 1))
        and bool(np.all(heights_np[leaf_rows] == 0))
    ):
        raise SnapshotError("counts/heights disagree with edge tables")
    if n_new == 0:
        return [0] * n_nodes
    edge_offs = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum(arity_np, out=edge_offs[1:])
    starts = edge_offs[:-1][new_mask]
    # One sweep suffices: children precede parents, and the count/height
    # recurrences have a unique solution, so node-local consistency of
    # the *stored* values proves them all correct.
    want_counts = 1 + np.add.reduceat(counts_np[fc], starts)
    want_heights = np.maximum.reduceat(heights_np[fc] + 1, starts)
    if not (
        np.array_equal(want_counts, counts_np[new_mask])
        and np.array_equal(want_heights, heights_np[new_mask])
    ):
        raise SnapshotError("counts/heights disagree with edge tables")

    base = arena.node_count()
    if base + n_new > 2**31 - 1 or len(arena.edge_events) + fe.size > 2**31 - 1:
        return None  # would overflow 32-bit segments (absurd scale)
    ids_np = np.zeros(n_nodes, dtype=np.int64)
    ids_np[new_mask] = base + np.arange(n_new, dtype=np.int64)
    cid = ids_np[fc]
    loc32 = loc.astype(np.int32)
    interleaved = np.empty(2 * fe.size, dtype=np.int32)
    interleaved[0::2] = loc32
    interleaved[1::2] = cid.astype(np.int32)
    buf = interleaved.tobytes()

    byte_offs = (edge_offs * 8).tolist()
    keys = [buf[a:b] for a, b in zip(byte_offs, byte_offs[1:]) if a != b]
    interner = arena.interner
    distinct = set(keys)
    if len(distinct) != n_new or not interner.keys().isdisjoint(distinct):
        return None  # repeated or already-interned nodes: dedupe per node

    arena_starts = len(arena.edge_events) + starts
    got = arena.append_rows(
        n_new,
        loc32.tobytes(),
        interleaved[1::2].tobytes(),
        arena_starts.astype(np.int32).tobytes(),
        arity_np[new_mask].tobytes(),
        counts_np[new_mask].tobytes(),
        heights_np[new_mask].astype(np.int32).tobytes(),
        keys,
    )
    assert got == base
    from repro.traces.stats import KERNEL_STATS

    KERNEL_STATS.interner_hits += n_nodes - n_new
    return ids_np.tolist()


def _decode_blobs(data: Any) -> Dict[str, dict]:
    """Structural check of a snapshot's blob table: absent is fine, and
    present means an object mapping slot names to objects.  Content
    validation (are the states decodable? do indices land?) belongs to
    the consumer, which calls :meth:`SnapshotCache.reject` on defects."""
    if data is None:
        return {}
    if not isinstance(data, dict):
        raise SnapshotError("blob table is not an object")
    for slot, blob in data.items():
        if not isinstance(slot, str) or not isinstance(blob, dict):
            raise SnapshotError(f"bad blob entry {slot!r}")
    return dict(data)


def export_segments(roots: Dict[str, ClosureNode]) -> dict:
    """Encode ``roots`` as a flat segment payload for *in-memory*
    shipping — over a worker-process pipe or a serve-pool socket —
    rather than a snapshot file.

    This is :func:`encode_roots` by another name: the wire layout and
    the file layout are deliberately the same format-2 segments, so the
    process dispatcher and the solved-system share path reuse the
    vectorised codec (and its validation on the receiving side) without
    a second format.
    """
    return encode_roots(roots)


def splice_segments(payload: dict) -> Dict[str, ClosureNode]:
    """Splice a shipped segment payload into the current kernel state.

    Decodes with full validation (:func:`decode_roots`) under a
    suspended governor: callers on the splice path — the engine's
    process dispatcher, the serve warm-roots adopter — account for the
    shipped work explicitly (per-unit node deltas reported by the child,
    or not at all for cache warming), so the splice itself must not
    double-charge the ambient budget.
    """
    with _governor.suspended():
        return decode_roots(payload)


# ---------------------------------------------------------------------------
# legacy format-1 codec (read path only)
# ---------------------------------------------------------------------------


def encode_roots_legacy(roots: Dict[str, ClosureNode]) -> dict:
    """The format-1 object-walk encoder — kept for the legacy round-trip
    tests and the snapshot codec benchmark; :meth:`SnapshotCache.save`
    always writes format 2."""
    events: List[Event] = []
    event_index: Dict[Event, int] = {}
    nodes: List[List[List[int]]] = []
    node_index: Dict[int, int] = {}

    def event_id(event: Event) -> int:
        idx = event_index.get(event)
        if idx is None:
            idx = event_index[event] = len(events)
            events.append(event)
        return idx

    for root in roots.values():
        if id(root) in node_index:
            continue
        stack: List[Tuple[ClosureNode, bool]] = [(root, False)]
        while stack:
            current, expanded = stack.pop()
            if id(current) in node_index:
                continue
            if expanded:
                node_index[id(current)] = len(nodes)
                nodes.append(
                    [
                        [event_id(event), node_index[id(child)]]
                        for event, child in current.items
                    ]
                )
                continue
            stack.append((current, True))
            for _, child in current.items:
                if id(child) not in node_index:
                    stack.append((child, False))

    return {
        "events": [serialize.encode(e) for e in events],
        "nodes": nodes,
        "roots": {slot: node_index[id(root)] for slot, root in roots.items()},
    }


def decode_roots_legacy(data: dict) -> Dict[str, ClosureNode]:
    """Decode a format-1 payload (nested node list), re-interning every
    node — pre-arena snapshots stay loadable under the same cache key."""
    try:
        events = [serialize.decode(e) for e in data["events"]]
        if not all(isinstance(e, Event) for e in events):
            raise SnapshotError("event table holds a non-event")
        decoded: List[ClosureNode] = []
        for entry in data["nodes"]:
            children = {}
            for event_idx, child_idx in entry:
                if not 0 <= child_idx < len(decoded):
                    raise SnapshotError(
                        f"child index {child_idx} breaks post-order"
                    )
                children[events[event_idx]] = decoded[child_idx]
            decoded.append(make_node(children))
        roots: Dict[str, ClosureNode] = {}
        for slot, idx in data["roots"].items():
            if not isinstance(slot, str) or not 0 <= idx < len(decoded):
                raise SnapshotError(f"bad root entry {slot!r}: {idx!r}")
            roots[slot] = decoded[idx]
        return roots
    except SnapshotError:
        raise
    except (serialize.SerializationError, ReproError) as exc:
        raise SnapshotError(f"undecodable snapshot payload: {exc}") from exc
    except (KeyError, IndexError, TypeError, ValueError, AttributeError) as exc:
        raise SnapshotError(f"malformed snapshot payload: {exc!r}") from exc


def cache_key(definitions: Any, config: Any, extra: Any = None) -> str:
    """Content hash identifying one semantic situation.

    Any input that can change a closure must feed the key: the
    definition list itself, the denotation config (depth, sample,
    hide-depth), and caller-provided extras (environment ``--set``
    bindings, protocol flags).  Hash collisions aside, equal keys imply
    equal denotations — the invariant the cache relies on.  The hashed
    version is :data:`KEY_VERSION`, not the file layout version, so
    re-encoding the same content in a newer layout keeps the key (and
    the legacy fallback reachable).
    """
    payload = {
        "version": KEY_VERSION,
        "definitions": serialize.encode(definitions),
        "config": [config.depth, config.sample, config.hide_depth],
        "extra": extra,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


#: Budget-aware checkpoint slots.  ``fix:{name}@level{k}`` holds the
#: closure of ``name`` completed at depth ``k`` of a governed run's
#: deepening schedule; ``frontier:{name}@level{k}`` holds the explorer's
#: visible-trace closure completed at BFS level ``k`` (plus a state blob,
#: see :meth:`SnapshotCache.put_blob`); ``forall:{name}@instance{i}``
#: records one verified instance of a universal check.  Each slot's
#: content is fully determined by the definitions and config (the cache
#: key) and the level/instance — never by the budget that interrupted
#: the run — so serving these slots keeps governed invocations
#: deterministic.
_CHECKPOINT_SLOT = re.compile(
    r"(?:fix|frontier):.+@level\d+\Z|forall:.+@instance\d+\Z"
)


def fix_slot(name: str) -> str:
    """The ungoverned full-solve slot for ``name`` — the vocabulary the
    denotation engine persists solved SCC entries under.  Defined here so
    both semantics draw their slot names from one module."""
    return f"fix:{name}"


def checkpoint_slot(name: str, level: int) -> str:
    """The slot holding ``name``'s closure completed at depth ``level``."""
    return f"fix:{name}@level{level}"


def frontier_slot(name: str, level: int) -> str:
    """The slot holding ``name``'s explorer frontier completed at BFS
    level ``level`` (trace-closure root + serialised frontier states)."""
    return f"frontier:{name}@level{level}"


def forall_slot(name: str, instance: int) -> str:
    """The slot recording that instance ``instance`` of the universal
    check ``name`` verified at the configured depth."""
    return f"forall:{name}@instance{instance}"


def is_checkpoint_slot(slot: str) -> bool:
    """True for slots in the deterministic checkpoint vocabularies
    (``fix:…@level{k}``, ``frontier:…@level{k}``, ``forall:…@instance{i}``)."""
    return _CHECKPOINT_SLOT.match(slot) is not None


class SnapshotCache:
    """One snapshot file: named closure slots for one cache key.

    Slots are free-form strings (``fix:name``, ``traces:...:d5``); the
    engine and sat checker agree on the vocabulary.  ``get`` misses
    rather than raising; ``save`` silently degrades on unwritable
    directories.

    With ``checkpoint_only=True`` (governed runs) the cache serves and
    records **only** checkpoint slots (``fix:{name}@level{k}``,
    ``frontier:{name}@level{k}``, ``forall:{name}@instance{i}``): those
    are per-completed-step values of a deepening schedule, deterministic
    regardless of where a budget tripped, while the full-depth slot
    vocabulary is reserved for ungoverned runs whose results are always
    complete.

    Beside closure roots, slots may carry **blobs** — small
    JSON-compatible dicts (serialised explorer states, verified
    ``forall`` instances) stored under the same names and the same
    key/quarantine discipline.  Blob *structure* is validated here (an
    object of objects); blob *content* is validated by the consumer,
    which calls :meth:`reject` on anything defective so the evidence is
    quarantined exactly like a torn file.
    """

    def __init__(
        self, directory: Path, key: str, checkpoint_only: bool = False
    ) -> None:
        self.directory = Path(directory)
        self.key = key
        self.checkpoint_only = checkpoint_only
        self.path = self.directory / f"snapshot-{key}.json"
        self.hits = 0
        self.misses = 0
        self.loaded = False
        self.rebuilt = False
        self.quarantined = False
        self._dirty = False
        self._roots: Dict[str, ClosureNode] = {}
        self._blobs: Dict[str, dict] = {}
        self._load()

    def _load(self) -> None:
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        try:
            self._roots, self._blobs = self._decode_file(raw)
            self.loaded = True
        except (json.JSONDecodeError, SnapshotError, ReproError):
            # Corrupted, stale, or foreign snapshot: rebuild from scratch
            # and move the evidence aside so it is never read again.
            self._roots = {}
            self._blobs = {}
            self.rebuilt = True
            self._quarantine()

    def _decode_file(
        self, raw: str
    ) -> Tuple[Dict[str, ClosureNode], Dict[str, dict]]:
        """Decode one snapshot file's text, rejecting anything that is
        not *this* cache key in a known format."""
        data = json.loads(raw)
        if not isinstance(data, dict):
            raise SnapshotError("payload is not an object")
        if data.get("key") != self.key:
            raise SnapshotError("key mismatch")
        fmt = data.get("format")
        if fmt == FORMAT_VERSION:
            return decode_roots(data), _decode_blobs(data.get("blobs"))
        if fmt == 1:
            # Pre-arena snapshot under the same content key: load it
            # through the legacy codec; the next save rewrites flat.
            # Format 1 predates blobs.
            return decode_roots_legacy(data), {}
        raise SnapshotError(f"format {fmt!r}")

    def _quarantine(self) -> None:
        """Move the defective file to ``<cache>/quarantine/`` — rebuilt,
        never trusted, and never fatal: any filesystem trouble leaves the
        file in place, where the next load rebuilds over it anyway."""
        try:
            qdir = self.directory / "quarantine"
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(self.path, qdir / self.path.name)
            self.quarantined = True
        except OSError:
            pass

    def get(self, slot: str) -> Optional[ClosureNode]:
        if self.checkpoint_only and not is_checkpoint_slot(slot):
            self.misses += 1
            return None
        node = self._roots.get(slot)
        if node is None:
            self.misses += 1
        else:
            self.hits += 1
        return node

    def put(self, slot: str, node: ClosureNode) -> None:
        if self.checkpoint_only and not is_checkpoint_slot(slot):
            return
        if self._roots.get(slot) is not node:
            self._roots[slot] = node
            self._dirty = True

    def get_blob(self, slot: str) -> Optional[dict]:
        """The JSON blob stored under ``slot``, or ``None`` (same
        checkpoint-only gating as :meth:`get`)."""
        if self.checkpoint_only and not is_checkpoint_slot(slot):
            self.misses += 1
            return None
        blob = self._blobs.get(slot)
        if blob is None:
            self.misses += 1
        else:
            self.hits += 1
        return blob

    def put_blob(self, slot: str, blob: dict) -> None:
        """Record a JSON-compatible dict under ``slot`` (persisted on the
        next :meth:`save`, merged like closure slots)."""
        if self.checkpoint_only and not is_checkpoint_slot(slot):
            return
        if self._blobs.get(slot) != blob:
            self._blobs[slot] = blob
            self._dirty = True

    def reject(self) -> None:
        """Consumer-detected corruption: a blob decoded structurally but
        its *content* failed validation (undecodable state, index out of
        bounds, frontier/closure mismatch).  Quarantine the file and drop
        everything loaded from it — the caller rebuilds cold, exactly as
        if the file had been torn."""
        self._roots = {}
        self._blobs = {}
        self._dirty = False
        self.rebuilt = True
        self._quarantine()

    def __len__(self) -> int:
        return len(self._roots)

    @contextmanager
    def _writer_lock(self) -> Iterator[None]:
        """Cross-process exclusive lock serialising writers of this key.

        Advisory ``flock`` on a per-key lock file (not the snapshot file
        itself — that gets atomically replaced, which would orphan the
        lock).  Hosts without ``fcntl``, or a directory where the lock
        file cannot be opened, degrade to unlocked writes — exactly the
        pre-lock behaviour, still atomic per write."""
        if fcntl is None:
            yield
            return
        try:
            fd = os.open(
                str(self.directory / f".lock-{self.key}"),
                os.O_CREAT | os.O_RDWR,
                0o644,
            )
        except OSError:
            yield
            return
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)

    def _disk_state(self) -> Tuple[Dict[str, ClosureNode], Dict[str, dict]]:
        """Slots currently on disk — possibly written by another process
        since we loaded.  Folding them into our save turns concurrent
        writers into a slot *union* (no lost update); a defective disk
        copy contributes nothing (the next load quarantines it)."""
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError:
            return {}, {}
        try:
            return self._decode_file(raw)
        except (json.JSONDecodeError, SnapshotError, ReproError):
            return {}, {}

    def save(self) -> None:
        """Persist atomically and durably (temp file + ``fsync`` +
        ``os.replace``) under the cross-process writer lock, merging
        slots a concurrent writer persisted since we loaded; never
        raises on filesystem trouble.

        Runs with the ambient governor suspended: persistence must not
        spend the budget of the computation it is saving (a tripped run
        still writes its checkpoint slots, and merging a peer's slots
        re-interns nodes that are not this run's work).
        """
        if not self._dirty:
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with self._writer_lock(), _governor.suspended():
                merged, merged_blobs = self._disk_state()
                merged.update(self._roots)
                merged_blobs.update(self._blobs)
                data = encode_roots(merged)
                data["format"] = FORMAT_VERSION
                data["key"] = self.key
                if merged_blobs:
                    data["blobs"] = merged_blobs
                blob = json.dumps(data, separators=(",", ":"))
                _faults.maybe_fail("snapshot.write")
                fd, tmp = tempfile.mkstemp(
                    prefix=".snapshot-", suffix=".tmp", dir=str(self.directory)
                )
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as handle:
                        handle.write(blob)
                        handle.flush()
                        os.fsync(handle.fileno())
                    _faults.maybe_fail("snapshot.write")
                    os.replace(tmp, self.path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
        except OSError:
            return
        self._dirty = False

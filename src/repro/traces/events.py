"""Channels, communications, and traces (paper §0 and §3.1).

A *communication* is a pair ``c.m`` of a channel and a message value; the
paper writes ``output.3`` or ``col[1].7``.  A *trace* is a finite sequence
of communications, represented as a plain tuple of :class:`Event` so that
traces hash, sort, and slice for free.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, Optional, Tuple

Value = Any


class Channel:
    """A channel name, optionally subscripted: ``wire``, ``col[2]``.

    Channels are value objects; two channels are the same iff their name
    and subscript agree (paper §1.1 items 10–12: ``col[e]`` denotes a
    distinct channel for each distinct value of ``e``).
    """

    __slots__ = ("name", "index")

    def __init__(self, name: str, index: Optional[Value] = None) -> None:
        self.name = name
        self.index = index

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Channel)
            and self.name == other.name
            and self.index == other.index
        )

    def __hash__(self) -> int:
        return hash((self.name, self.index))

    def __lt__(self, other: "Channel") -> bool:
        return self.sort_key() < other.sort_key()

    def sort_key(self) -> Tuple[str, str]:
        return (self.name, "" if self.index is None else repr(self.index))

    def __repr__(self) -> str:
        if self.index is None:
            return self.name
        return f"{self.name}[{self.index!r}]"


class Event:
    """A single communication ``c.m`` — simultaneous send/receive of message
    ``m`` on channel ``c`` (the paper does not distinguish direction)."""

    __slots__ = ("channel", "message")

    def __init__(self, channel: Channel, message: Value) -> None:
        self.channel = channel
        self.message = message

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Event)
            and self.channel == other.channel
            and self.message == other.message
        )

    def __hash__(self) -> int:
        return hash((self.channel, self.message))

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def sort_key(self) -> Tuple[Tuple[str, str], str]:
        return (self.channel.sort_key(), repr(self.message))

    def __repr__(self) -> str:
        return f"{self.channel!r}.{self.message!r}"


#: A trace is an immutable sequence of events.
Trace = Tuple[Event, ...]

#: The empty trace ⟨⟩.
EMPTY_TRACE: Trace = ()


def channel(name: str, index: Optional[Value] = None) -> Channel:
    """Shorthand constructor for :class:`Channel`."""
    return Channel(name, index)


def event(chan: Any, message: Value) -> Event:
    """Build an :class:`Event`; ``chan`` may be a :class:`Channel` or name."""
    if isinstance(chan, str):
        chan = Channel(chan)
    return Event(chan, message)


def trace(*pairs: Any) -> Trace:
    """Build a trace from ``(channel, message)`` pairs or :class:`Event`\\ s.

    >>> trace(("input", 3), ("wire", 3))
    (input.3, wire.3)
    """
    events = []
    for pair in pairs:
        if isinstance(pair, Event):
            events.append(pair)
        else:
            chan, message = pair
            events.append(event(chan, message))
    return tuple(events)


def trace_channels(s: Trace) -> FrozenSet[Channel]:
    """The set of channels mentioned in a trace."""
    return frozenset(e.channel for e in s)


def restrict(s: Trace, channels: Iterable[Channel]) -> Trace:
    """``s \\ C`` — omit every communication on a channel of ``C`` (§3.1)."""
    hidden = frozenset(channels)
    return tuple(e for e in s if e.channel not in hidden)


def project(s: Trace, channels: Iterable[Channel]) -> Trace:
    """Keep only communications on channels of ``C`` (the complement of
    :func:`restrict`, used when projecting a network trace onto one
    component's alphabet)."""
    kept = frozenset(channels)
    return tuple(e for e in s if e.channel in kept)


def is_prefix(s: Trace, t: Trace) -> bool:
    """The prefix order ``s ≤ t`` of §2: ∃u. s++u = t."""
    return len(s) <= len(t) and t[: len(s)] == s


def prefixes(s: Trace) -> Iterable[Trace]:
    """All prefixes of ``s``, shortest first, including ⟨⟩ and ``s``."""
    for i in range(len(s) + 1):
        yield s[:i]

"""Hash-consed trace tries — the kernel representation of prefix closures.

A prefix-closed set of traces (paper §3.1) *is* a tree: the root is the
empty trace, and a node has one child per event that can extend it.  A
:class:`ClosureNode` is one such tree, immutable and **structurally
hash-consed**: building a node whose (event → child) map was built before
returns the existing object, so

* identical subtrees are shared, storing a closure in space proportional
  to its *distinct* suffix behaviours rather than its trace count;
* semantic equality of closures is **pointer equality** of roots, making
  memo tables keyed on nodes O(1) and exact;
* prefix closure holds **by construction** — every node reachable from a
  root is itself a member, so there is nothing to verify at runtime.

Interner and memo tables live in a :class:`KernelState`.  There is one
global state; worker threads of the denotation engine swap in a private
state via :func:`private_state` so concurrent interning needs no locks,
then the main thread canonicalises their roots with :func:`reintern`.
Interning is idempotent on structural keys, so re-interning a privately
built trie into the global state yields exactly the node the global
state would have built itself — per-worker states are an implementation
detail, not a semantic one.

Operators over nodes live in :mod:`repro.traces.operations`; this module
provides construction, interning, and the derived queries
(:func:`iter_traces`, :func:`descend`, :func:`node_channels`).  All
counters report into :mod:`repro.traces.stats`.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from typing import (
    Deque,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.runtime import faults as _faults
from repro.runtime import governor as _governor
from repro.traces.events import EMPTY_TRACE, Channel, Event, Trace
from repro.traces.stats import KERNEL_STATS


class ClosureNode:
    """One interned trie node = one prefix-closed trace set.

    Never construct directly — go through :func:`make_node` (or the
    operators), which intern structurally identical nodes.  Equality and
    hashing are object identity, which interning makes coincide with
    structural equality.
    """

    __slots__ = ("children", "items", "count", "height", "_channels")

    def __init__(self, items: Tuple[Tuple[Event, "ClosureNode"], ...]) -> None:
        self.items = items
        self.children: Dict[Event, ClosureNode] = dict(items)
        self.count: int = 1 + sum(child.count for _, child in items)
        self.height: int = (
            1 + max(child.height for _, child in items) if items else 0
        )
        self._channels: Optional[FrozenSet[Channel]] = None

    @property
    def is_leaf(self) -> bool:
        return not self.items

    def __repr__(self) -> str:
        return f"ClosureNode(<{self.count} traces, height {self.height}>)"


#: event → child-id pairs; children are interned first, so their ids are
#: stable for as long as the interner holds them.
_InternKey = Tuple[Tuple[Event, int], ...]


class KernelState:
    """An interner plus its identity-keyed memo tables.

    Memo keys hold node ids, so memos are only valid against the interner
    whose nodes they reference — clearing or swapping the interner must
    drop the memos with it, which is why they live together.
    """

    __slots__ = ("interner", "memos")

    def __init__(self) -> None:
        self.interner: Dict[_InternKey, ClosureNode] = {}
        self.memos: Dict[str, Dict] = {}

    def memo(self, name: str) -> Dict:
        """The (lazily created) memo table for operator ``name``."""
        table = self.memos.get(name)
        if table is None:
            table = self.memos[name] = {}
        return table


_GLOBAL = KernelState()
_TLS = threading.local()


def _state() -> KernelState:
    return getattr(_TLS, "state", None) or _GLOBAL


def memo_table(name: str) -> Dict:
    """The current state's memo table for ``name`` (resolved once per
    top-level operator call, then threaded through the recursion)."""
    return _state().memo(name)


@contextmanager
def private_state() -> Iterator[KernelState]:
    """Run the calling *thread* against a fresh private kernel state.

    Nodes built inside are interned privately (no contention with other
    threads); canonicalise their roots afterwards with :func:`reintern`
    on the thread that owns the target state.  :data:`EMPTY_NODE` is
    seeded so the ⟦STOP⟧ closure stays canonical everywhere.
    """
    previous = getattr(_TLS, "state", None)
    state = KernelState()
    state.interner[()] = EMPTY_NODE
    _TLS.state = state
    try:
        yield state
    finally:
        _TLS.state = previous


def make_node(children: Mapping[Event, "ClosureNode"]) -> ClosureNode:
    """The interned node with exactly the given children."""
    items = tuple(sorted(children.items(), key=lambda kv: kv[0].sort_key()))
    key: _InternKey = tuple((event, id(child)) for event, child in items)
    interner = _state().interner
    node = interner.get(key)
    if node is not None:
        KERNEL_STATS.interner_hits += 1
        return node
    KERNEL_STATS.interner_misses += 1
    # Governed/fault-injected runs may abort here; nothing has been
    # inserted yet, so the interner stays consistent (exception safety).
    _faults.maybe_fail("trie.intern")
    _governor.note_node()
    node = ClosureNode(items)
    interner[key] = node
    return node


#: ⟦STOP⟧ = {⟨⟩} — the leaf, shared by every trie and every kernel state.
EMPTY_NODE: ClosureNode = make_node({})


def interner_size() -> int:
    """Number of distinct subtrees interned in the current state."""
    return len(_state().interner)


def clear_interner() -> None:
    """Drop every interned node and memo table of the current state.

    Only for benchmarks and tests that need a cold kernel;
    :data:`EMPTY_NODE` is re-interned so existing references stay
    canonical.
    """
    state = _state()
    state.interner.clear()
    state.memos.clear()
    state.interner[()] = EMPTY_NODE


def reintern(node: ClosureNode) -> ClosureNode:
    """The canonical equivalent of ``node`` in the *current* state.

    Re-interns bottom-up with an explicit stack (deep tries are
    legitimate inputs).  Because interning keys are structural, this is
    idempotent: a node already canonical in the current state maps to
    itself, and two structurally equal foreign nodes map to the same
    canonical node — the property that makes per-worker interners sound.
    """
    memo: Dict[int, ClosureNode] = {}
    stack: List[Tuple[ClosureNode, bool]] = [(node, False)]
    while stack:
        current, expanded = stack.pop()
        if id(current) in memo:
            continue
        if expanded:
            memo[id(current)] = make_node(
                {event: memo[id(child)] for event, child in current.items}
            )
            continue
        stack.append((current, True))
        for _, child in current.items:
            if id(child) not in memo:
                stack.append((child, False))
    return memo[id(node)]


# -- construction -----------------------------------------------------------


def node_from_traces(traces: Iterable[Trace]) -> ClosureNode:
    """The interned trie of the prefix closure of ``traces``.

    Closure is automatic: inserting a trace creates every node along its
    path, i.e. every prefix.
    """
    root: Dict = {}
    for s in traces:
        level = root
        for event in s:
            level = level.setdefault(event, {})
    return _intern_tree(root)


def _intern_tree(tree: Dict) -> ClosureNode:
    """Intern a nested-dict trie bottom-up with an explicit stack, so a
    trace of any length can be inserted without touching the interpreter
    recursion limit (deep linear processes are legitimate inputs)."""
    if not tree:
        return EMPTY_NODE
    interned: Dict[int, ClosureNode] = {}
    stack: List[Tuple[Dict, bool]] = [(tree, False)]
    while stack:
        subtree, expanded = stack.pop()
        if expanded:
            interned[id(subtree)] = make_node(
                {
                    event: interned[id(sub)] if sub else EMPTY_NODE
                    for event, sub in subtree.items()
                }
            )
            continue
        stack.append((subtree, True))
        for sub in subtree.values():
            if sub:
                stack.append((sub, False))
    return interned[id(tree)]


# -- derived queries --------------------------------------------------------


def descend(node: ClosureNode, s: Trace) -> Optional[ClosureNode]:
    """The subtree reached by following ``s`` from ``node`` — the closure
    ``{t | s⌢t ∈ P}`` — or ``None`` when ``s ∉ P``."""
    for event in s:
        node = node.children.get(event)  # type: ignore[assignment]
        if node is None:
            return None
    return node


def contains_trace(node: ClosureNode, s: Trace) -> bool:
    """``s ∈ P`` by trie walk."""
    return descend(node, s) is not None


def iter_traces(node: ClosureNode) -> Iterator[Trace]:
    """All traces, shortest first, lexicographic (by event sort key)
    within a length — the canonical enumeration order of the flat-set
    representation, preserved for reproducibility."""
    queue: Deque[Tuple[Trace, ClosureNode]] = deque([(EMPTY_TRACE, node)])
    while queue:
        prefix, current = queue.popleft()
        yield prefix
        for event, child in current.items:
            queue.append((prefix + (event,), child))


def iter_trace_set(node: ClosureNode) -> FrozenSet[Trace]:
    """The flat ``frozenset`` of traces (materialised on demand)."""
    return frozenset(iter_traces(node))


def node_channels(node: ClosureNode) -> FrozenSet[Channel]:
    """All channels occurring anywhere in the trie (cached per node;
    shared subtrees are visited once).  Computed bottom-up with an
    explicit stack so arbitrarily deep tries cannot overflow."""
    cached = node._channels
    if cached is not None:
        return cached
    stack: List[Tuple[ClosureNode, bool]] = [(node, False)]
    while stack:
        current, expanded = stack.pop()
        if current._channels is not None:
            continue
        if expanded:
            chans = set()
            for event, child in current.items:
                chans.add(event.channel)
                chans |= child._channels  # type: ignore[arg-type]
            current._channels = frozenset(chans)
            continue
        stack.append((current, True))
        for _, child in current.items:
            if child._channels is None:
                stack.append((child, False))
    return node._channels  # type: ignore[return-value]


def maximal_traces(node: ClosureNode) -> FrozenSet[Trace]:
    """Traces ending at leaves — those with no extension in the set."""
    return frozenset(
        prefix
        for prefix, current in _walk_with_prefix(node)
        if current.is_leaf
    )


def _walk_with_prefix(
    node: ClosureNode,
) -> Iterator[Tuple[Trace, ClosureNode]]:
    queue: Deque[Tuple[Trace, ClosureNode]] = deque([(EMPTY_TRACE, node)])
    while queue:
        prefix, current = queue.popleft()
        yield prefix, current
        for event, child in current.items:
            queue.append((prefix + (event,), child))


# -- lattice operations (§3.1) ---------------------------------------------
#
# The lattice structure lives in the kernel (rather than in
# repro.traces.operations) because FiniteClosure's own methods need it and
# the operator layer imports FiniteClosure.  Each public operator resolves
# its memo table from the current kernel state once, then threads it
# through the recursion — per-call resolution would cost a thread-local
# lookup on every node visit.


def union_nodes(a: ClosureNode, b: ClosureNode) -> ClosureNode:
    """``P ∪ Q`` — prefix closures are closed under union (§3.1).

    Shared subtrees are merged once: recursion is memoised on the node
    *pair*, and pointer-equal arguments short-circuit immediately.
    """
    if a is b:
        return a
    if a is EMPTY_NODE:
        return b
    if b is EMPTY_NODE:
        return a
    return _union(a, b, _state().memo("union"), KERNEL_STATS.memo("union"))


def _union(a: ClosureNode, b: ClosureNode, memo: Dict, stats) -> ClosureNode:
    if a is b:
        return a
    if a is EMPTY_NODE:
        return b
    if b is EMPTY_NODE:
        return a
    key = (a, b) if id(a) <= id(b) else (b, a)
    cached = memo.get(key)
    if cached is not None:
        stats.hits += 1
        return cached
    stats.misses += 1
    children = dict(a.children)
    for event, b_child in b.items:
        a_child = children.get(event)
        children[event] = _union(a_child, b_child, memo, stats) if a_child else b_child
    result = make_node(children)
    memo[key] = result
    return result


def intersect_nodes(a: ClosureNode, b: ClosureNode) -> ClosureNode:
    """``P ∩ Q`` — closed under intersection (§3.1)."""
    if a is b:
        return a
    if a is EMPTY_NODE or b is EMPTY_NODE:
        return EMPTY_NODE
    return _intersect(
        a, b, _state().memo("intersection"), KERNEL_STATS.memo("intersection")
    )


def _intersect(a: ClosureNode, b: ClosureNode, memo: Dict, stats) -> ClosureNode:
    if a is b:
        return a
    if a is EMPTY_NODE or b is EMPTY_NODE:
        return EMPTY_NODE
    key = (a, b) if id(a) <= id(b) else (b, a)
    cached = memo.get(key)
    if cached is not None:
        stats.hits += 1
        return cached
    stats.misses += 1
    children = {}
    for event, a_child in a.items:
        b_child = b.children.get(event)
        if b_child is not None:
            children[event] = _intersect(a_child, b_child, memo, stats)
    result = make_node(children)
    memo[key] = result
    return result


def _truncated_child(child: ClosureNode, depth: int, memo: Dict) -> ClosureNode:
    """The already-resolved truncation of ``child`` to ``depth`` (base
    cases inline, recursive cases from the memo filled by the driver)."""
    if depth <= 0:
        return EMPTY_NODE
    if child.height <= depth:
        return child
    return memo[(child, depth)]


def truncate_node(node: ClosureNode, depth: int) -> ClosureNode:
    """Traces of length ≤ ``depth`` — still prefix-closed.

    Driven by an explicit post-order stack rather than recursion: the
    recursion depth would equal the trie height, and deep linear tries
    (a 10⁴-event process is legitimate input) must truncate without
    overflowing the interpreter stack.
    """
    if depth <= 0:
        return EMPTY_NODE
    if node.height <= depth:
        return node
    stats = KERNEL_STATS.memo("truncate")
    memo = _state().memo("truncate")
    cached = memo.get((node, depth))
    if cached is not None:
        stats.hits += 1
        return cached
    stack: List[Tuple[ClosureNode, int]] = [(node, depth)]
    while stack:
        current, d = stack[-1]
        if (current, d) in memo:
            stack.pop()
            continue
        pending = [
            (child, d - 1)
            for _, child in current.items
            if d - 1 > 0
            and child.height > d - 1
            and (child, d - 1) not in memo
        ]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        stats.misses += 1
        _faults.maybe_fail("trie.truncate")
        memo[(current, d)] = make_node(
            {
                event: _truncated_child(child, d - 1, memo)
                for event, child in current.items
            }
        )
    return memo[(node, depth)]


# -- delta frontiers --------------------------------------------------------
#
# The §3.3 chain grows monotonically: level i+1 extends level i.  Because
# nodes are hash-consed, the *unchanged* regions of the new trie are
# pointer-identical to the old one, so the set of subtrees that are fresh
# at a level — the **delta frontier** — is found by a simultaneous walk
# that prunes on pointer equality.  The engine uses these queries to skip
# re-denotations whose inputs changed only below the depth they consult.

#: Pair-walk budget for delta queries; past it the delta is reported as
#: "changed at depth 0" (never skip), so a huge frontier degrades to full
#: re-denotation instead of an expensive analysis.
DELTA_WALK_CAP = 4096


def delta_nodes(
    old: ClosureNode, new: ClosureNode, cap: int = DELTA_WALK_CAP
) -> Optional[Tuple[ClosureNode, ...]]:
    """The frontier of subtrees of ``new`` that are fresh relative to
    ``old``: every node of ``new`` reachable without crossing a
    pointer-identical shared subtree.  Returns ``None`` when the walk
    exceeds ``cap`` pairs (callers must then treat the whole trie as
    changed).  ``()`` when the roots are identical."""
    if old is new:
        return ()
    KERNEL_STATS.delta_queries += 1
    fresh: Dict[int, ClosureNode] = {}
    seen = set()
    stack: List[Tuple[Optional[ClosureNode], ClosureNode]] = [(old, new)]
    while stack:
        o, n = stack.pop()
        key = (id(o), id(n))
        if key in seen:
            continue
        seen.add(key)
        if len(seen) > cap:
            KERNEL_STATS.delta_capped += 1
            return None
        fresh[id(n)] = n
        for event, child in n.items:
            o_child = o.children.get(event) if o is not None else None
            if o_child is not child:
                stack.append((o_child, child))
    KERNEL_STATS.frontier_nodes += len(fresh)
    return tuple(fresh.values())


def delta_depth(
    old: ClosureNode, new: ClosureNode, cap: int = DELTA_WALK_CAP
) -> Optional[int]:
    """The minimum length of a trace in ``new ∖ old`` — the shallowest
    depth at which ``new`` grew.

    ``None`` when ``new`` adds no trace (in the monotone chains this is
    called on, that means the roots are identical).  ``truncate(new, d)
    is truncate(old, d)`` for every ``d < delta_depth(old, new)`` — the
    equality the engine's horizon skip relies on.  Returns ``0`` when the
    pair walk exceeds ``cap``: a conservative "changed everywhere" that
    forces callers back to full re-denotation.  Memoised per (old, new)
    pair in the kernel state.
    """
    if old is new:
        return None
    memo = _state().memo("delta-depth")
    stats = KERNEL_STATS.memo("delta-depth")
    key = (old, new)
    cached = memo.get(key, _DELTA_MISS)
    if cached is not _DELTA_MISS:
        stats.hits += 1
        return cached
    stats.misses += 1
    KERNEL_STATS.delta_queries += 1
    _governor.tick()
    result: Optional[int] = None
    visited = 0
    seen = set()
    frontier: List[Tuple[ClosureNode, ClosureNode]] = [(old, new)]
    depth = 0
    while frontier and result is None:
        depth += 1
        nxt: List[Tuple[ClosureNode, ClosureNode]] = []
        for o, n in frontier:
            for event, child in n.items:
                o_child = o.children.get(event)
                if o_child is None:
                    result = depth
                    break
                if o_child is child:
                    continue
                pair_key = (id(o_child), id(child))
                if pair_key in seen:
                    continue
                seen.add(pair_key)
                visited += 1
                if visited > cap:
                    KERNEL_STATS.delta_capped += 1
                    result = 0
                    break
                nxt.append((o_child, child))
            if result is not None:
                break
        frontier = nxt
    if result != 0:
        # Only genuine answers are cached; a capped walk's conservative 0
        # reflects this call's budget, not the pair, and must not shadow a
        # later walk with a larger cap.
        memo[key] = result
    return result


#: Distinguishes "memo holds None" from "memo miss" in delta_depth.
_DELTA_MISS = object()


def subset_nodes(a: ClosureNode, b: ClosureNode) -> bool:
    """The lattice order ``P ⊆ Q``, by simultaneous walk with sharing."""
    if a is b or a is EMPTY_NODE:
        return True
    seen = set()

    def walk(x: ClosureNode, y: ClosureNode) -> bool:
        if x is y:
            return True
        pair = (id(x), id(y))
        if pair in seen:
            return True
        seen.add(pair)
        for event, x_child in x.items:
            y_child = y.children.get(event)
            if y_child is None or not walk(x_child, y_child):
                return False
        return True

    return walk(a, b)


def distinct_nodes(node: ClosureNode) -> int:
    """Number of *distinct* nodes reachable from ``node`` — the kernel's
    actual storage cost, as opposed to ``node.count`` traces."""
    seen = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        stack.extend(child for _, child in current.items)
    return len(seen)

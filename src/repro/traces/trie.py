"""Arena trace-trie kernel — struct-of-arrays storage for prefix closures.

A prefix-closed set of traces (paper §3.1) *is* a tree: the root is the
empty trace, and a node has one child per event that can extend it.  The
kernel stores those trees in an :class:`Arena`: a node is an ``int`` id
naming one row of a set of parallel ``array`` segments (edge span, trace
count, height), its edges are ``(event id, child id)`` pairs in two flat
edge tables, and events and channels are interned to small ints in id
tables of their own.  Nodes are **structurally hash-consed**: interning
is keyed on the packed bytes of the ``(event id, child id)`` edge list,
so building a node that exists returns the existing id, and

* identical subtrees are shared, storing a closure in space proportional
  to its *distinct* suffix behaviours rather than its trace count;
* semantic equality of closures is **id equality** (and pointer equality
  of the per-id view objects), making memo tables keyed on ids O(1) and
  exact;
* prefix closure holds **by construction** — every id reachable from a
  root names a member, so there is nothing to verify at runtime;
* a node costs a handful of array slots instead of a Python object, a
  dict, and a tuple — and snapshots become flat dumps of the arena
  segments (:mod:`repro.traces.snapshot`).

:class:`ClosureNode` survives as a thin **view**: a lazily-materialised
object over one ``(arena, id)`` pair, exposing the pre-arena object API
(``items``, ``children``, ``count``, ``height``) so everything above the
kernel keeps working unchanged.  Views are canonical per id —
``arena.view(i)`` always returns the same object — so pointer identity
of views coincides with id equality.

Arena, interner, and memo tables live in a :class:`KernelState`.  There
is one global state; worker threads of the denotation engine swap in a
private state via :func:`private_state` so concurrent interning needs no
locks, then the main thread canonicalises their roots with
:func:`reintern`, which remaps both node ids and event ids.  **Arena ids
are state-local**: using a view from one state inside another raises
:class:`~repro.errors.KernelStateError` rather than silently aliasing —
see :func:`node_id`.

Operators over nodes live in :mod:`repro.traces.operations`; this module
provides construction, interning, the lattice operations, the delta
primitives, and the derived queries (:func:`iter_traces`,
:func:`descend`, :func:`node_channels`).  All counters report into
:mod:`repro.traces.stats`.
"""

from __future__ import annotations

import threading
from array import array
from collections import deque
from contextlib import contextmanager
from typing import (
    Deque,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.errors import KernelStateError
from repro.runtime import faults as _faults
from repro.runtime import governor as _governor
from repro.traces.events import EMPTY_TRACE, Channel, Event, Trace
from repro.traces.stats import KERNEL_STATS


def _item_sort_key(kv: Tuple[Event, "ClosureNode"]):
    return kv[0].sort_key()


class ClosureNode:
    """A view over one interned arena node = one prefix-closed trace set.

    Never construct directly — go through :func:`make_node` (or the
    operators), which intern structurally identical nodes onto one id,
    or :meth:`Arena.view`, which returns the canonical view per id.
    Equality and hashing are object identity, which per-id view caching
    makes coincide with structural equality within a kernel state.

    ``items`` and ``children`` are materialised lazily from the arena's
    edge tables on first access (sorted by event sort key, the
    enumeration order the pre-arena kernel used) and cached on the view;
    the hot operator paths never touch them — they run on ids.
    """

    __slots__ = ("arena", "id", "_items", "_children")

    def __init__(self, arena: Optional["Arena"], nid: int) -> None:
        self.arena = arena
        self.id = nid
        self._items: Optional[Tuple[Tuple[Event, "ClosureNode"], ...]] = None
        self._children: Optional[Dict[Event, "ClosureNode"]] = None

    @property
    def items(self) -> Tuple[Tuple[Event, "ClosureNode"], ...]:
        items = self._items
        if items is None:
            arena = self.arena
            if arena is None:
                items = ()
            else:
                start = arena.edge_start[self.id]
                end = start + arena.edge_len[self.id]
                edge_events = arena.edge_events
                edge_children = arena.edge_children
                events = arena.events
                view = arena.view
                pairs = [
                    (events[edge_events[k]], view(edge_children[k]))
                    for k in range(start, end)
                ]
                pairs.sort(key=_item_sort_key)
                items = tuple(pairs)
            self._items = items
        return items

    @property
    def children(self) -> Dict[Event, "ClosureNode"]:
        children = self._children
        if children is None:
            children = self._children = dict(self.items)
        return children

    @property
    def count(self) -> int:
        arena = self.arena
        return arena.counts[self.id] if arena is not None else 1

    @property
    def height(self) -> int:
        arena = self.arena
        return arena.heights[self.id] if arena is not None else 0

    @property
    def is_leaf(self) -> bool:
        arena = self.arena
        return arena is None or arena.edge_len[self.id] == 0

    def __repr__(self) -> str:
        return f"ClosureNode(<{self.count} traces, height {self.height}>)"


#: ⟦STOP⟧ = {⟨⟩} — the leaf.  One singleton shared by every arena: node 0
#: of every arena is the leaf, and every arena's ``view(0)`` is this
#: object, so ``node is EMPTY_NODE`` stays meaningful across states.
EMPTY_NODE: ClosureNode = ClosureNode(None, 0)


class Arena:
    """Struct-of-arrays node store: one trie kernel's entire population.

    Parallel segments, indexed by node id:

    * ``edge_start[i]`` / ``edge_len[i]`` — the node's span in the edge
      tables;
    * ``counts[i]`` — trace count (1 + Σ child counts);
    * ``heights[i]`` — longest trace length.

    Flat edge tables, indexed by edge position:

    * ``edge_events[k]`` — event id of edge ``k``;
    * ``edge_children[k]`` — child node id of edge ``k``.

    Within a node's span, edges are sorted by **event id**, which makes
    the packed edge list a canonical interning key per arena and lets
    binary operators merge spans by linear int-walk instead of building
    event-keyed dicts.  (Views re-sort by event *sort key* when
    materialising ``items``, preserving the pre-arena enumeration
    order.)

    Id tables intern :class:`~repro.traces.events.Event` and
    :class:`~repro.traces.events.Channel` values to dense ints;
    ``event_channel[e]`` maps an event id to its channel id so ``hide``
    and ``parallel`` classify edges without touching Event objects.

    Node 0 is always the leaf (⟦STOP⟧), seeded at construction.
    """

    __slots__ = (
        "edge_start",
        "edge_len",
        "edge_events",
        "edge_children",
        "counts",
        "heights",
        "interner",
        "views",
        "events",
        "event_ids",
        "event_channel",
        "channels",
        "channel_ids",
        "channel_cache",
    )

    def __init__(self) -> None:
        self.edge_start = array("i", [0])
        self.edge_len = array("i", [0])
        self.edge_events = array("i")
        self.edge_children = array("i")
        self.counts = array("q", [1])
        self.heights = array("i", [0])
        #: packed ``(event id, child id)`` byte key → node id.
        self.interner: Dict[bytes, int] = {b"": 0}
        #: node id → canonical view (sparse: only ids somebody viewed).
        self.views: Dict[int, ClosureNode] = {0: EMPTY_NODE}
        self.events: List[Event] = []
        self.event_ids: Dict[Event, int] = {}
        self.event_channel = array("i")
        self.channels: List[Channel] = []
        self.channel_ids: Dict[Channel, int] = {}
        #: node id → frozenset of channels (for :func:`node_channels`).
        self.channel_cache: Dict[int, FrozenSet[Channel]] = {0: frozenset()}

    # -- id tables ---------------------------------------------------------

    def intern_event(self, event: Event) -> int:
        """The dense id of ``event``, registering it on first sight."""
        eid = self.event_ids.get(event)
        if eid is None:
            cid = self.intern_channel(event.channel)
            eid = len(self.events)
            self.events.append(event)
            self.event_channel.append(cid)
            self.event_ids[event] = eid
        return eid

    def intern_channel(self, chan: Channel) -> int:
        """The dense id of ``chan``, registering it on first sight."""
        cid = self.channel_ids.get(chan)
        if cid is None:
            cid = len(self.channels)
            self.channels.append(chan)
            self.channel_ids[chan] = cid
        return cid

    # -- node interning ----------------------------------------------------

    def intern(self, flat: List[int]) -> int:
        """The id of the node with edge list ``flat`` — interleaved
        ``[e0, c0, e1, c1, ...]`` pairs sorted by ascending event id.

        The interning key is the packed bytes of ``flat``; hashing it is
        a C-level byte hash, not a tuple-of-objects hash.  On a miss the
        governed/fault-injected abort points fire *before* anything is
        appended, and the segments are appended edges-first, node row
        next, interner entry last — an abort can strand only unreachable
        trailing edge slots, never a visible half node (the abort-safety
        contract of docs/robustness.md).
        """
        key = array("i", flat).tobytes()
        nid = self.interner.get(key)
        if nid is not None:
            KERNEL_STATS.interner_hits += 1
            return nid
        KERNEL_STATS.interner_misses += 1
        _faults.maybe_fail("trie.intern")
        _governor.note_node()
        counts = self.counts
        heights = self.heights
        count = 1
        height = 0
        for i in range(1, len(flat), 2):
            child = flat[i]
            count += counts[child]
            h = heights[child] + 1
            if h > height:
                height = h
        nid = len(self.edge_start)
        start = len(self.edge_events)
        self.edge_events.extend(flat[0::2])
        self.edge_children.extend(flat[1::2])
        self.edge_start.append(start)
        self.edge_len.append(len(flat) // 2)
        counts.append(count)
        heights.append(height)
        self.interner[key] = nid
        return nid

    def append_rows(
        self,
        n: int,
        edge_events_b: bytes,
        edge_children_b: bytes,
        edge_start_b: bytes,
        edge_len_b: bytes,
        counts_b: bytes,
        heights_b: bytes,
        keys: List[bytes],
    ) -> int:
        """Bulk-append ``n`` pre-validated node rows; returns the first
        new id (rows get ids ``base .. base+n-1`` in order).

        This is the snapshot decoder's fast path: segment buffers arrive
        as raw native-order bytes (``'i'`` rows, ``'q'`` counts) and are
        spliced in with C-level ``frombytes``.  The caller guarantees
        everything :meth:`intern` would otherwise establish row by row —
        each key is the packed edge list of its row, absent from the
        interner and pairwise distinct; edges sorted by ascending event
        id; counts/heights consistent; ``edge_start`` offset by the
        current edge count.  The abort points fire once, up front: a
        budget trip or injected fault admits *none* of the batch, so the
        edges-before-row-before-interner contract of :meth:`intern`
        carries over unchanged.
        """
        _faults.maybe_fail("trie.intern")
        _governor.note_nodes(n)
        base = len(self.edge_start)
        self.edge_events.frombytes(edge_events_b)
        self.edge_children.frombytes(edge_children_b)
        self.edge_start.frombytes(edge_start_b)
        self.edge_len.frombytes(edge_len_b)
        self.counts.frombytes(counts_b)
        self.heights.frombytes(heights_b)
        self.interner.update(zip(keys, range(base, base + n)))
        KERNEL_STATS.interner_misses += n
        KERNEL_STATS.spliced_ids += n
        KERNEL_STATS.spliced_bytes += (
            len(edge_events_b)
            + len(edge_children_b)
            + len(edge_start_b)
            + len(edge_len_b)
            + len(counts_b)
            + len(heights_b)
        )
        return base

    def view(self, nid: int) -> ClosureNode:
        """The canonical view object for ``nid`` (one per id, forever)."""
        node = self.views.get(nid)
        if node is None:
            node = self.views[nid] = ClosureNode(self, nid)
        return node

    # -- accounting --------------------------------------------------------

    def node_count(self) -> int:
        return len(self.edge_start)

    def segment_bytes(self) -> int:
        """Bytes held by the arena's array segments (the flat storage the
        object kernel used to spend per-node Python objects on)."""
        return sum(
            arr.itemsize * len(arr)
            for arr in (
                self.edge_start,
                self.edge_len,
                self.edge_events,
                self.edge_children,
                self.counts,
                self.heights,
                self.event_channel,
            )
        )


class KernelState:
    """An arena plus its id-keyed memo tables.

    Memo keys hold node ids, so memos are only valid against the arena
    whose rows they reference — clearing or swapping the arena must drop
    the memos with it, which is why they live together.
    """

    __slots__ = ("arena", "memos")

    def __init__(self) -> None:
        self.arena = Arena()
        self.memos: Dict[str, Dict] = {}

    def memo(self, name: str) -> Dict:
        """The (lazily created) memo table for operator ``name``."""
        table = self.memos.get(name)
        if table is None:
            table = self.memos[name] = {}
        return table


_GLOBAL = KernelState()
_TLS = threading.local()


def _state() -> KernelState:
    return getattr(_TLS, "state", None) or _GLOBAL


def current_state() -> KernelState:
    """The kernel state the calling thread is running against."""
    return _state()


def memo_table(name: str) -> Dict:
    """The current state's memo table for ``name`` (resolved once per
    top-level operator call, then threaded through the recursion)."""
    return _state().memo(name)


@contextmanager
def private_state() -> Iterator[KernelState]:
    """Run the calling *thread* against a fresh private kernel state.

    Nodes built inside are interned privately (no contention with other
    threads); canonicalise their roots afterwards with :func:`reintern`
    on the thread that owns the target state.  The private arena seeds
    its own node 0, and ``view(0)`` is :data:`EMPTY_NODE` everywhere, so
    the ⟦STOP⟧ closure stays canonical across states.

    **Arena ids are state-local.**  A view that leaks out of the
    ``with`` block (or into it, from the ambient state) is only readable
    — iterating its traces still works, because the view carries its
    arena.  But passing it to any constructing operator running against
    a different state raises :class:`~repro.errors.KernelStateError`:
    its id names a row of the *other* arena, and using the bare int here
    would silently alias an unrelated node.  Cross the boundary with
    :func:`reintern`, which rebuilds the structure under this state's
    node and event ids.
    """
    previous = getattr(_TLS, "state", None)
    _TLS.state = KernelState()
    try:
        yield _TLS.state
    finally:
        _TLS.state = previous


def node_id(node: ClosureNode, arena: Arena) -> int:
    """``node``'s id in ``arena`` — the entry gate every operator passes
    views through.  :data:`EMPTY_NODE` is id 0 in every arena; any other
    foreign view raises :class:`~repro.errors.KernelStateError` (see
    :func:`private_state`)."""
    if node.arena is arena:
        return node.id
    if node.arena is None:
        return 0
    raise KernelStateError(
        "trie node used across kernel states: arena ids are state-local "
        "(a node built under private_state() or before clear_interner() "
        "must be carried over with reintern(), not used directly)"
    )


def make_node(children: Mapping[Event, ClosureNode]) -> ClosureNode:
    """The interned node with exactly the given children."""
    if not children:
        return EMPTY_NODE
    arena = _state().arena
    intern_event = arena.intern_event
    pairs = sorted(
        (intern_event(event), node_id(child, arena))
        for event, child in children.items()
    )
    flat: List[int] = []
    for eid, cid in pairs:
        flat.append(eid)
        flat.append(cid)
    return arena.view(arena.intern(flat))


def interner_size() -> int:
    """Number of distinct subtrees interned in the current state."""
    return _state().arena.node_count()


def arena_info() -> Dict[str, int]:
    """Size account of the current state's arena: node/edge rows, flat
    segment bytes, id-table sizes, and views materialised."""
    arena = _state().arena
    return {
        "nodes": arena.node_count(),
        "edges": len(arena.edge_events),
        "segment_bytes": arena.segment_bytes(),
        "events": len(arena.events),
        "channels": len(arena.channels),
        "views": len(arena.views),
    }


def clear_interner() -> None:
    """Drop the current state's arena — every node row, the edge tables,
    the event/channel id tables — and every memo table, by installing a
    fresh arena.  Only for benchmarks and tests that need a cold kernel.

    Views from the discarded generation remain *readable* (they carry
    their arena), but using one where a new node would be built raises
    :class:`~repro.errors.KernelStateError` — a stale id must never
    silently alias a row of the new arena.  :data:`EMPTY_NODE` is
    arena-agnostic and stays canonical.
    """
    state = _state()
    state.arena = Arena()
    state.memos.clear()


def reintern(node: ClosureNode) -> ClosureNode:
    """The canonical equivalent of ``node`` in the *current* state.

    A view of the current arena is already canonical (interning is keyed
    structurally, so per-arena ids are unique per structure) and maps to
    itself.  A foreign view is rebuilt bottom-up with an explicit stack
    (deep tries are legitimate inputs), remapping the foreign arena's
    event ids to this arena's through the Event objects themselves —
    two structurally equal foreign nodes land on the same local id, the
    property that makes per-worker arenas sound.
    """
    arena = _state().arena
    source = node.arena
    if source is arena or source is None:
        return node
    src_events = source.edge_events
    src_children = source.edge_children
    src_start = source.edge_start
    src_len = source.edge_len
    intern_event = arena.intern_event
    event_map: Dict[int, int] = {}
    node_map: Dict[int, int] = {0: 0}
    stack: List[Tuple[int, bool]] = [(node.id, False)]
    while stack:
        nid, expanded = stack.pop()
        if nid in node_map:
            continue
        start = src_start[nid]
        end = start + src_len[nid]
        if expanded:
            pairs = []
            for k in range(start, end):
                eid = src_events[k]
                local = event_map.get(eid)
                if local is None:
                    local = event_map[eid] = intern_event(source.events[eid])
                pairs.append((local, node_map[src_children[k]]))
            pairs.sort()
            flat: List[int] = []
            for e, c in pairs:
                flat.append(e)
                flat.append(c)
            node_map[nid] = arena.intern(flat)
            continue
        stack.append((nid, True))
        for k in range(start, end):
            child = src_children[k]
            if child not in node_map:
                stack.append((child, False))
    KERNEL_STATS.remap_entries += len(node_map) - 1
    return arena.view(node_map[node.id])


# -- construction -----------------------------------------------------------


def node_from_traces(traces: Iterable[Trace]) -> ClosureNode:
    """The interned trie of the prefix closure of ``traces``.

    Closure is automatic: inserting a trace creates every node along its
    path, i.e. every prefix.
    """
    arena = _state().arena
    intern_event = arena.intern_event
    root: Dict = {}
    for s in traces:
        level = root
        for event in s:
            level = level.setdefault(intern_event(event), {})
    if not root:
        return EMPTY_NODE
    return arena.view(_intern_tree(arena, root))


def _intern_tree(arena: Arena, tree: Dict) -> int:
    """Intern a nested ``{event id: subtree}`` dict bottom-up with an
    explicit stack, so a trace of any length can be inserted without
    touching the interpreter recursion limit (deep linear processes are
    legitimate inputs)."""
    interned: Dict[int, int] = {}
    stack: List[Tuple[Dict, bool]] = [(tree, False)]
    while stack:
        subtree, expanded = stack.pop()
        if expanded:
            pairs = sorted(
                (eid, interned[id(sub)] if sub else 0)
                for eid, sub in subtree.items()
            )
            flat: List[int] = []
            for e, c in pairs:
                flat.append(e)
                flat.append(c)
            interned[id(subtree)] = arena.intern(flat)
            continue
        stack.append((subtree, True))
        for sub in subtree.values():
            if sub:
                stack.append((sub, False))
    return interned[id(tree)]


# -- derived queries --------------------------------------------------------
#
# The enumeration queries run over views (they exist to hand Event
# objects and traces back to callers anyway) and therefore also work on
# stale or foreign views: reading never constructs, so it never needs
# the current state.


def descend(node: ClosureNode, s: Trace) -> Optional[ClosureNode]:
    """The subtree reached by following ``s`` from ``node`` — the closure
    ``{t | s⌢t ∈ P}`` — or ``None`` when ``s ∉ P``."""
    for event in s:
        node = node.children.get(event)  # type: ignore[assignment]
        if node is None:
            return None
    return node


def contains_trace(node: ClosureNode, s: Trace) -> bool:
    """``s ∈ P`` by trie walk."""
    return descend(node, s) is not None


def iter_traces(node: ClosureNode) -> Iterator[Trace]:
    """All traces, shortest first, lexicographic (by event sort key)
    within a length — the canonical enumeration order of the flat-set
    representation, preserved for reproducibility."""
    queue: Deque[Tuple[Trace, ClosureNode]] = deque([(EMPTY_TRACE, node)])
    while queue:
        prefix, current = queue.popleft()
        yield prefix
        for event, child in current.items:
            queue.append((prefix + (event,), child))


def iter_trace_set(node: ClosureNode) -> FrozenSet[Trace]:
    """The flat ``frozenset`` of traces (materialised on demand)."""
    return frozenset(iter_traces(node))


def node_channels(node: ClosureNode) -> FrozenSet[Channel]:
    """All channels occurring anywhere in the trie (cached per id in the
    arena; shared subtrees are visited once).  Computed bottom-up with an
    explicit stack so arbitrarily deep tries cannot overflow."""
    arena = node.arena
    if arena is None:
        return frozenset()
    cache = arena.channel_cache
    cached = cache.get(node.id)
    if cached is not None:
        return cached
    edge_events = arena.edge_events
    edge_children = arena.edge_children
    edge_start = arena.edge_start
    edge_len = arena.edge_len
    event_channel = arena.event_channel
    channels = arena.channels
    stack: List[Tuple[int, bool]] = [(node.id, False)]
    while stack:
        nid, expanded = stack.pop()
        if nid in cache:
            continue
        start = edge_start[nid]
        end = start + edge_len[nid]
        if expanded:
            chans = set()
            for k in range(start, end):
                chans.add(channels[event_channel[edge_events[k]]])
                chans |= cache[edge_children[k]]
            cache[nid] = frozenset(chans)
            continue
        stack.append((nid, True))
        for k in range(start, end):
            child = edge_children[k]
            if child not in cache:
                stack.append((child, False))
    return cache[node.id]


def maximal_traces(node: ClosureNode) -> FrozenSet[Trace]:
    """Traces ending at leaves — those with no extension in the set."""
    return frozenset(
        prefix
        for prefix, current in _walk_with_prefix(node)
        if current.is_leaf
    )


def _walk_with_prefix(
    node: ClosureNode,
) -> Iterator[Tuple[Trace, ClosureNode]]:
    queue: Deque[Tuple[Trace, ClosureNode]] = deque([(EMPTY_TRACE, node)])
    while queue:
        prefix, current = queue.popleft()
        yield prefix, current
        for event, child in current.items:
            queue.append((prefix + (event,), child))


def distinct_nodes(node: ClosureNode) -> int:
    """Number of *distinct* nodes reachable from ``node`` — the kernel's
    actual storage cost, as opposed to ``node.count`` traces."""
    arena = node.arena
    if arena is None:
        return 1
    edge_children = arena.edge_children
    edge_start = arena.edge_start
    edge_len = arena.edge_len
    seen = {node.id}
    stack = [node.id]
    while stack:
        nid = stack.pop()
        start = edge_start[nid]
        for k in range(start, start + edge_len[nid]):
            child = edge_children[k]
            if child not in seen:
                seen.add(child)
                stack.append(child)
    return len(seen)


# -- lattice operations (§3.1) ---------------------------------------------
#
# The lattice structure lives in the kernel (rather than in
# repro.traces.operations) because FiniteClosure's own methods need it and
# the operator layer imports FiniteClosure.  Each public operator resolves
# its memo table from the current kernel state once, then threads it
# through the recursion — per-call resolution would cost a thread-local
# lookup on every node visit.  The recursions run on bare ids: node spans
# are edge lists sorted by event id, so a binary operator is a linear
# merge-walk over two int spans, and memo keys are small int tuples.


def union_nodes(a: ClosureNode, b: ClosureNode) -> ClosureNode:
    """``P ∪ Q`` — prefix closures are closed under union (§3.1).

    Shared subtrees are merged once: recursion is memoised on the id
    *pair*, and equal ids short-circuit immediately.
    """
    state = _state()
    arena = state.arena
    ai = node_id(a, arena)
    bi = node_id(b, arena)
    if ai == bi or bi == 0:
        return a
    if ai == 0:
        return b
    rid = union_ids(
        arena, ai, bi, state.memo("union"), KERNEL_STATS.memo("union")
    )
    return arena.view(rid)


def union_ids(arena: Arena, a: int, b: int, memo: Dict, stats) -> int:
    if a == b:
        return a
    if a == 0:
        return b
    if b == 0:
        return a
    key = (a, b) if a <= b else (b, a)
    cached = memo.get(key)
    if cached is not None:
        stats.hits += 1
        return cached
    stats.misses += 1
    edge_events = arena.edge_events
    edge_children = arena.edge_children
    edge_start = arena.edge_start
    edge_len = arena.edge_len
    ka = edge_start[a]
    ea = ka + edge_len[a]
    kb = edge_start[b]
    eb = kb + edge_len[b]
    flat: List[int] = []
    while ka < ea and kb < eb:
        eva = edge_events[ka]
        evb = edge_events[kb]
        if eva == evb:
            flat.append(eva)
            flat.append(
                union_ids(arena, edge_children[ka], edge_children[kb], memo, stats)
            )
            ka += 1
            kb += 1
        elif eva < evb:
            flat.append(eva)
            flat.append(edge_children[ka])
            ka += 1
        else:
            flat.append(evb)
            flat.append(edge_children[kb])
            kb += 1
    while ka < ea:
        flat.append(edge_events[ka])
        flat.append(edge_children[ka])
        ka += 1
    while kb < eb:
        flat.append(edge_events[kb])
        flat.append(edge_children[kb])
        kb += 1
    result = arena.intern(flat)
    memo[key] = result
    return result


def intersect_nodes(a: ClosureNode, b: ClosureNode) -> ClosureNode:
    """``P ∩ Q`` — closed under intersection (§3.1)."""
    state = _state()
    arena = state.arena
    ai = node_id(a, arena)
    bi = node_id(b, arena)
    if ai == bi:
        return a
    if ai == 0 or bi == 0:
        return EMPTY_NODE
    rid = intersect_ids(
        arena, ai, bi, state.memo("intersection"), KERNEL_STATS.memo("intersection")
    )
    return arena.view(rid)


def intersect_ids(arena: Arena, a: int, b: int, memo: Dict, stats) -> int:
    if a == b:
        return a
    if a == 0 or b == 0:
        return 0
    key = (a, b) if a <= b else (b, a)
    cached = memo.get(key)
    if cached is not None:
        stats.hits += 1
        return cached
    stats.misses += 1
    edge_events = arena.edge_events
    edge_children = arena.edge_children
    edge_start = arena.edge_start
    edge_len = arena.edge_len
    ka = edge_start[a]
    ea = ka + edge_len[a]
    kb = edge_start[b]
    eb = kb + edge_len[b]
    flat: List[int] = []
    while ka < ea and kb < eb:
        eva = edge_events[ka]
        evb = edge_events[kb]
        if eva == evb:
            flat.append(eva)
            flat.append(
                intersect_ids(
                    arena, edge_children[ka], edge_children[kb], memo, stats
                )
            )
            ka += 1
            kb += 1
        elif eva < evb:
            ka += 1
        else:
            kb += 1
    result = arena.intern(flat)
    memo[key] = result
    return result


def truncate_node(node: ClosureNode, depth: int) -> ClosureNode:
    """Traces of length ≤ ``depth`` — still prefix-closed.

    Driven by an explicit post-order stack rather than recursion: the
    recursion depth would equal the trie height, and deep linear tries
    (a 10⁴-event process is legitimate input) must truncate without
    overflowing the interpreter stack.
    """
    state = _state()
    arena = state.arena
    nid = node_id(node, arena)
    if depth <= 0:
        return EMPTY_NODE
    if arena.heights[nid] <= depth:
        return arena.view(nid)
    rid = truncate_ids(
        arena, nid, depth, state.memo("truncate"), KERNEL_STATS.memo("truncate")
    )
    return arena.view(rid)


def _truncated_child(arena: Arena, child: int, depth: int, memo: Dict) -> int:
    """The already-resolved truncation of ``child`` to ``depth`` (base
    cases inline, recursive cases from the memo filled by the driver)."""
    if depth <= 0:
        return 0
    if arena.heights[child] <= depth:
        return child
    return memo[(child, depth)]


def truncate_ids(arena: Arena, nid: int, depth: int, memo: Dict, stats) -> int:
    if depth <= 0:
        return 0
    heights = arena.heights
    if heights[nid] <= depth:
        return nid
    cached = memo.get((nid, depth))
    if cached is not None:
        stats.hits += 1
        return cached
    edge_events = arena.edge_events
    edge_children = arena.edge_children
    edge_start = arena.edge_start
    edge_len = arena.edge_len
    stack: List[Tuple[int, int]] = [(nid, depth)]
    while stack:
        current, d = stack[-1]
        if (current, d) in memo:
            stack.pop()
            continue
        start = edge_start[current]
        end = start + edge_len[current]
        dd = d - 1
        pending = []
        if dd > 0:
            for k in range(start, end):
                child = edge_children[k]
                if heights[child] > dd and (child, dd) not in memo:
                    pending.append((child, dd))
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        stats.misses += 1
        _faults.maybe_fail("trie.truncate")
        flat: List[int] = []
        for k in range(start, end):
            flat.append(edge_events[k])
            flat.append(_truncated_child(arena, edge_children[k], dd, memo))
        memo[(current, d)] = arena.intern(flat)
    return memo[(nid, depth)]


# -- delta frontiers --------------------------------------------------------
#
# The §3.3 chain grows monotonically: level i+1 extends level i.  Because
# nodes are hash-consed, the *unchanged* regions of the new trie reuse the
# old trie's ids, so the set of subtrees that are fresh at a level — the
# **delta frontier** — is found by a simultaneous id walk that prunes on
# id equality.  The engine uses these queries to skip re-denotations
# whose inputs changed only below the depth they consult.

#: Pair-walk budget for delta queries; past it the delta is reported as
#: "changed at depth 0" (never skip), so a huge frontier degrades to full
#: re-denotation instead of an expensive analysis.
DELTA_WALK_CAP = 4096

#: Sentinel child id for "the old trie has no counterpart here".
_NO_NODE = -1


def _edge_map(arena: Arena, nid: int) -> Dict[int, int]:
    """One node's span as an ``{event id: child id}`` dict."""
    start = arena.edge_start[nid]
    end = start + arena.edge_len[nid]
    edge_events = arena.edge_events
    edge_children = arena.edge_children
    return {edge_events[k]: edge_children[k] for k in range(start, end)}


def delta_nodes(
    old: ClosureNode, new: ClosureNode, cap: int = DELTA_WALK_CAP
) -> Optional[Tuple[ClosureNode, ...]]:
    """The frontier of subtrees of ``new`` that are fresh relative to
    ``old``: every node of ``new`` reachable without crossing an
    id-identical shared subtree.  Returns ``None`` when the walk exceeds
    ``cap`` pairs (callers must then treat the whole trie as changed).
    ``()`` when the roots are identical."""
    arena = _state().arena
    oid = node_id(old, arena)
    nid = node_id(new, arena)
    if oid == nid:
        return ()
    KERNEL_STATS.delta_queries += 1
    edge_events = arena.edge_events
    edge_children = arena.edge_children
    edge_start = arena.edge_start
    edge_len = arena.edge_len
    fresh: Dict[int, None] = {}
    seen = set()
    stack: List[Tuple[int, int]] = [(oid, nid)]
    while stack:
        o, n = stack.pop()
        key = (o, n)
        if key in seen:
            continue
        seen.add(key)
        if len(seen) > cap:
            KERNEL_STATS.delta_capped += 1
            return None
        fresh[n] = None
        old_children = _edge_map(arena, o) if o != _NO_NODE else {}
        start = edge_start[n]
        for k in range(start, start + edge_len[n]):
            child = edge_children[k]
            o_child = old_children.get(edge_events[k], _NO_NODE)
            if o_child != child:
                stack.append((o_child, child))
    KERNEL_STATS.frontier_nodes += len(fresh)
    return tuple(arena.view(n) for n in fresh)


def delta_depth(
    old: ClosureNode, new: ClosureNode, cap: int = DELTA_WALK_CAP
) -> Optional[int]:
    """The minimum length of a trace in ``new ∖ old`` — the shallowest
    depth at which ``new`` grew.

    ``None`` when ``new`` adds no trace (in the monotone chains this is
    called on, that means the roots are identical).  ``truncate(new, d)
    is truncate(old, d)`` for every ``d < delta_depth(old, new)`` — the
    equality the engine's horizon skip relies on.  Returns ``0`` when the
    pair walk exceeds ``cap``: a conservative "changed everywhere" that
    forces callers back to full re-denotation.  Memoised per (old, new)
    id pair in the kernel state.
    """
    state = _state()
    arena = state.arena
    oid = node_id(old, arena)
    nid = node_id(new, arena)
    if oid == nid:
        return None
    memo = state.memo("delta-depth")
    stats = KERNEL_STATS.memo("delta-depth")
    key = (oid, nid)
    cached = memo.get(key, _DELTA_MISS)
    if cached is not _DELTA_MISS:
        stats.hits += 1
        return cached
    stats.misses += 1
    KERNEL_STATS.delta_queries += 1
    _governor.tick()
    edge_events = arena.edge_events
    edge_children = arena.edge_children
    edge_start = arena.edge_start
    edge_len = arena.edge_len
    result: Optional[int] = None
    visited = 0
    seen = set()
    frontier: List[Tuple[int, int]] = [(oid, nid)]
    depth = 0
    while frontier and result is None:
        depth += 1
        nxt: List[Tuple[int, int]] = []
        for o, n in frontier:
            old_children = _edge_map(arena, o)
            start = edge_start[n]
            for k in range(start, start + edge_len[n]):
                o_child = old_children.get(edge_events[k])
                if o_child is None:
                    result = depth
                    break
                child = edge_children[k]
                if o_child == child:
                    continue
                pair_key = (o_child, child)
                if pair_key in seen:
                    continue
                seen.add(pair_key)
                visited += 1
                if visited > cap:
                    KERNEL_STATS.delta_capped += 1
                    result = 0
                    break
                nxt.append((o_child, child))
            if result is not None:
                break
        frontier = nxt
    if result != 0:
        # Only genuine answers are cached; a capped walk's conservative 0
        # reflects this call's budget, not the pair, and must not shadow a
        # later walk with a larger cap.
        memo[key] = result
    return result


#: Distinguishes "memo holds None" from "memo miss" in delta_depth.
_DELTA_MISS = object()


def subset_nodes(a: ClosureNode, b: ClosureNode) -> bool:
    """The lattice order ``P ⊆ Q``, by simultaneous id walk with sharing."""
    arena = _state().arena
    ai = node_id(a, arena)
    bi = node_id(b, arena)
    if ai == bi or ai == 0:
        return True
    edge_events = arena.edge_events
    edge_children = arena.edge_children
    edge_start = arena.edge_start
    edge_len = arena.edge_len
    seen = set()

    def walk(x: int, y: int) -> bool:
        if x == y:
            return True
        pair = (x, y)
        if pair in seen:
            return True
        seen.add(pair)
        y_children = _edge_map(arena, y)
        start = edge_start[x]
        for k in range(start, start + edge_len[x]):
            y_child = y_children.get(edge_events[k])
            if y_child is None or not walk(edge_children[k], y_child):
                return False
        return True

    return walk(ai, bi)

"""The paper's operators on prefix closures (§3.1).

* ``prefix(a, P)``       — ``(a → P) = {⟨⟩} ∪ {a⌢s | s ∈ P}``;
* ``hide(P, C)``         — ``P \\ C = {s \\ C | s ∈ P}`` (the ``chan`` operator);
* ``pad(P, C, events)``  — ``P ⇑ C``: traces of ``P`` interleaved with
  arbitrary communications on the channels of ``C``;
* ``parallel(P, X, Q, Y)`` — ``P ‖_{X,Y} Q = (P ⇑ (Y−X)) ∩ (Q ⇑ (X−Y))``,
  computed directly by synchronised merge rather than by building the two
  padded sets (which are huge);
* ``after_event(P, a)``  — the derivative ``{s | a⌢s ∈ P}``.

All functions return new :class:`FiniteClosure` values; every result is
prefix-closed by construction (the §3.1 theorems, which the property tests
re-verify).
"""

from __future__ import annotations

from typing import Deque, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple
from collections import deque

from repro.traces.events import (
    EMPTY_TRACE,
    Channel,
    Event,
    Trace,
    restrict,
)
from repro.traces.prefix_closure import FiniteClosure


def prefix(a: Event, p: FiniteClosure) -> FiniteClosure:
    """``(a → P)`` — the process that first communicates ``a``, then
    behaves like ``P`` (§3.1)."""
    traces: Set[Trace] = {EMPTY_TRACE}
    for s in p.traces:
        traces.add((a,) + s)
    return FiniteClosure(frozenset(traces), _trusted=True)


def after_event(p: FiniteClosure, a: Event) -> FiniteClosure:
    """``P after a`` — the behaviours of ``P`` once ``a`` has occurred:
    ``{s | a⌢s ∈ P}``.  Empty behaviour (STOP) if ``a`` is impossible."""
    traces = frozenset(s[1:] for s in p.traces if s and s[0] == a)
    return FiniteClosure(traces | {EMPTY_TRACE}, _trusted=True)


def hide(p: FiniteClosure, channels: Iterable[Channel]) -> FiniteClosure:
    """``P \\ C`` — conceal all communications on channels of ``C``
    (the semantics of ``chan C; P``, §3.1/§3.2).

    Restricting a prefix-closed set is prefix-closed: ``(st)\\C`` always
    begins with ``s\\C``.
    """
    hidden = frozenset(channels)
    return FiniteClosure(
        frozenset(restrict(s, hidden) for s in p.traces), _trusted=True
    )


def pad(
    p: FiniteClosure,
    channels: Iterable[Channel],
    pad_events: Iterable[Event],
    depth: int,
) -> FiniteClosure:
    """``P ⇑ C`` — interleave each trace of ``P`` with arbitrary
    communications on the channels of ``C`` (§3.1: the communications
    "ignored by P").

    The paper's ``⇑`` adjoins *all* messages on the channels of ``C``; a
    finite representation needs an explicit finite alphabet, so callers
    pass ``pad_events`` (every event must lie on a channel of ``C``) and a
    ``depth`` bound on result length.
    """
    pad_set = tuple(sorted(set(pad_events), key=Event.sort_key))
    chan_set = frozenset(channels)
    for e in pad_set:
        if e.channel not in chan_set:
            raise ValueError(f"padding event {e!r} not on a padding channel")

    results: Set[Trace] = set()
    # BFS over (emitted trace, progress inside P).
    queue: Deque[Tuple[Trace, Trace]] = deque([(EMPTY_TRACE, EMPTY_TRACE)])
    seen: Set[Tuple[Trace, Trace]] = {(EMPTY_TRACE, EMPTY_TRACE)}
    while queue:
        emitted, progress = queue.popleft()
        results.add(emitted)
        if len(emitted) >= depth:
            continue
        for a in p.initials_after(progress):
            state = (emitted + (a,), progress + (a,))
            if state not in seen:
                seen.add(state)
                queue.append(state)
        for a in pad_set:
            state = (emitted + (a,), progress)
            if state not in seen:
                seen.add(state)
                queue.append(state)
    return FiniteClosure(frozenset(results), _trusted=True)


def parallel(
    p: FiniteClosure,
    x: Iterable[Channel],
    q: FiniteClosure,
    y: Iterable[Channel],
    depth: Optional[int] = None,
) -> FiniteClosure:
    """``P ‖_{X,Y} Q`` (§3.1).

    ``X`` must cover every channel ``P`` uses and ``Y`` every channel ``Q``
    uses.  A product trace ``s`` over ``X ∪ Y`` is included iff
    ``s \\ (Y−X) ∈ P`` and ``s \\ (X−Y) ∈ Q``: events on shared channels
    ``X ∩ Y`` need simultaneous participation of both components, events on
    private channels proceed independently.

    Computed by synchronised merge over the two tries — equivalent to the
    paper's ``(P ⇑ (Y−X)) ∩ (Q ⇑ (X−Y))`` but without materialising the
    padded sets (an equivalence the test suite checks on small instances).
    """
    x_set = frozenset(x)
    y_set = frozenset(y)
    missing_p = p.channels() - x_set
    if missing_p:
        raise ValueError(f"left process uses channels outside X: {sorted(missing_p)}")
    missing_q = q.channels() - y_set
    if missing_q:
        raise ValueError(f"right process uses channels outside Y: {sorted(missing_q)}")
    shared = x_set & y_set

    if depth is None:
        depth = p.depth() + q.depth()

    results: Set[Trace] = set()
    # BFS over (product trace, P-projection, Q-projection).
    queue: Deque[Tuple[Trace, Trace, Trace]] = deque(
        [(EMPTY_TRACE, EMPTY_TRACE, EMPTY_TRACE)]
    )
    while queue:
        emitted, sp, sq = queue.popleft()
        results.add(emitted)
        if len(emitted) >= depth:
            continue
        p_next = p.initials_after(sp)
        q_next = q.initials_after(sq)
        for a in p_next:
            if a.channel in shared:
                if a in q_next:
                    queue.append((emitted + (a,), sp + (a,), sq + (a,)))
            else:
                queue.append((emitted + (a,), sp + (a,), sq))
        for a in q_next:
            if a.channel not in shared:
                queue.append((emitted + (a,), sp, sq + (a,)))
    return FiniteClosure(frozenset(results), _trusted=True)


def interleavings(s: Trace, t: Trace) -> Iterator[Trace]:
    """All merges of two traces preserving each one's internal order.

    A reference helper used to cross-check :func:`pad` and
    :func:`parallel` on small inputs.
    """
    if not s:
        yield t
        return
    if not t:
        yield s
        return
    for rest in interleavings(s[1:], t):
        yield (s[0],) + rest
    for rest in interleavings(s, t[1:]):
        yield (t[0],) + rest


def union_all(closures: Iterable[FiniteClosure]) -> FiniteClosure:
    """∪ᵢ Pᵢ — prefix closures are closed under arbitrary unions (§3.1)."""
    traces: Set[Trace] = {EMPTY_TRACE}
    for c in closures:
        traces |= c.traces
    return FiniteClosure(frozenset(traces), _trusted=True)

"""The paper's operators on prefix closures (§3.1), over the trie kernel.

* ``prefix(a, P)``       — ``(a → P) = {⟨⟩} ∪ {a⌢s | s ∈ P}``;
* ``hide(P, C)``         — ``P \\ C = {s \\ C | s ∈ P}`` (the ``chan`` operator);
* ``pad(P, C, events)``  — ``P ⇑ C``: traces of ``P`` interleaved with
  arbitrary communications on the channels of ``C``;
* ``parallel(P, X, Q, Y)`` — ``P ‖_{X,Y} Q = (P ⇑ (Y−X)) ∩ (Q ⇑ (X−Y))``,
  computed directly by synchronised merge rather than by building the two
  padded sets (which are huge);
* ``after_event(P, a)``  — the derivative ``{s | a⌢s ∈ P}``;
* ``union``/``intersection``/``truncate`` — the lattice operations,
  re-exported from the kernel for symmetry.

Every operator is a recursive function over **arena node ids** with a
per-operation memo table keyed on small int tuples: a subtree shared by
many traces is processed **once**, not once per trace.  Channels are
classified by their interned channel id (``arena.event_channel`` maps an
edge's event id straight to its channel id), so the hot loops never hash
an :class:`~repro.traces.events.Event` or
:class:`~repro.traces.events.Channel` object.  Because a node's edge
span is sorted by event id, results are assembled as already-sorted flat
edge lists and handed to :meth:`~repro.traces.trie.Arena.intern`
directly.  Results are prefix-closed by construction (the §3.1 theorems;
the property tests in ``tests/traces/test_trie_equivalence.py``
re-verify each operator against the flat-set reference in
:mod:`repro.traces._reference`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.errors import SemanticsError
from repro.runtime import faults as _faults
from repro.runtime import governor as _governor
from repro.traces.events import Channel, Event, Trace
from repro.traces.prefix_closure import FiniteClosure
from repro.traces.stats import KERNEL_STATS
from repro.traces.trie import (
    DELTA_WALK_CAP,
    EMPTY_NODE,
    Arena,
    ClosureNode,
    current_state,
    delta_depth as _delta_depth_nodes,
    delta_nodes,
    make_node,
    node_id,
    truncate_ids,
    union_ids,
)

#: Refuse a fully-interleaved (no shared channel) parallel composition
#: once the product of the component trace counts passes this bound: the
#: result would be a combinatorial interleaving explosion that no sharing
#: can absorb.  Callers that really mean it can pre-truncate the
#: components or pass an explicit small ``depth``.
MAX_DISJOINT_PRODUCT = 250_000

# Memo tables live in the kernel state (per-thread during engine worker
# runs); each public operator resolves its tables once — its own and the
# union table its recursion leans on — and threads them through.


def prefix(a: Event, p: FiniteClosure) -> FiniteClosure:
    """``(a → P)`` — the process that first communicates ``a``, then
    behaves like ``P`` (§3.1).  One node interning; ``P``'s trie is
    shared, not copied."""
    return FiniteClosure.from_node(make_node({a: p.root}))


def after_event(p: FiniteClosure, a: Event) -> FiniteClosure:
    """``P after a`` — the behaviours of ``P`` once ``a`` has occurred:
    ``{s | a⌢s ∈ P}``.  Empty behaviour (STOP) if ``a`` is impossible.
    A single child lookup on the trie."""
    child = p.root.children.get(a)
    return FiniteClosure.from_node(child if child is not None else EMPTY_NODE)


def union(p: FiniteClosure, q: FiniteClosure) -> FiniteClosure:
    """``P ∪ Q`` (§3.1) — memoised recursive merge."""
    return p.union(q)


def intersection(p: FiniteClosure, q: FiniteClosure) -> FiniteClosure:
    """``P ∩ Q`` (§3.1) — memoised recursive meet."""
    return p.intersection(q)


def truncate(p: FiniteClosure, depth: int) -> FiniteClosure:
    """Traces of length ≤ ``depth``."""
    return p.truncate(depth)


def _channel_id_set(arena: Arena, channels: Iterable[Channel]) -> FrozenSet[int]:
    """Intern a channel set to a frozenset of channel ids (sorted first,
    so the ids handed to a fresh arena do not depend on set iteration
    order — id tables stay deterministic run to run)."""
    return frozenset(arena.intern_channel(c) for c in sorted(set(channels)))


def hide(p: FiniteClosure, channels: Iterable[Channel]) -> FiniteClosure:
    """``P \\ C`` — conceal all communications on channels of ``C``
    (the semantics of ``chan C; P``, §3.1/§3.2).

    Restricting a prefix-closed set is prefix-closed: ``(st)\\C`` always
    begins with ``s\\C``.  On the trie, hiding a child edge unions the
    hidden child's (recursively hidden) subtree into the current node.
    """
    hidden = frozenset(channels)
    if not hidden:
        return p
    state = current_state()
    arena = state.arena
    nid = node_id(p.root, arena)
    hidden_cids = _channel_id_set(arena, hidden)
    with _governor.recursion_guard("hide"):
        rid = _hide_id(
            arena,
            nid,
            hidden_cids,
            state.memo("hide"),
            KERNEL_STATS.memo("hide"),
            state.memo("union"),
            KERNEL_STATS.memo("union"),
        )
    return FiniteClosure.from_node(arena.view(rid))


def _hide_id(
    arena: Arena,
    nid: int,
    hidden: FrozenSet[int],
    memo: Dict,
    stats,
    union_memo: Dict,
    union_stats,
) -> int:
    if nid == 0:
        return 0
    key = (nid, hidden)
    cached = memo.get(key)
    if cached is not None:
        stats.hits += 1
        return cached
    stats.misses += 1
    _faults.maybe_fail("op.hide")
    _governor.tick()
    edge_events = arena.edge_events
    edge_children = arena.edge_children
    event_channel = arena.event_channel
    start = arena.edge_start[nid]
    end = start + arena.edge_len[nid]
    visible: List[int] = []
    absorbed = 0
    for k in range(start, end):
        eid = edge_events[k]
        child = _hide_id(
            arena, edge_children[k], hidden, memo, stats, union_memo, union_stats
        )
        if event_channel[eid] in hidden:
            absorbed = union_ids(arena, absorbed, child, union_memo, union_stats)
        else:
            visible.append(eid)
            visible.append(child)
    result = union_ids(arena, arena.intern(visible), absorbed, union_memo, union_stats)
    memo[key] = result
    return result


def pad(
    p: FiniteClosure,
    channels: Iterable[Channel],
    pad_events: Iterable[Event],
    depth: int,
) -> FiniteClosure:
    """``P ⇑ C`` — interleave each trace of ``P`` with arbitrary
    communications on the channels of ``C`` (§3.1: the communications
    "ignored by P").

    The paper's ``⇑`` adjoins *all* messages on the channels of ``C``; a
    finite representation needs an explicit finite alphabet, so callers
    pass ``pad_events`` (every event must lie on a channel of ``C``) and a
    ``depth`` bound on result length.

    .. warning::
       Padding is intrinsically exponential: every one of the ``k``
       padding events may occur at every position of every trace, so the
       result grows as Θ((k+1)^depth) even for a singleton ``P``.  Keep
       ``depth`` small, or prefer :func:`parallel`, which merges without
       materialising the padded sets.
    """
    if depth < 0:
        raise ValueError(f"pad depth must be non-negative, got {depth}")
    pad_set = tuple(sorted(set(pad_events), key=Event.sort_key))
    chan_set = frozenset(channels)
    for e in pad_set:
        if e.channel not in chan_set:
            raise ValueError(f"padding event {e!r} not on a padding channel")
    state = current_state()
    arena = state.arena
    nid = node_id(p.root, arena)
    pad_eids = tuple(sorted(arena.intern_event(e) for e in pad_set))
    with _governor.recursion_guard("pad"):
        rid = _pad_id(
            arena,
            nid,
            pad_eids,
            depth,
            state.memo("pad"),
            KERNEL_STATS.memo("pad"),
            state.memo("union"),
            KERNEL_STATS.memo("union"),
            state.memo("truncate"),
            KERNEL_STATS.memo("truncate"),
        )
    return FiniteClosure.from_node(arena.view(rid))


def _pad_id(
    arena: Arena,
    nid: int,
    pad_eids: Tuple[int, ...],
    depth: int,
    memo: Dict,
    stats,
    union_memo: Dict,
    union_stats,
    trunc_memo: Dict,
    trunc_stats,
) -> int:
    if depth <= 0:
        return 0
    if not pad_eids:
        return truncate_ids(arena, nid, depth, trunc_memo, trunc_stats)
    key = (nid, pad_eids, depth)
    cached = memo.get(key)
    if cached is not None:
        stats.hits += 1
        return cached
    stats.misses += 1
    _faults.maybe_fail("op.pad")
    _governor.tick()
    edge_events = arena.edge_events
    edge_children = arena.edge_children
    start = arena.edge_start[nid]
    end = start + arena.edge_len[nid]
    children: Dict[int, int] = {
        edge_events[k]: _pad_id(
            arena,
            edge_children[k],
            pad_eids,
            depth - 1,
            memo,
            stats,
            union_memo,
            union_stats,
            trunc_memo,
            trunc_stats,
        )
        for k in range(start, end)
    }
    # A padding event leaves progress inside P unchanged; if P itself can
    # also perform it, both continuations are possible — union them.
    stalled = _pad_id(
        arena,
        nid,
        pad_eids,
        depth - 1,
        memo,
        stats,
        union_memo,
        union_stats,
        trunc_memo,
        trunc_stats,
    )
    for eid in pad_eids:
        existing = children.get(eid)
        children[eid] = (
            union_ids(arena, existing, stalled, union_memo, union_stats)
            if existing is not None
            else stalled
        )
    flat: List[int] = []
    for eid in sorted(children):
        flat.append(eid)
        flat.append(children[eid])
    result = arena.intern(flat)
    memo[key] = result
    return result


def parallel(
    p: FiniteClosure,
    x: Iterable[Channel],
    q: FiniteClosure,
    y: Iterable[Channel],
    depth: Optional[int] = None,
) -> FiniteClosure:
    """``P ‖_{X,Y} Q`` (§3.1).

    ``X`` must cover every channel ``P`` uses and ``Y`` every channel ``Q``
    uses.  A product trace ``s`` over ``X ∪ Y`` is included iff
    ``s \\ (Y−X) ∈ P`` and ``s \\ (X−Y) ∈ Q``: events on shared channels
    ``X ∩ Y`` need simultaneous participation of both components, events on
    private channels proceed independently.

    Computed by memoised synchronised merge over the two tries —
    equivalent to the paper's ``(P ⇑ (Y−X)) ∩ (Q ⇑ (X−Y))`` but without
    materialising the padded sets (an equivalence the test suite checks on
    small instances).  Each distinct ``(P-subtree, Q-subtree)`` pair is
    merged once, however many interleavings reach it.

    When ``X`` and ``Y`` are disjoint there is no synchronisation at all
    and the result is the full interleaving of the two trace sets, which
    explodes combinatorially; beyond :data:`MAX_DISJOINT_PRODUCT` the
    composition raises :class:`~repro.errors.SemanticsError` rather than
    silently building an enormous intermediate.
    """
    x_set = frozenset(x)
    y_set = frozenset(y)
    missing_p = p.channels() - x_set
    if missing_p:
        raise ValueError(f"left process uses channels outside X: {sorted(missing_p)}")
    missing_q = q.channels() - y_set
    if missing_q:
        raise ValueError(f"right process uses channels outside Y: {sorted(missing_q)}")
    shared = x_set & y_set

    if not shared and len(p) * len(q) > MAX_DISJOINT_PRODUCT:
        raise SemanticsError(
            f"parallel composition with disjoint alphabets X ∩ Y = ∅ would "
            f"interleave {len(p)} × {len(q)} traces — an exponential padding "
            f"blow-up; truncate the components or synchronise on a shared "
            f"channel"
        )

    if depth is None:
        depth = p.depth() + q.depth()

    state = current_state()
    arena = state.arena
    np = node_id(p.root, arena)
    nq = node_id(q.root, arena)
    shared_cids = _channel_id_set(arena, shared)
    with _governor.recursion_guard("parallel"):
        rid = _par_id(
            arena,
            np,
            nq,
            shared_cids,
            depth,
            state.memo("parallel"),
            KERNEL_STATS.memo("parallel"),
            state.memo("union"),
            KERNEL_STATS.memo("union"),
        )
    return FiniteClosure.from_node(arena.view(rid))


def _par_id(
    arena: Arena,
    np: int,
    nq: int,
    shared: FrozenSet[int],
    depth: int,
    memo: Dict,
    stats,
    union_memo: Dict,
    union_stats,
) -> int:
    if depth <= 0 or (np == 0 and nq == 0):
        return 0
    key = (np, nq, shared, depth)
    cached = memo.get(key)
    if cached is not None:
        stats.hits += 1
        return cached
    stats.misses += 1
    _faults.maybe_fail("op.parallel")
    _governor.tick()
    edge_events = arena.edge_events
    edge_children = arena.edge_children
    edge_start = arena.edge_start
    edge_len = arena.edge_len
    event_channel = arena.event_channel
    q_start = edge_start[nq]
    q_end = q_start + edge_len[nq]
    q_edges = {edge_events[k]: edge_children[k] for k in range(q_start, q_end)}
    children: Dict[int, int] = {}
    p_start = edge_start[np]
    for k in range(p_start, p_start + edge_len[np]):
        eid = edge_events[k]
        p_child = edge_children[k]
        if event_channel[eid] in shared:
            q_child = q_edges.get(eid)
            if q_child is not None:
                children[eid] = _par_id(
                    arena,
                    p_child,
                    q_child,
                    shared,
                    depth - 1,
                    memo,
                    stats,
                    union_memo,
                    union_stats,
                )
        else:
            children[eid] = _par_id(
                arena, p_child, nq, shared, depth - 1, memo, stats,
                union_memo, union_stats,
            )
    for eid, q_child in q_edges.items():
        if event_channel[eid] not in shared:
            # X-coverage makes a private-event collision impossible (it
            # would put the channel in X ∩ Y); union defensively anyway.
            merged = _par_id(
                arena, np, q_child, shared, depth - 1, memo, stats,
                union_memo, union_stats,
            )
            existing = children.get(eid)
            children[eid] = (
                union_ids(arena, existing, merged, union_memo, union_stats)
                if existing is not None
                else merged
            )
    flat: List[int] = []
    for eid in sorted(children):
        flat.append(eid)
        flat.append(children[eid])
    result = arena.intern(flat)
    memo[key] = result
    return result


def interleavings(s: Trace, t: Trace) -> Iterator[Trace]:
    """All merges of two traces preserving each one's internal order.

    A reference helper used to cross-check :func:`pad` and
    :func:`parallel` on small inputs.
    """
    if not s:
        yield t
        return
    if not t:
        yield s
        return
    for rest in interleavings(s[1:], t):
        yield (s[0],) + rest
    for rest in interleavings(s, t[1:]):
        yield (t[0],) + rest


def union_all(closures: Iterable[FiniteClosure]) -> FiniteClosure:
    """∪ᵢ Pᵢ — prefix closures are closed under arbitrary unions (§3.1)."""
    state = current_state()
    arena = state.arena
    memo = state.memo("union")
    stats = KERNEL_STATS.memo("union")
    root = 0
    for c in closures:
        root = union_ids(arena, root, node_id(c.root, arena), memo, stats)
    return FiniteClosure.from_node(arena.view(root))


# -- delta queries -----------------------------------------------------------
#
# Successive levels of a §3.3 approximation chain only *grow*, and the
# hash-consed kernel keeps the unchanged regions id-identical across
# levels.  These queries expose that sharing to the fixpoint layers.  Note
# that the operator memo keys above are already "delta-aware" for free:
# they are keyed on interned node ids, so re-applying an operator to a
# grown closure pays only along its fresh frontier — every untouched
# subtree is a memo hit.

def delta_frontier(
    old: FiniteClosure, new: FiniteClosure, cap: int = DELTA_WALK_CAP
) -> Optional[Tuple[ClosureNode, ...]]:
    """The subtrees of ``new`` that are fresh relative to ``old`` — the
    level-to-level change region.  ``None`` when the frontier exceeds
    ``cap`` (treat everything as changed)."""
    return delta_nodes(old.root, new.root, cap)


def delta_depth(
    old: FiniteClosure, new: FiniteClosure, cap: int = DELTA_WALK_CAP
) -> Optional[int]:
    """Minimum length of a trace in ``new ∖ old``; ``None`` when ``new``
    adds nothing; ``0`` when the walk was capped (conservative).

    For monotone chains (``old ⊆ new``) this is exactly the shallowest
    depth at which the closures differ: ``truncate(old, d) == truncate(new,
    d)`` — pointer-identically — for every ``d < delta_depth(old, new)``.
    """
    return _delta_depth_nodes(old.root, new.root, cap)

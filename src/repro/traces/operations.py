"""The paper's operators on prefix closures (§3.1), over the trie kernel.

* ``prefix(a, P)``       — ``(a → P) = {⟨⟩} ∪ {a⌢s | s ∈ P}``;
* ``hide(P, C)``         — ``P \\ C = {s \\ C | s ∈ P}`` (the ``chan`` operator);
* ``pad(P, C, events)``  — ``P ⇑ C``: traces of ``P`` interleaved with
  arbitrary communications on the channels of ``C``;
* ``parallel(P, X, Q, Y)`` — ``P ‖_{X,Y} Q = (P ⇑ (Y−X)) ∩ (Q ⇑ (X−Y))``,
  computed directly by synchronised merge rather than by building the two
  padded sets (which are huge);
* ``after_event(P, a)``  — the derivative ``{s | a⌢s ∈ P}``;
* ``union``/``intersection``/``truncate`` — the lattice operations,
  re-exported from the kernel for symmetry.

Every operator is a recursive function over hash-consed
:class:`~repro.traces.trie.ClosureNode` values with a per-operation memo
table: a subtree shared by many traces is processed **once**, not once
per trace.  Results are prefix-closed by construction (the §3.1
theorems; the property tests in ``tests/traces/test_trie_equivalence.py``
re-verify each operator against the flat-set reference in
:mod:`repro.traces._reference`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Tuple

from repro.errors import SemanticsError
from repro.runtime import faults as _faults
from repro.runtime import governor as _governor
from repro.traces.events import Channel, Event, Trace
from repro.traces.prefix_closure import FiniteClosure
from repro.traces.stats import KERNEL_STATS
from repro.traces.trie import (
    DELTA_WALK_CAP,
    EMPTY_NODE,
    ClosureNode,
    delta_depth as _delta_depth_nodes,
    delta_nodes,
    make_node,
    memo_table,
    truncate_node,
    union_nodes,
)

#: Refuse a fully-interleaved (no shared channel) parallel composition
#: once the product of the component trace counts passes this bound: the
#: result would be a combinatorial interleaving explosion that no sharing
#: can absorb.  Callers that really mean it can pre-truncate the
#: components or pass an explicit small ``depth``.
MAX_DISJOINT_PRODUCT = 250_000

# Memo tables live in the kernel state (per-thread during engine worker
# runs); each public operator resolves its table once and threads it
# through the recursion.


def prefix(a: Event, p: FiniteClosure) -> FiniteClosure:
    """``(a → P)`` — the process that first communicates ``a``, then
    behaves like ``P`` (§3.1).  One node allocation; ``P``'s trie is
    shared, not copied."""
    return FiniteClosure.from_node(make_node({a: p.root}))


def after_event(p: FiniteClosure, a: Event) -> FiniteClosure:
    """``P after a`` — the behaviours of ``P`` once ``a`` has occurred:
    ``{s | a⌢s ∈ P}``.  Empty behaviour (STOP) if ``a`` is impossible.
    A single child lookup on the trie."""
    child = p.root.children.get(a)
    return FiniteClosure.from_node(child if child is not None else EMPTY_NODE)


def union(p: FiniteClosure, q: FiniteClosure) -> FiniteClosure:
    """``P ∪ Q`` (§3.1) — memoised recursive merge."""
    return p.union(q)


def intersection(p: FiniteClosure, q: FiniteClosure) -> FiniteClosure:
    """``P ∩ Q`` (§3.1) — memoised recursive meet."""
    return p.intersection(q)


def truncate(p: FiniteClosure, depth: int) -> FiniteClosure:
    """Traces of length ≤ ``depth``."""
    return p.truncate(depth)


def hide(p: FiniteClosure, channels: Iterable[Channel]) -> FiniteClosure:
    """``P \\ C`` — conceal all communications on channels of ``C``
    (the semantics of ``chan C; P``, §3.1/§3.2).

    Restricting a prefix-closed set is prefix-closed: ``(st)\\C`` always
    begins with ``s\\C``.  On the trie, hiding a child edge unions the
    hidden child's (recursively hidden) subtree into the current node.
    """
    hidden = frozenset(channels)
    if not hidden:
        return p
    with _governor.recursion_guard("hide"):
        memo = memo_table("hide")
        stats = KERNEL_STATS.memo("hide")
        return FiniteClosure.from_node(_hide_node(p.root, hidden, memo, stats))


def _hide_node(
    node: ClosureNode, hidden: FrozenSet[Channel], memo: Dict, stats
) -> ClosureNode:
    if node is EMPTY_NODE:
        return EMPTY_NODE
    key = (node, hidden)
    cached = memo.get(key)
    if cached is not None:
        stats.hits += 1
        return cached
    stats.misses += 1
    _faults.maybe_fail("op.hide")
    _governor.tick()
    visible: Dict[Event, ClosureNode] = {}
    absorbed = EMPTY_NODE
    for event, child in node.items:
        if event.channel in hidden:
            absorbed = union_nodes(absorbed, _hide_node(child, hidden, memo, stats))
        else:
            visible[event] = _hide_node(child, hidden, memo, stats)
    result = union_nodes(make_node(visible), absorbed)
    memo[key] = result
    return result


def pad(
    p: FiniteClosure,
    channels: Iterable[Channel],
    pad_events: Iterable[Event],
    depth: int,
) -> FiniteClosure:
    """``P ⇑ C`` — interleave each trace of ``P`` with arbitrary
    communications on the channels of ``C`` (§3.1: the communications
    "ignored by P").

    The paper's ``⇑`` adjoins *all* messages on the channels of ``C``; a
    finite representation needs an explicit finite alphabet, so callers
    pass ``pad_events`` (every event must lie on a channel of ``C``) and a
    ``depth`` bound on result length.

    .. warning::
       Padding is intrinsically exponential: every one of the ``k``
       padding events may occur at every position of every trace, so the
       result grows as Θ((k+1)^depth) even for a singleton ``P``.  Keep
       ``depth`` small, or prefer :func:`parallel`, which merges without
       materialising the padded sets.
    """
    if depth < 0:
        raise ValueError(f"pad depth must be non-negative, got {depth}")
    pad_set = tuple(sorted(set(pad_events), key=Event.sort_key))
    chan_set = frozenset(channels)
    for e in pad_set:
        if e.channel not in chan_set:
            raise ValueError(f"padding event {e!r} not on a padding channel")
    with _governor.recursion_guard("pad"):
        memo = memo_table("pad")
        stats = KERNEL_STATS.memo("pad")
        return FiniteClosure.from_node(_pad_node(p.root, pad_set, depth, memo, stats))


def _pad_node(
    node: ClosureNode, pad_set: Tuple[Event, ...], depth: int, memo: Dict, stats
) -> ClosureNode:
    if depth <= 0:
        return EMPTY_NODE
    if not pad_set:
        return truncate_node(node, depth)
    key = (node, pad_set, depth)
    cached = memo.get(key)
    if cached is not None:
        stats.hits += 1
        return cached
    stats.misses += 1
    _faults.maybe_fail("op.pad")
    _governor.tick()
    children: Dict[Event, ClosureNode] = {
        event: _pad_node(child, pad_set, depth - 1, memo, stats)
        for event, child in node.items
    }
    # A padding event leaves progress inside P unchanged; if P itself can
    # also perform it, both continuations are possible — union them.
    stalled = _pad_node(node, pad_set, depth - 1, memo, stats)
    for event in pad_set:
        existing = children.get(event)
        children[event] = (
            union_nodes(existing, stalled) if existing is not None else stalled
        )
    result = make_node(children)
    memo[key] = result
    return result


def parallel(
    p: FiniteClosure,
    x: Iterable[Channel],
    q: FiniteClosure,
    y: Iterable[Channel],
    depth: Optional[int] = None,
) -> FiniteClosure:
    """``P ‖_{X,Y} Q`` (§3.1).

    ``X`` must cover every channel ``P`` uses and ``Y`` every channel ``Q``
    uses.  A product trace ``s`` over ``X ∪ Y`` is included iff
    ``s \\ (Y−X) ∈ P`` and ``s \\ (X−Y) ∈ Q``: events on shared channels
    ``X ∩ Y`` need simultaneous participation of both components, events on
    private channels proceed independently.

    Computed by memoised synchronised merge over the two tries —
    equivalent to the paper's ``(P ⇑ (Y−X)) ∩ (Q ⇑ (X−Y))`` but without
    materialising the padded sets (an equivalence the test suite checks on
    small instances).  Each distinct ``(P-subtree, Q-subtree)`` pair is
    merged once, however many interleavings reach it.

    When ``X`` and ``Y`` are disjoint there is no synchronisation at all
    and the result is the full interleaving of the two trace sets, which
    explodes combinatorially; beyond :data:`MAX_DISJOINT_PRODUCT` the
    composition raises :class:`~repro.errors.SemanticsError` rather than
    silently building an enormous intermediate.
    """
    x_set = frozenset(x)
    y_set = frozenset(y)
    missing_p = p.channels() - x_set
    if missing_p:
        raise ValueError(f"left process uses channels outside X: {sorted(missing_p)}")
    missing_q = q.channels() - y_set
    if missing_q:
        raise ValueError(f"right process uses channels outside Y: {sorted(missing_q)}")
    shared = x_set & y_set

    if not shared and len(p) * len(q) > MAX_DISJOINT_PRODUCT:
        raise SemanticsError(
            f"parallel composition with disjoint alphabets X ∩ Y = ∅ would "
            f"interleave {len(p)} × {len(q)} traces — an exponential padding "
            f"blow-up; truncate the components or synchronise on a shared "
            f"channel"
        )

    if depth is None:
        depth = p.depth() + q.depth()

    with _governor.recursion_guard("parallel"):
        memo = memo_table("parallel")
        stats = KERNEL_STATS.memo("parallel")
        return FiniteClosure.from_node(
            _par_node(p.root, q.root, shared, depth, memo, stats)
        )


def _par_node(
    np: ClosureNode,
    nq: ClosureNode,
    shared: FrozenSet[Channel],
    depth: int,
    memo: Dict,
    stats,
) -> ClosureNode:
    if depth <= 0 or (np is EMPTY_NODE and nq is EMPTY_NODE):
        return EMPTY_NODE
    key = (np, nq, shared, depth)
    cached = memo.get(key)
    if cached is not None:
        stats.hits += 1
        return cached
    stats.misses += 1
    _faults.maybe_fail("op.parallel")
    _governor.tick()
    children: Dict[Event, ClosureNode] = {}
    for event, p_child in np.items:
        if event.channel in shared:
            q_child = nq.children.get(event)
            if q_child is not None:
                children[event] = _par_node(
                    p_child, q_child, shared, depth - 1, memo, stats
                )
        else:
            children[event] = _par_node(p_child, nq, shared, depth - 1, memo, stats)
    for event, q_child in nq.items:
        if event.channel not in shared:
            # X-coverage makes a private-event collision impossible (it
            # would put the channel in X ∩ Y); union defensively anyway.
            existing = children.get(event)
            merged = _par_node(np, q_child, shared, depth - 1, memo, stats)
            children[event] = (
                union_nodes(existing, merged) if existing is not None else merged
            )
    result = make_node(children)
    memo[key] = result
    return result


def interleavings(s: Trace, t: Trace) -> Iterator[Trace]:
    """All merges of two traces preserving each one's internal order.

    A reference helper used to cross-check :func:`pad` and
    :func:`parallel` on small inputs.
    """
    if not s:
        yield t
        return
    if not t:
        yield s
        return
    for rest in interleavings(s[1:], t):
        yield (s[0],) + rest
    for rest in interleavings(s, t[1:]):
        yield (t[0],) + rest


def union_all(closures: Iterable[FiniteClosure]) -> FiniteClosure:
    """∪ᵢ Pᵢ — prefix closures are closed under arbitrary unions (§3.1)."""
    root = EMPTY_NODE
    for c in closures:
        root = union_nodes(root, c.root)
    return FiniteClosure.from_node(root)


# -- delta queries -----------------------------------------------------------
#
# Successive levels of a §3.3 approximation chain only *grow*, and the
# hash-consed kernel keeps the unchanged regions pointer-identical across
# levels.  These queries expose that sharing to the fixpoint layers.  Note
# that the operator memo keys above are already "delta-aware" for free:
# they are keyed on interned nodes, so re-applying an operator to a grown
# closure pays only along its fresh frontier — every untouched subtree is
# a memo hit.

def delta_frontier(
    old: FiniteClosure, new: FiniteClosure, cap: int = DELTA_WALK_CAP
) -> Optional[Tuple[ClosureNode, ...]]:
    """The subtrees of ``new`` that are fresh relative to ``old`` — the
    level-to-level change region.  ``None`` when the frontier exceeds
    ``cap`` (treat everything as changed)."""
    return delta_nodes(old.root, new.root, cap)


def delta_depth(
    old: FiniteClosure, new: FiniteClosure, cap: int = DELTA_WALK_CAP
) -> Optional[int]:
    """Minimum length of a trace in ``new ∖ old``; ``None`` when ``new``
    adds nothing; ``0`` when the walk was capped (conservative).

    For monotone chains (``old ⊆ new``) this is exactly the shallowest
    depth at which the closures differ: ``truncate(old, d) == truncate(new,
    d)`` — pointer-identically — for every ``d < delta_depth(old, new)``.
    """
    return _delta_depth_nodes(old.root, new.root, cap)

"""Resource-governed execution: budgets, deadlines, and checkpoints.

The paper's checkers are sound only on the bounded approximations that
can actually be computed (§3's chain ``a₀ ⊆ a₁ ⊆ …``).  This module
makes the bound a first-class, *enforced* object rather than an implicit
property of whatever finishes before the operator crashes:

* a :class:`Budget` declares limits — wall-clock deadline, interned-node
  budget, explored-state budget;
* a :class:`Governor` enforces one budget over one computation, fed by
  cheap cooperative hooks threaded through the trie interner
  (:func:`note_node`), the operational explorer (:func:`note_state`), and
  every operator/denoter recursion (:func:`tick`);
* when a limit trips, the governor raises
  :class:`~repro.errors.BudgetExceeded` carrying a :class:`Checkpoint` —
  the deepest *completed* approximation level, verified-trace count, and
  (where the caller recorded one) a resume payload — so ``P sat R``
  degrades to "verified to depth k, no counterexample" instead of dying.

The governor is installed ambiently with :func:`activate` (a context
manager) so the hash-consed interner, which is process-global, can report
without every caller threading a parameter through.  With no governor
active every hook is a single ``is None`` check — the ungoverned fast
path stays fast.

Exception safety is the design invariant that makes a trip *sound*: memo
tables and the interner only ever store **completed** results, so a
computation aborted at any trigger point leaves them consistent and a
re-run (or a resume) computes exactly what an undisturbed run would have
— the property :mod:`repro.runtime.faults` exists to prove.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.errors import BudgetExceeded

#: Wall-clock reads are comparatively expensive; the governor checks the
#: deadline only every this-many cooperative events.
DEADLINE_STRIDE = 256


class Checkpoint:
    """What a governed computation had soundly completed when it stopped.

    ``completed_depth`` is the deepest *fully finished* level — an
    approximation level of the §3.3 chain, a BFS level of the explorer,
    or a verified trace depth of the sat checker — ``None`` when not even
    level 0 finished.  ``payload`` optionally carries in-process resume
    data (e.g. the fixpoint chain's completed levels or the explorer's
    frontier); its shape is owned by whichever subsystem recorded it.
    """

    __slots__ = (
        "phase",
        "completed_depth",
        "traces_verified",
        "states_explored",
        "nodes_interned",
        "elapsed",
        "payload",
    )

    def __init__(
        self,
        phase: str = "",
        completed_depth: Optional[int] = None,
        traces_verified: int = 0,
        states_explored: int = 0,
        nodes_interned: int = 0,
        elapsed: float = 0.0,
        payload: Any = None,
    ) -> None:
        self.phase = phase
        self.completed_depth = completed_depth
        self.traces_verified = traces_verified
        self.states_explored = states_explored
        self.nodes_interned = nodes_interned
        self.elapsed = elapsed
        self.payload = payload

    def describe(self) -> str:
        """One human line: what was verified before the budget ran out."""
        parts = []
        if self.completed_depth is not None:
            parts.append(f"verified to depth {self.completed_depth}")
        else:
            parts.append("no depth completed")
        if self.traces_verified:
            parts.append(f"{self.traces_verified} traces checked")
        if self.states_explored:
            parts.append(f"{self.states_explored} states explored")
        if self.nodes_interned:
            parts.append(f"{self.nodes_interned} nodes interned")
        parts.append(f"{self.elapsed:.2f}s elapsed")
        slots = self.resume_slots()
        if slots:
            parts.append(f"{len(slots)} resume slot(s) persisted")
        prefix = f"{self.phase}: " if self.phase else ""
        return prefix + ", ".join(parts)

    def resume_slots(self) -> Tuple[str, ...]:
        """Snapshot-cache slots this run completed and persisted — what a
        re-invocation with the same cache directory warm-starts from."""
        if isinstance(self.payload, dict):
            slots = self.payload.get("resume_slots", ())
            return tuple(slots) if slots else ()
        return ()

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "phase": self.phase,
            "completed_depth": self.completed_depth,
            "traces_verified": self.traces_verified,
            "states_explored": self.states_explored,
            "nodes_interned": self.nodes_interned,
            "elapsed_s": round(self.elapsed, 4),
        }
        slots = self.resume_slots()
        if slots:
            data["resume_slots"] = list(slots)
        return data

    def __repr__(self) -> str:
        return f"Checkpoint({self.describe()})"


class Budget:
    """Immutable resource limits; ``None`` means unlimited.

    ``deadline`` is wall-clock seconds from :meth:`start`; ``max_nodes``
    bounds *newly interned* trie nodes (the kernel's real storage cost);
    ``max_states`` bounds configurations touched by the operational
    explorer across the governed computation.
    """

    __slots__ = ("deadline", "max_nodes", "max_states")

    def __init__(
        self,
        deadline: Optional[float] = None,
        max_nodes: Optional[int] = None,
        max_states: Optional[int] = None,
    ) -> None:
        if deadline is not None and deadline < 0:
            raise ValueError("deadline must be non-negative")
        if max_nodes is not None and max_nodes < 0:
            raise ValueError("max_nodes must be non-negative")
        if max_states is not None and max_states < 0:
            raise ValueError("max_states must be non-negative")
        self.deadline = deadline
        self.max_nodes = max_nodes
        self.max_states = max_states

    @property
    def unlimited(self) -> bool:
        return (
            self.deadline is None
            and self.max_nodes is None
            and self.max_states is None
        )

    def as_spec(self) -> Dict[str, object]:
        """A JSON-compatible description, for the serve wire protocol."""
        return {
            "deadline": self.deadline,
            "max_nodes": self.max_nodes,
            "max_states": self.max_states,
        }

    @classmethod
    def from_spec(cls, spec: Optional[Dict[str, Any]]) -> Optional["Budget"]:
        """Rebuild a budget from :meth:`as_spec` output (``None``/empty →
        no budget).  Raises :class:`ValueError` on negative limits, like
        the constructor — a request must not smuggle in a bad budget."""
        if not spec:
            return None
        deadline = spec.get("deadline")
        max_nodes = spec.get("max_nodes")
        max_states = spec.get("max_states")
        if deadline is None and max_nodes is None and max_states is None:
            return None
        return cls(
            deadline=None if deadline is None else float(deadline),
            max_nodes=None if max_nodes is None else int(max_nodes),
            max_states=None if max_states is None else int(max_states),
        )

    def start(self) -> "Governor":
        """A fresh governor enforcing this budget, clock started now."""
        return Governor(self)

    def __repr__(self) -> str:
        return (
            f"Budget(deadline={self.deadline}, max_nodes={self.max_nodes}, "
            f"max_states={self.max_states})"
        )


class Governor:
    """Enforces one :class:`Budget` over one computation.

    Counters accumulate across the whole governed region (several
    denotations, a fixpoint chain, an exploration, a sat walk); subsystems
    call :meth:`record_progress` as they complete sound units of work so
    that the checkpoint attached to a trip reflects the *latest completed*
    state, not the interrupted one.
    """

    __slots__ = (
        "budget",
        "started",
        "nodes_interned",
        "states_touched",
        "ticks",
        "exhausted",
        "_phase",
        "_completed_depth",
        "_traces_verified",
        "_payload",
    )

    def __init__(self, budget: Budget) -> None:
        self.budget = budget
        self.started = time.monotonic()
        self.nodes_interned = 0
        self.states_touched = 0
        self.ticks = 0
        self.exhausted = False
        self._phase = ""
        self._completed_depth: Optional[int] = None
        self._traces_verified = 0
        self._payload: Any = None

    # -- cooperative hooks --------------------------------------------------

    def note_node(self) -> None:
        """One freshly interned trie node (called on interner misses)."""
        self.nodes_interned += 1
        limit = self.budget.max_nodes
        if limit is not None and self.nodes_interned > limit:
            self.trip("interned-node", limit)
        self._stride_deadline()

    def note_nodes(self, n: int) -> None:
        """``n`` freshly interned trie nodes at once (the snapshot
        decoder's bulk path).  Trips exactly when ``n`` individual
        :meth:`note_node` calls would — but *before* the caller appends
        anything, so a trip admits none of the batch."""
        self.nodes_interned += n
        limit = self.budget.max_nodes
        if limit is not None and self.nodes_interned > limit:
            self.trip("interned-node", limit)
        self._stride_deadline()

    def note_state(self) -> None:
        """One configuration touched by the operational explorer."""
        self.states_touched += 1
        limit = self.budget.max_states
        if limit is not None and self.states_touched > limit:
            self.trip("explored-state", limit)
        self._stride_deadline()

    def tick(self) -> None:
        """One unit of cooperative work (operator recursion, trie walk)."""
        self._stride_deadline()

    def _stride_deadline(self) -> None:
        self.ticks += 1
        if self.ticks % DEADLINE_STRIDE == 0:
            self.check_deadline()

    def check_deadline(self) -> None:
        """Trip immediately if the wall-clock deadline has passed."""
        deadline = self.budget.deadline
        if deadline is not None and self.elapsed() > deadline:
            self.trip("wall-clock", f"{deadline}s")

    # -- state --------------------------------------------------------------

    def elapsed(self) -> float:
        return time.monotonic() - self.started

    def expired(self) -> bool:
        """Non-raising deadline probe (the battery uses it to skip work)."""
        deadline = self.budget.deadline
        return self.exhausted or (
            deadline is not None and self.elapsed() > deadline
        )

    def record_progress(
        self,
        phase: Optional[str] = None,
        completed_depth: Optional[int] = None,
        traces_verified: Optional[int] = None,
        payload: Any = None,
    ) -> None:
        """Note a *completed* sound unit of work; a later trip's checkpoint
        reports the most recent record."""
        if phase is not None:
            self._phase = phase
        if completed_depth is not None:
            self._completed_depth = completed_depth
        if traces_verified is not None:
            self._traces_verified = traces_verified
        if payload is not None:
            self._payload = payload

    def checkpoint(self, **overrides: Any) -> Checkpoint:
        """The current sound-progress snapshot (recorded progress plus live
        counters), with optional field overrides."""
        fields: Dict[str, Any] = {
            "phase": self._phase,
            "completed_depth": self._completed_depth,
            "traces_verified": self._traces_verified,
            "states_explored": self.states_touched,
            "nodes_interned": self.nodes_interned,
            "elapsed": self.elapsed(),
            "payload": self._payload,
        }
        fields.update(overrides)
        return Checkpoint(**fields)

    def trip(self, resource: str, limit: object) -> None:
        """Stop now: raise :class:`BudgetExceeded` with the checkpoint."""
        self.exhausted = True
        raise BudgetExceeded(resource, limit, self.checkpoint())

    def counters(self) -> Dict[str, object]:
        """Governor counters for ``repro stats`` / battery reports."""
        return {
            "elapsed_s": round(self.elapsed(), 4),
            "nodes_interned": self.nodes_interned,
            "states_touched": self.states_touched,
            "ticks": self.ticks,
            "exhausted": self.exhausted,
            "budget": {
                "deadline_s": self.budget.deadline,
                "max_nodes": self.budget.max_nodes,
                "max_states": self.budget.max_states,
            },
        }

    def summary(self) -> str:
        """Human-readable counter block (appended to ``repro stats``)."""
        budget = self.budget
        limits = ", ".join(
            f"{name}={value}"
            for name, value in (
                ("deadline", f"{budget.deadline}s" if budget.deadline is not None else None),
                ("max-nodes", budget.max_nodes),
                ("max-states", budget.max_states),
            )
            if value is not None
        )
        lines = [
            "resource governor",
            f"  budget: {limits or 'unlimited'}",
            f"  spent: {self.elapsed():.3f}s, {self.nodes_interned} nodes "
            f"interned, {self.states_touched} states touched, "
            f"{self.ticks} cooperative checks",
        ]
        if self.exhausted:
            lines.append("  status: EXHAUSTED (partial results only)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# ambient governor
# ---------------------------------------------------------------------------

# Deliberately a plain module global, *not* a thread-local: the
# denotation engine's worker threads (``DenotationEngine(jobs=N)``) must
# count nodes against — and be tripped by — the same budget as the
# thread that activated it.  Unsynchronised counter increments can race,
# but a race only *under*-counts slightly (budgets are resource limits,
# not exact quotas), and a budget trip observed in any worker thread is
# sound: it propagates to the parent as the original BudgetExceeded.
_ACTIVE: Optional[Governor] = None


def current() -> Optional[Governor]:
    """The ambient governor, or ``None`` when execution is ungoverned."""
    return _ACTIVE


@contextmanager
def activate(governor: Optional[Governor]) -> Iterator[Optional[Governor]]:
    """Install ``governor`` as the ambient governor for the ``with`` body.

    ``activate(None)`` is a no-op, so call sites can thread an optional
    governor without branching.  Nesting replaces the outer governor for
    the inner region and restores it afterwards.

    The installed governor is visible to *all* threads, including engine
    worker threads spawned inside the ``with`` body — that sharing is
    what makes budget trips sound under ``--jobs > 1``.
    """
    global _ACTIVE
    if governor is None:
        yield None
        return
    previous = _ACTIVE
    _ACTIVE = governor
    try:
        yield governor
    finally:
        _ACTIVE = previous


@contextmanager
def suspended() -> Iterator[None]:
    """Run the body with no ambient governor, restoring it afterwards.

    Cache *persistence* must never spend the budget of the computation
    it is saving: a governed run that already tripped still writes its
    checkpoint slots, and merging another process's slots into the file
    re-interns nodes that must not trip the (already spent) budget.
    Like :func:`activate`, the change is visible to all threads — only
    suspend around regions that spawn no governed workers.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    try:
        yield
    finally:
        _ACTIVE = previous


def note_node() -> None:
    """Hot-path hook for the trie interner (no-op when ungoverned)."""
    g = _ACTIVE
    if g is not None:
        g.note_node()


def note_nodes(n: int) -> None:
    """Bulk hook for the snapshot decoder (no-op when ungoverned)."""
    g = _ACTIVE
    if g is not None and n:
        g.note_nodes(n)


def note_state() -> None:
    """Hot-path hook for the operational explorer."""
    g = _ACTIVE
    if g is not None:
        g.note_state()


def tick() -> None:
    """Hot-path hook for operator/denoter recursions and trie walks."""
    g = _ACTIVE
    if g is not None:
        g.tick()


@contextmanager
def recursion_guard(phase: str) -> Iterator[None]:
    """Convert an escaped :class:`RecursionError` into a structured
    :class:`BudgetExceeded` at a *non-recursive* entry point.

    The interpreter's recursion limit is treated as one more resource
    budget: deep tries and deep process terms stop with "recursion depth
    budget of N exceeded" plus the governor's checkpoint instead of an
    unbounded traceback.  By the time the except clause runs the stack has
    unwound to the entry frame, so building the replacement is safe.
    """
    try:
        yield
    except RecursionError:
        limit = sys.getrecursionlimit()
        g = _ACTIVE
        checkpoint = g.checkpoint(phase=phase) if g is not None else Checkpoint(phase=phase)
        raise BudgetExceeded("recursion-depth", limit, checkpoint) from None

"""Deterministic fault injection for exception-safety testing.

The governor (:mod:`repro.runtime.governor`) may abort a computation at
any cooperative trigger point.  That is only *sound* if an abort can
never corrupt the shared mutable state — the hash-consed interner and the
operator memo tables — i.e. if re-running the aborted call from scratch
still computes exactly what the flat-set oracle
(:mod:`repro.traces._reference`) says it should.

This module makes aborts reproducible on demand: named **trigger sites**
are compiled into the kernel's miss paths (the same places the governor
hooks), and a :class:`FaultPlan` deterministically raises
:class:`FaultInjected` at the Nth visit of a chosen site.  The hypothesis
suite in ``tests/runtime/test_faults.py`` then proves the invariant: for
*any* site and *any* trigger count, inject → abort → clean re-run equals
the oracle.

With no plan installed each site is a single ``is None`` check, so the
instrumentation costs nothing in production.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

#: Every trigger site compiled into the library, for documentation and
#: for tests that want to quantify over all of them.
SITES = (
    "trie.intern",
    "trie.truncate",
    "op.hide",
    "op.pad",
    "op.parallel",
    "denote.unfold",
    "explorer.step",
    "fixpoint.step",
    # serving layer (PR 7): the supervisor's dispatch path, the worker's
    # request loop (converted to a hard ``os._exit`` so it simulates a
    # SIGKILL-grade crash, not an exception), and the snapshot cache's
    # atomic-write path (abort between temp-file write and rename).
    "serve.dispatch",
    "serve.worker_exit",
    "snapshot.write",
    # operational warm restarts (PR 10): the explorer's frontier
    # persistence path.  ``frontier_save`` fires *before* any slot is
    # written (an abort must leave only previously completed levels on
    # disk); ``frontier_load`` fires before a warm restart consults the
    # cache (a crash while warming must degrade to a cold, correct run).
    "explorer.frontier_save",
    "explorer.frontier_load",
)


class FaultInjected(Exception):
    """A deliberately injected failure.

    Not a :class:`~repro.errors.ReproError` on purpose: the harness
    simulates *crashes*, and library code catching its own error hierarchy
    must never swallow one.
    """

    def __init__(self, site: str, visit: int) -> None:
        super().__init__(f"injected fault at {site!r} (visit {visit})")
        self.site = site
        self.visit = visit


class FaultPlan:
    """Fire :class:`FaultInjected` at the ``after``-th visit of ``site``.

    ``site=None`` matches every site (the trigger counts total visits);
    ``after=None`` never fires — observation mode, used to discover how
    many trigger points a workload passes so tests can sample a valid
    trigger index.  ``counts`` records per-site visit totals either way.
    """

    __slots__ = ("site", "after", "counts", "total", "fired")

    def __init__(self, site: Optional[str] = None, after: Optional[int] = 1) -> None:
        if after is not None and after < 1:
            raise ValueError("after must be >= 1 (or None for observation)")
        self.site = site
        self.after = after
        self.counts: Dict[str, int] = {}
        self.total = 0
        self.fired = False

    def visit(self, site: str) -> None:
        self.total += 1
        count = self.counts.get(site, 0) + 1
        self.counts[site] = count
        if self.after is None or self.fired:
            return
        matched = self.total if self.site is None else count
        if (self.site is None or site == self.site) and matched >= self.after:
            self.fired = True
            raise FaultInjected(site, matched)


def parse_plan(spec: str) -> FaultPlan:
    """Build a plan from a ``site:after`` spec string (``after`` defaults
    to 1) — the form ``repro serve --inject`` and the chaos harness use
    to arm a fault in a freshly spawned process."""
    site, _, after = spec.partition(":")
    site = site.strip()
    if site not in SITES:
        raise ValueError(f"unknown fault site {site!r}; known: {', '.join(SITES)}")
    return FaultPlan(site=site, after=int(after) if after.strip() else 1)


_PLAN: Optional[FaultPlan] = None


def maybe_fail(site: str) -> None:
    """Trigger-site hook; a no-op unless a plan is installed."""
    plan = _PLAN
    if plan is not None:
        plan.visit(site)


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the ``with`` body (plans do not nest)."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = previous


@contextmanager
def observe() -> Iterator[FaultPlan]:
    """Count trigger-site visits without ever firing."""
    with inject(FaultPlan(after=None)) as plan:
        yield plan

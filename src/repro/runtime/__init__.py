"""Resource-governed execution (budgets, deadlines, partial results).

See :mod:`repro.runtime.governor` for the budget/checkpoint machinery and
:mod:`repro.runtime.faults` for the deterministic fault-injection harness
that proves aborts are exception-safe.  ``docs/robustness.md`` documents
the budget semantics and the partial-result guarantees.
"""

from repro.errors import BudgetExceeded
from repro.runtime import faults
from repro.runtime.governor import (
    Budget,
    Checkpoint,
    Governor,
    activate,
    current,
    recursion_guard,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "Checkpoint",
    "Governor",
    "activate",
    "current",
    "faults",
    "recursion_guard",
]

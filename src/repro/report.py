"""One-shot reproduction report: every paper claim, re-measured.

:func:`reproduction_report` runs the experiment battery (E1–E10 of
EXPERIMENTS.md) and renders a markdown summary of claim vs. measured —
the programmatic counterpart of ``pytest benchmarks/``.  Exposed on the
CLI as ``python -m repro reproduce``.

``quick=True`` shrinks bounds (depth, trials) so the whole battery runs
in seconds; the default bounds match EXPERIMENTS.md.

Under an ambient :class:`~repro.runtime.governor.Governor` the battery
degrades instead of dying: an experiment that trips its budget is
reported as ``PARTIAL`` with the checkpoint's "verified to depth k"
line, and once the governor is exhausted the remaining experiments are
skipped rather than started against a spent budget.
"""

from __future__ import annotations

import time
from typing import Callable, List, NamedTuple, Optional, Tuple

from repro.errors import EXIT_BUDGET, BudgetExceeded
from repro.runtime import governor as _governor


class ExperimentOutcome(NamedTuple):
    experiment: str
    claim: str
    measured: str
    ok: bool
    seconds: float
    partial: bool = False


def _run(
    experiment: str, claim: str, body: Callable[[], "tuple[str, bool]"]
) -> ExperimentOutcome:
    started = time.perf_counter()
    partial = False
    try:
        measured, ok = body()
    except BudgetExceeded as exc:  # a budget trip is a partial result
        checkpoint = exc.checkpoint
        detail = checkpoint.describe() if checkpoint is not None else str(exc)
        measured, ok, partial = f"PARTIAL: {detail}", False, True
    except Exception as exc:  # a crash is a failed reproduction, not a crash
        measured, ok = f"ERROR: {exc}", False
    return ExperimentOutcome(
        experiment, claim, measured, ok, time.perf_counter() - started, partial
    )


def _skipped(experiment: str, claim: str) -> ExperimentOutcome:
    return ExperimentOutcome(
        experiment, claim, "SKIPPED (budget exhausted)", False, 0.0, True
    )


def render_partial(exc: BudgetExceeded) -> str:
    """One structured stderr block for a CLI command cut short by its
    budget: what ran out, and what was soundly established before it did."""
    lines = [f"budget exhausted: {exc.resource} limit of {exc.limit} reached"]
    checkpoint = exc.checkpoint
    if checkpoint is not None:
        lines.append(f"partial result: {checkpoint.describe()}")
        if checkpoint.resume_slots():
            # Both engines persist deterministic checkpoint slots now
            # (fix:/frontier:/forall: vocabularies) — tell the user the
            # trip is resumable, not just how far it got.
            lines.append(
                "resume: re-invoke with the same cache directory to "
                "continue from the persisted checkpoints"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# shared CLI/daemon verdict rendering
# ---------------------------------------------------------------------------
#
# ``repro check``/``repro traces`` and the ``repro serve`` worker render
# through the same functions, so a verdict computed remotely is
# *byte-identical* to the one a fresh single-process invocation prints —
# the property the serve chaos tests assert after crash/retry cycles.


def format_traces(closure) -> str:
    """The indented ``⟨…⟩`` trace listing, one line per trace."""
    lines = []
    for trace in closure:
        inner = ", ".join(repr(e) for e in trace)
        lines.append(f"  ⟨{inner}⟩")
    return "\n".join(lines)


def check_outcome(
    name: str,
    spec: str,
    result=None,
    trip: "Optional[BudgetExceeded]" = None,
    depth: "Optional[int]" = None,
) -> "Tuple[str, str, int]":
    """Render one ``P sat R`` verdict as ``(stdout, stderr, exit_code)``.

    Pass ``result`` (a :class:`~repro.sat.checker.SatResult`) for a
    completed check, or ``trip`` for a budget-interrupted one; ``depth``
    is the configured bound, used when the result does not carry a
    verified depth of its own.
    """
    if trip is not None:
        return (
            f"PARTIAL: {name} sat {spec} — no counterexample found",
            render_partial(trip),
            EXIT_BUDGET,
        )
    if result.holds:
        depth_note = (
            f"depth ≤ {result.verified_depth}"
            if result.verified_depth is not None
            else f"depth ≤ {depth}"
        )
        return (
            f"HOLDS: {name} sat {spec}  "
            f"({result.traces_checked} traces, {depth_note})",
            "",
            0,
        )
    return (
        f"VIOLATED: {name} sat {spec}\n{result.counterexample.describe()}",
        "",
        1,
    )


def traces_outcome(result, depth: int, engine: str) -> "Tuple[str, str, int]":
    """Render a (possibly partial) trace enumeration as
    ``(stdout, stderr, exit_code)``; ``result`` is a
    :class:`~repro.sat.checker.PartialTraces`."""
    if result.closure is None:
        return (
            "",
            "budget exhausted before even depth 0 completed; no traces "
            "to report",
            EXIT_BUDGET,
        )
    listing = format_traces(result.closure)
    if result.complete:
        head = (
            f"{len(result.closure)} traces (depth ≤ {depth}, "
            f"engine {engine}):"
        )
        return (f"{head}\n{listing}" if listing else head, "", 0)
    head = (
        f"PARTIAL: {len(result.closure)} traces (verified to depth "
        f"{result.verified_depth} of {depth}, engine {engine}):"
    )
    return (
        f"{head}\n{listing}" if listing else head,
        f"budget exhausted at depth {result.verified_depth}; traces up to "
        f"that length are exact",
        EXIT_BUDGET,
    )


def run_experiments(quick: bool = False) -> List[ExperimentOutcome]:
    """Run the battery; returns one outcome per experiment row."""
    from repro.process.ast import Choice, Name, STOP
    from repro.process.parser import parse_process
    from repro.semantics.config import SemanticsConfig
    from repro.semantics.denotation import denote
    from repro.semantics.equivalence import trace_equivalent
    from repro.semantics.fixpoint import ApproximationChain
    from repro.operational.explorer import explore_traces
    from repro.operational.step import OperationalSemantics
    from repro.soundness.harness import run_all_rule_experiments
    from repro.systems import copier, multiplier, protocol

    depth = 3 if quick else 4
    trials = 40 if quick else 200
    cfg = SemanticsConfig(depth=depth, sample=2)
    specs: List[tuple] = []

    def e1() -> "tuple[str, bool]":
        defs = protocol.definitions()
        env = protocol.environment()
        denotational = denote(Name("protocol"), defs, env=env, config=cfg)
        semantics = OperationalSemantics(defs, env, sample=cfg.sample)
        operational = explore_traces(Name("protocol"), semantics, cfg.depth)
        same = denotational == operational
        return (
            f"protocol: {len(denotational)} traces, denotational "
            f"{'==' if same else '!='} operational",
            same,
        )

    specs.append(("E1", "§1.2–1.3 trace sets; denotational = operational", e1))

    def e2() -> "tuple[str, bool]":
        copier_results = copier.check_all(depth=depth + 1, sample=2)
        mult_results = multiplier.check_all(depth=depth, sample=2)
        all_hold = all(r.holds for r in copier_results.values()) and all(
            r.holds for r in mult_results.values()
        )
        return (
            f"copier claims {len(copier_results)}✓, multiplier claims "
            f"{len(mult_results)}✓",
            all_hold,
        )

    specs.append(("E2", "every §2 sat claim holds", e2))

    def e3() -> "tuple[str, bool]":
        report = protocol.check_table1_proof()
        ok = repr(report.conclusion) == "sender sat f(wire) <= input"
        return (
            f"{report.nodes} nodes, {len(report.discharges)} discharges",
            ok,
        )

    specs.append(("E3", "Table 1 checks line by line", e3))

    def e4_e5() -> "tuple[str, bool]":
        reports = protocol.prove_all()
        ok = set(reports) == {"sender", "q", "receiver", "protocol"}
        sizes = ", ".join(f"{k}:{v.nodes}" for k, v in sorted(reports.items()))
        return sizes, ok

    specs.append(("E4+E5", "receiver exercise and protocol theorem proved", e4_e5))

    def e6() -> "tuple[str, bool]":
        from repro.traces.events import event
        from repro.traces.operations import prefix
        from repro.traces.prefix_closure import FiniteClosure

        p = FiniteClosure.from_traces(
            [tuple(event("a", i) for i in range(depth))]
        )
        lifted = prefix(event("z", 0), p)
        return ("prefix closure preserved", lifted.is_prefix_closed())

    specs.append(("E6", "§3.1 closure theorems", e6))

    def e7() -> "tuple[str, bool]":
        from repro.semantics.engine import DenotationEngine
        from repro.systems import philosophers

        chain = ApproximationChain(copier.definitions(), copier.environment(), cfg)
        steps = chain.run_until_stable()
        # copier's network hides ``wire``, so the chain iterates at its
        # internal solve depth (hide_depth) — the depth+1 bound applies
        # to that depth, not the requested one.
        ok = steps <= chain.solve_depth + 1 and chain.is_monotone()

        # The dependency-graph engine must reproduce the monolithic chain
        # exactly — pointer-identical roots per definition — across the
        # full systems suite, including array-indexed definitions
        # (philosophers: dict-valued entries checked per subscript) and
        # chan-hidden bodies (protocol).  Philosophers references phil[2]
        # and fork[2], so the cross-check needs sample >= 3; depth is
        # bounded to keep the report battery quick.
        xcfg = SemanticsConfig(depth=min(cfg.depth, 4), sample=3)
        suites = [
            ("copier", copier.definitions(), copier.environment()),
            ("protocol", protocol.definitions(), protocol.environment()),
            (
                "philosophers",
                philosophers.definitions(),
                philosophers.environment(),
            ),
        ]
        agreed = True
        for label, defs, env in suites:
            use = cfg if label == "copier" else xcfg
            sys_chain = ApproximationChain(defs, env, use)
            sys_chain.run_until_stable()
            engine = DenotationEngine(defs, env, use)
            for name, closure in sys_chain.fixpoint().items():
                if isinstance(closure, dict):
                    agreed = agreed and all(
                        engine.closure_for(name, sub).root is sub_closure.root
                        for sub, sub_closure in closure.items()
                    )
                else:
                    agreed = agreed and (
                        engine.closure_for(name).root is closure.root
                    )
        ok = ok and agreed
        return (
            f"stabilised in {steps} steps (depth {cfg.depth}); "
            f"engine roots {'identical' if agreed else 'DIVERGED'} "
            f"on {len(suites)} systems",
            ok,
        )

    specs.append(("E7", "fixpoint chain converges monotonically", e7))

    def e8() -> "tuple[str, bool]":
        results = run_all_rule_experiments(trials=trials, seed=2026)
        violations = sum(r.violations for r in results)
        vacuous = [r.rule for r in results if r.premises_held == 0]
        ok = violations == 0 and not vacuous
        return (f"{len(results)} rules, {violations} violations", ok)

    specs.append(("E8", "§3.4 validity: zero violations", e8))

    def e9() -> "tuple[str, bool]":
        p = parse_process("a!0 -> b!1 -> STOP")
        identity = trace_equivalent(Choice(STOP, p), p, config=cfg)
        from repro.semantics.failures import failures_equivalent

        distinguished = not failures_equivalent(Choice(STOP, p), p)
        return (
            f"STOP|P = P in traces: {identity}; ≠ in failures: {distinguished}",
            identity and distinguished,
        )

    specs.append(("E9", "§4 limitations (and the failures fix)", e9))

    def e10() -> "tuple[str, bool]":
        from repro.traces.events import channel, trace
        from repro.traces.histories import ch

        s = trace(
            ("input", 27), ("wire", 27), ("input", 0), ("wire", 0), ("input", 3)
        )
        h = ch(s)
        ok = h(channel("input")) == (27, 0, 3) and h(channel("wire")) == (27, 0)
        return ("ch example matches §3.3", ok)

    specs.append(("E10", "the worked ch(s) example", e10))

    outcomes: List[ExperimentOutcome] = []
    governor = _governor.current()
    for name, claim, body in specs:
        if governor is not None and governor.expired():
            # Don't start an experiment against a spent budget: report it
            # as skipped so the table still accounts for every row.
            outcomes.append(_skipped(name, claim))
            continue
        outcomes.append(_run(name, claim, body))
    return outcomes


def render_report(outcomes: List[ExperimentOutcome], quick: bool = False) -> str:
    """Render battery outcomes as a markdown table."""
    lines = [
        "# Reproduction report",
        "",
        f"mode: {'quick' if quick else 'full'}",
        "",
        "| exp | claim | measured | status | time |",
        "|-----|-------|----------|--------|------|",
    ]
    for outcome in outcomes:
        if outcome.ok:
            status = "✓"
        elif outcome.partial:
            status = "◐ PARTIAL"
        else:
            status = "✗ FAILED"
        lines.append(
            f"| {outcome.experiment} | {outcome.claim} | {outcome.measured} "
            f"| {status} | {outcome.seconds:.1f}s |"
        )
    failed = sum(1 for o in outcomes if not o.ok and not o.partial)
    partial = sum(1 for o in outcomes if o.partial)
    reproduced = len(outcomes) - failed - partial
    summary = f"**{reproduced}/{len(outcomes)} experiments reproduce"
    if partial:
        summary += f" ({partial} partial under the active budget)"
    summary += ".**"
    lines.append("")
    lines.append(summary)
    return "\n".join(lines)


def reproduction_report(quick: bool = False) -> str:
    """The battery's outcomes rendered as a markdown table."""
    return render_report(run_experiments(quick=quick), quick=quick)

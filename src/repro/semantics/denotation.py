"""The semantic function ⟦·⟧ρ as bounded trace enumeration (paper §3.2).

Each process expression is mapped onto the prefix closure of its possible
traces, truncated at ``config.depth``:

* ``⟦STOP⟧ = {⟨⟩}``;
* ``⟦c!e → P⟧ = (c.ρ⟦e⟧ → ⟦P⟧)``;
* ``⟦c?x:M → P⟧ = ∪_{v∈M} (c.v → ⟦P⟧ρ[v/x])`` — with ``M`` sampled when
  infinite;
* ``⟦P | Q⟧ = ⟦P⟧ ∪ ⟦Q⟧``;
* ``⟦P ‖ Q⟧`` — synchronised merge over the inferred or annotated
  alphabets;
* ``⟦chan L; P⟧ = ⟦P⟧ \\ L`` — with the body explored to
  ``config.hide_depth``;
* names and array references unfold their defining equations; guardedness
  (validated by :class:`~repro.process.definitions.DefinitionList`)
  guarantees the unfolding terminates at the depth bound.  Unfolding
  computes exactly ``∪ᵢ aᵢ`` restricted to the depth bound — the least
  fixed point of §3.3 — which the test suite confirms against the explicit
  :class:`~repro.semantics.fixpoint.ApproximationChain`.

Definition bodies are denoted in the *base* environment (plus the array
parameter, for arrays): equations are closed except for global bindings
such as message types ``M`` and host functions, which makes memoisation by
``(name, argument, depth)`` sound.

Unfoldings are memoised as hash-consed trie roots: a memo hit returns the
*same* :class:`~repro.traces.trie.ClosureNode`, so every downstream
operator's own memo table hits by pointer equality and shared subtrees
are processed once per shape, not once per unfolding site.  ``kernel``
selects the operator implementation — ``"trie"`` (the default, memoised
recursive node functions) or ``"reference"`` (the flat-set baseline in
:mod:`repro.traces._reference`, kept for cross-checks and benchmarks).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import SemanticsError
from repro.process.analysis import concrete_channels
from repro.runtime import faults as _faults
from repro.runtime import governor as _governor
from repro.process.ast import (
    ArrayRef,
    Chan,
    Choice,
    Input,
    Name,
    Output,
    Parallel,
    Process,
    Stop,
)
from repro.process.definitions import DefinitionList, NO_DEFINITIONS
from repro.semantics.config import DEFAULT_CONFIG, SemanticsConfig
from repro.traces import _reference as _reference_ops
from repro.traces import operations as _trie_ops
from repro.traces.events import Event
from repro.traces.prefix_closure import STOP_CLOSURE, FiniteClosure
from repro.traces.stats import KERNEL_STATS
from repro.values.environment import Environment

#: Operator implementations selectable per Denoter.
KERNELS = {"trie": _trie_ops, "reference": _reference_ops}


class Denoter:
    """Computes bounded denotations of process expressions.

    One instance holds the environment (variables, set names, host
    functions), the definition list, the bounds, and a memo table for
    unfolded definitions.  Optionally, ``process_bindings`` maps process
    names directly to closures (plain processes) or to ``value → closure``
    functions (process arrays); the fixpoint chain uses this to denote a
    body under the *previous* approximation, exactly the paper's
    ``ρ[aᵢ/p]⟦P⟧``.
    """

    def __init__(
        self,
        definitions: DefinitionList = NO_DEFINITIONS,
        env: Optional[Environment] = None,
        config: SemanticsConfig = DEFAULT_CONFIG,
        process_bindings: Optional[Dict[str, object]] = None,
        kernel: str = "trie",
    ) -> None:
        if kernel not in KERNELS:
            raise SemanticsError(
                f"unknown kernel {kernel!r}; choose from {sorted(KERNELS)}"
            )
        self.definitions = definitions
        self.env = env if env is not None else Environment()
        self.config = config
        self.process_bindings = process_bindings or {}
        self.kernel = kernel
        self._ops = KERNELS[kernel]
        self._memo: Dict[Tuple[str, object, int], FiniteClosure] = {}

    # -- public API ---------------------------------------------------------

    def denote(self, process: Process, depth: Optional[int] = None) -> FiniteClosure:
        """``⟦process⟧`` up to ``depth`` (default: the configured depth)."""
        if depth is None:
            depth = self.config.depth
        with _governor.recursion_guard("denotation"):
            return self._denote(process, self.env, depth)

    def denote_name(self, name: str, depth: Optional[int] = None) -> FiniteClosure:
        """``⟦p⟧`` for a defined process name."""
        return self.denote(Name(name), depth)

    # -- the semantic equations ------------------------------------------------

    def _denote(self, process: Process, env: Environment, depth: int) -> FiniteClosure:
        _governor.tick()
        if isinstance(process, Stop):
            return STOP_CLOSURE
        if isinstance(process, Output):
            return self._denote_output(process, env, depth)
        if isinstance(process, Input):
            return self._denote_input(process, env, depth)
        if isinstance(process, Choice):
            return self._ops.union(
                self._denote(process.left, env, depth),
                self._denote(process.right, env, depth),
            )
        if isinstance(process, Parallel):
            return self._denote_parallel(process, env, depth)
        if isinstance(process, Chan):
            return self._denote_chan(process, env, depth)
        if isinstance(process, Name):
            return self._denote_name(process, env, depth)
        if isinstance(process, ArrayRef):
            return self._denote_array_ref(process, env, depth)
        raise SemanticsError(f"unknown process node {process!r}")

    def _denote_output(self, process: Output, env: Environment, depth: int) -> FiniteClosure:
        if depth <= 0:
            return STOP_CLOSURE
        channel = process.channel.evaluate(env)
        message = process.message.evaluate(env)
        continuation = self._denote(process.continuation, env, depth - 1)
        return self._ops.prefix(Event(channel, message), continuation)

    def _denote_input(self, process: Input, env: Environment, depth: int) -> FiniteClosure:
        if depth <= 0:
            return STOP_CLOSURE
        channel = process.channel.evaluate(env)
        domain = process.domain.evaluate(env)
        branches = []
        for value in domain.enumerate(self.config.sample):
            continuation = self._denote(
                process.continuation, env.bind(process.variable, value), depth - 1
            )
            branches.append(self._ops.prefix(Event(channel, value), continuation))
        return self._ops.union_all(branches)

    def _denote_parallel(self, process: Parallel, env: Environment, depth: int) -> FiniteClosure:
        if process.left_channels is not None:
            x = process.left_channels.evaluate(env)
        else:
            x = concrete_channels(process.left, self.definitions, env)
        if process.right_channels is not None:
            y = process.right_channels.evaluate(env)
        else:
            y = concrete_channels(process.right, self.definitions, env)
        left = self._denote(process.left, env, depth)
        right = self._denote(process.right, env, depth)
        return self._ops.parallel(left, x, right, y, depth=depth)

    def _denote_chan(self, process: Chan, env: Environment, depth: int) -> FiniteClosure:
        hidden = process.channels.evaluate(env)
        inner_depth = max(self.config.hide_depth, depth)
        body = self._denote(process.body, env, inner_depth)
        return self._ops.truncate(self._ops.hide(body, hidden), depth)

    def _denote_name(self, process: Name, env: Environment, depth: int) -> FiniteClosure:
        if process.name in self.process_bindings:
            bound = self.process_bindings[process.name]
            if not isinstance(bound, FiniteClosure):
                raise SemanticsError(
                    f"process name {process.name!r} bound to a non-closure"
                )
            return self._ops.truncate(bound, depth)
        key = (process.name, None, depth)
        stats = KERNEL_STATS.memo("denote-unfold")
        if key in self._memo:
            stats.hits += 1
            return self._memo[key]
        stats.misses += 1
        _faults.maybe_fail("denote.unfold")
        definition = self.definitions.lookup_process(process.name)
        result = self._denote(definition.body, self.env, depth)
        self._memo[key] = result
        return result

    def _denote_array_ref(self, process: ArrayRef, env: Environment, depth: int) -> FiniteClosure:
        value = process.index.evaluate(env)
        if process.name in self.process_bindings:
            bound = self.process_bindings[process.name]
            if not callable(bound):
                raise SemanticsError(
                    f"process array {process.name!r} bound to a non-function"
                )
            closure = bound(value)
            if closure is None:
                # The binding covers only sampled subscripts and this one
                # is outside the sample (engine fallback mode): unfold it
                # on demand.  In-sample references inside the unfolded
                # body still hit the bindings, so the blend stays exact.
                return self._unfold_array(process.name, value, depth)
            if not isinstance(closure, FiniteClosure):
                raise SemanticsError(
                    f"array binding for {process.name!r} returned a non-closure"
                )
            return self._ops.truncate(closure, depth)
        return self._unfold_array(process.name, value, depth)

    def _unfold_array(self, name: str, value: object, depth: int) -> FiniteClosure:
        definition = self.definitions.lookup_array(name)
        domain = definition.domain.evaluate(self.env)
        if value not in domain:
            raise SemanticsError(
                f"subscript {value!r} of {name!r} outside its domain "
                f"{domain!r}"
            )
        key = (name, value, depth)
        stats = KERNEL_STATS.memo("denote-unfold")
        if key in self._memo:
            stats.hits += 1
            return self._memo[key]
        stats.misses += 1
        _faults.maybe_fail("denote.unfold")
        result = self._denote(
            definition.body, self.env.bind(definition.parameter, value), depth
        )
        self._memo[key] = result
        return result


def denote(
    process: Process,
    definitions: DefinitionList = NO_DEFINITIONS,
    env: Optional[Environment] = None,
    config: SemanticsConfig = DEFAULT_CONFIG,
    depth: Optional[int] = None,
    kernel: str = "trie",
) -> FiniteClosure:
    """One-shot convenience wrapper around :class:`Denoter`."""
    return Denoter(definitions, env, config, kernel=kernel).denote(process, depth)

"""The semantic function ⟦·⟧ρ as bounded trace enumeration (paper §3.2).

Each process expression is mapped onto the prefix closure of its possible
traces, truncated at ``config.depth``:

* ``⟦STOP⟧ = {⟨⟩}``;
* ``⟦c!e → P⟧ = (c.ρ⟦e⟧ → ⟦P⟧)``;
* ``⟦c?x:M → P⟧ = ∪_{v∈M} (c.v → ⟦P⟧ρ[v/x])`` — with ``M`` sampled when
  infinite;
* ``⟦P | Q⟧ = ⟦P⟧ ∪ ⟦Q⟧``;
* ``⟦P ‖ Q⟧`` — synchronised merge over the inferred or annotated
  alphabets;
* ``⟦chan L; P⟧ = ⟦P⟧ \\ L`` — with the body explored to
  ``config.hide_depth``;
* names and array references unfold their defining equations; guardedness
  (validated by :class:`~repro.process.definitions.DefinitionList`)
  guarantees the unfolding terminates at the depth bound.  Unfolding
  computes exactly ``∪ᵢ aᵢ`` restricted to the depth bound — the least
  fixed point of §3.3 — which the test suite confirms against the explicit
  :class:`~repro.semantics.fixpoint.ApproximationChain`.

Definition bodies are denoted in the *base* environment (plus the array
parameter, for arrays): equations are closed except for global bindings
such as message types ``M`` and host functions, which makes memoisation by
``(name, argument, depth)`` sound.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import SemanticsError
from repro.process.analysis import concrete_channels
from repro.process.ast import (
    ArrayRef,
    Chan,
    Choice,
    Input,
    Name,
    Output,
    Parallel,
    Process,
    Stop,
)
from repro.process.definitions import DefinitionList, NO_DEFINITIONS
from repro.semantics.config import DEFAULT_CONFIG, SemanticsConfig
from repro.traces.events import Event
from repro.traces.operations import hide, parallel, prefix, union_all
from repro.traces.prefix_closure import STOP_CLOSURE, FiniteClosure
from repro.values.environment import Environment


class Denoter:
    """Computes bounded denotations of process expressions.

    One instance holds the environment (variables, set names, host
    functions), the definition list, the bounds, and a memo table for
    unfolded definitions.  Optionally, ``process_bindings`` maps process
    names directly to closures (plain processes) or to ``value → closure``
    functions (process arrays); the fixpoint chain uses this to denote a
    body under the *previous* approximation, exactly the paper's
    ``ρ[aᵢ/p]⟦P⟧``.
    """

    def __init__(
        self,
        definitions: DefinitionList = NO_DEFINITIONS,
        env: Optional[Environment] = None,
        config: SemanticsConfig = DEFAULT_CONFIG,
        process_bindings: Optional[Dict[str, object]] = None,
    ) -> None:
        self.definitions = definitions
        self.env = env if env is not None else Environment()
        self.config = config
        self.process_bindings = process_bindings or {}
        self._memo: Dict[Tuple[str, object, int], FiniteClosure] = {}

    # -- public API ---------------------------------------------------------

    def denote(self, process: Process, depth: Optional[int] = None) -> FiniteClosure:
        """``⟦process⟧`` up to ``depth`` (default: the configured depth)."""
        if depth is None:
            depth = self.config.depth
        return self._denote(process, self.env, depth)

    def denote_name(self, name: str, depth: Optional[int] = None) -> FiniteClosure:
        """``⟦p⟧`` for a defined process name."""
        return self.denote(Name(name), depth)

    # -- the semantic equations ------------------------------------------------

    def _denote(self, process: Process, env: Environment, depth: int) -> FiniteClosure:
        if isinstance(process, Stop):
            return STOP_CLOSURE
        if isinstance(process, Output):
            return self._denote_output(process, env, depth)
        if isinstance(process, Input):
            return self._denote_input(process, env, depth)
        if isinstance(process, Choice):
            return self._denote(process.left, env, depth).union(
                self._denote(process.right, env, depth)
            )
        if isinstance(process, Parallel):
            return self._denote_parallel(process, env, depth)
        if isinstance(process, Chan):
            return self._denote_chan(process, env, depth)
        if isinstance(process, Name):
            return self._denote_name(process, env, depth)
        if isinstance(process, ArrayRef):
            return self._denote_array_ref(process, env, depth)
        raise SemanticsError(f"unknown process node {process!r}")

    def _denote_output(self, process: Output, env: Environment, depth: int) -> FiniteClosure:
        if depth <= 0:
            return STOP_CLOSURE
        channel = process.channel.evaluate(env)
        message = process.message.evaluate(env)
        continuation = self._denote(process.continuation, env, depth - 1)
        return prefix(Event(channel, message), continuation)

    def _denote_input(self, process: Input, env: Environment, depth: int) -> FiniteClosure:
        if depth <= 0:
            return STOP_CLOSURE
        channel = process.channel.evaluate(env)
        domain = process.domain.evaluate(env)
        branches = []
        for value in domain.enumerate(self.config.sample):
            continuation = self._denote(
                process.continuation, env.bind(process.variable, value), depth - 1
            )
            branches.append(prefix(Event(channel, value), continuation))
        return union_all(branches)

    def _denote_parallel(self, process: Parallel, env: Environment, depth: int) -> FiniteClosure:
        if process.left_channels is not None:
            x = process.left_channels.evaluate(env)
        else:
            x = concrete_channels(process.left, self.definitions, env)
        if process.right_channels is not None:
            y = process.right_channels.evaluate(env)
        else:
            y = concrete_channels(process.right, self.definitions, env)
        left = self._denote(process.left, env, depth)
        right = self._denote(process.right, env, depth)
        return parallel(left, x, right, y, depth=depth)

    def _denote_chan(self, process: Chan, env: Environment, depth: int) -> FiniteClosure:
        hidden = process.channels.evaluate(env)
        inner_depth = max(self.config.hide_depth, depth)
        body = self._denote(process.body, env, inner_depth)
        return hide(body, hidden).truncate(depth)

    def _denote_name(self, process: Name, env: Environment, depth: int) -> FiniteClosure:
        if process.name in self.process_bindings:
            bound = self.process_bindings[process.name]
            if not isinstance(bound, FiniteClosure):
                raise SemanticsError(
                    f"process name {process.name!r} bound to a non-closure"
                )
            return bound.truncate(depth)
        key = (process.name, None, depth)
        if key in self._memo:
            return self._memo[key]
        definition = self.definitions.lookup_process(process.name)
        result = self._denote(definition.body, self.env, depth)
        self._memo[key] = result
        return result

    def _denote_array_ref(self, process: ArrayRef, env: Environment, depth: int) -> FiniteClosure:
        value = process.index.evaluate(env)
        if process.name in self.process_bindings:
            bound = self.process_bindings[process.name]
            if not callable(bound):
                raise SemanticsError(
                    f"process array {process.name!r} bound to a non-function"
                )
            closure = bound(value)
            if not isinstance(closure, FiniteClosure):
                raise SemanticsError(
                    f"array binding for {process.name!r} returned a non-closure"
                )
            return closure.truncate(depth)
        definition = self.definitions.lookup_array(process.name)
        domain = definition.domain.evaluate(self.env)
        if value not in domain:
            raise SemanticsError(
                f"subscript {value!r} of {process.name!r} outside its domain "
                f"{domain!r}"
            )
        key = (process.name, value, depth)
        if key in self._memo:
            return self._memo[key]
        result = self._denote(
            definition.body, self.env.bind(definition.parameter, value), depth
        )
        self._memo[key] = result
        return result


def denote(
    process: Process,
    definitions: DefinitionList = NO_DEFINITIONS,
    env: Optional[Environment] = None,
    config: SemanticsConfig = DEFAULT_CONFIG,
    depth: Optional[int] = None,
) -> FiniteClosure:
    """One-shot convenience wrapper around :class:`Denoter`."""
    return Denoter(definitions, env, config).denote(process, depth)

"""Trace equivalence of processes up to a depth bound.

Two processes are trace-equivalent at depth ``d`` when their bounded
denotations agree.  This is the paper's notion of process identity (a
process *is* its trace set), and also how the §4 limitation
``STOP | P = P`` is demonstrated (experiment E9).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.process.ast import Process
from repro.process.definitions import DefinitionList, NO_DEFINITIONS
from repro.semantics.config import DEFAULT_CONFIG, SemanticsConfig
from repro.semantics.denotation import Denoter
from repro.traces.events import Trace
from repro.values.environment import Environment


def trace_equivalent(
    left: Process,
    right: Process,
    definitions: DefinitionList = NO_DEFINITIONS,
    env: Optional[Environment] = None,
    config: SemanticsConfig = DEFAULT_CONFIG,
) -> bool:
    """True when ``⟦left⟧ = ⟦right⟧`` at the configured depth."""
    return trace_difference(left, right, definitions, env, config) is None


def trace_difference(
    left: Process,
    right: Process,
    definitions: DefinitionList = NO_DEFINITIONS,
    env: Optional[Environment] = None,
    config: SemanticsConfig = DEFAULT_CONFIG,
) -> Optional[Tuple[str, Trace]]:
    """A witness trace separating two processes, or ``None`` if equivalent.

    The witness is ``("left-only", s)`` or ``("right-only", s)`` with ``s``
    a shortest separating trace.
    """
    denoter = Denoter(definitions, env, config)
    lhs = denoter.denote(left)
    rhs = denoter.denote(right)
    if lhs == rhs:
        return None
    left_only = sorted(lhs.traces - rhs.traces, key=len)
    right_only = sorted(rhs.traces - lhs.traces, key=len)
    if left_only and (not right_only or len(left_only[0]) <= len(right_only[0])):
        return ("left-only", left_only[0])
    return ("right-only", right_only[0])

"""Bounds for the bounded denotational semantics.

The paper's model is exact but infinite; we enumerate it breadth-first up
to configurable bounds (DESIGN.md §4).  Within the bounds the enumeration
is *complete*: every trace of length ≤ ``depth`` whose messages are drawn
from the sampled value sets is present.
"""

from __future__ import annotations

from typing import Optional


class SemanticsConfig:
    """Enumeration bounds for :class:`~repro.semantics.denotation.Denoter`.

    Parameters
    ----------
    depth:
        Maximum length of enumerated traces.
    sample:
        Maximum number of values enumerated per input prefix (and per
        process-array domain).  Finite sets smaller than ``sample`` are
        enumerated completely; infinite sets like ``NAT`` contribute their
        first ``sample`` elements in canonical order.
    hide_depth:
        Depth budget for the *body* of a ``chan L; P`` construct, which
        must be explored deeper than ``depth`` because hiding deletes
        events.  Defaults to ``2 * depth + 2``, enough for every paper
        example (each external event costs at most one hidden event plus a
        bounded number of acknowledgements).
    """

    __slots__ = ("depth", "sample", "hide_depth")

    def __init__(
        self, depth: int = 6, sample: int = 3, hide_depth: Optional[int] = None
    ) -> None:
        if depth < 0:
            raise ValueError("depth must be non-negative")
        if sample < 1:
            raise ValueError("sample must be at least 1")
        self.depth = depth
        self.sample = sample
        self.hide_depth = hide_depth if hide_depth is not None else 2 * depth + 2

    def with_depth(self, depth: int) -> "SemanticsConfig":
        """A copy with a different trace depth (hide budget rescaled unless
        it was set explicitly — copies always rescale)."""
        return SemanticsConfig(depth=depth, sample=self.sample)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SemanticsConfig)
            and (self.depth, self.sample, self.hide_depth)
            == (other.depth, other.sample, other.hide_depth)
        )

    def __hash__(self) -> int:
        return hash((self.depth, self.sample, self.hide_depth))

    def __repr__(self) -> str:
        return (
            f"SemanticsConfig(depth={self.depth}, sample={self.sample}, "
            f"hide_depth={self.hide_depth})"
        )


#: Default bounds used when none are supplied.
DEFAULT_CONFIG = SemanticsConfig()
